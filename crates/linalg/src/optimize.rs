//! Nonlinear conjugate-gradient minimisation.
//!
//! The paper trains GP hyperparameters by maximising the leave-one-out log
//! likelihood "with the Conjugate Gradient (CG) optimization" (§5.2.2), and
//! in continuous mode runs a *fixed* small number of CG steps from a warm
//! start. This module provides exactly that: Polak–Ribière+ nonlinear CG
//! with a backtracking Armijo line search and a configurable step budget.
//!
//! Conventions: the optimiser *minimises*; callers maximising a likelihood
//! pass its negation. Parameters live in an unconstrained space — the GP
//! crate optimises log-hyperparameters to keep them positive.

use crate::vector;

/// An objective function with analytic gradient.
pub trait Objective {
    /// Value and gradient at `x`. The gradient slice has `x.len()` entries.
    fn value_and_gradient(&mut self, x: &[f64]) -> (f64, Vec<f64>);
}

impl<F> Objective for F
where
    F: FnMut(&[f64]) -> (f64, Vec<f64>),
{
    fn value_and_gradient(&mut self, x: &[f64]) -> (f64, Vec<f64>) {
        self(x)
    }
}

/// Options controlling [`minimize_cg`].
#[derive(Debug, Clone)]
pub struct CgOptions {
    /// Maximum number of CG iterations (each may take several function
    /// evaluations during the line search).
    pub max_iters: usize,
    /// Stop when the gradient infinity-norm drops below this.
    pub gradient_tolerance: f64,
    /// Stop when the objective improves by less than this between iterations.
    pub value_tolerance: f64,
    /// Initial trial step of the line search.
    pub initial_step: f64,
    /// Armijo sufficient-decrease constant.
    pub armijo_c: f64,
    /// Backtracking shrink factor.
    pub backtrack: f64,
    /// Maximum backtracking steps per line search.
    pub max_line_search: usize,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            max_iters: 100,
            gradient_tolerance: 1e-6,
            value_tolerance: 1e-10,
            initial_step: 1.0,
            armijo_c: 1e-4,
            backtrack: 0.5,
            max_line_search: 30,
        }
    }
}

impl CgOptions {
    /// Options for the paper's online mode: a fixed budget of `steps` CG
    /// iterations from a warm start (§5.2.2 uses five).
    pub fn fixed_steps(steps: usize) -> Self {
        CgOptions {
            max_iters: steps,
            gradient_tolerance: 0.0,
            value_tolerance: 0.0,
            ..Self::default()
        }
    }
}

/// Why the optimiser stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Gradient norm below tolerance.
    GradientConverged,
    /// Objective improvement below tolerance.
    ValueConverged,
    /// Iteration budget exhausted (expected in online mode).
    MaxIterations,
    /// Line search could not find a decreasing step.
    LineSearchFailed,
}

/// Result of a CG run.
#[derive(Debug, Clone)]
pub struct CgReport {
    /// Minimising point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Total objective evaluations.
    pub evaluations: usize,
    /// Why the run stopped.
    pub stop: StopReason,
}

/// Minimise `f` starting from `x0` with Polak–Ribière+ nonlinear CG.
pub fn minimize_cg(f: &mut dyn Objective, x0: &[f64], opts: &CgOptions) -> CgReport {
    let n = x0.len();
    let mut x = x0.to_vec();
    let (mut fx, mut grad) = f.value_and_gradient(&x);
    let mut evaluations = 1;
    let mut direction: Vec<f64> = grad.iter().map(|g| -g).collect();
    let mut iterations = 0;
    let mut stop = StopReason::MaxIterations;

    while iterations < opts.max_iters {
        if vector::max_abs(&grad) < opts.gradient_tolerance {
            stop = StopReason::GradientConverged;
            break;
        }
        // Ensure descent: if the CG direction has lost descent, restart with
        // steepest descent (standard PR+ safeguard).
        let mut dir_dot_grad = vector::dot(&direction, &grad);
        if dir_dot_grad >= 0.0 {
            direction = grad.iter().map(|g| -g).collect();
            dir_dot_grad = vector::dot(&direction, &grad);
            if dir_dot_grad >= 0.0 {
                // Gradient is exactly zero.
                stop = StopReason::GradientConverged;
                break;
            }
        }

        // Backtracking Armijo line search along `direction`.
        let mut step = opts.initial_step;
        let mut accepted = None;
        for _ in 0..opts.max_line_search {
            let mut trial = x.clone();
            vector::axpy(step, &direction, &mut trial);
            let (ft, gt) = f.value_and_gradient(&trial);
            evaluations += 1;
            if ft.is_finite() && ft <= fx + opts.armijo_c * step * dir_dot_grad {
                accepted = Some((trial, ft, gt));
                break;
            }
            step *= opts.backtrack;
        }
        let Some((new_x, new_f, new_grad)) = accepted else {
            stop = StopReason::LineSearchFailed;
            break;
        };

        // Polak–Ribière+ beta with automatic restart when beta < 0.
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..n {
            num += new_grad[i] * (new_grad[i] - grad[i]);
            den += grad[i] * grad[i];
        }
        let beta = if den > 0.0 { (num / den).max(0.0) } else { 0.0 };
        for i in 0..n {
            direction[i] = -new_grad[i] + beta * direction[i];
        }

        let improvement = fx - new_f;
        x = new_x;
        fx = new_f;
        grad = new_grad;
        iterations += 1;

        if improvement.abs() < opts.value_tolerance && iterations > 1 {
            stop = StopReason::ValueConverged;
            break;
        }
    }

    smiler_obs::count("cg.iterations", "", iterations as u64);
    smiler_obs::count("cg.evaluations", "", evaluations as u64);
    CgReport { x, value: fx, iterations, evaluations, stop }
}

/// Central finite-difference gradient, for validating analytic gradients in
/// tests.
pub fn finite_difference_gradient(
    f: &mut dyn FnMut(&[f64]) -> f64,
    x: &[f64],
    eps: f64,
) -> Vec<f64> {
    let mut grad = vec![0.0; x.len()];
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        let orig = xp[i];
        xp[i] = orig + eps;
        let fp = f(&xp);
        xp[i] = orig - eps;
        let fm = f(&xp);
        xp[i] = orig;
        grad[i] = (fp - fm) / (2.0 * eps);
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic(x: &[f64]) -> (f64, Vec<f64>) {
        // f(x) = Σ i·(x_i - i)², minimum at x_i = i.
        let mut v = 0.0;
        let mut g = vec![0.0; x.len()];
        for (i, xi) in x.iter().enumerate() {
            let w = (i + 1) as f64;
            let d = xi - i as f64;
            v += w * d * d;
            g[i] = 2.0 * w * d;
        }
        (v, g)
    }

    #[test]
    fn minimises_quadratic() {
        let mut f = quadratic;
        let report = minimize_cg(&mut f, &[5.0, -3.0, 10.0, 0.0], &CgOptions::default());
        for (i, xi) in report.x.iter().enumerate() {
            assert!((xi - i as f64).abs() < 1e-4, "x[{i}]={xi}");
        }
        assert!(report.value < 1e-8);
    }

    #[test]
    fn minimises_rosenbrock() {
        let mut f = |x: &[f64]| {
            let (a, b) = (x[0], x[1]);
            let v = (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2);
            let g = vec![-2.0 * (1.0 - a) - 400.0 * a * (b - a * a), 200.0 * (b - a * a)];
            (v, g)
        };
        let report = minimize_cg(
            &mut f,
            &[-1.2, 1.0],
            &CgOptions { max_iters: 5000, value_tolerance: 1e-14, ..Default::default() },
        );
        assert!(report.value < 1e-3, "value = {}", report.value);
    }

    #[test]
    fn fixed_steps_respects_budget() {
        let mut f = quadratic;
        let report = minimize_cg(&mut f, &[100.0, 100.0], &CgOptions::fixed_steps(3));
        assert!(report.iterations <= 3);
        // Either the budget ran out, or the quadratic was solved exactly
        // within it — both respect the fixed-step contract.
        assert!(matches!(report.stop, StopReason::MaxIterations | StopReason::GradientConverged));
        // It must still have made progress.
        assert!(report.value < quadratic(&[100.0, 100.0]).0);
    }

    #[test]
    fn stops_at_minimum_immediately() {
        let mut f = quadratic;
        let report = minimize_cg(&mut f, &[0.0, 1.0], &CgOptions::default());
        assert_eq!(report.stop, StopReason::GradientConverged);
        assert_eq!(report.iterations, 0);
    }

    #[test]
    fn finite_difference_matches_analytic() {
        let x = [0.3, -1.7, 2.2];
        let fd = finite_difference_gradient(&mut |x| quadratic(x).0, &x, 1e-6);
        let (_, g) = quadratic(&x);
        for (a, b) in fd.iter().zip(&g) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn warm_start_beats_cold_start_under_budget() {
        // Mirrors the paper's online-training claim: one step from a warm
        // start reaches a better value than the same budget from far away.
        let mut f = quadratic;
        let cold = minimize_cg(&mut f, &[50.0, 50.0], &CgOptions::fixed_steps(1));
        let warm = minimize_cg(&mut f, &[0.1, 1.1], &CgOptions::fixed_steps(1));
        assert!(warm.value < cold.value, "warm {} vs cold {}", warm.value, cold.value);
    }
}
