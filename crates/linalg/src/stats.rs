//! Descriptive statistics and Gaussian densities.
//!
//! The evaluation measures of the paper live here: MAE is a mean of absolute
//! errors, and MNLPD averages [`negative_log_predictive_density`] over test
//! points (§6.3.1). The predictor-weighting rule (Eqn 6–7) uses the same
//! Gaussian likelihood.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by n, matching the paper's pseudo-variance,
/// Eqn 13); 0 for an empty slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Standard deviation (population).
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Gaussian probability density of `y` under `N(mean, var)`.
///
/// This is the likelihood `l(y, u, σ²)` of paper Eqn (7) used to score each
/// ensemble predictor after the true value arrives. Variance is floored at
/// a tiny positive value to keep the density finite for degenerate
/// predictors.
pub fn gaussian_pdf(y: f64, mean: f64, var: f64) -> f64 {
    let var = var.max(1e-12);
    let d = y - mean;
    (-d * d / (2.0 * var)).exp() / (2.0 * std::f64::consts::PI * var).sqrt()
}

/// Negative log predictive density of `y` under `N(mean, var)`.
///
/// One term of the paper's MNLPD measure. Computed in log space directly so
/// extremely unlikely observations do not underflow to `-ln 0`.
pub fn negative_log_predictive_density(y: f64, mean: f64, var: f64) -> f64 {
    let var = var.max(1e-12);
    let d = y - mean;
    0.5 * (2.0 * std::f64::consts::PI * var).ln() + d * d / (2.0 * var)
}

/// Mean absolute error between predictions and truths.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mean_absolute_error(predicted: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "MAE length mismatch");
    if predicted.is_empty() {
        return 0.0;
    }
    predicted.iter().zip(truth).map(|(p, t)| (p - t).abs()).sum::<f64>() / predicted.len() as f64
}

/// Mean negative log predictive density over `(mean, var)` predictions.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mean_nlpd(means: &[f64], vars: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(means.len(), vars.len(), "MNLPD length mismatch");
    assert_eq!(means.len(), truth.len(), "MNLPD length mismatch");
    if means.is_empty() {
        return 0.0;
    }
    means
        .iter()
        .zip(vars)
        .zip(truth)
        .map(|((m, v), t)| negative_log_predictive_density(*t, *m, *v))
        .sum::<f64>()
        / means.len() as f64
}

/// Quantile by linear interpolation on a *sorted* slice, `q ∈ [0, 1]`.
///
/// # Panics
/// Panics on an empty slice or `q` outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile fraction out of range");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert_eq!(variance(&xs), 1.25);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn gaussian_pdf_peak() {
        // Standard normal at 0 is 1/sqrt(2π).
        let p = gaussian_pdf(0.0, 0.0, 1.0);
        assert!((p - 0.3989422804014327).abs() < 1e-12);
        // Symmetry.
        assert!((gaussian_pdf(1.0, 0.0, 2.0) - gaussian_pdf(-1.0, 0.0, 2.0)).abs() < 1e-15);
    }

    #[test]
    fn nlpd_is_negative_log_of_pdf() {
        let (y, m, v) = (0.7, 0.2, 1.3);
        let direct = -gaussian_pdf(y, m, v).ln();
        assert!((negative_log_predictive_density(y, m, v) - direct).abs() < 1e-12);
    }

    #[test]
    fn nlpd_finite_for_extreme_observation() {
        let v = negative_log_predictive_density(1e6, 0.0, 1.0);
        assert!(v.is_finite());
        assert!(v > 0.0);
    }

    #[test]
    fn mae_basic() {
        assert_eq!(mean_absolute_error(&[1.0, 2.0], &[2.0, 0.0]), 1.5);
        assert_eq!(mean_absolute_error(&[], &[]), 0.0);
    }

    #[test]
    fn mnlpd_prefers_honest_uncertainty() {
        // An overconfident wrong prediction is punished more than a
        // well-calibrated one — the property Fig 9/10(b,d,f) measures.
        let truth = [1.0];
        let overconfident = mean_nlpd(&[0.0], &[0.01], &truth);
        let calibrated = mean_nlpd(&[0.0], &[1.0], &truth);
        assert!(overconfident > calibrated);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile_sorted(&xs, 0.0), 1.0);
        assert_eq!(quantile_sorted(&xs, 1.0), 5.0);
        assert_eq!(quantile_sorted(&xs, 0.5), 3.0);
        assert_eq!(quantile_sorted(&xs, 0.25), 2.0);
    }
}
