//! A dense, row-major `f64` matrix.
//!
//! The workloads in this repository use small dense matrices (Gram matrices
//! of at most a few hundred rows), so the representation is a single
//! contiguous `Vec<f64>` with row-major addressing. All operations are
//! written as plain loops in an iteration order that keeps the inner loop
//! contiguous (`i-k-j` for products), which is the main thing that matters
//! at this scale.

#![allow(clippy::needless_range_loop)] // index loops mirror the matrix maths

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create a matrix from a closure evaluated at every `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Create a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data has wrong length");
        Matrix { rows, cols, data }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Borrow the raw row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            out[i] = acc;
        }
        out
    }

    /// Transposed matrix–vector product `selfᵀ * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let row = self.row(i);
            let xi = x[i];
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * xi;
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j order keeps both the `other` row and the output row contiguous.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, b) in orow.iter_mut().zip(brow) {
                    *o += aik * b;
                }
            }
        }
        out
    }

    /// `selfᵀ * self`, a symmetric product used by Nyström/ridge baselines.
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for k in 0..self.rows {
            let row = self.row(k);
            for i in 0..self.cols {
                let rki = row[i];
                if rki == 0.0 {
                    continue;
                }
                let orow = out.row_mut(i);
                for (o, r) in orow.iter_mut().zip(row) {
                    *o += rki * r;
                }
            }
        }
        out
    }

    /// In-place scaled addition `self += alpha * other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scale every entry by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Add `value` to the diagonal (e.g. jitter or a ridge term).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, value: f64) {
        assert!(self.is_square(), "add_diagonal requires a square matrix");
        for i in 0..self.rows {
            self.data[i * self.cols + i] += value;
        }
    }

    /// The diagonal as a vector.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn diagonal(&self) -> Vec<f64> {
        assert!(self.is_square(), "diagonal requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).collect()
    }

    /// Maximum absolute entry-wise difference to `other`; `None` on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> Option<f64> {
        if (self.rows, self.cols) != (other.rows, other.cols) {
            return None;
        }
        Some(self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max))
    }

    /// Remove row `r` and column `r`, returning the `(n-1) × (n-1)` minor.
    ///
    /// Used by tests to cross-check the partitioned-inverse identities that
    /// back the leave-one-out likelihood computation.
    ///
    /// # Panics
    /// Panics if the matrix is not square or `r` is out of range.
    pub fn delete_row_col(&self, r: usize) -> Matrix {
        assert!(self.is_square() && r < self.rows);
        let n = self.rows - 1;
        Matrix::from_fn(n, n, |i, j| {
            let si = if i < r { i } else { i + 1 };
            let sj = if j < r { j } else { j + 1 };
            self[(si, sj)]
        })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn matmul_matches_manual() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_rows(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 7 + j * 3) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gram_is_transpose_times_self() {
        let a = Matrix::from_fn(4, 3, |i, j| (i as f64) - 0.5 * (j as f64));
        let g = a.gram();
        let g2 = a.transpose().matmul(&a);
        assert!(g.max_abs_diff(&g2).unwrap() < 1e-12);
    }

    #[test]
    fn delete_row_col_minor() {
        let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let m = a.delete_row_col(1);
        assert_eq!(m.as_slice(), &[0.0, 2.0, 6.0, 8.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::identity(2);
        let b = Matrix::identity(2);
        a.axpy(2.0, &b);
        a.scale(0.5);
        assert_eq!(a[(0, 0)], 1.5);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "matvec dimension mismatch")]
    fn matvec_wrong_len_panics() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let mut a = Matrix::zeros(3, 3);
        a.add_diagonal(2.5);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(a[(i, j)], if i == j { 2.5 } else { 0.0 });
            }
        }
    }
}
