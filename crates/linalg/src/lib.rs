//! Dense linear algebra, optimisation and statistics substrate for the
//! SMiLer reproduction.
//!
//! The Gaussian Process predictor (paper §5.2.2, Appendix B.3) needs a small
//! but complete numerical toolbox: symmetric positive-definite factorisation
//! for the Gram matrix, triangular solves for the predictive equations
//! (Eqns 16–17), an explicit SPD inverse for the leave-one-out likelihood
//! (Eqn 19–20), and a nonlinear conjugate-gradient optimiser for
//! hyperparameter training. None of the approved offline crates provide
//! these, so this crate implements them from scratch.
//!
//! The crate is deliberately free of unsafe code and external BLAS: matrices
//! in SMiLer are small (the Gram matrix is `k × k` with `k ≤ 128`), so clear
//! cache-friendly loops beat FFI overhead.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cholesky;
pub mod matrix;
pub mod optimize;
pub mod rng;
pub mod stats;
pub mod vector;

pub use cholesky::Cholesky;
pub use matrix::Matrix;
pub use optimize::{minimize_cg, CgOptions, CgReport, Objective};
