//! Deterministic random sampling helpers.
//!
//! Experiments must be reproducible from a printed seed, so every stochastic
//! component in the workspace draws from a seeded [`rand::rngs::StdRng`]
//! through these helpers. Normal deviates use Box–Muller rather than pulling
//! in `rand_distr` (the approved offline crate list has `rand` only).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Create a seeded RNG. All workspace randomness flows through `StdRng` so
/// results are stable across platforms.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A standard-normal deviate via the Box–Muller transform.
pub fn normal(rng: &mut impl Rng) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A normal deviate with the given mean and standard deviation.
pub fn normal_with(rng: &mut impl Rng, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * normal(rng)
}

/// Sample `count` distinct indices from `0..n` (Floyd's algorithm).
///
/// # Panics
/// Panics if `count > n`.
pub fn sample_indices(rng: &mut impl Rng, n: usize, count: usize) -> Vec<usize> {
    assert!(count <= n, "cannot sample {count} distinct indices from 0..{n}");
    // Floyd's algorithm yields each subset with equal probability in O(count).
    let mut chosen = Vec::with_capacity(count);
    for j in n - count..n {
        let t = rng.gen_range(0..=j);
        if chosen.contains(&t) {
            chosen.push(j);
        } else {
            chosen.push(t);
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let a: Vec<f64> = {
            let mut r = seeded(42);
            (0..5).map(|_| r.gen()).collect()
        };
        let b: Vec<f64> = {
            let mut r = seeded(42);
            (0..5).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn normal_moments() {
        let mut rng = seeded(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "var = {var}");
    }

    #[test]
    fn normal_with_shifts_and_scales() {
        let mut rng = seeded(9);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal_with(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05);
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = seeded(3);
        for _ in 0..100 {
            let idx = sample_indices(&mut rng, 50, 10);
            assert_eq!(idx.len(), 10);
            let mut sorted = idx.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 10, "indices must be distinct");
            assert!(idx.iter().all(|&i| i < 50));
        }
    }

    #[test]
    fn sample_indices_full_range() {
        let mut rng = seeded(4);
        let mut idx = sample_indices(&mut rng, 5, 5);
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }
}
