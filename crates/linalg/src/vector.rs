//! Small vector helpers shared across the workspace.
//!
//! These are free functions over `&[f64]` rather than a newtype: the rest of
//! the workspace passes plain slices around (time-series segments, GP
//! targets), and wrapping them would add friction without safety.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "squared_distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x`, element-wise.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Element-wise scale in place.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// `a - b` as a new vector.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Maximum absolute element, 0 for an empty slice.
pub fn max_abs(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, &v| m.max(v.abs()))
}

/// Index of the minimum element; `None` for an empty slice. NaNs lose.
pub fn argmin(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv <= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn squared_distance_symmetric() {
        let a = [1.0, -2.0, 0.5];
        let b = [0.0, 1.0, 2.0];
        assert_eq!(squared_distance(&a, &b), squared_distance(&b, &a));
        assert_eq!(squared_distance(&a, &a), 0.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn argmin_skips_nan() {
        assert_eq!(argmin(&[3.0, f64::NAN, 1.0, 2.0]), Some(2));
        assert_eq!(argmin(&[]), None);
        assert_eq!(argmin(&[f64::NAN]), None);
    }

    #[test]
    fn sub_and_max_abs() {
        assert_eq!(sub(&[3.0, 1.0], &[1.0, 4.0]), vec![2.0, -3.0]);
        assert_eq!(max_abs(&[-5.0, 2.0]), 5.0);
        assert_eq!(max_abs(&[]), 0.0);
    }
}
