//! Cholesky factorisation of symmetric positive-definite matrices.
//!
//! The GP predictor factorises its Gram matrix once per prediction and then
//! reuses the factor for: the predictive mean `c₀ᵀ C⁻¹ Y` (paper Eqn 16),
//! the predictive variance `c(x₀,x₀) − c₀ᵀ C⁻¹ c₀` (Eqn 17), the explicit
//! inverse needed by the leave-one-out likelihood (Eqn 19–20), and the
//! log-determinant used by the marginal-likelihood baselines.
//!
//! Gram matrices built from near-duplicate kNN segments can be numerically
//! semi-definite, so [`Cholesky::decompose_with_jitter`] retries with a
//! geometrically growing diagonal jitter — the standard GP-practice remedy.

#![allow(clippy::needless_range_loop)] // index loops mirror the factorisation maths

use crate::matrix::Matrix;

/// Error produced when a matrix cannot be factorised.
#[derive(Debug, Clone, PartialEq)]
pub enum CholeskyError {
    /// The matrix is not square.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// A non-positive pivot was encountered at the given index, even after
    /// the maximum jitter was applied.
    NotPositiveDefinite {
        /// Pivot index at which factorisation failed.
        pivot: usize,
    },
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CholeskyError::NotSquare { rows, cols } => {
                write!(f, "cannot factorise a non-square {rows}x{cols} matrix")
            }
            CholeskyError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
        }
    }
}

impl std::error::Error for CholeskyError {}

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    /// Jitter that was added to the diagonal to achieve positive-definiteness.
    jitter: f64,
}

impl Cholesky {
    /// Factorise a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry is assumed, not
    /// checked.
    pub fn decompose(a: &Matrix) -> Result<Self, CholeskyError> {
        Self::decompose_impl(a, 0.0)
    }

    /// Factorise with automatic jitter escalation.
    ///
    /// Starting from `initial_jitter`, the jitter is multiplied by 10 until
    /// factorisation succeeds or it exceeds `max_jitter`. The jitter actually
    /// used is reported by [`Cholesky::jitter`]; callers that care about
    /// exactness can assert it is zero.
    pub fn decompose_with_jitter(
        a: &Matrix,
        initial_jitter: f64,
        max_jitter: f64,
    ) -> Result<Self, CholeskyError> {
        match Self::decompose_impl(a, 0.0) {
            Ok(c) => return Ok(c),
            Err(CholeskyError::NotSquare { rows, cols }) => {
                return Err(CholeskyError::NotSquare { rows, cols })
            }
            Err(CholeskyError::NotPositiveDefinite { .. }) => {}
        }
        let mut jitter = initial_jitter.max(f64::EPSILON);
        while jitter <= max_jitter {
            if let Ok(c) = Self::decompose_impl(a, jitter) {
                return Ok(c);
            }
            jitter *= 10.0;
        }
        Err(CholeskyError::NotPositiveDefinite { pivot: 0 })
    }

    fn decompose_impl(a: &Matrix, jitter: f64) -> Result<Self, CholeskyError> {
        if !a.is_square() {
            return Err(CholeskyError::NotSquare { rows: a.rows(), cols: a.cols() });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)] + if i == j { jitter } else { 0.0 };
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(CholeskyError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l, jitter })
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Diagonal jitter that was added to achieve factorisation.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solve `L x = b` (forward substitution).
    ///
    /// # Panics
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.dim(), "solve_lower dimension mismatch");
        let mut x = b.to_vec();
        self.solve_lower_in_place(&mut x);
        x
    }

    /// Forward substitution in place: on entry `x` holds `b`, on exit the
    /// solution of `L x = b`.
    ///
    /// `x` may be *shorter* than the factor: a `k`-length slice solves
    /// against the leading principal `k×k` block of `L`, which is exactly
    /// the Cholesky factor of the leading principal `k×k` submatrix of `A`
    /// — the shared-prefix property the GP ensemble exploits.
    ///
    /// # Panics
    /// Panics if `x.len() > self.dim()`.
    pub fn solve_lower_in_place(&self, x: &mut [f64]) {
        let n = x.len();
        assert!(n <= self.dim(), "solve_lower_in_place dimension mismatch");
        for i in 0..n {
            // x[i] still holds b[i] here; the subtraction order matches the
            // allocating solver bit for bit.
            let mut sum = x[i];
            let row = self.l.row(i);
            for k in 0..i {
                sum -= row[k] * x[k];
            }
            x[i] = sum / row[i];
        }
    }

    /// Solve `Lᵀ x = b` (backward substitution).
    ///
    /// # Panics
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_upper(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.dim(), "solve_upper dimension mismatch");
        let mut x = b.to_vec();
        self.solve_upper_in_place(&mut x);
        x
    }

    /// Backward substitution in place: on entry `x` holds `b`, on exit the
    /// solution of `Lᵀ x = b`. As with [`Cholesky::solve_lower_in_place`], a
    /// shorter slice solves against the leading principal block.
    ///
    /// # Panics
    /// Panics if `x.len() > self.dim()`.
    pub fn solve_upper_in_place(&self, x: &mut [f64]) {
        let n = x.len();
        assert!(n <= self.dim(), "solve_upper_in_place dimension mismatch");
        for i in (0..n).rev() {
            let mut sum = x[i];
            for k in i + 1..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
    }

    /// Solve `A x = b` where `A = L Lᵀ`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// Solve `A x = b` in place (forward then backward substitution). A
    /// shorter slice solves against the leading principal block of `A`.
    ///
    /// # Panics
    /// Panics if `x.len() > self.dim()`.
    pub fn solve_in_place(&self, x: &mut [f64]) {
        self.solve_lower_in_place(x);
        self.solve_upper_in_place(x);
    }

    /// Solve `A X = B` column by column.
    ///
    /// # Panics
    /// Panics if `B.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        assert_eq!(b.rows(), self.dim(), "solve_matrix dimension mismatch");
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col);
            for i in 0..b.rows() {
                out[(i, j)] = x[i];
            }
        }
        out
    }

    /// The explicit inverse `A⁻¹`.
    ///
    /// The leave-one-out likelihood (paper Eqn 19) needs the diagonal of the
    /// inverse Gram matrix and products with whole columns, so an explicit
    /// inverse is the right tool despite its O(n³) cost — `n = k ≤ 128` here.
    pub fn inverse(&self) -> Matrix {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// `log |A| = 2 Σ log L_ii`.
    pub fn log_determinant(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Quadratic form `bᵀ A⁻¹ b` computed stably via one triangular solve.
    ///
    /// # Panics
    /// Panics if `b.len() != self.dim()`.
    pub fn quad_form(&self, b: &[f64]) -> f64 {
        let z = self.solve_lower(b);
        z.iter().map(|v| v * v).sum()
    }

    /// [`Cholesky::quad_form`] scribbling over a caller-owned buffer that
    /// holds `b` on entry — no allocation. A shorter slice evaluates the
    /// quadratic form against the leading principal block of `A`.
    ///
    /// # Panics
    /// Panics if `x.len() > self.dim()`.
    pub fn quad_form_in_place(&self, x: &mut [f64]) -> f64 {
        self.solve_lower_in_place(x);
        x.iter().map(|v| v * v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> Matrix {
        // Build B with deterministic pseudo-random entries, return B Bᵀ + n·I.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        let b = Matrix::from_fn(n, n, |_, _| next());
        let mut a = b.matmul(&b.transpose());
        a.add_diagonal(n as f64);
        a
    }

    #[test]
    fn reconstructs_matrix() {
        let a = spd(6, 1);
        let c = Cholesky::decompose(&a).unwrap();
        let l = c.factor();
        let back = l.matmul(&l.transpose());
        assert!(a.max_abs_diff(&back).unwrap() < 1e-10);
        assert_eq!(c.jitter(), 0.0);
    }

    #[test]
    fn solve_recovers_rhs() {
        let a = spd(8, 2);
        let c = Cholesky::decompose(&a).unwrap();
        let x_true: Vec<f64> = (0..8).map(|i| (i as f64) - 3.5).collect();
        let b = a.matvec(&x_true);
        let x = c.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9, "{xi} vs {ti}");
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd(5, 3);
        let inv = Cholesky::decompose(&a).unwrap().inverse();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&Matrix::identity(5)).unwrap() < 1e-9);
    }

    #[test]
    fn log_determinant_of_diagonal() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 2.0;
        a[(1, 1)] = 4.0;
        a[(2, 2)] = 8.0;
        let c = Cholesky::decompose(&a).unwrap();
        assert!((c.log_determinant() - (64.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn quad_form_matches_explicit() {
        let a = spd(7, 4);
        let c = Cholesky::decompose(&a).unwrap();
        let b: Vec<f64> = (0..7).map(|i| (i as f64).sin()).collect();
        let explicit: f64 = {
            let x = c.solve(&b);
            b.iter().zip(&x).map(|(bi, xi)| bi * xi).sum()
        };
        assert!((c.quad_form(&b) - explicit).abs() < 1e-9);
    }

    #[test]
    fn rejects_non_square() {
        let m = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::decompose(&m),
            Err(CholeskyError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn rejects_indefinite() {
        let mut a = Matrix::identity(2);
        a[(1, 1)] = -1.0;
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(CholeskyError::NotPositiveDefinite { pivot: 1 })
        ));
    }

    #[test]
    fn jitter_rescues_semidefinite() {
        // Rank-one matrix: ones everywhere.
        let a = Matrix::from_fn(4, 4, |_, _| 1.0);
        let c = Cholesky::decompose_with_jitter(&a, 1e-10, 1e-2).unwrap();
        assert!(c.jitter() > 0.0);
        // Factor must reproduce A + jitter·I.
        let mut aj = a.clone();
        aj.add_diagonal(c.jitter());
        let back = c.factor().matmul(&c.factor().transpose());
        assert!(aj.max_abs_diff(&back).unwrap() < 1e-8);
    }

    #[test]
    fn jitter_gives_up_beyond_max() {
        let mut a = Matrix::identity(2);
        a[(1, 1)] = -100.0;
        assert!(Cholesky::decompose_with_jitter(&a, 1e-10, 1e-6).is_err());
    }

    #[test]
    fn in_place_solves_match_allocating() {
        let a = spd(9, 11);
        let c = Cholesky::decompose(&a).unwrap();
        let b: Vec<f64> = (0..9).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut x = b.clone();
        c.solve_lower_in_place(&mut x);
        assert_eq!(x, c.solve_lower(&b), "forward substitution diverged");
        let mut x = b.clone();
        c.solve_upper_in_place(&mut x);
        assert_eq!(x, c.solve_upper(&b), "backward substitution diverged");
        let mut x = b.clone();
        c.solve_in_place(&mut x);
        assert_eq!(x, c.solve(&b), "full solve diverged");
        let mut x = b.clone();
        assert_eq!(c.quad_form_in_place(&mut x), c.quad_form(&b));
    }

    #[test]
    fn leading_block_is_factor_of_principal_submatrix() {
        // The key invariant behind the shared-prefix GP: rows 0..k of L
        // depend only on the leading k×k block of A, so the truncated
        // factor IS the factor of the principal submatrix — bit for bit.
        let a = spd(10, 12);
        let full = Cholesky::decompose(&a).unwrap();
        for k in 1..=10usize {
            let sub = Matrix::from_fn(k, k, |i, j| a[(i, j)]);
            let c_sub = Cholesky::decompose(&sub).unwrap();
            for i in 0..k {
                for j in 0..=i {
                    assert_eq!(
                        full.factor()[(i, j)],
                        c_sub.factor()[(i, j)],
                        "L[{i}][{j}] differs at prefix {k}"
                    );
                }
            }
            // Prefix solves through the full factor match the submatrix.
            let b: Vec<f64> = (0..k).map(|i| (i as f64) - 1.5).collect();
            let mut x = b.clone();
            full.solve_in_place(&mut x);
            assert_eq!(x, c_sub.solve(&b), "prefix solve diverged at k={k}");
            let mut x = b.clone();
            assert_eq!(
                full.quad_form_in_place(&mut x),
                c_sub.quad_form(&b),
                "prefix quad form diverged at k={k}"
            );
        }
    }

    #[test]
    fn partitioned_inverse_identity_for_loo() {
        // The LOO shortcut relies on: removing row/col a from A and inverting
        // equals the Schur-complement identity on A⁻¹. Verify numerically:
        // (A_{-a,-a})⁻¹ = A⁻¹_{-a,-a} − A⁻¹_{-a,a} A⁻¹_{a,-a} / A⁻¹_{a,a}.
        let a = spd(6, 9);
        let inv = Cholesky::decompose(&a).unwrap().inverse();
        let r = 2usize;
        let minor_inv = Cholesky::decompose(&a.delete_row_col(r)).unwrap().inverse();
        let n = a.rows();
        let map = |i: usize| if i < r { i } else { i + 1 };
        for i in 0..n - 1 {
            for j in 0..n - 1 {
                let expect =
                    inv[(map(i), map(j))] - inv[(map(i), r)] * inv[(r, map(j))] / inv[(r, r)];
                assert!((minor_inv[(i, j)] - expect).abs() < 1e-9);
            }
        }
    }
}
