//! Microbenchmarks of the DTW kernels: full-matrix reference vs the
//! paper's compressed 2×(2ρ+2) buffer (Appendix E, Algorithm 2) vs
//! early abandoning, across the paper's segment lengths (ELV = 32/64/96)
//! and warping widths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn series(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (i as f64 * 0.11).sin() + (state % 1000) as f64 / 2000.0
        })
        .collect()
}

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtw_variants");
    for &d in &[32usize, 64, 96] {
        let q = series(d, 1);
        let s = series(d, 2);
        group.bench_with_input(BenchmarkId::new("full_matrix", d), &d, |b, _| {
            b.iter(|| smiler_dtw::dtw_banded(black_box(&q), black_box(&s), 8))
        });
        group.bench_with_input(BenchmarkId::new("compressed", d), &d, |b, _| {
            b.iter(|| smiler_dtw::dtw_compressed(black_box(&q), black_box(&s), 8))
        });
        group.bench_with_input(BenchmarkId::new("early_abandon_loose", d), &d, |b, _| {
            b.iter(|| smiler_dtw::dtw_early_abandon(black_box(&q), black_box(&s), 8, 1e9))
        });
        group.bench_with_input(BenchmarkId::new("early_abandon_tight", d), &d, |b, _| {
            b.iter(|| smiler_dtw::dtw_early_abandon(black_box(&q), black_box(&s), 8, 0.1))
        });
    }
    group.finish();
}

fn bench_warping_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtw_warping_width");
    let q = series(96, 3);
    let s = series(96, 4);
    for &rho in &[2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(rho), &rho, |b, &rho| {
            b.iter(|| smiler_dtw::dtw_compressed(black_box(&q), black_box(&s), rho))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants, bench_warping_width);
criterion_main!(benches);
