//! Benchmarks of the SMiLer index lifecycle: build, continuous advance
//! (the Remark 1 reuse), group-level bound computation (Algorithm 1) and
//! the full suffix kNN search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smiler_gpu::Device;
use smiler_index::{IndexParams, SmilerIndex};
use smiler_timeseries::synthetic::{DatasetKind, SyntheticSpec};

fn road_series(days: usize) -> Vec<f64> {
    SyntheticSpec { kind: DatasetKind::Road, sensors: 1, days, seed: 7 }
        .generate()
        .sensors
        .remove(0)
        .values()
        .to_vec()
}

fn params() -> IndexParams {
    IndexParams::default() // ρ=8, ω=16, ELV={32,64,96}, k=32
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(20);
    for &days in &[7usize, 14, 28] {
        let series = road_series(days);
        group.bench_with_input(BenchmarkId::from_parameter(days), &days, |b, _| {
            let device = Device::default_gpu();
            b.iter(|| SmilerIndex::build(&device, series.clone(), params()))
        });
    }
    group.finish();
}

fn bench_advance_vs_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_maintenance");
    group.sample_size(20);
    let series = road_series(14);
    let device = Device::default_gpu();
    group.bench_function("advance_one_step", |b| {
        let mut index = SmilerIndex::build(&device, series.clone(), params());
        let mut v = 0.0f64;
        b.iter(|| {
            v += 0.01;
            index.advance(&device, v.sin());
        })
    });
    group.bench_function("rebuild_from_scratch", |b| {
        b.iter(|| SmilerIndex::build(&device, series.clone(), params()))
    });
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_search");
    group.sample_size(20);
    for &days in &[7usize, 14] {
        let series = road_series(days);
        let device = Device::default_gpu();
        let max_end = series.len() - 30;
        group.bench_with_input(BenchmarkId::new("suffix_knn", days), &days, |b, _| {
            let mut index = SmilerIndex::build(&device, series.clone(), params());
            index.search(&device, max_end); // warm the continuous threshold
            b.iter(|| index.search(&device, max_end))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_advance_vs_rebuild, bench_search);
criterion_main!(benches);
