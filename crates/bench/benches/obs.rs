//! Overhead guard for the observability layer: the same suffix-kNN search
//! with the global switch off vs on. The disabled case is the cost every
//! production run pays for the permanently-wired instrumentation, so it
//! must track the uninstrumented baseline; the enabled case quantifies the
//! price of turning recording on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use smiler_gpu::Device;
use smiler_index::{IndexParams, SmilerIndex};
use smiler_timeseries::synthetic::{DatasetKind, SyntheticSpec};

fn road_sensor(days: usize) -> Vec<f64> {
    SyntheticSpec { kind: DatasetKind::Road, sensors: 1, days, seed: 7 }
        .generate()
        .sensors
        .remove(0)
        .values()
        .to_vec()
}

fn bench_search_overhead(c: &mut Criterion) {
    let series = road_sensor(8);
    let device = Device::default_gpu();
    let mut group = c.benchmark_group("obs_overhead");
    for (name, enabled) in [("search_disabled", false), ("search_enabled", true)] {
        group.bench_function(name, |b| {
            smiler_obs::reset();
            smiler_obs::set_enabled(enabled);
            let mut index = SmilerIndex::build(&device, series.clone(), IndexParams::default());
            let max_end = series.len() - 30;
            b.iter(|| black_box(index.search(&device, max_end)));
            smiler_obs::set_enabled(false);
            smiler_obs::reset();
        });
    }
    group.finish();
}

fn bench_record_calls(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_record");
    group.bench_function("count_disabled", |b| {
        smiler_obs::set_enabled(false);
        b.iter(|| smiler_obs::count(black_box("bench.counter"), "", 1));
    });
    group.bench_function("count_enabled", |b| {
        smiler_obs::reset();
        smiler_obs::set_enabled(true);
        b.iter(|| smiler_obs::count(black_box("bench.counter"), "", 1));
        smiler_obs::set_enabled(false);
        smiler_obs::reset();
    });
    group.finish();
}

criterion_group!(benches, bench_search_overhead, bench_record_calls);
criterion_main!(benches);
