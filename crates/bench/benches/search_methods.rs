//! Wall-clock comparison of the Fig 7 search methods at bench scale —
//! the host-side counterpart of the simulated-time experiment
//! (`cargo run -p smiler-bench --bin expt -- fig7`). Because the simulator
//! executes real work on real cores, the *relative* wall-clock ordering of
//! the methods mirrors their simulated ordering.

use criterion::{criterion_group, criterion_main, Criterion};
use smiler_gpu::{CpuSpec, Device};
use smiler_index::{scan, IndexParams, SmilerIndex};
use smiler_timeseries::synthetic::{DatasetKind, SyntheticSpec};

const ELV: [usize; 3] = [32, 64, 96];
const K: usize = 32;
const RHO: usize = 8;

fn road_series() -> Vec<f64> {
    SyntheticSpec { kind: DatasetKind::Road, sensors: 1, days: 10, seed: 3 }
        .generate()
        .sensors
        .remove(0)
        .values()
        .to_vec()
}

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_wall_clock");
    group.sample_size(10);
    let series = road_series();
    let max_end = series.len() - 30;

    group.bench_function("smiler_idx", |b| {
        let device = Device::default_gpu();
        let mut index = SmilerIndex::build(
            &device,
            series.clone(),
            IndexParams { rho: RHO, omega: 16, lengths: ELV.to_vec(), k_max: K },
        );
        index.search(&device, max_end);
        b.iter(|| index.search(&device, max_end))
    });
    group.bench_function("smiler_dir", |b| {
        let device = Device::default_gpu();
        b.iter(|| scan::smiler_dir(&device, &series, &ELV, K, RHO, max_end))
    });
    group.bench_function("fast_gpu_scan", |b| {
        let device = Device::default_gpu();
        b.iter(|| scan::fast_gpu_scan(&device, &series, &ELV, K, RHO, max_end))
    });
    group.bench_function("fast_cpu_scan", |b| {
        let device = Device::cpu(CpuSpec::default());
        b.iter(|| scan::fast_cpu_scan(&device, &series, &ELV, K, RHO, max_end))
    });
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
