//! Microbenchmarks of the DTW lower bounds (the Table 3 machinery):
//! envelope construction, LB_Kim, LB_Keogh in both directions, and the
//! enhanced bound LBen — each orders of magnitude cheaper than the DTW it
//! gates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smiler_timeseries::Envelope;
use std::hint::black_box;

fn series(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (i as f64 * 0.07).cos() + (state % 1000) as f64 / 2000.0
        })
        .collect()
}

fn bench_envelope(c: &mut Criterion) {
    let mut group = c.benchmark_group("envelope");
    for &n in &[96usize, 1024, 8192] {
        let s = series(n, 1);
        group.bench_with_input(BenchmarkId::new("deque", n), &n, |b, _| {
            b.iter(|| Envelope::compute(black_box(&s), 8))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| smiler_timeseries::envelope::envelope_naive(black_box(&s), 8))
        });
    }
    group.finish();
}

fn bench_bounds_vs_dtw(c: &mut Criterion) {
    let mut group = c.benchmark_group("bound_vs_dtw_d96");
    let d = 96;
    let q = series(d, 2);
    let s = series(d, 3);
    let qe = Envelope::compute(&q, 8);
    let se = Envelope::compute(&s, 8);
    group.bench_function("lb_kim", |b| {
        b.iter(|| smiler_dtw::lb_kim_fl(black_box(&q), black_box(&s)))
    });
    group.bench_function("lb_keogh_eq", |b| {
        b.iter(|| smiler_dtw::lb_keogh(black_box(&s), &qe.upper, &qe.lower))
    });
    group.bench_function("lb_keogh_ec", |b| {
        b.iter(|| smiler_dtw::lb_keogh(black_box(&q), &se.upper, &se.lower))
    });
    group.bench_function("lb_en", |b| {
        b.iter(|| {
            smiler_dtw::lb_en(
                black_box(&q),
                black_box(&s),
                (&qe.upper, &qe.lower),
                (&se.upper, &se.lower),
            )
        })
    });
    group.bench_function("dtw", |b| {
        b.iter(|| smiler_dtw::dtw_compressed(black_box(&q), black_box(&s), 8))
    });
    group.finish();
}

fn bench_incremental_envelope(c: &mut Criterion) {
    // Remark 1's cost story: extending the envelope by one point vs a full
    // recompute.
    let mut group = c.benchmark_group("envelope_update");
    let base = series(8192, 4);
    group.bench_function("extend_one_point", |b| {
        let mut grown = base.clone();
        grown.push(0.5);
        b.iter_batched(
            || Envelope::compute(&base, 8),
            |mut env| {
                env.extend_to(black_box(&grown));
                env
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("recompute_all", |b| {
        let mut grown = base.clone();
        grown.push(0.5);
        b.iter(|| Envelope::compute(black_box(&grown), 8))
    });
    group.finish();
}

criterion_group!(benches, bench_envelope, bench_bounds_vs_dtw, bench_incremental_envelope);
criterion_main!(benches);
