//! Benchmarks of the GPU k-selection kernel (distributive partitioning,
//! §4.3.3) against a full sort, at candidate-set sizes typical after
//! filtering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smiler_gpu::{kselect, Device};
use std::hint::black_box;

fn values(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i as u64).wrapping_mul(2654435761) % 100_000) as f64).collect()
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("k_selection");
    let device = Device::default_gpu().with_host_threads(1);
    for &n in &[1_000usize, 10_000, 100_000] {
        let data = values(n);
        group.bench_with_input(BenchmarkId::new("bucket_kselect_k32", n), &n, |b, _| {
            b.iter(|| {
                device
                    .launch(1, |ctx| kselect::select_k_smallest(ctx, black_box(&data), 32))
                    .results
            })
        });
        group.bench_with_input(BenchmarkId::new("full_sort", n), &n, |b, _| {
            b.iter(|| {
                let mut idx: Vec<usize> = (0..data.len()).collect();
                idx.sort_by(|&a, &b| data[a].partial_cmp(&data[b]).unwrap());
                idx.truncate(32);
                idx
            })
        });
    }
    group.finish();
}

fn bench_multi_query(c: &mut Criterion) {
    // The paper's extension: one block per query. Many small selections in
    // one launch vs sequential launches.
    let mut group = c.benchmark_group("multi_query_selection");
    group.sample_size(30);
    let rows: Vec<Vec<f64>> = (0..64).map(|s| values(5_000 + s)).collect();
    let ks = vec![32usize; rows.len()];
    let parallel = Device::default_gpu();
    group.bench_function("one_launch_64_queries", |b| {
        b.iter(|| kselect::launch_multi_select(&parallel, black_box(&rows), &ks))
    });
    group.bench_function("sixtyfour_single_launches", |b| {
        b.iter(|| {
            rows.iter()
                .map(|row| {
                    parallel.launch(1, |ctx| kselect::select_k_smallest(ctx, row, 32)).results
                })
                .collect::<Vec<_>>()
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_selection, bench_multi_query);
criterion_main!(benches);
