//! Benchmarks of the Gaussian Process machinery: fitting, prediction, the
//! LOO gradient (the per-CG-step cost of §5.2.2), and the full online vs
//! cold-start training paths, across the paper's EKV neighbourhood sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smiler_gp::kernel::Hyperparams;
use smiler_gp::{loo, train_full, train_online, GpModel, TrainConfig};
use smiler_linalg::Matrix;
use std::hint::black_box;

fn knn_data(k: usize, d: usize) -> (Matrix, Vec<f64>) {
    let x =
        Matrix::from_fn(k, d, |i, j| ((i * 31 + j * 7) % 17) as f64 * 0.1 + (j as f64 * 0.2).sin());
    let y: Vec<f64> = (0..k).map(|i| (i as f64 * 0.4).sin()).collect();
    (x, y)
}

fn bench_fit_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp_fit_predict");
    let hyper = Hyperparams::new(1.0, 2.0, 0.1);
    for &k in &[8usize, 16, 32, 64] {
        let (x, y) = knn_data(k, 64);
        group.bench_with_input(BenchmarkId::new("fit", k), &k, |b, _| {
            b.iter(|| GpModel::fit(x.clone(), black_box(&y), hyper).unwrap())
        });
        let gp = GpModel::fit(x.clone(), &y, hyper).unwrap();
        let x0 = vec![0.3; 64];
        group.bench_with_input(BenchmarkId::new("predict", k), &k, |b, _| {
            b.iter(|| gp.predict(black_box(&x0)))
        });
    }
    group.finish();
}

fn bench_loo_gradient(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp_loo_gradient");
    let hyper = Hyperparams::new(1.0, 2.0, 0.1);
    for &k in &[8usize, 16, 32, 64] {
        let (x, y) = knn_data(k, 64);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| loo::loo_value_and_log_gradient(black_box(&x), black_box(&y), &hyper))
        });
    }
    group.finish();
}

fn bench_training_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp_training");
    group.sample_size(20);
    let (x, y) = knn_data(32, 64);
    let config = TrainConfig::default();
    group.bench_function("cold_start_full", |b| {
        b.iter(|| train_full(black_box(&x), black_box(&y), &config))
    });
    let warm = train_full(&x, &y, &config);
    group.bench_function("warm_start_online_5_steps", |b| {
        b.iter(|| train_online(black_box(&x), black_box(&y), warm, &config))
    });
    group.finish();
}

criterion_group!(benches, bench_fit_predict, bench_loo_gradient, bench_training_paths);
criterion_main!(benches);
