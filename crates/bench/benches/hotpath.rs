//! Benchmarks of the allocation-free hot paths: the full continuous step,
//! the cascaded vs. batch verification, and the shared-prefix GP
//! factorisation vs. independent per-k fits.

use criterion::{criterion_group, criterion_main, Criterion};
use smiler_core::sensor::{SensorPredictor, SmilerConfig};
use smiler_core::PredictorKind;
use smiler_gp::{GpModel, GpScratch, Hyperparams, PrefixGp};
use smiler_gpu::Device;
use smiler_index::{IndexParams, SmilerIndex, VerifyMode};
use smiler_linalg::Matrix;
use smiler_timeseries::synthetic::{DatasetKind, SyntheticSpec};
use std::sync::Arc;

fn road_series(days: usize) -> Vec<f64> {
    SyntheticSpec { kind: DatasetKind::Road, sensors: 1, days, seed: 7 }
        .generate()
        .sensors
        .remove(0)
        .values()
        .to_vec()
}

/// One full continuous step (suffix kNN search + GP ensemble predict +
/// observe) — the latency the paper's Fig 9 reports per prediction.
fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("step");
    group.sample_size(20);
    let series = road_series(14);
    let split = series.len() - 400;
    let device = Arc::new(Device::default_gpu());
    let config = SmilerConfig { h_max: 10, ..Default::default() };
    let mut predictor = SensorPredictor::new(
        Arc::clone(&device),
        0,
        series[..split].to_vec(),
        config,
        PredictorKind::GaussianProcess,
    );
    let mut feed = series[split..].iter().cycle();
    group.bench_function("predict_observe", |b| {
        b.iter(|| {
            let out = predictor.predict(1);
            predictor.observe(*feed.next().expect("cyclic feed"));
            out
        })
    });
    group.finish();
}

/// Continuous search with cascaded vs. batch verification, paper-default
/// parameters.
fn bench_verify_cascade(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_cascade");
    group.sample_size(20);
    let series = road_series(14);
    let split = series.len() - 400;
    for (label, mode) in [("cascade", VerifyMode::Cascade), ("batch", VerifyMode::Batch)] {
        let device = Device::default_gpu();
        let mut index =
            SmilerIndex::build(&device, series[..split].to_vec(), IndexParams::default())
                .with_verify_mode(mode);
        let mut feed = series[split..].iter().cycle();
        group.bench_function(label, |b| {
            b.iter(|| {
                index.advance(&device, *feed.next().expect("cyclic feed"));
                let max_end = index.series().len() - 10;
                index.search(&device, max_end)
            })
        });
    }
    group.finish();
}

/// Predictions for every prefix k of one ensemble column: one shared
/// factorisation vs. an independent `GpModel` fit per k.
fn bench_gp_prefix(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp_prefix");
    let k_max = 32;
    let d = 32;
    let x = Matrix::from_fn(k_max, d, |i, j| ((i * d + j) as f64 * 0.23).sin() * 1.2);
    let y: Vec<f64> = (0..k_max).map(|i| (i as f64 * 0.41).cos()).collect();
    let x0: Vec<f64> = (0..d).map(|j| (j as f64 * 0.19).sin()).collect();
    let hyper = Hyperparams::new(1.0, 1.5, 0.1);
    let ks: Vec<usize> = vec![4, 8, 16, 32];
    group.bench_function("shared_prefix", |b| {
        let mut scratch = GpScratch::new();
        b.iter(|| {
            let pg = PrefixGp::fit(x.clone(), hyper).expect("fit");
            let mut acc = 0.0;
            for &k in &ks {
                let mean_k = y[..k].iter().sum::<f64>() / k as f64;
                let centred: Vec<f64> = y[..k].iter().map(|v| v - mean_k).collect();
                let (m, v) = pg.predict_prefix(k, &centred, &x0, &mut scratch);
                acc += m + v;
            }
            acc
        })
    });
    group.bench_function("independent_fits", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &k in &ks {
                let mean_k = y[..k].iter().sum::<f64>() / k as f64;
                let centred: Vec<f64> = y[..k].iter().map(|v| v - mean_k).collect();
                let sub = Matrix::from_fn(k, d, |i, j| x[(i, j)]);
                let gp = GpModel::fit(sub, &centred, hyper).expect("fit");
                let (m, v) = gp.predict(&x0);
                acc += m + v;
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_step, bench_verify_cascade, bench_gp_prefix);
criterion_main!(benches);
