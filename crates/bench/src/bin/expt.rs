//! `expt` — reproduce the SMiLer paper's tables and figures.
//!
//! ```text
//! cargo run -p smiler-bench --release --bin expt -- <id> [--smoke]
//!     [--metrics-out <path>] [--trace-out <path>]
//!
//!   ids: table3 fig7 fig8 fig9 fig10 fig11 table4 fig12 fig13 all
//!   --smoke              tiny datasets (CI-sized), same code paths
//!   --metrics-out <path> enable observability; write per-experiment
//!                        metrics (counters/histograms/spans) as JSONL
//!   --trace-out <path>   enable observability; write the event trace
//! ```
//!
//! Each experiment prints the paper-style table and appends JSON rows to
//! `results/<id>.jsonl` for EXPERIMENTS.md. With observability on, the
//! phase-span aggregates are also embedded into the records as extra
//! `obs.*` measurements.

use smiler_bench::experiments::{ablation, predict, scale as scale_expts, search};
use smiler_bench::{report, ExptScale, Measurement};
use std::path::PathBuf;

const USAGE: &str =
    "usage: expt <table3|fig7|fig8|fig9|fig10|fig11|table4|fig12|fig13|ablation|all> \
     [--smoke] [--metrics-out <path>] [--trace-out <path>]\n\
     \x20      expt bench-step [--smoke] [--out <path>]   per-step latency snapshot\n\
     \x20      expt bench-serve [--smoke] [--out <path>]  serving-throughput snapshot\n\
     \x20      expt bench-ingest [--smoke] [--out <path>] WAL append + recovery snapshot\n\
     \x20      expt bench-obs [--smoke] [--enforce-budget] [--out <path>]\n\
     \x20                                                  request-tracing overhead snapshot";

fn main() {
    let mut smoke = false;
    let mut enforce_budget = false;
    let mut metrics_out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--enforce-budget" => enforce_budget = true,
            "--out" => {
                let value = raw.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path\n{USAGE}");
                    std::process::exit(2);
                });
                out_path = Some(PathBuf::from(value));
            }
            "--metrics-out" | "--trace-out" => {
                let value = raw.next().unwrap_or_else(|| {
                    eprintln!("{arg} requires a path\n{USAGE}");
                    std::process::exit(2);
                });
                if arg == "--metrics-out" {
                    metrics_out = Some(PathBuf::from(value));
                } else {
                    trace_out = Some(PathBuf::from(value));
                }
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    // bench-step is a standalone latency snapshot, not a paper experiment.
    if ids.iter().any(|i| i == "bench-step") {
        let scale = if smoke {
            smiler_bench::stepbench::StepBenchScale::smoke()
        } else {
            smiler_bench::stepbench::StepBenchScale::default_scale()
        };
        let report = smiler_bench::stepbench::run(scale);
        let json = serde_json::to_string_pretty(&report).expect("report serialises");
        let path = out_path.unwrap_or_else(|| PathBuf::from("results/BENCH_step.json"));
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(&path, format!("{json}\n")).unwrap_or_else(|e| {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!(
            "bench-step: step median {:.2} ms / p95 {:.2} ms, search median {:.2} ms -> {}",
            report.step.median_ms,
            report.step.p95_ms,
            report.search.median_ms,
            path.display()
        );
        return;
    }
    // bench-serve snapshots the sharded serving frontend: micro-batched vs
    // per-request mode on the same trace, with simulated launch counts.
    if ids.iter().any(|i| i == "bench-serve") {
        let scale = if smoke {
            smiler_bench::servebench::ServeBenchScale::smoke()
        } else {
            smiler_bench::servebench::ServeBenchScale::default_scale()
        };
        let report = smiler_bench::servebench::run(scale);
        let json = serde_json::to_string_pretty(&report).expect("report serialises");
        let path = out_path.unwrap_or_else(|| PathBuf::from("results/BENCH_serve.json"));
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(&path, format!("{json}\n")).unwrap_or_else(|e| {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!(
            "bench-serve: batched {:.1} req/s ({} launches, mean batch {:.2}) vs per-request \
             {:.1} req/s ({} launches) -> {:.2}x launch amortisation -> {}",
            report.batched.load.throughput_rps,
            report.batched.kernel_launches,
            report.batched.mean_batch_size,
            report.per_request.load.throughput_rps,
            report.per_request.kernel_launches,
            report.launch_amortisation,
            path.display()
        );
        return;
    }
    // bench-ingest snapshots the durability layer: WAL append throughput
    // per flush policy and recovery time as a function of WAL length.
    if ids.iter().any(|i| i == "bench-ingest") {
        let scale = if smoke {
            smiler_bench::ingestbench::IngestBenchScale::smoke()
        } else {
            smiler_bench::ingestbench::IngestBenchScale::default_scale()
        };
        let report = smiler_bench::ingestbench::run(scale);
        let json = serde_json::to_string_pretty(&report).expect("report serialises");
        let path = out_path.unwrap_or_else(|| PathBuf::from("results/BENCH_ingest.json"));
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(&path, format!("{json}\n")).unwrap_or_else(|e| {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(1);
        });
        for a in &report.append {
            println!(
                "bench-ingest: {} -> {:.0} appends/s ({} fsyncs, {:.1} appends/fsync)",
                a.policy, a.appends_per_sec, a.fsyncs, a.appends_per_fsync
            );
        }
        for r in &report.recovery {
            println!(
                "bench-ingest: recover {} rounds in {:.3}s ({:.0} rounds/s; rebuild {:.3}s, \
                 replay {:.3}s)",
                r.wal_rounds,
                r.restore_seconds,
                r.rounds_per_sec,
                r.report.rebuild_seconds,
                r.report.replay_seconds
            );
        }
        println!("bench-ingest: wrote {}", path.display());
        return;
    }
    // bench-obs measures what request tracing itself costs: identical load
    // with and without a trace sink, plus a trace-stream audit and a
    // bitwise prediction-invariance proof. With --enforce-budget it exits
    // nonzero when tracing exceeds its overhead budget or the audit fails.
    if ids.iter().any(|i| i == "bench-obs") {
        let scale = if smoke {
            smiler_bench::obsbench::ObsBenchScale::smoke()
        } else {
            smiler_bench::obsbench::ObsBenchScale::default_scale()
        };
        let report = smiler_bench::obsbench::run(scale);
        let json = serde_json::to_string_pretty(&report).expect("report serialises");
        let path = out_path.unwrap_or_else(|| PathBuf::from("results/BENCH_obs.json"));
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(&path, format!("{json}\n")).unwrap_or_else(|e| {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!(
            "bench-obs: trace path {:.2} us/record = {:.4}% of a {:.2} ms request (budget \
             {:.1}%); A/B context: plain {:.1} req/s vs traced {:.1} req/s ({:+.1}% throughput, \
             {:+.1}% p50); {} trace records, schema_valid={} complete={} bitwise_identical={} \
             -> {}",
            report.overhead.trace_ns_per_record / 1_000.0,
            report.overhead.direct_pct,
            report.plain.best_latency_p50_ms,
            smiler_bench::obsbench::OVERHEAD_BUDGET_PCT,
            report.plain.median_throughput_rps,
            report.traced.median_throughput_rps,
            report.overhead.throughput_pct,
            report.overhead.latency_p50_pct,
            report.trace.records,
            report.trace.schema_valid,
            report.trace.complete,
            report.predictions_bitwise_identical,
            path.display()
        );
        if enforce_budget {
            let ok = report.overhead.within_budget
                && report.trace.schema_valid
                && report.trace.complete
                && report.trace.write_errors == 0
                && report.predictions_bitwise_identical;
            if !ok {
                eprintln!(
                    "bench-obs: observability budget violated (budget {:.1}%): {}",
                    smiler_bench::obsbench::OVERHEAD_BUDGET_PCT,
                    json
                );
                std::process::exit(1);
            }
        }
        return;
    }
    let observing = metrics_out.is_some() || trace_out.is_some();
    if observing {
        smiler_obs::set_enabled(true);
    }
    let scale = if smoke { ExptScale::smoke() } else { ExptScale::default_scale() };
    println!(
        "SMiLer experiment harness — {} sensors/dataset, {} days, seed {}",
        scale.sensors, scale.days, scale.seed
    );
    let results_dir = PathBuf::from("results");
    // Accumulated across experiments: each experiment runs against freshly
    // reset observability state, and its rows are appended here.
    let mut metrics_doc = String::new();
    let mut trace_doc = String::new();

    let mut run = |id: &str| {
        if observing {
            smiler_obs::reset();
        }
        let t0 = std::time::Instant::now();
        let mut records = match id {
            "table3" => search::table3(&scale),
            "fig7" => search::fig7(&scale),
            "fig8" => search::fig8(&scale),
            "fig9" => predict::fig9(&scale),
            "fig10" => predict::fig10(&scale),
            "fig11" => predict::fig11(&scale),
            "table4" => predict::table4(&scale),
            "fig12" => {
                let mut r = scale_expts::fig12_cost(&scale);
                r.extend(scale_expts::fig12_capacity());
                r
            }
            "fig13" => scale_expts::fig13(&scale),
            "ablation" => ablation::run(&scale),
            other => {
                eprintln!("unknown experiment '{other}'");
                std::process::exit(2);
            }
        };
        eprintln!("[{id}] finished in {:.1}s", t0.elapsed().as_secs_f64());
        if observing {
            records.extend(obs_measurements(id));
            metrics_doc.push_str(&smiler_obs::metrics_jsonl_string());
            trace_doc.push_str(&smiler_obs::trace_jsonl_string());
            let table = smiler_obs::summary_table();
            if !table.is_empty() {
                eprintln!("[{id}] observability summary:\n{table}");
            }
        }
        report::write_records(&results_dir, id, &records);
    };

    let all = [
        "table3", "fig7", "fig8", "fig9", "fig10", "fig11", "table4", "fig12", "fig13", "ablation",
    ];
    if ids.iter().any(|i| i == "all") {
        for id in all {
            run(id);
        }
    } else {
        for id in &ids {
            run(id);
        }
    }

    if let Some(path) = &metrics_out {
        if let Err(e) = std::fs::write(path, &metrics_doc) {
            eprintln!("[obs] could not write metrics to {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("[obs] metrics -> {}", path.display());
    }
    if let Some(path) = &trace_out {
        if let Err(e) = std::fs::write(path, &trace_doc) {
            eprintln!("[obs] could not write trace to {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("[obs] trace -> {}", path.display());
    }
}

/// Fold the observability aggregates into the experiment's record rows so
/// `results/<id>.jsonl` carries the phase breakdown next to the headline
/// numbers.
fn obs_measurements(id: &str) -> Vec<Measurement> {
    let mut extra = Vec::new();
    for s in smiler_obs::span_snapshot() {
        extra.push(Measurement::new(
            id,
            None,
            "obs.span",
            Some(s.path.clone()),
            "total_seconds",
            s.total_seconds,
        ));
        extra.push(Measurement::new(
            id,
            None,
            "obs.span",
            Some(s.path.clone()),
            "count",
            s.count as f64,
        ));
    }
    let snap = smiler_obs::metrics_snapshot();
    for c in &snap.counters {
        extra.push(Measurement::new(
            id,
            None,
            "obs.counter",
            Some(format!("{}{{{}}}", c.name, c.label)),
            "value",
            c.value as f64,
        ));
    }
    for h in &snap.histograms {
        // 0.0, not NaN: NaN serialises to `null` and poisons downstream
        // aggregation of the results rows.
        let mean = if h.count > 0 { h.sum / h.count as f64 } else { 0.0 };
        extra.push(Measurement::new(
            id,
            None,
            "obs.histogram",
            Some(format!("{}{{{}}}", h.name, h.label)),
            "mean",
            mean,
        ));
    }
    extra
}
