//! `expt` — reproduce the SMiLer paper's tables and figures.
//!
//! ```text
//! cargo run -p smiler-bench --release --bin expt -- <id> [--smoke]
//!
//!   ids: table3 fig7 fig8 fig9 fig10 fig11 table4 fig12 fig13 all
//!   --smoke   tiny datasets (CI-sized), same code paths
//! ```
//!
//! Each experiment prints the paper-style table and appends JSON rows to
//! `results/<id>.jsonl` for EXPERIMENTS.md.

use smiler_bench::experiments::{ablation, predict, scale as scale_expts, search};
use smiler_bench::{report, ExptScale, Measurement};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let ids: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    if ids.is_empty() {
        eprintln!(
            "usage: expt <table3|fig7|fig8|fig9|fig10|fig11|table4|fig12|fig13|ablation|all> [--smoke]"
        );
        std::process::exit(2);
    }
    let scale = if smoke { ExptScale::smoke() } else { ExptScale::default_scale() };
    println!(
        "SMiLer experiment harness — {} sensors/dataset, {} days, seed {}",
        scale.sensors, scale.days, scale.seed
    );
    let results_dir = PathBuf::from("results");

    let run = |id: &str| -> Vec<Measurement> {
        let t0 = std::time::Instant::now();
        let records = match id {
            "table3" => search::table3(&scale),
            "fig7" => search::fig7(&scale),
            "fig8" => search::fig8(&scale),
            "fig9" => predict::fig9(&scale),
            "fig10" => predict::fig10(&scale),
            "fig11" => predict::fig11(&scale),
            "table4" => predict::table4(&scale),
            "fig12" => {
                let mut r = scale_expts::fig12_cost(&scale);
                r.extend(scale_expts::fig12_capacity());
                r
            }
            "fig13" => scale_expts::fig13(&scale),
            "ablation" => ablation::run(&scale),
            other => {
                eprintln!("unknown experiment '{other}'");
                std::process::exit(2);
            }
        };
        eprintln!("[{id}] finished in {:.1}s", t0.elapsed().as_secs_f64());
        report::write_records(&results_dir, id, &records);
        records
    };

    let all =
        ["table3", "fig7", "fig8", "fig9", "fig10", "fig11", "table4", "fig12", "fig13", "ablation"];
    if ids.contains(&"all") {
        for id in all {
            run(id);
        }
    } else {
        for id in ids {
            run(id);
        }
    }
}
