//! Serving-throughput snapshot: the repo's load-serving trajectory tracker.
//!
//! `expt bench-serve` builds a synthetic road fleet, serves an identical
//! closed-loop trace twice through `smiler_core::serve` — once with
//! micro-batching on (concurrently queued forecasts on a shard share one
//! fleet search) and once in per-request mode (`max_batch = 1`) — and
//! writes `BENCH_serve.json` with both runs' throughput, latency
//! percentiles and simulated GPU launch counts. The committed snapshot is
//! the baseline against which serving-path PRs are judged: the batched run
//! must keep strictly fewer launches for the same trace.

use serde::Serialize;
use smiler_core::serve::{run_load, LoadGen, LoadReport, ServeConfig, SmilerServer};
use smiler_core::{PredictorKind, SensorPredictor, SmilerConfig};
use smiler_gpu::Device;
use smiler_timeseries::synthetic::{DatasetKind, SyntheticSpec};
use std::sync::Arc;
use std::time::Duration;

/// Scale of one bench-serve run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ServeBenchScale {
    /// Sensors in the fleet.
    pub sensors: usize,
    /// Days of road history per sensor.
    pub days: usize,
    /// Shard workers.
    pub shards: usize,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Forecasts per client.
    pub requests_per_client: usize,
}

impl ServeBenchScale {
    /// Default scale: enough concurrency that shard queues actually hold
    /// several requests at once, small enough for CLI time.
    pub fn default_scale() -> Self {
        ServeBenchScale { sensors: 12, days: 4, shards: 2, clients: 8, requests_per_client: 24 }
    }

    /// CI-sized smoke scale.
    pub fn smoke() -> Self {
        ServeBenchScale { sensors: 6, days: 2, shards: 2, clients: 4, requests_per_client: 6 }
    }
}

/// One serving mode's measurements.
#[derive(Debug, Clone, Serialize)]
pub struct ServeModeReport {
    /// `max_batch` the server ran with (1 = per-request serving).
    pub max_batch: usize,
    /// The load generator's view of the run.
    pub load: LoadReport,
    /// Mean micro-batch size actually achieved.
    pub mean_batch_size: f64,
    /// Requests shed at admission (server-side counter).
    pub shed: u64,
    /// Simulated GPU kernel launches over the whole run.
    pub kernel_launches: u64,
    /// Total blocks across those launches (grid widths summed).
    pub blocks_launched: u64,
}

/// The committed `BENCH_serve.json` record.
#[derive(Debug, Clone, Serialize)]
pub struct ServeBenchReport {
    /// Record identifier.
    pub bench: String,
    /// The run's scale parameters.
    pub scale: ServeBenchScale,
    /// Micro-batched serving run.
    pub batched: ServeModeReport,
    /// Per-request serving run (same trace, `max_batch = 1`).
    pub per_request: ServeModeReport,
    /// `per_request.kernel_launches / batched.kernel_launches` — the
    /// launch amortisation micro-batching buys.
    pub launch_amortisation: f64,
}

fn build_fleet(device: &Arc<Device>, scale: &ServeBenchScale) -> Vec<SensorPredictor> {
    let dataset = SyntheticSpec {
        kind: DatasetKind::Road,
        sensors: scale.sensors,
        days: scale.days,
        seed: 2015,
    }
    .generate();
    let config = SmilerConfig { h_max: 4, ..Default::default() };
    dataset
        .sensors
        .iter()
        .enumerate()
        .map(|(id, s)| {
            let (normalised, _) = smiler_timeseries::normalize::z_normalize(s.values());
            SensorPredictor::new(
                Arc::clone(device),
                id,
                normalised,
                config.clone(),
                PredictorKind::Aggregation,
            )
        })
        .collect()
}

fn run_mode(scale: &ServeBenchScale, max_batch: usize) -> ServeModeReport {
    let device = Arc::new(Device::default_gpu());
    let fleet = build_fleet(&device, scale);
    device.reset_clock();
    let config = ServeConfig {
        shards: scale.shards,
        queue_capacity: 64,
        max_batch,
        batch_window: Duration::from_millis(2),
        ..ServeConfig::default()
    };
    let server = SmilerServer::start(Arc::clone(&device), fleet, config);
    let handle = server.handle();
    let gen = LoadGen {
        clients: scale.clients,
        requests_per_client: scale.requests_per_client,
        horizon: 1,
        qps: None,
        deadline: None,
    };
    let load = run_load(&handle, &gen);
    let stats = server.shutdown();
    ServeModeReport {
        max_batch,
        load,
        mean_batch_size: stats.mean_batch_size(),
        shed: stats.shed,
        kernel_launches: device.kernel_launches(),
        blocks_launched: device.blocks_launched(),
    }
}

/// Run the serving benchmark in both modes and return the report.
pub fn run(scale: ServeBenchScale) -> ServeBenchReport {
    let batched = run_mode(&scale, 16);
    let per_request = run_mode(&scale, 1);
    let amortisation = per_request.kernel_launches as f64 / batched.kernel_launches.max(1) as f64;
    ServeBenchReport {
        bench: "serve".to_string(),
        scale,
        batched,
        per_request,
        launch_amortisation: amortisation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_sane_report() {
        let report = run(ServeBenchScale::smoke());
        assert_eq!(report.bench, "serve");
        let total = (ServeBenchScale::smoke().clients
            * ServeBenchScale::smoke().requests_per_client) as u64;
        let accounted = |l: &LoadReport| l.ok + l.shed + l.errors;
        assert_eq!(accounted(&report.batched.load), total);
        assert_eq!(accounted(&report.per_request.load), total);
        assert!(report.batched.load.throughput_rps > 0.0);
        // Per-request mode never batches.
        assert!(report.per_request.mean_batch_size <= 1.0 + 1e-9);
        assert!(report.batched.kernel_launches > 0);
    }
}
