//! Observability-overhead snapshot: what request tracing costs.
//!
//! `expt bench-obs` serves an identical closed-loop trace through
//! `smiler_core::serve` repeatedly in two modes — tracing off, and a JSONL
//! file sink capturing every terminal trace — interleaving the repeats so
//! machine drift hits both modes equally, and writes `BENCH_obs.json` with
//! the median throughput/latency of each mode and the derived overhead
//! percentages. The report also audits the trace stream itself (one
//! schema-valid terminal record per submission, no write errors) and
//! proves tracing is bitwise invisible to predictions. The committed
//! snapshot is the budget observability PRs are judged against: overhead
//! must stay under five percent.

use serde::Serialize;
use smiler_core::serve::{run_load, LoadGen, LoadReport, ServeConfig, SmilerServer};
use smiler_core::{PredictorKind, SensorPredictor, SmilerConfig};
use smiler_gpu::Device;
use smiler_obs::trace::{self, validate_trace_line, TraceConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Overhead the tracing path is allowed to add, in percent.
pub const OVERHEAD_BUDGET_PCT: f64 = 5.0;

/// Scale of one bench-obs run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ObsBenchScale {
    /// Sensors in the fleet.
    pub sensors: usize,
    /// Days of road history per sensor.
    pub days: usize,
    /// Shard workers.
    pub shards: usize,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Forecasts per client.
    pub requests_per_client: usize,
    /// Measured repeats per mode (after one discarded warmup).
    pub repeats: usize,
}

impl ObsBenchScale {
    /// Default scale: enough load that per-request trace cost would show
    /// up in the tails if it were material.
    pub fn default_scale() -> Self {
        ObsBenchScale {
            sensors: 12,
            days: 4,
            shards: 2,
            clients: 8,
            requests_per_client: 24,
            repeats: 5,
        }
    }

    /// CI-sized smoke scale. More repeats than default relative to run
    /// length: the budget gate rides on best-of-N, and short runs need
    /// more draws for the best one to shake off scheduler noise.
    pub fn smoke() -> Self {
        ObsBenchScale {
            sensors: 4,
            days: 2,
            shards: 2,
            clients: 4,
            requests_per_client: 8,
            repeats: 5,
        }
    }
}

/// Median measurements of one serving mode across the repeats.
#[derive(Debug, Clone, Serialize)]
pub struct ObsModeReport {
    /// Whether a trace sink was installed for these runs.
    pub traced: bool,
    /// Measured runs (warmup excluded).
    pub runs: usize,
    /// Median served predictions per second.
    pub median_throughput_rps: f64,
    /// Median of the runs' median latencies, milliseconds.
    pub median_latency_p50_ms: f64,
    /// Median of the runs' p95 latencies, milliseconds.
    pub median_latency_p95_ms: f64,
    /// Best (highest) throughput across the repeats. Machine noise is
    /// one-sided — it only slows a run down — so best-of-N is the robust
    /// estimate of what the mode can do, and the overhead gate rides on it.
    pub best_throughput_rps: f64,
    /// Best (lowest) per-run median latency across the repeats.
    pub best_latency_p50_ms: f64,
    /// Requests served across all runs.
    pub total_ok: u64,
    /// Requests shed at admission across all runs.
    pub total_shed: u64,
    /// Requests answered with typed errors across all runs.
    pub total_errors: u64,
}

/// Cost of tracing relative to the plain runs (positive = tracing slower).
///
/// Two views are reported. The A/B serving comparison (`*_pct`) is
/// context only: on a shared machine its run-to-run variance (easily
/// ±20%) swamps a microsecond-scale true cost, in either direction. The
/// *gate* rides on the direct measurement — a tight loop timing one full
/// trace lifecycle (begin, milestone marks, finish, serialise, submit
/// through a real file sink) — expressed as a fraction of the plain
/// mode's best per-request median latency. That ratio is what "tracing
/// overhead" actually means per served request, and it is stable enough
/// to enforce in CI.
#[derive(Debug, Clone, Serialize)]
pub struct OverheadReport {
    /// Throughput lost to tracing, percent (best-of-N vs best-of-N A/B;
    /// context only).
    pub throughput_pct: f64,
    /// Median-latency inflation, percent (best-of-N vs best-of-N A/B;
    /// context only).
    pub latency_p50_pct: f64,
    /// Median-latency inflation of the median runs, percent (context
    /// only).
    pub median_latency_p50_pct: f64,
    /// Direct cost of one full trace lifecycle, nanoseconds per record.
    pub trace_ns_per_record: f64,
    /// `trace_ns_per_record` as a percentage of the plain mode's best
    /// per-request median latency — the gated number.
    pub direct_pct: f64,
    /// Whether [`OverheadReport::direct_pct`] stays under
    /// [`OVERHEAD_BUDGET_PCT`].
    pub within_budget: bool,
}

/// Audit of the trace stream the traced runs produced.
#[derive(Debug, Clone, Serialize)]
pub struct TraceAuditReport {
    /// Traced runs audited.
    pub runs: usize,
    /// Terminal trace records written across those runs.
    pub records: u64,
    /// Every record passed [`validate_trace_line`].
    pub schema_valid: bool,
    /// Every run wrote exactly one terminal per submission
    /// (`emitted + sampled_out == requests`).
    pub complete: bool,
    /// Records lost to I/O errors across all runs.
    pub write_errors: u64,
}

/// The committed `BENCH_obs.json` record.
#[derive(Debug, Clone, Serialize)]
pub struct ObsBenchReport {
    /// Record identifier.
    pub bench: String,
    /// The run's scale parameters.
    pub scale: ObsBenchScale,
    /// Runs with tracing off.
    pub plain: ObsModeReport,
    /// Runs with a JSONL file sink capturing every terminal.
    pub traced: ObsModeReport,
    /// Derived tracing cost.
    pub overhead: OverheadReport,
    /// Trace-stream audit.
    pub trace: TraceAuditReport,
    /// A traced and an untraced sequential run answered bit-identical
    /// forecasts.
    pub predictions_bitwise_identical: bool,
}

fn build_fleet(device: &Arc<Device>, sensors: usize, days: usize) -> Vec<SensorPredictor> {
    let dataset = smiler_timeseries::synthetic::SyntheticSpec {
        kind: smiler_timeseries::synthetic::DatasetKind::Road,
        sensors,
        days,
        seed: 2015,
    }
    .generate();
    let config = SmilerConfig { h_max: 4, ..Default::default() };
    dataset
        .sensors
        .iter()
        .enumerate()
        .map(|(id, s)| {
            let (normalised, _) = smiler_timeseries::normalize::z_normalize(s.values());
            SensorPredictor::new(
                Arc::clone(device),
                id,
                normalised,
                config.clone(),
                PredictorKind::Aggregation,
            )
        })
        .collect()
}

fn run_once(scale: &ObsBenchScale) -> LoadReport {
    let device = Arc::new(Device::default_gpu());
    let fleet = build_fleet(&device, scale.sensors, scale.days);
    let config = ServeConfig {
        shards: scale.shards,
        queue_capacity: 64,
        max_batch: 16,
        batch_window: Duration::from_millis(2),
        ..ServeConfig::default()
    };
    let server = SmilerServer::start(device, fleet, config);
    let handle = server.handle();
    let gen = LoadGen {
        clients: scale.clients,
        requests_per_client: scale.requests_per_client,
        horizon: 1,
        qps: None,
        deadline: None,
    };
    let load = run_load(&handle, &gen);
    server.shutdown();
    load
}

/// One traced run: serve through a file sink, then audit the file.
struct TracedRun {
    load: LoadReport,
    records: u64,
    schema_valid: bool,
    complete: bool,
    write_errors: u64,
}

fn run_once_traced(scale: &ObsBenchScale, path: &PathBuf) -> TracedRun {
    let installed = trace::install_file_sink(path, TraceConfig::default()).is_ok();
    let load = run_once(scale);
    trace::flush_sink();
    let stats = trace::sink_stats().unwrap_or_default();
    trace::clear_sink();
    let lines: Vec<String> =
        std::fs::read_to_string(path).unwrap_or_default().lines().map(str::to_string).collect();
    let _ = std::fs::remove_file(path);
    let schema_valid =
        installed && !lines.is_empty() && lines.iter().all(|l| validate_trace_line(l).is_ok());
    // Default sampling keeps everything, so the file itself must carry one
    // terminal per submission; `sampled_out` is counted for completeness
    // anyway so a future sampled bench keeps the invariant meaningful.
    let complete = installed
        && stats.write_errors == 0
        && stats.emitted + stats.sampled_out == load.requests
        && lines.len() as u64 == stats.emitted;
    TracedRun {
        load,
        records: stats.emitted,
        schema_valid,
        complete,
        write_errors: stats.write_errors,
    }
}

/// Tight-loop measurement of the full per-request trace cost: allocate a
/// trace, stamp the serving milestones a served request accrues, finish
/// it, and submit it through a real file sink (JSON serialisation and
/// buffered write included).
fn trace_path_ns_per_record(path: &PathBuf) -> f64 {
    const RECORDS: u32 = 4096;
    if trace::install_file_sink(path, TraceConfig::default()).is_err() {
        return 0.0;
    }
    let started = std::time::Instant::now();
    for i in 0..RECORDS {
        let mut t = trace::RequestTrace::begin(i as usize % 16, 1, 0);
        t.mark("queue");
        t.mark("dequeue");
        t.set_batch(u64::from(i), 4);
        t.mark("batch_search.start");
        t.mark("batch_search.done");
        t.mark("predict.done");
        t.finish_served("full_ensemble", false);
        trace::submit(t);
    }
    trace::flush_sink();
    let elapsed = started.elapsed();
    trace::clear_sink();
    let _ = std::fs::remove_file(path);
    elapsed.as_nanos() as f64 / f64::from(RECORDS)
}

fn median(samples: &[f64]) -> f64 {
    let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    sorted[sorted.len() / 2]
}

/// Percent by which `traced` exceeds `plain` (0 when `plain` is not a
/// usable baseline).
fn inflation_pct(plain: f64, traced: f64) -> f64 {
    if plain > 0.0 && traced.is_finite() {
        (traced / plain - 1.0) * 100.0
    } else {
        0.0
    }
}

fn summarise(traced: bool, runs: &[LoadReport]) -> ObsModeReport {
    let pick = |f: fn(&LoadReport) -> f64| {
        let samples: Vec<f64> = runs.iter().map(f).collect();
        median(&samples)
    };
    let best = |better: fn(f64, f64) -> f64, f: fn(&LoadReport) -> f64| {
        runs.iter().map(f).filter(|v| v.is_finite()).fold(None, |acc: Option<f64>, v| {
            Some(match acc {
                Some(a) => better(a, v),
                None => v,
            })
        })
    };
    ObsModeReport {
        traced,
        runs: runs.len(),
        median_throughput_rps: pick(|l| l.throughput_rps),
        median_latency_p50_ms: pick(|l| l.latency_p50_ms),
        median_latency_p95_ms: pick(|l| l.latency_p95_ms),
        best_throughput_rps: best(f64::max, |l| l.throughput_rps).unwrap_or(0.0),
        best_latency_p50_ms: best(f64::min, |l| l.latency_p50_ms).unwrap_or(0.0),
        total_ok: runs.iter().map(|l| l.ok).sum(),
        total_shed: runs.iter().map(|l| l.shed).sum(),
        total_errors: runs.iter().map(|l| l.errors).sum(),
    }
}

/// Serve the same sequential request stream with and without a trace sink
/// and compare the raw bits of every answered forecast.
fn predictions_bitwise_identical(scale: &ObsBenchScale) -> bool {
    let sensors = scale.sensors.clamp(1, 3);
    let run = |traced: bool| -> Vec<(u64, u64)> {
        if traced {
            trace::install_memory_sink(TraceConfig::default());
        }
        let device = Arc::new(Device::default_gpu());
        let fleet = build_fleet(&device, sensors, scale.days);
        let config = ServeConfig {
            shards: 1,
            queue_capacity: 16,
            max_batch: 1, // sequential, deterministic serving order
            batch_window: Duration::ZERO,
            ..ServeConfig::default()
        };
        let server = SmilerServer::start(device, fleet, config);
        let handle = server.handle();
        let mut bits = Vec::new();
        for step in 0..5 {
            for s in 0..sensors {
                if let Ok(p) = handle.forecast(s, 1) {
                    bits.push((p.mean.to_bits(), p.variance.to_bits()));
                }
                let _ = handle.observe(s, (step as f64 * 0.4).sin());
            }
        }
        server.shutdown();
        if traced {
            trace::clear_sink();
        }
        bits
    };
    let plain = run(false);
    let traced = run(true);
    !plain.is_empty() && plain == traced
}

/// Run the observability benchmark and return the report.
pub fn run(scale: ObsBenchScale) -> ObsBenchReport {
    let trace_path = std::env::temp_dir().join(format!(
        "smiler-bench-obs-{}-{}.jsonl",
        std::process::id(),
        scale.repeats
    ));
    // One discarded warmup per mode: first-touch allocation and page
    // faults land outside the measured repeats.
    let _ = run_once(&scale);
    let _ = run_once_traced(&scale, &trace_path);

    let mut plain_runs = Vec::new();
    let mut traced_runs = Vec::new();
    for _ in 0..scale.repeats.max(1) {
        // Interleave so clock drift and thermal state hit both modes.
        plain_runs.push(run_once(&scale));
        traced_runs.push(run_once_traced(&scale, &trace_path));
    }

    let plain = summarise(false, &plain_runs);
    let traced_loads: Vec<LoadReport> = traced_runs.iter().map(|r| r.load.clone()).collect();
    let traced = summarise(true, &traced_loads);

    let throughput_pct = inflation_pct(traced.best_throughput_rps, plain.best_throughput_rps);
    let latency_p50_pct = inflation_pct(plain.best_latency_p50_ms, traced.best_latency_p50_ms);
    let median_latency_p50_pct =
        inflation_pct(plain.median_latency_p50_ms, traced.median_latency_p50_ms);
    let trace_ns_per_record = trace_path_ns_per_record(&trace_path);
    let per_request_ns = plain.best_latency_p50_ms * 1_000_000.0;
    let direct_pct = if per_request_ns > 0.0 && trace_ns_per_record.is_finite() {
        trace_ns_per_record / per_request_ns * 100.0
    } else {
        0.0
    };
    let overhead = OverheadReport {
        throughput_pct,
        latency_p50_pct,
        median_latency_p50_pct,
        trace_ns_per_record,
        direct_pct,
        within_budget: direct_pct <= OVERHEAD_BUDGET_PCT,
    };

    let audit = TraceAuditReport {
        runs: traced_runs.len(),
        records: traced_runs.iter().map(|r| r.records).sum(),
        schema_valid: traced_runs.iter().all(|r| r.schema_valid),
        complete: traced_runs.iter().all(|r| r.complete),
        write_errors: traced_runs.iter().map(|r| r.write_errors).sum(),
    };

    ObsBenchReport {
        bench: "obs".to_string(),
        scale,
        plain,
        traced,
        overhead,
        trace: audit,
        predictions_bitwise_identical: predictions_bitwise_identical(&scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_audits_traces_and_stays_bitwise_identical() {
        let scale = ObsBenchScale::smoke();
        let report = run(scale);
        assert_eq!(report.bench, "obs");
        let per_run = (scale.clients * scale.requests_per_client) as u64;
        assert_eq!(report.trace.runs, scale.repeats);
        // `>=`, not `==`: the trace sink is process-global, and sibling
        // bench tests that serve traffic (e.g. servebench's smoke) may run
        // concurrently and land extra terminals in our sink. Their records
        // are still schema-valid; strict completeness is asserted by the
        // single-purpose `expt bench-obs` process in CI instead.
        assert!(report.trace.records >= per_run * scale.repeats as u64);
        assert!(report.trace.schema_valid, "trace records must validate");
        assert_eq!(report.trace.write_errors, 0);
        assert!(report.predictions_bitwise_identical);
        assert!(report.plain.median_throughput_rps > 0.0);
        assert!(report.traced.median_throughput_rps > 0.0);
        // Overhead percentages must at least be computable (finite).
        assert!(report.overhead.throughput_pct.is_finite());
        assert!(report.overhead.latency_p50_pct.is_finite());
        // The gated number: a full trace lifecycle costs microseconds
        // against a multi-millisecond request — orders of magnitude under
        // the budget even on a noisy machine.
        assert!(report.overhead.trace_ns_per_record > 0.0);
        assert!(report.overhead.direct_pct.is_finite() && report.overhead.direct_pct >= 0.0);
        assert!(report.overhead.within_budget, "overhead: {:?}", report.overhead);
    }

    #[test]
    fn median_is_nan_safe() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[f64::NAN]), 0.0);
        assert_eq!(median(&[2.0, f64::NAN, 1.0, 3.0]), 2.0);
        assert_eq!(inflation_pct(0.0, 5.0), 0.0);
        assert_eq!(inflation_pct(10.0, 11.0), 10.000000000000009);
    }
}
