//! Experiment infrastructure reproducing the SMiLer paper's evaluation
//! (§6). The `expt` binary exposes one subcommand per table/figure; this
//! library holds the shared pieces: experiment-scale dataset construction,
//! result records, and table formatting.
//!
//! **Scale note.** The paper ran 963–1024 sensors with up to 61M points on
//! a GTX TITAN. This reproduction runs synthetic stand-ins at a reduced
//! scale (configurable via [`ExptScale`]) so every experiment finishes in
//! CLI time on a laptop; search *running times* are the simulated device
//! seconds of `smiler-gpu`, which is what makes the Fig 7/8 comparisons
//! hardware-faithful. Prediction-quality experiments (Fig 9–11, 13) use
//! real wall-clock and real models.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use serde::Serialize;
use smiler_timeseries::synthetic::{DatasetKind, SyntheticSpec};
use smiler_timeseries::SensorDataset;

pub mod experiments;
pub mod ingestbench;
pub mod obsbench;
pub mod report;
pub mod servebench;
pub mod stepbench;

/// How large to make each experiment's dataset.
#[derive(Debug, Clone, Copy)]
pub struct ExptScale {
    /// Sensors per dataset.
    pub sensors: usize,
    /// Days of history per sensor.
    pub days: usize,
    /// Continuous steps for search experiments (paper: 100).
    pub search_steps: usize,
    /// Continuous steps for prediction experiments (paper: 200).
    pub eval_steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ExptScale {
    /// The default reduced scale (finishes each experiment in minutes).
    pub fn default_scale() -> Self {
        ExptScale { sensors: 6, days: 30, search_steps: 3, eval_steps: 60, seed: 2015 }
    }

    /// An even smaller scale for smoke tests.
    pub fn smoke() -> Self {
        ExptScale { sensors: 2, days: 8, search_steps: 2, eval_steps: 10, seed: 2015 }
    }

    /// Generate one of the paper's three datasets at this scale.
    pub fn dataset(&self, kind: DatasetKind) -> SensorDataset {
        let days = match kind {
            // NET samples twice as fast; halve days for comparable points.
            DatasetKind::Net => (self.days / 2).max(4),
            _ => self.days,
        };
        SyntheticSpec { kind, sensors: self.sensors, days, seed: self.seed }.generate()
    }
}

/// One measured cell of an experiment, serialised into the JSON record so
/// EXPERIMENTS.md tables can be regenerated mechanically.
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    /// Experiment id ("fig7", "table3", …).
    pub experiment: String,
    /// Dataset name, if per-dataset.
    pub dataset: Option<String>,
    /// Method / competitor name.
    pub method: String,
    /// Free-form key for the swept parameter ("k=32", "h=5", "m=64", …).
    pub parameter: Option<String>,
    /// Metric name ("time_s", "mae", "mnlpd", "unfiltered", …).
    pub metric: String,
    /// Measured value.
    pub value: f64,
}

impl Measurement {
    /// Construct a measurement row.
    pub fn new(
        experiment: &str,
        dataset: Option<&str>,
        method: &str,
        parameter: Option<String>,
        metric: &str,
        value: f64,
    ) -> Self {
        Measurement {
            experiment: experiment.to_string(),
            dataset: dataset.map(str::to_string),
            method: method.to_string(),
            parameter,
            metric: metric.to_string(),
            value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_generate_all_datasets() {
        let scale = ExptScale::smoke();
        for kind in DatasetKind::all() {
            let ds = scale.dataset(kind);
            assert_eq!(ds.sensors.len(), 2);
            assert!(ds.sensors[0].len() >= 4 * 144);
        }
    }

    #[test]
    fn measurement_serialises() {
        let m = Measurement::new(
            "fig7",
            Some("ROAD"),
            "SMiLer-Idx",
            Some("k=16".into()),
            "time_s",
            1.25,
        );
        let json = serde_json::to_string(&m).unwrap();
        assert!(json.contains("\"fig7\""));
        assert!(json.contains("1.25"));
    }
}
