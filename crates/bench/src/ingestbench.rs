//! Durable-ingestion snapshot: WAL append throughput and recovery time.
//!
//! `expt bench-ingest` measures the two costs the durability layer adds to
//! the SMiLer pipeline and writes `BENCH_ingest.json`:
//!
//! * **append throughput** per [`FlushPolicy`] — `always` pays one `fsync`
//!   per append, `every-<n>` amortises it over a group commit, and
//!   `interval-<ms>` bounds the data-loss window instead; the report keeps
//!   the observed fsync counts so the amortisation is checkable;
//! * **recovery time vs WAL length** — a fleet is run past its initial
//!   checkpoint for N rounds, killed, and reopened; the full
//!   [`RestoreReport`] (open / index rebuild / replay seconds) is folded
//!   into the JSON for each WAL length.
//!
//! The snapshot is committed alongside durability PRs so regressions in
//! group commit or replay cost are visible from the repo history alone.

use serde::Serialize;
use smiler_core::sensor::SmilerConfig;
use smiler_core::{DurableSystem, PredictorKind, RestoreReport};
use smiler_gpu::Device;
use smiler_store::{FlushPolicy, Store, StoreConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Scale of one bench-ingest run.
#[derive(Debug, Clone)]
pub struct IngestBenchScale {
    /// WAL appends per flush-policy measurement.
    pub appends: usize,
    /// WAL lengths (fleet rounds past the checkpoint) to recover from.
    pub recovery_rounds: Vec<usize>,
    /// Sensors in the recovery fleet.
    pub sensors: usize,
    /// History behind each sensor at checkpoint time.
    pub history: usize,
}

impl IngestBenchScale {
    /// Default scale: enough appends for stable group-commit numbers and
    /// the paper-style 1k/5k/20k replay ladder.
    pub fn default_scale() -> Self {
        IngestBenchScale {
            appends: 20_000,
            recovery_rounds: vec![1_000, 5_000, 20_000],
            sensors: 4,
            history: 300,
        }
    }

    /// CI-sized smoke scale.
    pub fn smoke() -> Self {
        IngestBenchScale {
            appends: 2_000,
            recovery_rounds: vec![200, 1_000],
            sensors: 2,
            history: 300,
        }
    }
}

/// Append throughput under one flush policy.
#[derive(Debug, Clone, Serialize)]
pub struct AppendThroughput {
    /// Policy in its `FromStr` spelling (`always`, `every-32`, ...).
    pub policy: String,
    /// Appends performed.
    pub appends: usize,
    /// Wall-clock seconds for the whole run (including the final sync).
    pub seconds: f64,
    /// Appends per second.
    pub appends_per_sec: f64,
    /// `fsync` calls the policy actually issued.
    pub fsyncs: u64,
    /// Appends amortised over each fsync.
    pub appends_per_fsync: f64,
}

/// Recovery cost after a kill with `wal_rounds` unreplayed fleet rounds.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryPoint {
    /// Fleet rounds in the WAL tail past the checkpoint.
    pub wal_rounds: usize,
    /// End-to-end seconds for `DurableSystem::open`.
    pub restore_seconds: f64,
    /// Replayed rounds per second.
    pub rounds_per_sec: f64,
    /// The full restore breakdown (open / rebuild / replay spans).
    pub report: RestoreReport,
}

/// One committed `BENCH_ingest.json` record.
#[derive(Debug, Clone, Serialize)]
pub struct IngestBenchReport {
    /// Record identifier.
    pub bench: String,
    /// Appends per policy / recovery fleet sensors / history length.
    pub scale: (usize, usize, usize),
    /// Append throughput per flush policy.
    pub append: Vec<AppendThroughput>,
    /// Recovery time for each WAL length.
    pub recovery: Vec<RecoveryPoint>,
}

fn bench_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("smiler_bench_ingest_{tag}_{}", std::process::id()))
}

fn fsync_count() -> u64 {
    smiler_obs::metrics_snapshot()
        .counters
        .iter()
        .filter(|c| c.name == "store.fsync")
        .map(|c| c.value)
        .sum()
}

fn measure_appends(policy: FlushPolicy, appends: usize) -> AppendThroughput {
    let dir = bench_dir(&format!("append_{policy}"));
    let _ = std::fs::remove_dir_all(&dir);
    smiler_obs::reset();
    let fsyncs_before = fsync_count();
    let (mut store, _) = Store::open(&dir, StoreConfig { flush: policy, ..StoreConfig::default() })
        .expect("bench store opens");
    let started = Instant::now();
    for i in 0..appends {
        store.append_observe((i % 16) as u32, (i as f64 * 0.37).sin()).expect("bench append");
    }
    store.sync().expect("final sync");
    let seconds = started.elapsed().as_secs_f64();
    let fsyncs = fsync_count() - fsyncs_before;
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    AppendThroughput {
        policy: policy.to_string(),
        appends,
        seconds,
        appends_per_sec: appends as f64 / seconds.max(1e-9),
        fsyncs,
        appends_per_fsync: appends as f64 / (fsyncs.max(1)) as f64,
    }
}

fn measure_recovery(scale: &IngestBenchScale, rounds: usize) -> RecoveryPoint {
    let dir = bench_dir(&format!("recover_{rounds}"));
    let _ = std::fs::remove_dir_all(&dir);
    let histories: Vec<Vec<f64>> = (0..scale.sensors)
        .map(|s| {
            (0..scale.history)
                .map(|i| ((i + s * 7) as f64 * std::f64::consts::TAU / 24.0).sin())
                .collect()
        })
        .collect();
    // checkpoint_every = 0: the WAL tail past the initial checkpoint grows
    // to exactly `rounds`, which is the replay length being measured.
    let (mut durable, _) = DurableSystem::create(
        Arc::new(Device::default_gpu()),
        histories,
        SmilerConfig::small_for_tests(),
        PredictorKind::Aggregation,
        &dir,
        StoreConfig::default(),
        0,
    )
    .expect("bench fleet creates");
    for r in 0..rounds {
        let values: Vec<f64> =
            (0..scale.sensors).map(|s| ((r * 3 + s) as f64 * 0.21).sin()).collect();
        durable.observe_all(&values).expect("bench round");
    }
    drop(durable); // the kill: no final checkpoint

    let started = Instant::now();
    let (restored, report) =
        DurableSystem::open(Arc::new(Device::default_gpu()), &dir, StoreConfig::default(), 0)
            .expect("bench restore");
    let restore_seconds = started.elapsed().as_secs_f64();
    assert_eq!(report.replayed_rounds, rounds, "replay must cover the whole tail");
    drop(restored);
    let _ = std::fs::remove_dir_all(&dir);
    RecoveryPoint {
        wal_rounds: rounds,
        restore_seconds,
        rounds_per_sec: rounds as f64 / restore_seconds.max(1e-9),
        report,
    }
}

/// Run the snapshot at `scale`.
pub fn run(scale: IngestBenchScale) -> IngestBenchReport {
    let obs_was_enabled = smiler_obs::enabled();
    smiler_obs::set_enabled(true); // fsync counts come from the store.* series
    let policies = [FlushPolicy::Always, FlushPolicy::EveryN(32), FlushPolicy::IntervalMs(5)];
    let append = policies.iter().map(|&p| measure_appends(p, scale.appends)).collect();
    let recovery = scale.recovery_rounds.iter().map(|&r| measure_recovery(&scale, r)).collect();
    smiler_obs::set_enabled(obs_was_enabled);
    IngestBenchReport {
        bench: "ingest".to_string(),
        scale: (scale.appends, scale.sensors, scale.history),
        append,
        recovery,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_consistent_report() {
        let report = run(IngestBenchScale {
            appends: 200,
            recovery_rounds: vec![50],
            sensors: 2,
            history: 300,
        });
        assert_eq!(report.append.len(), 3);
        let always = &report.append[0];
        let grouped = &report.append[1];
        assert_eq!(always.policy, "always");
        // `always` fsyncs once per append; group commit must not.
        assert!(always.fsyncs >= 200, "always: {} fsyncs", always.fsyncs);
        assert!(grouped.fsyncs < always.fsyncs, "group commit must amortise fsyncs");
        assert_eq!(report.recovery.len(), 1);
        let rec = &report.recovery[0];
        assert_eq!(rec.wal_rounds, 50);
        assert_eq!(rec.report.replayed_rounds, 50);
        assert!(rec.restore_seconds > 0.0);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"replay_seconds\""), "{json}");
    }
}
