//! Console tables and JSON records for experiment output.

use crate::Measurement;
use std::io::Write;
use std::path::Path;

/// Print a fixed-width table: header row then data rows.
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(header));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Append measurements as JSON lines to `results/<experiment>.jsonl`,
/// creating the directory as needed. Errors are reported, not fatal —
/// the console table is the primary output.
pub fn write_records(dir: &Path, experiment: &str, records: &[Measurement]) {
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{experiment}.jsonl"));
        let mut file = std::fs::File::create(&path)?;
        for r in records {
            let line = serde_json::to_string(r).expect("measurements always serialise");
            writeln!(file, "{line}")?;
        }
        eprintln!("[records] {} rows -> {}", records.len(), path.display());
        Ok(())
    };
    if let Err(e) = write() {
        eprintln!("[records] could not write {experiment} records: {e}");
    }
}

/// Format seconds compactly (µs/ms/s).
pub fn fmt_seconds(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_seconds_ranges() {
        assert_eq!(fmt_seconds(0.0000005), "0.5µs");
        assert_eq!(fmt_seconds(0.0025), "2.50ms");
        assert_eq!(fmt_seconds(3.5), "3.50s");
    }

    #[test]
    fn records_round_trip() {
        let dir = std::env::temp_dir().join("smiler_test_records");
        let records = vec![Measurement::new("test", None, "m", None, "v", 1.0)];
        write_records(&dir, "unit", &records);
        let content = std::fs::read_to_string(dir.join("unit.jsonl")).unwrap();
        assert!(content.contains("\"test\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
