//! Per-step latency snapshot: the repo's perf trajectory tracker.
//!
//! `expt bench-step` drives the full SMiLer hot path — continuous suffix
//! kNN search plus GP ensemble prediction — for a fixed number of steps on
//! deterministic road data and writes `BENCH_step.json` with the median and
//! p95 wall-clock per-step latency plus the index's pruning ratios. The
//! snapshot is committed alongside optimisation PRs so "≥2x median
//! speedup" claims are checkable from the repo history alone.

use serde::Serialize;
use smiler_core::sensor::{SensorPredictor, SmilerConfig};
use smiler_core::PredictorKind;
use smiler_gpu::Device;
use smiler_index::{IndexParams, SmilerIndex};
use smiler_timeseries::synthetic::{DatasetKind, SyntheticSpec};
use std::sync::Arc;
use std::time::Instant;

/// Scale of one bench-step run.
#[derive(Debug, Clone, Copy)]
pub struct StepBenchScale {
    /// Days of road history behind the continuous run.
    pub days: usize,
    /// Continuous steps to measure (after warmup).
    pub steps: usize,
    /// Warmup steps excluded from the statistics.
    pub warmup: usize,
}

impl StepBenchScale {
    /// Default scale: enough history for the paper-default index and enough
    /// steps for a stable median.
    pub fn default_scale() -> Self {
        StepBenchScale { days: 16, steps: 30, warmup: 3 }
    }

    /// CI-sized smoke scale.
    pub fn smoke() -> Self {
        StepBenchScale { days: 8, steps: 5, warmup: 1 }
    }
}

/// Latency summary in milliseconds.
#[derive(Debug, Clone, Serialize)]
pub struct LatencySummary {
    /// Mean per-step latency.
    pub mean_ms: f64,
    /// Median per-step latency.
    pub median_ms: f64,
    /// 95th-percentile per-step latency.
    pub p95_ms: f64,
    /// Fastest step.
    pub min_ms: f64,
    /// Slowest step.
    pub max_ms: f64,
}

impl LatencySummary {
    fn from_samples(samples: &mut [f64]) -> Self {
        assert!(!samples.is_empty(), "latency summary needs samples");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let n = samples.len();
        let pct = |p: f64| samples[(((n - 1) as f64) * p).round() as usize];
        LatencySummary {
            mean_ms: samples.iter().sum::<f64>() / n as f64,
            median_ms: pct(0.50),
            p95_ms: pct(0.95),
            min_ms: samples[0],
            max_ms: samples[n - 1],
        }
    }
}

/// One committed `BENCH_step.json` record.
#[derive(Debug, Clone, Serialize)]
pub struct StepBenchReport {
    /// Record identifier.
    pub bench: String,
    /// Days of history / measured steps / warmup steps.
    pub scale: (usize, usize, usize),
    /// Full predict(h=1)+observe step latency (search + GP ensemble).
    pub step: LatencySummary,
    /// Index-only search+advance latency.
    pub search: LatencySummary,
    /// Per item query: mean fraction of candidates pruned before DTW
    /// verification (1 − unfiltered/candidates).
    pub filter_pruning_ratio: Vec<f64>,
    /// Simulated device seconds per search (mean), for cross-checking that
    /// wall-clock wins do not regress the cost model.
    pub search_sim_seconds_mean: f64,
}

fn road_sensor(days: usize, seed: u64) -> Vec<f64> {
    SyntheticSpec { kind: DatasetKind::Road, sensors: 1, days, seed }
        .generate()
        .sensors
        .remove(0)
        .values()
        .to_vec()
}

/// Run the per-step benchmark and return the report.
pub fn run(scale: StepBenchScale) -> StepBenchReport {
    let total = scale.warmup + scale.steps;
    let series = road_sensor(scale.days, 2015);
    let split = series.len() - total;

    // ---- Full pipeline: continuous GP prediction, one sensor. ----
    let device = Arc::new(Device::default_gpu());
    let config = SmilerConfig { h_max: 10, ..Default::default() };
    let mut predictor = SensorPredictor::new(
        Arc::clone(&device),
        0,
        series[..split].to_vec(),
        config,
        PredictorKind::GaussianProcess,
    );
    let mut step_ms: Vec<f64> = Vec::with_capacity(scale.steps);
    for (i, &v) in series[split..].iter().enumerate() {
        let t0 = Instant::now();
        let (mean, var) = predictor.predict(1);
        predictor.observe(v);
        assert!(mean.is_finite() && var > 0.0, "prediction degenerated");
        if i >= scale.warmup {
            step_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        }
    }

    // ---- Index-only: continuous search, paper-default parameters. ----
    let device = Device::default_gpu();
    let params = IndexParams::default();
    let mut index = SmilerIndex::build(&device, series[..split].to_vec(), params.clone());
    let mut search_ms: Vec<f64> = Vec::with_capacity(scale.steps);
    let mut pruned_frac = vec![0.0f64; params.lengths.len()];
    let mut sim_seconds = 0.0;
    let mut measured = 0usize;
    for (i, &v) in series[split..].iter().enumerate() {
        let t0 = Instant::now();
        let max_end = index.series().len() - 10;
        let out = index.search(&device, max_end);
        index.advance(&device, v);
        if i >= scale.warmup {
            search_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            for (j, (&cand, &unf)) in
                out.stats.candidates.iter().zip(&out.stats.unfiltered).enumerate()
            {
                if cand > 0 {
                    pruned_frac[j] += 1.0 - unf as f64 / cand as f64;
                }
            }
            sim_seconds += out.stats.total_sim_seconds;
            measured += 1;
        }
    }
    for p in &mut pruned_frac {
        *p /= measured.max(1) as f64;
    }

    StepBenchReport {
        bench: "step".to_string(),
        scale: (scale.days, scale.steps, scale.warmup),
        step: LatencySummary::from_samples(&mut step_ms),
        search: LatencySummary::from_samples(&mut search_ms),
        filter_pruning_ratio: pruned_frac,
        search_sim_seconds_mean: sim_seconds / measured.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_sane_report() {
        let report = run(StepBenchScale::smoke());
        assert_eq!(report.bench, "step");
        assert!(report.step.median_ms > 0.0);
        assert!(report.step.p95_ms >= report.step.median_ms);
        assert!(report.search.median_ms > 0.0);
        assert!(report.filter_pruning_ratio.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn latency_summary_percentiles() {
        let mut samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencySummary::from_samples(&mut samples);
        assert_eq!(s.median_ms, 51.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.min_ms, 1.0);
        assert_eq!(s.max_ms, 100.0);
    }
}
