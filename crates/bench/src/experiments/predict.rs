//! Prediction-step experiments: Fig 9 (offline competitors), Fig 10
//! (online competitors), Fig 11 (auto-tuning ablation) and Table 4
//! (running times).
//!
//! All models are driven through the shared continuous-prediction protocol
//! of `smiler_core::eval` (200 steps in the paper; `ExptScale::eval_steps`
//! here), scored by MAE and MNLPD per horizon.

use crate::report::print_table;
use crate::{ExptScale, Measurement};
use smiler_baselines::holtwinters::HoltWinters;
use smiler_baselines::lazyknn::{LazyKnn, LazyKnnConfig};
use smiler_baselines::linear::{self, LinearConfig};
use smiler_baselines::nystrom::{nys_svr, NysSvrConfig};
use smiler_baselines::sparse_gp::{self, SparseGpConfig};
use smiler_baselines::SeriesPredictor;
use smiler_core::ensemble::{EnsembleConfig, EnsembleMode};
use smiler_core::eval::{average_results, evaluate, EvalConfig, EvalResult};
use smiler_core::sensor::{SmilerConfig, SmilerForecaster};
use smiler_gpu::Device;
use smiler_timeseries::synthetic::DatasetKind;
use smiler_timeseries::SensorDataset;
use std::sync::Arc;

/// Horizons plotted in Figures 9–11.
pub fn horizons() -> Vec<usize> {
    vec![1, 5, 10, 15, 20, 25, 30]
}

/// Sensors evaluated per dataset (the paper restricts expensive offline
/// models to a random sensor subset; we use a fixed prefix for
/// determinism).
const EVAL_SENSORS: usize = 3;

fn smiler_config() -> SmilerConfig {
    SmilerConfig { h_max: 30, ..Default::default() }
}

fn stride_for(len: usize) -> usize {
    (len / 1200).max(1)
}

/// Instantiate one competitor by name.
pub fn build_model(
    name: &str,
    device: &Arc<Device>,
    samples_per_day: usize,
    history_len: usize,
) -> Box<dyn SeriesPredictor> {
    let hs = horizons();
    let stride = stride_for(history_len);
    let linear_cfg = LinearConfig { window: 32, horizons: hs.clone(), ..Default::default() };
    match name {
        "SMiLer-GP" => Box::new(SmilerForecaster::gp(Arc::clone(device), smiler_config())),
        "SMiLer-AR" => Box::new(SmilerForecaster::ar(Arc::clone(device), smiler_config())),
        "PSGP" => Box::new(sparse_gp::psgp(SparseGpConfig {
            horizons: hs,
            stride,
            train_iters: 6,
            ..SparseGpConfig::psgp()
        })),
        "VLGP" => Box::new(sparse_gp::vlgp(SparseGpConfig {
            horizons: hs,
            stride,
            train_iters: 6,
            ..SparseGpConfig::vlgp()
        })),
        "NysSVR" => Box::new(nys_svr(NysSvrConfig { horizons: hs, stride, ..Default::default() })),
        "SgdSVR" => Box::new(linear::sgd_svr(linear_cfg)),
        "SgdRR" => Box::new(linear::sgd_rr(linear_cfg)),
        "OnlineSVR" => Box::new(linear::online_svr(linear_cfg)),
        "OnlineRR" => Box::new(linear::online_rr(linear_cfg)),
        "LazyKNN" => {
            Box::new(LazyKnn::new(LazyKnnConfig { window: 32, k: 16, rho: 8, bootstrap: None }))
        }
        "FullHW" => Box::new(HoltWinters::full(samples_per_day)),
        "SegHW" => Box::new(HoltWinters::segment(samples_per_day)),
        other => panic!("unknown model {other}"),
    }
}

/// The Fig 9 (offline) and Fig 10 (online) model rosters. SMiLer appears in
/// both, as in the paper.
pub fn offline_roster() -> Vec<&'static str> {
    vec!["SMiLer-GP", "SMiLer-AR", "PSGP", "VLGP", "NysSVR", "SgdSVR", "SgdRR"]
}

/// Online models (Fig 10).
pub fn online_roster() -> Vec<&'static str> {
    vec!["SMiLer-GP", "SMiLer-AR", "LazyKNN", "FullHW", "SegHW", "OnlineSVR", "OnlineRR"]
}

/// Evaluate one named model on a dataset (averaged over the sensor prefix).
pub fn evaluate_model(name: &str, dataset: &SensorDataset, steps: usize) -> EvalResult {
    let device = Arc::new(Device::default_gpu());
    let config = EvalConfig { horizons: horizons(), steps };
    let per_sensor: Vec<EvalResult> = dataset
        .sensors
        .iter()
        .take(EVAL_SENSORS)
        .map(|sensor| {
            let mut model = build_model(name, &device, dataset.samples_per_day, sensor.len());
            evaluate(model.as_mut(), sensor.values(), &config)
        })
        .collect();
    average_results(&per_sensor)
}

fn figure_rows(
    experiment: &str,
    dataset: &SensorDataset,
    roster: &[&str],
    steps: usize,
    records: &mut Vec<Measurement>,
) -> Vec<EvalResult> {
    let mut results = Vec::new();
    for name in roster {
        eprintln!("[{experiment}] {} / {}", dataset.name, name);
        let r = evaluate_model(name, dataset, steps);
        for (&h, &mae) in &r.mae {
            records.push(Measurement::new(
                experiment,
                Some(&dataset.name),
                name,
                Some(format!("h={h}")),
                "mae",
                mae,
            ));
        }
        for (&h, &mnlpd) in &r.mnlpd {
            records.push(Measurement::new(
                experiment,
                Some(&dataset.name),
                name,
                Some(format!("h={h}")),
                "mnlpd",
                mnlpd,
            ));
        }
        records.push(Measurement::new(
            experiment,
            Some(&dataset.name),
            name,
            None,
            "train_s",
            r.train_seconds,
        ));
        records.push(Measurement::new(
            experiment,
            Some(&dataset.name),
            name,
            None,
            "predict_ms",
            r.predict_ms,
        ));
        results.push(r);
    }
    results
}

fn print_metric_tables(title: &str, results: &[EvalResult]) {
    let hs = horizons();
    let header: Vec<String> =
        std::iter::once("model".to_string()).chain(hs.iter().map(|h| format!("h={h}"))).collect();
    for (metric, pick) in [("MAE", true), ("MNLPD", false)] {
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|r| {
                std::iter::once(r.name.clone())
                    .chain(hs.iter().map(|h| {
                        let v = if pick { r.mae[h] } else { r.mnlpd[h] };
                        format!("{v:.3}")
                    }))
                    .collect()
            })
            .collect();
        print_table(&format!("{title} — {metric}"), &header, &rows);
    }
}

/// Fig 9: offline learning models across horizons.
pub fn fig9(scale: &ExptScale) -> Vec<Measurement> {
    let mut records = Vec::new();
    for kind in DatasetKind::all() {
        let dataset = scale.dataset(kind);
        let results =
            figure_rows("fig9", &dataset, &offline_roster(), scale.eval_steps, &mut records);
        print_metric_tables(&format!("Fig 9 ({}): offline models", dataset.name), &results);
    }
    records
}

/// Fig 10: online learning models across horizons.
pub fn fig10(scale: &ExptScale) -> Vec<Measurement> {
    let mut records = Vec::new();
    for kind in DatasetKind::all() {
        let dataset = scale.dataset(kind);
        let results =
            figure_rows("fig10", &dataset, &online_roster(), scale.eval_steps, &mut records);
        print_metric_tables(&format!("Fig 10 ({}): online models", dataset.name), &results);
    }
    records
}

/// Fig 11: the adaptive auto-tuning ablation — SMiLer vs SMiLerNE (no
/// ensemble, fixed k=32/d=64) vs SMiLerNS (ensemble, no self-adaptive
/// weights), for both predictors.
pub fn fig11(scale: &ExptScale) -> Vec<Measurement> {
    let variants: Vec<(&str, SmilerConfig)> = vec![
        ("SMiLer", smiler_config()),
        ("SMiLerNE", SmilerConfig { ensemble: EnsembleConfig::single(32, 64), ..smiler_config() }),
        (
            "SMiLerNS",
            SmilerConfig {
                ensemble: EnsembleConfig {
                    mode: EnsembleMode::NoSelfAdaptive,
                    ..EnsembleConfig::default()
                },
                ..smiler_config()
            },
        ),
    ];
    let mut records = Vec::new();
    for kind in DatasetKind::all() {
        let dataset = scale.dataset(kind);
        let mut results = Vec::new();
        for gp in [true, false] {
            for (vname, cfg) in &variants {
                let name = format!("{}-{}", vname, if gp { "GP" } else { "AR" });
                eprintln!("[fig11] {} / {}", dataset.name, name);
                let device = Arc::new(Device::default_gpu());
                let config = EvalConfig { horizons: horizons(), steps: scale.eval_steps };
                let per_sensor: Vec<EvalResult> = dataset
                    .sensors
                    .iter()
                    .take(EVAL_SENSORS)
                    .map(|sensor| {
                        let mut model: Box<dyn SeriesPredictor> = if gp {
                            Box::new(SmilerForecaster::gp(Arc::clone(&device), cfg.clone()))
                        } else {
                            Box::new(SmilerForecaster::ar(Arc::clone(&device), cfg.clone()))
                        };
                        evaluate(model.as_mut(), sensor.values(), &config)
                    })
                    .collect();
                let mut avg = average_results(&per_sensor);
                avg.name = name.clone();
                for (&h, &mae) in &avg.mae {
                    records.push(Measurement::new(
                        "fig11",
                        Some(&dataset.name),
                        &name,
                        Some(format!("h={h}")),
                        "mae",
                        mae,
                    ));
                }
                for (&h, &mnlpd) in &avg.mnlpd {
                    records.push(Measurement::new(
                        "fig11",
                        Some(&dataset.name),
                        &name,
                        Some(format!("h={h}")),
                        "mnlpd",
                        mnlpd,
                    ));
                }
                results.push(avg);
            }
        }
        print_metric_tables(&format!("Fig 11 ({}): auto-tuning ablation", dataset.name), &results);
    }
    records
}

/// Table 4: training time (per dataset, all evaluated sensors, one
/// prediction step's model) and prediction time per sensor per query.
pub fn table4(scale: &ExptScale) -> Vec<Measurement> {
    let all: Vec<&str> = {
        let mut v = offline_roster();
        for m in online_roster() {
            if !v.contains(&m) {
                v.push(m);
            }
        }
        v
    };
    let steps = scale.eval_steps.min(20);
    let mut records = Vec::new();
    let mut rows = Vec::new();
    let datasets: Vec<SensorDataset> =
        DatasetKind::all().into_iter().map(|k| scale.dataset(k)).collect();
    for name in &all {
        let mut row = vec![name.to_string()];
        for dataset in &datasets {
            eprintln!("[table4] {} / {}", dataset.name, name);
            let r = evaluate_model(name, dataset, steps);
            // SMiLer / HW / LazyKNN have no training phase; their `train`
            // is index build / bookkeeping, reported for transparency.
            row.push(format!("{:.3}", r.train_seconds));
            row.push(format!("{:.3}", r.predict_ms));
            records.push(Measurement::new(
                "table4",
                Some(&dataset.name),
                name,
                None,
                "train_s",
                r.train_seconds,
            ));
            records.push(Measurement::new(
                "table4",
                Some(&dataset.name),
                name,
                None,
                "predict_ms",
                r.predict_ms,
            ));
        }
        rows.push(row);
    }
    print_table(
        "Table 4: training time (s, evaluated sensors) / prediction time (ms per query)",
        &[
            "model".into(),
            "ROAD trn(s)".into(),
            "ROAD prd(ms)".into(),
            "MALL trn(s)".into(),
            "MALL prd(ms)".into(),
            "NET trn(s)".into(),
            "NET prd(ms)".into(),
        ],
        &rows,
    );
    records
}
