//! Ablations of SMiLer's design choices (beyond the paper's own Fig 11 /
//! Table 3 ablations). Each section isolates one decision DESIGN.md calls
//! out:
//!
//! 1. **Filter threshold strategy** — the paper's k-th-lower-bound probe
//!    vs the exact max-of-k-best probe vs continuous reuse: recall against
//!    brute force and verification counts.
//! 2. **Remark 1 (continuous maintenance)** — incremental `advance` vs
//!    from-scratch rebuild, across history sizes.
//! 3. **§4.4 phase separation** — the simulated cost of fusing filtering
//!    and verification into one divergent kernel vs SMiLer's two phases.
//! 4. **Fleet batching** — kernel launches and device time for per-sensor
//!    searches vs the fleet-batched pipeline.
//! 5. **Ensemble size** — prediction error for 1×1 / 2×2 / 3×3 matrices.
//! 6. **Retrieval distance measure** — §4's choice of DTW over Euclidean:
//!    kNN-regression accuracy with each measure on noisy traffic data.

use crate::report::{fmt_seconds, print_table};
use crate::{ExptScale, Measurement};
use smiler_core::ensemble::EnsembleConfig;
use smiler_core::eval::{evaluate, EvalConfig};
use smiler_core::sensor::{SmilerConfig, SmilerForecaster};
use smiler_gpu::Device;
use smiler_index::{fleet_search, IndexParams, SmilerIndex, ThresholdStrategy};
use smiler_timeseries::synthetic::DatasetKind;

/// Run the full ablation suite.
pub fn run(scale: &ExptScale) -> Vec<Measurement> {
    let mut records = Vec::new();
    records.extend(threshold_strategies(scale));
    records.extend(incremental_maintenance(scale));
    records.extend(phase_separation(scale));
    records.extend(fleet_batching(scale));
    records.extend(ensemble_size(scale));
    records.extend(distance_measure(scale));
    records
}

fn road_series(scale: &ExptScale, sensor: usize) -> Vec<f64> {
    let ds = scale.dataset(DatasetKind::Road);
    ds.sensors[sensor % ds.sensors.len()].values().to_vec()
}

/// 1. Threshold strategy: recall vs brute force + verified counts.
fn threshold_strategies(scale: &ExptScale) -> Vec<Measurement> {
    let series = road_series(scale, 0);
    let params = IndexParams::default();
    let max_end = series.len() - 30;
    // Brute-force reference distances per item length.
    let reference: Vec<Vec<f64>> = params
        .lengths
        .iter()
        .map(|&d| {
            let query = &series[series.len() - d..];
            let mut dists: Vec<f64> = (0..=max_end - d)
                .map(|t| smiler_dtw::dtw_banded(query, &series[t..t + d], params.rho))
                .collect();
            dists.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            dists.truncate(params.k_max);
            dists
        })
        .collect();

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (name, strategy) in [
        ("ExactKBest", ThresholdStrategy::ExactKBest),
        ("PaperKthLb", ThresholdStrategy::PaperKthLb),
    ] {
        let device = Device::default_gpu();
        let mut index =
            SmilerIndex::build(&device, series.clone(), params.clone()).with_threshold(strategy);
        let out = index.search(&device, max_end);
        let mut hits = 0usize;
        let mut total = 0usize;
        for (i, ref_d) in reference.iter().enumerate() {
            total += ref_d.len();
            hits += out.neighbors[i]
                .iter()
                .filter(|n| ref_d.iter().any(|&r| (r - n.distance).abs() < 1e-9))
                .count();
        }
        let recall = hits as f64 / total as f64;
        let verified: usize = out.stats.unfiltered.iter().sum();
        rows.push(vec![name.to_string(), format!("{recall:.3}"), verified.to_string()]);
        records.push(Measurement::new("ablation", None, name, None, "recall", recall));
        records.push(Measurement::new("ablation", None, name, None, "verified", verified as f64));
    }
    print_table(
        "Ablation 1: filter threshold strategy (ROAD sensor 0, k=32)",
        &["strategy".into(), "recall@k".into(), "candidates verified".into()],
        &rows,
    );
    records
}

/// 2. Remark 1: incremental advance vs rebuild across history sizes.
fn incremental_maintenance(scale: &ExptScale) -> Vec<Measurement> {
    let series = road_series(scale, 1);
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for &frac in &[4usize, 2, 1] {
        let n = series.len() / frac;
        let history = series[..n].to_vec();
        let dev_adv = Device::default_gpu();
        let dev_build = Device::default_gpu();
        let mut index = SmilerIndex::build(&dev_adv, history.clone(), IndexParams::default());
        dev_adv.reset_clock();
        index.advance(&dev_adv, 0.1);
        let adv = dev_adv.saturated_seconds();
        let mut grown = history;
        grown.push(0.1);
        dev_build.reset_clock();
        SmilerIndex::build(&dev_build, grown, IndexParams::default());
        let build = dev_build.saturated_seconds();
        rows.push(vec![
            n.to_string(),
            fmt_seconds(adv),
            fmt_seconds(build),
            format!("{:.1}x", build / adv.max(1e-15)),
        ]);
        records.push(Measurement::new(
            "ablation",
            None,
            "advance",
            Some(format!("n={n}")),
            "time_s",
            adv,
        ));
        records.push(Measurement::new(
            "ablation",
            None,
            "rebuild",
            Some(format!("n={n}")),
            "time_s",
            build,
        ));
    }
    print_table(
        "Ablation 2: Remark-1 incremental maintenance vs rebuild",
        &["history".into(), "advance".into(), "rebuild".into(), "speedup".into()],
        &rows,
    );
    records
}

/// 3. §4.4: two-phase filter→verify vs one fused divergent kernel.
///
/// The fused kernel runs the LB scan on all lanes, then the surviving
/// lanes' DTW serialises against the SIMD width (divergence): every
/// surviving lane's DTW work is issued while its warp-mates idle. The
/// two-phase pipeline pays an extra pass over the candidates but keeps
/// both kernels converged.
fn phase_separation(scale: &ExptScale) -> Vec<Measurement> {
    let series = road_series(scale, 2);
    let params = IndexParams::default();
    let device = Device::default_gpu();
    let mut index = SmilerIndex::build(&device, series.clone(), params.clone());
    let max_end = series.len() - 30;
    let out = index.search(&device, max_end);

    let d = 96usize;
    let dtw_ops = smiler_dtw::dtw_ops_estimate(d, params.rho);
    let candidates: usize = out.stats.candidates.iter().sum();
    let survivors: usize = out.stats.unfiltered.iter().sum();
    let survive_rate = survivors as f64 / candidates.max(1) as f64;
    const LANES: u64 = 256;

    // Two-phase: a converged LB kernel over every candidate, then a
    // converged verify kernel over the survivors only.
    let lb_pass = device
        .launch(candidates.div_ceil(LANES as usize), |ctx| {
            ctx.read_global(LANES * d as u64);
            ctx.flops(LANES * 6 * d as u64);
        })
        .stats
        .saturated_seconds;
    let verify_pass = device
        .launch(survivors.div_ceil(LANES as usize).max(1), |ctx| {
            ctx.read_global(LANES * d as u64);
            ctx.flops(LANES * dtw_ops);
        })
        .stats
        .saturated_seconds;
    let two_phase = lb_pass + verify_pass;

    // Fused: one kernel over all candidates; the LB part stays converged
    // but each block's surviving lanes execute their DTW divergently —
    // serialising against the warp (§4.4's "threads doing different
    // processing need to wait for each other").
    let fused = device
        .launch(candidates.div_ceil(LANES as usize), |ctx| {
            ctx.read_global(LANES * d as u64);
            ctx.flops(LANES * 6 * d as u64);
            let surviving_lanes = (LANES as f64 * survive_rate).ceil() as u64;
            ctx.diverge(surviving_lanes * dtw_ops);
        })
        .stats
        .saturated_seconds;

    let rows = vec![vec![
        format!("{survive_rate:.3}"),
        fmt_seconds(two_phase),
        fmt_seconds(fused),
        format!("{:.1}x", fused / two_phase.max(1e-15)),
    ]];
    print_table(
        "Ablation 3: §4.4 two-phase filter/verify vs fused divergent kernel",
        &["survivor rate".into(), "two-phase".into(), "fused (divergent)".into(), "penalty".into()],
        &rows,
    );
    vec![
        Measurement::new("ablation", None, "two_phase", None, "time_s", two_phase),
        Measurement::new("ablation", None, "fused_divergent", None, "time_s", fused),
    ]
}

/// 4. Fleet batching vs per-sensor searches.
fn fleet_batching(scale: &ExptScale) -> Vec<Measurement> {
    let dataset = scale.dataset(DatasetKind::Road);
    let params = IndexParams::default();
    let build = |device: &Device| -> Vec<SmilerIndex> {
        dataset
            .sensors
            .iter()
            .map(|s| SmilerIndex::build(device, s.values().to_vec(), params.clone()))
            .collect()
    };
    let max_ends: Vec<usize> = dataset.sensors.iter().map(|s| s.len() - 30).collect();

    let dev_solo = Device::default_gpu();
    let mut solo = build(&dev_solo);
    dev_solo.reset_clock();
    for (index, &me) in solo.iter_mut().zip(&max_ends) {
        index.search(&dev_solo, me);
    }
    let (solo_launches, solo_time) = (dev_solo.kernel_launches(), dev_solo.elapsed_seconds());

    let dev_fleet = Device::default_gpu();
    let mut fleet = build(&dev_fleet);
    dev_fleet.reset_clock();
    let mut refs: Vec<&mut SmilerIndex> = fleet.iter_mut().collect();
    fleet_search(&dev_fleet, &mut refs, &max_ends);
    let (fleet_launches, fleet_time) = (dev_fleet.kernel_launches(), dev_fleet.elapsed_seconds());

    let rows = vec![
        vec!["per-sensor".into(), solo_launches.to_string(), fmt_seconds(solo_time)],
        vec!["fleet-batched".into(), fleet_launches.to_string(), fmt_seconds(fleet_time)],
    ];
    print_table(
        &format!("Ablation 4: fleet batching ({} sensors, makespan time)", dataset.sensors.len()),
        &["pipeline".into(), "kernel launches".into(), "device time".into()],
        &rows,
    );
    vec![
        Measurement::new("ablation", None, "per_sensor", None, "launches", solo_launches as f64),
        Measurement::new("ablation", None, "per_sensor", None, "time_s", solo_time),
        Measurement::new("ablation", None, "fleet", None, "launches", fleet_launches as f64),
        Measurement::new("ablation", None, "fleet", None, "time_s", fleet_time),
    ]
}

/// 6. Retrieval distance: DTW vs Euclidean kNN regression — paper §4:
///    "Euclidean distance is simple but sensitive to noise (e.g. shifting
///    and scaling) ... DTW is a simple but effective one which is robust".
fn distance_measure(scale: &ExptScale) -> Vec<Measurement> {
    let series = road_series(scale, 3);
    let (d, k, h, rho) = (32usize, 16usize, 3usize, 8usize);
    let steps = scale.eval_steps.min(40);
    let split = series.len() - steps - h;

    let knn_forecast = |use_dtw: bool| -> f64 {
        let mut history = series[..split].to_vec();
        let mut err = 0.0;
        for step in 0..steps {
            let n = history.len();
            let query = &history[n - d..];
            // k nearest by the chosen measure, leaving room for labels.
            let mut best: Vec<(usize, f64)> = Vec::new();
            for t in 0..=n - d - h {
                let cand = &history[t..t + d];
                let dist = if use_dtw {
                    smiler_dtw::dtw_banded(query, cand, rho)
                } else {
                    smiler_linalg::vector::squared_distance(query, cand)
                };
                best.push((t, dist));
            }
            best.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
            best.truncate(k);
            let mean: f64 =
                best.iter().map(|&(t, _)| history[t + d - 1 + h]).sum::<f64>() / k as f64;
            let truth = series[split + step + h - 1];
            err += (mean - truth).abs();
            history.push(series[split + step]);
        }
        err / steps as f64
    };

    let dtw_mae = knn_forecast(true);
    let euclid_mae = knn_forecast(false);
    print_table(
        &format!("Ablation 6: retrieval measure (ROAD, kNN regression, h={h})"),
        &["measure".into(), "MAE".into()],
        &[
            vec!["DTW (ρ=8)".into(), format!("{dtw_mae:.4}")],
            vec!["Euclidean".into(), format!("{euclid_mae:.4}")],
        ],
    );
    vec![
        Measurement::new("ablation", Some("ROAD"), "knn-dtw", None, "mae", dtw_mae),
        Measurement::new("ablation", Some("ROAD"), "knn-euclidean", None, "mae", euclid_mae),
    ]
}

/// 5. Ensemble matrix size: 1×1 vs 2×2 vs 3×3 on the MALL dataset.
fn ensemble_size(scale: &ExptScale) -> Vec<Measurement> {
    let dataset = scale.dataset(DatasetKind::Mall);
    let series = dataset.sensors[0].values();
    let config = EvalConfig { horizons: vec![1, 5, 10], steps: scale.eval_steps.min(40) };
    let variants: Vec<(&str, EnsembleConfig)> = vec![
        ("1x1 (k=32,d=64)", EnsembleConfig::single(32, 64)),
        ("2x2", EnsembleConfig { ekv: vec![16, 32], elv: vec![32, 64], ..Default::default() }),
        ("3x3 (paper)", EnsembleConfig::default()),
    ];
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (name, ensemble) in variants {
        let device = std::sync::Arc::new(Device::default_gpu());
        let cfg = SmilerConfig { h_max: 10, ensemble, ..Default::default() };
        let mut model = SmilerForecaster::ar(device, cfg);
        let r = evaluate(&mut model, series, &config);
        let avg: f64 = r.mae.values().sum::<f64>() / r.mae.len() as f64;
        rows.push(vec![name.to_string(), format!("{avg:.4}"), format!("{:.2}", r.predict_ms)]);
        records.push(Measurement::new("ablation", Some("MALL"), name, None, "mae", avg));
        records.push(Measurement::new(
            "ablation",
            Some("MALL"),
            name,
            None,
            "predict_ms",
            r.predict_ms,
        ));
    }
    print_table(
        "Ablation 5: ensemble matrix size (MALL, SMiLer-AR, mean MAE over h∈{1,5,10})",
        &["matrix".into(), "MAE".into(), "predict ms".into()],
        &rows,
    );
    records
}
