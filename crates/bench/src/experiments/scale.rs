//! Scalability experiments: Fig 12 (per-step cost and sensors-per-GPU
//! capacity) and Fig 13 (PSGP active-points sweep vs SMiLer-GP).

use crate::report::{fmt_seconds, print_table};
use crate::{ExptScale, Measurement};
use smiler_baselines::sparse_gp::{self, SparseGpConfig};
use smiler_core::eval::{average_results, evaluate, EvalConfig, EvalResult};
use smiler_core::sensor::{SmilerConfig, SmilerForecaster};
use smiler_core::{PredictorKind, SmilerSystem};
use smiler_gpu::Device;
use smiler_timeseries::synthetic::DatasetKind;
use std::sync::Arc;
use std::time::Instant;

/// Fig 12 (a)(b): total search + prediction cost for all sensors per
/// prediction step, for SMiLer-AR and SMiLer-GP.
pub fn fig12_cost(scale: &ExptScale) -> Vec<Measurement> {
    let mut records = Vec::new();
    let mut rows = Vec::new();
    for kind in DatasetKind::all() {
        let dataset = scale.dataset(kind);
        for (kind_name, pk) in [
            ("SMiLer-AR", PredictorKind::Aggregation),
            ("SMiLer-GP", PredictorKind::GaussianProcess),
        ] {
            let device = Arc::new(Device::default_gpu());
            let histories: Vec<Vec<f64>> =
                dataset.sensors.iter().map(|s| s.values().to_vec()).collect();
            let config = SmilerConfig { h_max: 30, ..Default::default() };
            let (mut system, rejected) =
                SmilerSystem::new(Arc::clone(&device), histories, config, pk);
            assert!(rejected.is_none(), "experiment sensors must fit the device");
            // One full prediction step over all sensors: search cost is the
            // simulated device time; prediction cost is wall-clock of the
            // model math.
            device.reset_clock();
            let wall = Instant::now();
            let _ = system.predict_all(1);
            let total_wall = wall.elapsed().as_secs_f64();
            // Saturated device seconds: the fleet shares the GPU, so
            // aggregate cycles are the operator's cost (cf. search expts).
            let search_s = device.saturated_seconds();
            // GP/AR math time ≈ wall time minus the wall share of kernels;
            // the kernels run in simulated time, so report the full wall
            // time as "prediction" and the device clock as "search".
            rows.push(vec![
                dataset.name.clone(),
                kind_name.to_string(),
                fmt_seconds(search_s),
                fmt_seconds(total_wall),
            ]);
            records.push(Measurement::new(
                "fig12",
                Some(&dataset.name),
                kind_name,
                None,
                "search_s",
                search_s,
            ));
            records.push(Measurement::new(
                "fig12",
                Some(&dataset.name),
                kind_name,
                None,
                "predict_wall_s",
                total_wall,
            ));
        }
    }
    print_table(
        "Fig 12(a)(b): per-prediction-step cost over all sensors",
        &["dataset".into(), "variant".into(), "search (sim)".into(), "step (wall)".into()],
        &rows,
    );
    records
}

/// Per-sensor index footprint in bytes at paper-scale history length.
fn paper_scale_bytes(kind: DatasetKind) -> usize {
    // Paper history sizes: ROAD 15 months, MALL 12 months (10-min rate);
    // NET 3 months at 5-min rate.
    let n = match kind {
        DatasetKind::Road => 450 * 144,
        DatasetKind::Mall => 365 * 144,
        DatasetKind::Net => 90 * 288,
    };
    let omega = 16;
    let d_master = 96;
    let sw = d_master - omega + 1;
    let dw = n / omega;
    let f = std::mem::size_of::<f64>();
    n * f            // history
        + 2 * n * f  // envelope
        + sw * dw * 2 * f // posting lists
}

/// Fig 12(c): maximum sensors per 6 GB GPU at paper-scale history sizes.
pub fn fig12_capacity() -> Vec<Measurement> {
    let capacity = 6 * 1024 * 1024 * 1024usize;
    let mut records = Vec::new();
    let mut rows = Vec::new();
    for kind in DatasetKind::all() {
        let per_sensor = paper_scale_bytes(kind);
        let sensors = SmilerSystem::capacity_in_sensors(capacity, per_sensor);
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.2} MB", per_sensor as f64 / 1048576.0),
            sensors.to_string(),
        ]);
        records.push(Measurement::new(
            "fig12",
            Some(kind.name()),
            "capacity",
            None,
            "max_sensors",
            sensors as f64,
        ));
    }
    print_table(
        "Fig 12(c): max sensors per 6 GB GPU at paper-scale history",
        &["dataset".into(), "bytes/sensor".into(), "max sensors".into()],
        &rows,
    );
    records
}

/// Fig 13: PSGP active-points sweep — average per-sensor training time and
/// MAE vs the SMiLer-GP reference line.
pub fn fig13(scale: &ExptScale) -> Vec<Measurement> {
    let ms = [4usize, 8, 16, 32, 64, 128];
    let steps = scale.eval_steps.min(30);
    let horizons = vec![1usize];
    let sensors = 2usize;
    let mut records = Vec::new();
    for kind in DatasetKind::all() {
        let dataset = scale.dataset(kind);
        let config = EvalConfig { horizons: horizons.clone(), steps };

        // SMiLer-GP reference.
        let device = Arc::new(Device::default_gpu());
        let smiler_results: Vec<EvalResult> = dataset
            .sensors
            .iter()
            .take(sensors)
            .map(|s| {
                let mut m = SmilerForecaster::gp(
                    Arc::clone(&device),
                    SmilerConfig { h_max: 1, ..Default::default() },
                );
                evaluate(&mut m, s.values(), &config)
            })
            .collect();
        let smiler_mae = average_results(&smiler_results).mae[&1];
        records.push(Measurement::new(
            "fig13",
            Some(&dataset.name),
            "SMiLer-GP",
            None,
            "mae",
            smiler_mae,
        ));

        let mut rows = Vec::new();
        for &m_points in &ms {
            eprintln!("[fig13] {} / PSGP m={m_points}", dataset.name);
            let per_sensor: Vec<EvalResult> = dataset
                .sensors
                .iter()
                .take(sensors)
                .map(|s| {
                    let mut model = sparse_gp::psgp(SparseGpConfig {
                        horizons: horizons.clone(),
                        active_points: m_points,
                        stride: (s.len() / 1200).max(1),
                        train_iters: 6,
                        ..SparseGpConfig::psgp()
                    });
                    evaluate(&mut model, s.values(), &config)
                })
                .collect();
            let avg = average_results(&per_sensor);
            let train_per_sensor = avg.train_seconds / sensors as f64;
            rows.push(vec![
                format!("m={m_points}"),
                fmt_seconds(train_per_sensor),
                format!("{:.3}", avg.mae[&1]),
                format!("{smiler_mae:.3}"),
            ]);
            records.push(Measurement::new(
                "fig13",
                Some(&dataset.name),
                "PSGP",
                Some(format!("m={m_points}")),
                "train_s_per_sensor",
                train_per_sensor,
            ));
            records.push(Measurement::new(
                "fig13",
                Some(&dataset.name),
                "PSGP",
                Some(format!("m={m_points}")),
                "mae",
                avg.mae[&1],
            ));
        }
        print_table(
            &format!("Fig 13 ({}): PSGP active points vs SMiLer-GP", dataset.name),
            &[
                "active points".into(),
                "PSGP train/sensor".into(),
                "PSGP MAE".into(),
                "SMiLer-GP MAE".into(),
            ],
            &rows,
        );
    }
    records
}
