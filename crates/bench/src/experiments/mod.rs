//! One module per group of paper artifacts:
//!
//! * [`search`] — Table 3, Fig 7, Fig 8 (suffix kNN search on DTW);
//! * [`predict`] — Fig 9, Fig 10, Fig 11, Table 4 (prediction quality and
//!   running time);
//! * [`scale`] — Fig 12, Fig 13 (scalability and the PSGP comparison);
//! * [`ablation`] — design-choice ablations beyond the paper's own.

pub mod ablation;
pub mod predict;
pub mod scale;
pub mod search;
