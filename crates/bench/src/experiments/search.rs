//! Search-step experiments: Table 3 (lower-bound effectiveness), Fig 7
//! (suffix kNN running time vs k), Fig 8 (LBen computation: index vs
//! direct).
//!
//! Protocol (paper §6.2.1): per sensor, a master query runs a continuous
//! suffix kNN search; the reported time is the *total across sensors per
//! query step*. Times here are the simulated **device-saturated** seconds
//! of `smiler-gpu` (total device cycles ÷ throughput), calibrated to the
//! paper's GTX TITAN / i7-3820: with hundreds of sensors sharing the GPU —
//! the paper's regime — per-launch makespan floors vanish and aggregate
//! cycles are what an operator pays. See DESIGN.md §2.

use crate::report::{fmt_seconds, print_table};
use crate::{ExptScale, Measurement};
use smiler_gpu::{CpuSpec, Device};
use smiler_index::{scan, BoundMode, IndexParams, SmilerIndex};
use smiler_timeseries::synthetic::DatasetKind;

const ELV: [usize; 3] = [32, 64, 96];
const RHO: usize = 8;
const OMEGA: usize = 16;
/// Reserve headroom so every neighbour has its 30-step label.
const H_MAX: usize = 30;

fn index_params(k: usize) -> IndexParams {
    IndexParams { rho: RHO, omega: OMEGA, lengths: ELV.to_vec(), k_max: k }
}

/// Split each sensor's series into (history, held-out future steps).
fn split_series(series: &[f64], steps: usize) -> (Vec<f64>, Vec<f64>) {
    let split = series.len() - steps;
    (series[..split].to_vec(), series[split..].to_vec())
}

/// Per-step search statistics summed over sensors.
#[derive(Debug, Default, Clone, Copy)]
struct StepCosts {
    /// Total simulated seconds per query step (advance + full search).
    total_s: f64,
    /// Simulated seconds spent in the group-level lower-bound pass.
    lb_s: f64,
    /// Simulated seconds spent verifying candidates.
    verify_s: f64,
    /// Mean unfiltered candidates per item query per sensor.
    unfiltered: f64,
}

/// Run SMiLer-Idx over all sensors for `steps` continuous steps.
fn run_smiler_idx(
    dataset: &smiler_timeseries::SensorDataset,
    k: usize,
    mode: BoundMode,
    steps: usize,
) -> StepCosts {
    let device = Device::default_gpu();
    let mut total = StepCosts::default();
    let mut unfiltered_samples = 0usize;
    for sensor in &dataset.sensors {
        let (history, future) = split_series(sensor.values(), steps);
        let mut index = SmilerIndex::build(&device, history, index_params(k)).with_bound_mode(mode);
        // Initial search warms the continuous-threshold reuse (unmeasured,
        // like the paper's initial query).
        let len = index.series().len();
        index.search(&device, len - H_MAX);
        device.reset_clock();
        for &v in &future {
            let t0 = device.saturated_seconds();
            index.advance(&device, v);
            let len = index.series().len();
            let out = index.search(&device, len - H_MAX);
            total.total_s += device.saturated_seconds() - t0;
            total.lb_s += out.stats.lb_saturated_seconds;
            total.verify_s += out.stats.verify_saturated_seconds;
            total.unfiltered += out.stats.unfiltered.iter().sum::<usize>() as f64;
            unfiltered_samples += out.stats.unfiltered.len();
        }
    }
    let steps_f = steps as f64;
    StepCosts {
        total_s: total.total_s / steps_f,
        lb_s: total.lb_s / steps_f,
        verify_s: total.verify_s / steps_f,
        unfiltered: total.unfiltered / unfiltered_samples.max(1) as f64,
    }
}

/// Run a scan baseline over all sensors for `steps` continuous steps;
/// returns total simulated seconds per query step.
fn run_scan<F>(
    dataset: &smiler_timeseries::SensorDataset,
    steps: usize,
    gpu: bool,
    scan_fn: F,
) -> f64
where
    F: Fn(&Device, &[f64], usize),
{
    let device = if gpu { Device::default_gpu() } else { Device::cpu(CpuSpec::default()) };
    let mut total = 0.0;
    for sensor in &dataset.sensors {
        let (mut history, future) = split_series(sensor.values(), steps);
        for &v in &future {
            history.push(v);
            let max_end = history.len() - H_MAX;
            let t0 = device.saturated_seconds();
            scan_fn(&device, &history, max_end);
            total += device.saturated_seconds() - t0;
        }
    }
    total / steps as f64
}

/// Fig 7: suffix kNN search time per query step, 5 methods × varying k.
pub fn fig7(scale: &ExptScale) -> Vec<Measurement> {
    let ks = [16usize, 32, 64, 128];
    let mut records = Vec::new();
    for kind in DatasetKind::all() {
        let dataset = scale.dataset(kind);
        let mut rows = Vec::new();
        for &k in &ks {
            let idx = run_smiler_idx(&dataset, k, BoundMode::En, scale.search_steps);
            let dir = run_scan(&dataset, scale.search_steps, true, |dev, series, max_end| {
                scan::smiler_dir(dev, series, &ELV, k, RHO, max_end)
                    .expect("smiler_dir fits the device");
            });
            let fast_gpu = run_scan(&dataset, scale.search_steps, true, |dev, series, max_end| {
                scan::fast_gpu_scan(dev, series, &ELV, k, RHO, max_end);
            });
            let gpu_full = run_scan(&dataset, scale.search_steps, true, |dev, series, max_end| {
                scan::gpu_scan(dev, series, &ELV, k, max_end);
            });
            let fast_cpu = run_scan(&dataset, scale.search_steps, false, |dev, series, max_end| {
                scan::fast_cpu_scan(dev, series, &ELV, k, RHO, max_end);
            });
            let cells = [
                ("SMiLer-Idx", idx.total_s),
                ("SMiLer-Dir", dir),
                ("FastGPUScan", fast_gpu),
                ("GPUScan", gpu_full),
                ("FastCPUScan", fast_cpu),
            ];
            let mut row = vec![format!("k={k}")];
            for (method, secs) in cells {
                row.push(fmt_seconds(secs));
                records.push(Measurement::new(
                    "fig7",
                    Some(&dataset.name),
                    method,
                    Some(format!("k={k}")),
                    "time_s",
                    secs,
                ));
            }
            rows.push(row);
        }
        print_table(
            &format!("Fig 7 ({}): suffix kNN time per query step, all sensors", dataset.name),
            &[
                "k".into(),
                "SMiLer-Idx".into(),
                "SMiLer-Dir".into(),
                "FastGPUScan".into(),
                "GPUScan".into(),
                "FastCPUScan".into(),
            ],
            &rows,
        );
    }
    records
}

/// Table 3: effect of the enhanced lower bound — verification time and
/// unfiltered candidates per item query for LBEQ / LBEC / LBen.
pub fn table3(scale: &ExptScale) -> Vec<Measurement> {
    let mut records = Vec::new();
    let mut rows = Vec::new();
    for mode in [BoundMode::Eq, BoundMode::Ec, BoundMode::En] {
        let name = match mode {
            BoundMode::Eq => "LBEQ",
            BoundMode::Ec => "LBEC",
            BoundMode::En => "LBen",
        };
        let mut row = vec![name.to_string()];
        for kind in DatasetKind::all() {
            let dataset = scale.dataset(kind);
            let costs = run_smiler_idx(&dataset, 32, mode, scale.search_steps);
            row.push(fmt_seconds(costs.verify_s));
            row.push(format!("{:.0}", costs.unfiltered));
            records.push(Measurement::new(
                "table3",
                Some(&dataset.name),
                name,
                None,
                "verify_time_s",
                costs.verify_s,
            ));
            records.push(Measurement::new(
                "table3",
                Some(&dataset.name),
                name,
                None,
                "unfiltered",
                costs.unfiltered,
            ));
        }
        rows.push(row);
    }
    print_table(
        "Table 3: enhanced lower bound — verify time / unfiltered candidates per query",
        &[
            "bound".into(),
            "ROAD time".into(),
            "ROAD number".into(),
            "MALL time".into(),
            "MALL number".into(),
            "NET time".into(),
            "NET number".into(),
        ],
        &rows,
    );
    records
}

/// Fig 8: time to compute LBen for all sensors — two-level index vs direct
/// per-candidate computation.
pub fn fig8(scale: &ExptScale) -> Vec<Measurement> {
    let mut records = Vec::new();
    let mut rows = Vec::new();
    for kind in DatasetKind::all() {
        let dataset = scale.dataset(kind);
        let idx = run_smiler_idx(&dataset, 32, BoundMode::En, scale.search_steps);
        // SMiLer-Dir: measure only the direct LBen pass.
        let device = Device::default_gpu();
        let mut dir_lb = 0.0;
        for sensor in &dataset.sensors {
            let (mut history, future) = split_series(sensor.values(), scale.search_steps);
            for &v in &future {
                history.push(v);
                let max_end = history.len() - H_MAX;
                let (_, lb_s) = scan::smiler_dir(&device, &history, &ELV, 32, RHO, max_end)
                    .expect("smiler_dir fits the device");
                dir_lb += lb_s;
            }
        }
        dir_lb /= scale.search_steps as f64;
        rows.push(vec![
            dataset.name.clone(),
            fmt_seconds(idx.lb_s),
            fmt_seconds(dir_lb),
            format!("{:.1}x", dir_lb / idx.lb_s.max(1e-12)),
        ]);
        records.push(Measurement::new(
            "fig8",
            Some(&dataset.name),
            "SMiLer-Idx",
            None,
            "lb_time_s",
            idx.lb_s,
        ));
        records.push(Measurement::new(
            "fig8",
            Some(&dataset.name),
            "SMiLer-Dir",
            None,
            "lb_time_s",
            dir_lb,
        ));
    }
    print_table(
        "Fig 8: LBen computation time for all sensors (per query step)",
        &["dataset".into(), "SMiLer-Idx".into(), "SMiLer-Dir".into(), "speedup".into()],
        &rows,
    );
    records
}
