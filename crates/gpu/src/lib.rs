//! A GPU execution simulator.
//!
//! The paper implements its index on a GeForce GTX TITAN with CUDA 6
//! (§6.1.1) and leans on four CUDA concepts: a *grid of blocks* processed in
//! parallel ("one block per posting list", §4.3), per-block *shared memory*
//! (the compressed warping matrix of Appendix E), *SIMD divergence*
//! serialisation (the reason filtering and verification are separate phases,
//! §4.4), and a GPU *k-selection* kernel (§4.3.3, after Alabi et al.).
//!
//! This environment has no GPU, so — per the substitution policy in
//! DESIGN.md — this crate reproduces the CUDA execution model in software:
//!
//! * [`device::Device::launch`] runs a kernel over a grid of blocks with
//!   real multi-core parallelism (a crossbeam work-stealing loop), so
//!   wall-clock speedups from the index structure are genuine;
//! * every block self-reports its memory traffic and arithmetic through
//!   [`device::BlockCtx`], and a calibrated [`cost`] model converts those
//!   counts into *simulated seconds* on a TITAN-class device, which is what
//!   the experiment harness reports for the paper's Figures 7/8 and Table 4;
//! * [`device::Device`] also models the 6 GB device memory so the
//!   "max sensors per GPU" experiment (Fig 12c) can be reproduced;
//! * [`kselect`] implements the bucket-based k-selection kernel with the
//!   paper's two extensions (one block per query; return all k results).
//!
//! The same cost framework includes a CPU model ([`cost::CpuSpec`]) so the
//! CPU baselines of Figure 7 are simulated under identical assumptions.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cost;
pub mod device;
pub mod group;
pub mod kselect;

pub use cost::{CostModel, CpuSpec, GpuSpec, KernelStats};
pub use device::{BlockCtx, Device, LaunchReport, SharedMemOverflow};
pub use group::DeviceGroup;
