//! Calibrated cost models for the simulated GPU and the baseline CPU.
//!
//! Kernels report abstract operation counts ([`BlockCost`]); these models
//! turn counts into cycles and cycles into simulated seconds. Two deliberate
//! simplifications keep the model analysable:
//!
//! 1. **Throughput, not latency.** A GPU hides memory latency with
//!    thousands of resident threads, so sustained kernels are throughput
//!    bound. Each operation class has a reciprocal-throughput cost in
//!    cycles; a block's cycles are the sum over classes.
//! 2. **Greedy block scheduling.** Blocks are assigned to the least-loaded
//!    SM in launch order (exactly how a CUDA grid dispatches waves); device
//!    time is the makespan over SMs.
//!
//! The constants are calibrated to the hardware of the paper's testbed
//! (GTX TITAN: 14 SMX × 192 cores at 0.88 GHz, ~288 GB/s; Core i7-3820:
//! 4 cores at 3.6 GHz with 4-wide AVX, ~51 GB/s) so that the *ratios* the
//! paper reports — GPU scan ≈ 50× CPU scan, Fig 7 — emerge from first
//! principles rather than being hard-coded.

/// Abstract per-block operation counts, self-reported by kernels.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize)]
pub struct BlockCost {
    /// Words (f64) read from global/device memory.
    pub global_reads: u64,
    /// Words (f64) written to global/device memory.
    pub global_writes: u64,
    /// Words accessed in per-block shared memory.
    pub shared_accesses: u64,
    /// Floating-point operations executed by converged lanes.
    pub flops: u64,
    /// Extra operations serialised by intra-warp divergence. These cost a
    /// full SIMD-width of issue slots each — the §4.4 penalty that makes the
    /// paper separate filtering from verification.
    pub divergent_ops: u64,
    /// Block-wide barrier synchronisations.
    pub syncs: u64,
}

impl BlockCost {
    /// Accumulate another block's counts into this one.
    pub fn merge(&mut self, other: &BlockCost) {
        self.global_reads += other.global_reads;
        self.global_writes += other.global_writes;
        self.shared_accesses += other.shared_accesses;
        self.flops += other.flops;
        self.divergent_ops += other.divergent_ops;
        self.syncs += other.syncs;
    }
}

/// Aggregated statistics for one kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize)]
pub struct KernelStats {
    /// Number of blocks in the grid.
    pub blocks: u64,
    /// Sum of per-block counts.
    pub total: BlockCost,
    /// Simulated execution time of the launch in seconds: the makespan of
    /// the greedy block→unit schedule. For small grids this is floored at
    /// one block's latency (an under-occupied device).
    pub sim_seconds: f64,
    /// Simulated *device-saturated* seconds: total cycles ÷ (units ×
    /// clock) — the marginal cost of this launch when the device is kept
    /// busy by many concurrent sensors, which is the paper's 963-sensor
    /// operating regime (Fig 3). Always ≤ `sim_seconds`.
    pub saturated_seconds: f64,
}

/// A device-agnostic cost model: reciprocal throughputs in cycles per
/// operation, plus the parallel shape of the device.
pub trait CostModel {
    /// Cycles one execution unit needs for the given block counts.
    fn block_cycles(&self, cost: &BlockCost) -> f64;
    /// Number of independent execution units (SMs / cores).
    fn parallel_units(&self) -> usize;
    /// Clock rate in Hz.
    fn clock_hz(&self) -> f64;

    /// Simulated seconds for a set of per-block cycle counts, using greedy
    /// least-loaded scheduling onto the parallel units.
    fn makespan_seconds(&self, block_cycles: &[f64]) -> f64 {
        let units = self.parallel_units().max(1);
        let mut load = vec![0.0f64; units];
        for &c in block_cycles {
            // Least-loaded unit; ties resolved by index for determinism.
            let (idx, _) = load
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("loads are finite"))
                .expect("at least one unit");
            load[idx] += c;
        }
        let makespan = load.iter().copied().fold(0.0, f64::max);
        makespan / self.clock_hz()
    }
}

/// Specification of a simulated GPU, defaulting to the paper's GTX TITAN.
#[derive(Debug, Clone, Copy)]
pub struct GpuSpec {
    /// Streaming multiprocessors.
    pub sms: usize,
    /// SIMD lanes that issue together per SM (warp-level throughput).
    pub simd_width: usize,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Device memory capacity in bytes (Fig 12c models 6 GB).
    pub memory_bytes: usize,
    /// Shared memory per block in bytes (the Appendix E budget).
    pub shared_bytes_per_block: usize,
    /// Cycles per global-memory word per SM (coalesced, amortised).
    pub global_word_cycles: f64,
    /// Cycles per shared-memory word.
    pub shared_word_cycles: f64,
    /// Cycles per block-wide barrier.
    pub sync_cycles: f64,
}

impl Default for GpuSpec {
    fn default() -> Self {
        // GTX TITAN (GK110): 14 SMX, 192 SP cores each, 0.876 GHz, 6 GB,
        // 288 GB/s. Per SM that bandwidth is ~20.6 GB/s = 2.6 Gwords/s,
        // i.e. ~0.34 cycles per word at 0.876 GHz — rounded up for ECC and
        // imperfect coalescing.
        GpuSpec {
            sms: 14,
            simd_width: 192,
            clock_hz: 0.876e9,
            memory_bytes: 6 * 1024 * 1024 * 1024,
            shared_bytes_per_block: 48 * 1024,
            global_word_cycles: 0.45,
            shared_word_cycles: 0.02,
            sync_cycles: 30.0,
        }
    }
}

impl CostModel for GpuSpec {
    fn block_cycles(&self, c: &BlockCost) -> f64 {
        let width = self.simd_width as f64;
        // Converged arithmetic is spread over the SIMD lanes; divergent work
        // serialises (one lane's work occupies the whole warp's issue slot).
        let compute = c.flops as f64 / width + c.divergent_ops as f64;
        let global = (c.global_reads + c.global_writes) as f64 * self.global_word_cycles;
        let shared = c.shared_accesses as f64 * self.shared_word_cycles / width;
        let sync = c.syncs as f64 * self.sync_cycles;
        compute + global + shared + sync
    }

    fn parallel_units(&self) -> usize {
        self.sms
    }

    fn clock_hz(&self) -> f64 {
        self.clock_hz
    }
}

/// Specification of the baseline CPU, defaulting to the paper's i7-3820.
#[derive(Debug, Clone, Copy)]
pub struct CpuSpec {
    /// Physical cores.
    pub cores: usize,
    /// SIMD lanes (AVX doubles).
    pub simd_width: usize,
    /// Clock in Hz.
    pub clock_hz: f64,
    /// Cycles per out-of-cache memory word per core.
    pub memory_word_cycles: f64,
}

impl Default for CpuSpec {
    fn default() -> Self {
        // i7-3820: 4 cores, 3.6 GHz, AVX (4 doubles), ~51 GB/s shared.
        // Per core: 12.75 GB/s = 1.6 Gwords/s → ~2.3 cycles/word.
        CpuSpec { cores: 4, simd_width: 4, clock_hz: 3.6e9, memory_word_cycles: 2.3 }
    }
}

impl CostModel for CpuSpec {
    fn block_cycles(&self, c: &BlockCost) -> f64 {
        // Scalar DTW recurrences do not vectorise well; model a modest SIMD
        // benefit on converged flops and none on divergent work.
        let compute = c.flops as f64 / (self.simd_width as f64 * 0.5) + c.divergent_ops as f64;
        // A CPU has no shared-vs-global split: everything is one hierarchy.
        let memory =
            (c.global_reads + c.global_writes + c.shared_accesses) as f64 * self.memory_word_cycles;
        compute + memory
    }

    fn parallel_units(&self) -> usize {
        self.cores
    }

    fn clock_hz(&self) -> f64 {
        self.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flop_block(flops: u64) -> BlockCost {
        BlockCost { flops, ..Default::default() }
    }

    #[test]
    fn merge_accumulates() {
        let mut a = BlockCost { global_reads: 1, flops: 10, ..Default::default() };
        a.merge(&BlockCost { global_reads: 2, divergent_ops: 5, ..Default::default() });
        assert_eq!(a.global_reads, 3);
        assert_eq!(a.flops, 10);
        assert_eq!(a.divergent_ops, 5);
    }

    #[test]
    fn gpu_outpaces_cpu_on_parallel_flops() {
        let gpu = GpuSpec::default();
        let cpu = CpuSpec::default();
        // 10k blocks of 100k flops each — an embarrassingly parallel scan.
        let blocks: Vec<BlockCost> = (0..10_000).map(|_| flop_block(100_000)).collect();
        let gpu_t =
            gpu.makespan_seconds(&blocks.iter().map(|b| gpu.block_cycles(b)).collect::<Vec<_>>());
        let cpu_t =
            cpu.makespan_seconds(&blocks.iter().map(|b| cpu.block_cycles(b)).collect::<Vec<_>>());
        let ratio = cpu_t / gpu_t;
        // The paper's Fig 7 shows roughly 50× between FastCPUScan and
        // FastGPUScan; the raw hardware ratio should be in that regime.
        assert!(ratio > 20.0 && ratio < 200.0, "CPU/GPU ratio {ratio}");
    }

    #[test]
    fn divergence_is_expensive_on_gpu() {
        let gpu = GpuSpec::default();
        let converged = gpu.block_cycles(&flop_block(1920));
        let divergent = gpu.block_cycles(&BlockCost { divergent_ops: 1920, ..Default::default() });
        assert!(divergent > 50.0 * converged);
    }

    #[test]
    fn makespan_balances_blocks() {
        let gpu = GpuSpec { sms: 2, ..Default::default() };
        // Four equal blocks over two SMs: makespan = 2 blocks' cycles.
        let cycles = vec![100.0, 100.0, 100.0, 100.0];
        let t = gpu.makespan_seconds(&cycles);
        assert!((t - 200.0 / gpu.clock_hz).abs() / t < 1e-9);
    }

    #[test]
    fn makespan_single_giant_block_is_serial() {
        let gpu = GpuSpec::default();
        let t1 = gpu.makespan_seconds(&[1000.0]);
        let t2 = gpu.makespan_seconds(&[1000.0, 1.0]);
        // The second tiny block hides behind the giant one.
        assert!((t1 - t2).abs() < 1e-12);
    }

    #[test]
    fn empty_launch_costs_nothing() {
        let gpu = GpuSpec::default();
        assert_eq!(gpu.makespan_seconds(&[]), 0.0);
        assert_eq!(gpu.block_cycles(&BlockCost::default()), 0.0);
    }

    #[test]
    fn memory_bound_kernel_scales_with_words() {
        let gpu = GpuSpec::default();
        let small = gpu.block_cycles(&BlockCost { global_reads: 1_000, ..Default::default() });
        let large = gpu.block_cycles(&BlockCost { global_reads: 10_000, ..Default::default() });
        assert!((large / small - 10.0).abs() < 1e-9);
    }
}
