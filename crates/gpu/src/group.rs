//! Multi-device scale-out.
//!
//! The paper's first answer to "more sensors than one GPU can hold" is
//! "we can simply use multiple-GPU system" (§6.4.1). A [`DeviceGroup`]
//! models that: a pool of identical devices with sensors assigned by a
//! capacity-aware placement, aggregate clocks, and an aggregate memory
//! budget. Placement is static (sensor → device), matching how per-sensor
//! indexes are resident structures rather than migratable tasks.

use crate::cost::GpuSpec;
use crate::device::Device;
use std::sync::Arc;

/// A pool of identical simulated GPUs.
#[derive(Debug)]
pub struct DeviceGroup {
    devices: Vec<Arc<Device>>,
}

/// Placement of one tenant (e.g. a sensor index) on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Index of the device within the group.
    pub device: usize,
    /// Bytes reserved on that device.
    pub bytes: usize,
}

impl DeviceGroup {
    /// Create a group of `count` devices with the given specification.
    ///
    /// # Panics
    /// Panics when `count` is zero.
    pub fn new(count: usize, spec: GpuSpec) -> Self {
        assert!(count > 0, "a device group needs at least one device");
        DeviceGroup { devices: (0..count).map(|_| Arc::new(Device::gpu(spec))).collect() }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the group is empty (never true; groups have ≥ 1 device).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Borrow device `i`.
    pub fn device(&self, i: usize) -> &Arc<Device> {
        &self.devices[i]
    }

    /// Place a tenant needing `bytes`: choose the device with the most free
    /// memory (best-fit-decreasing behaviour when callers place tenants
    /// largest-first). Returns `None` when no device can hold it.
    pub fn place(&self, bytes: usize) -> Option<Placement> {
        let (device, free) = self
            .devices
            .iter()
            .enumerate()
            .map(|(i, d)| (i, d.memory_capacity().saturating_sub(d.memory_used())))
            .max_by_key(|&(_, free)| free)?;
        if free < bytes || !self.devices[device].try_reserve_memory(bytes) {
            return None;
        }
        let _ = free;
        Some(Placement { device, bytes })
    }

    /// Release a previous placement.
    pub fn release(&self, placement: Placement) {
        self.devices[placement.device].release_memory(placement.bytes);
    }

    /// Total memory used across devices.
    pub fn memory_used(&self) -> usize {
        self.devices.iter().map(|d| d.memory_used()).sum()
    }

    /// Aggregate simulated time: the *maximum* over devices — devices run
    /// concurrently, so the fleet finishes when the busiest one does.
    pub fn elapsed_seconds(&self) -> f64 {
        self.devices.iter().map(|d| d.elapsed_seconds()).fold(0.0, f64::max)
    }

    /// Aggregate saturated seconds: also the maximum over devices (each
    /// device's saturated clock already aggregates its own cycles).
    pub fn saturated_seconds(&self) -> f64 {
        self.devices.iter().map(|d| d.saturated_seconds()).fold(0.0, f64::max)
    }

    /// Reset every device clock.
    pub fn reset_clocks(&self) {
        for d in &self.devices {
            d.reset_clock();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(memory: usize) -> GpuSpec {
        GpuSpec { memory_bytes: memory, ..Default::default() }
    }

    #[test]
    fn placement_spreads_over_devices() {
        let group = DeviceGroup::new(2, small_spec(1000));
        let a = group.place(600).expect("fits");
        let b = group.place(600).expect("fits on the other device");
        assert_ne!(a.device, b.device);
        assert_eq!(group.memory_used(), 1200);
        // A third 600 no longer fits anywhere.
        assert!(group.place(600).is_none());
        group.release(a);
        assert!(group.place(600).is_some());
    }

    #[test]
    fn doubling_devices_doubles_capacity() {
        let one = DeviceGroup::new(1, small_spec(1000));
        let two = DeviceGroup::new(2, small_spec(1000));
        let fits = |g: &DeviceGroup| {
            let mut n = 0;
            while g.place(300).is_some() {
                n += 1;
            }
            n
        };
        assert_eq!(fits(&one), 3);
        assert_eq!(fits(&two), 6);
    }

    #[test]
    fn aggregate_time_is_max_over_devices() {
        let group = DeviceGroup::new(2, GpuSpec::default());
        group.device(0).launch(4, |ctx| ctx.flops(1_000_000));
        group.device(1).launch(1, |ctx| ctx.flops(10_000));
        let t0 = group.device(0).elapsed_seconds();
        assert!((group.elapsed_seconds() - t0).abs() < 1e-15);
        group.reset_clocks();
        assert_eq!(group.elapsed_seconds(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_rejected() {
        DeviceGroup::new(0, GpuSpec::default());
    }
}
