//! The simulated device: CUDA-style kernel launches with cost accounting.
//!
//! A kernel is a closure executed once per *block* of a grid. Blocks run in
//! parallel on host threads (real speedup) while self-reporting operation
//! counts through [`BlockCtx`] (simulated time). The index code in
//! `smiler-index` launches kernels exactly along the paper's decomposition:
//! one block per sliding-window posting list, one block per CSG, one block
//! per k-selection.

use crate::cost::{BlockCost, CostModel, CpuSpec, GpuSpec, KernelStats};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Which hardware the device simulates.
#[derive(Debug, Clone, Copy)]
enum DeviceModel {
    Gpu(GpuSpec),
    Cpu(CpuSpec),
}

impl DeviceModel {
    fn as_cost_model(&self) -> &dyn CostModel {
        match self {
            DeviceModel::Gpu(s) => s,
            DeviceModel::Cpu(s) => s,
        }
    }
}

/// Error returned when a block over-allocates shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedMemOverflow {
    /// Bytes the kernel asked for in total.
    pub requested: usize,
    /// Per-block budget of the device.
    pub capacity: usize,
}

impl std::fmt::Display for SharedMemOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shared memory overflow: requested {} of {} bytes", self.requested, self.capacity)
    }
}

impl std::error::Error for SharedMemOverflow {}

/// Per-block execution context. Kernels call the reporting methods as they
/// work; the counts feed the cost model after the launch.
#[derive(Debug)]
pub struct BlockCtx {
    block_id: usize,
    cost: BlockCost,
    shared_used: usize,
    shared_capacity: usize,
}

impl BlockCtx {
    fn new(block_id: usize, shared_capacity: usize) -> Self {
        BlockCtx { block_id, cost: BlockCost::default(), shared_used: 0, shared_capacity }
    }

    /// Index of this block within the grid.
    pub fn block_id(&self) -> usize {
        self.block_id
    }

    /// Report `words` f64 reads from global memory.
    pub fn read_global(&mut self, words: u64) {
        self.cost.global_reads += words;
    }

    /// Report `words` f64 writes to global memory.
    pub fn write_global(&mut self, words: u64) {
        self.cost.global_writes += words;
    }

    /// Report `words` shared-memory accesses.
    pub fn access_shared(&mut self, words: u64) {
        self.cost.shared_accesses += words;
    }

    /// Report `n` floating-point operations executed by converged lanes.
    pub fn flops(&mut self, n: u64) {
        self.cost.flops += n;
    }

    /// Report `n` operations serialised by warp divergence (§4.4).
    pub fn diverge(&mut self, n: u64) {
        self.cost.divergent_ops += n;
    }

    /// Report a block-wide barrier (`__syncthreads()`).
    pub fn sync(&mut self) {
        self.cost.syncs += 1;
    }

    /// Reserve `bytes` of the block's shared memory, as a CUDA kernel would
    /// declare a `__shared__` array. The paper's compressed warping matrix
    /// (Appendix E) exists precisely to fit this budget.
    pub fn alloc_shared(&mut self, bytes: usize) -> Result<(), SharedMemOverflow> {
        let requested = self.shared_used + bytes;
        if requested > self.shared_capacity {
            return Err(SharedMemOverflow { requested, capacity: self.shared_capacity });
        }
        self.shared_used = requested;
        Ok(())
    }

    /// Shared memory currently reserved by this block.
    pub fn shared_used(&self) -> usize {
        self.shared_used
    }
}

/// Result of one kernel launch: the per-block results in grid order plus the
/// aggregated simulated-cost statistics.
#[derive(Debug, serde::Serialize)]
pub struct LaunchReport<R> {
    /// Per-block kernel results, indexed by block id.
    pub results: Vec<R>,
    /// Aggregated cost statistics of the launch.
    pub stats: KernelStats,
}

#[derive(Debug, Default)]
struct DeviceClock {
    sim_seconds: f64,
    saturated_seconds: f64,
    kernel_launches: u64,
    blocks_launched: u64,
    total: BlockCost,
}

/// A simulated compute device (GPU by default, or a CPU for the scan
/// baselines). The device keeps a cumulative simulated clock so a whole
/// experiment (many launches) can be timed with one call.
#[derive(Debug)]
pub struct Device {
    model: DeviceModel,
    shared_capacity: usize,
    memory_capacity: usize,
    memory_used: Mutex<usize>,
    clock: Mutex<DeviceClock>,
    host_threads: usize,
}

impl Device {
    /// A simulated GPU.
    pub fn gpu(spec: GpuSpec) -> Self {
        Device {
            shared_capacity: spec.shared_bytes_per_block,
            memory_capacity: spec.memory_bytes,
            model: DeviceModel::Gpu(spec),
            memory_used: Mutex::new(0),
            clock: Mutex::new(DeviceClock::default()),
            host_threads: default_host_threads(),
        }
    }

    /// A simulated CPU with the same launch interface, used by the
    /// FastCPUScan baseline so all Figure 7 methods share one cost
    /// framework.
    pub fn cpu(spec: CpuSpec) -> Self {
        Device {
            model: DeviceModel::Cpu(spec),
            shared_capacity: usize::MAX,
            memory_capacity: usize::MAX,
            memory_used: Mutex::new(0),
            clock: Mutex::new(DeviceClock::default()),
            host_threads: default_host_threads(),
        }
    }

    /// The default simulated GPU (the paper's GTX TITAN).
    pub fn default_gpu() -> Self {
        Device::gpu(GpuSpec::default())
    }

    /// Restrict host-side parallelism (useful in tests and benches).
    pub fn with_host_threads(mut self, threads: usize) -> Self {
        self.host_threads = threads.max(1);
        self
    }

    /// Launch a kernel over `blocks` blocks. Blocks execute in parallel on
    /// host threads; results are returned in grid order.
    pub fn launch<R, F>(&self, blocks: usize, kernel: F) -> LaunchReport<R>
    where
        R: Send,
        F: Fn(&mut BlockCtx) -> R + Sync,
    {
        let mut slots: Vec<Option<(R, BlockCost)>> = Vec::with_capacity(blocks);
        slots.resize_with(blocks, || None);
        let next = AtomicUsize::new(0);
        let slots_mutex = Mutex::new(&mut slots);
        let workers = self.host_threads.min(blocks).max(1);

        if workers == 1 {
            // Nothing to gain from a scoped worker — single-block grid, or
            // a single-core host where blocks serialise anyway. Run the
            // grid inline on the calling thread: spawning a thread costs
            // more than many of the tiny hot-path launches.
            let mut guard = slots_mutex.lock();
            for id in 0..blocks {
                let mut ctx = BlockCtx::new(id, self.shared_capacity);
                let result = kernel(&mut ctx);
                guard[id] = Some((result, ctx.cost));
            }
        } else if blocks > 0 {
            crossbeam::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|_| {
                        // Each worker drains block ids and buffers results
                        // locally, taking the shared lock once per batch.
                        let mut local: Vec<(usize, R, BlockCost)> = Vec::new();
                        loop {
                            let id = next.fetch_add(1, Ordering::Relaxed);
                            if id >= blocks {
                                break;
                            }
                            let mut ctx = BlockCtx::new(id, self.shared_capacity);
                            let result = kernel(&mut ctx);
                            local.push((id, result, ctx.cost));
                            if local.len() >= 64 {
                                let mut guard = slots_mutex.lock();
                                for (i, r, c) in local.drain(..) {
                                    guard[i] = Some((r, c));
                                }
                            }
                        }
                        let mut guard = slots_mutex.lock();
                        for (i, r, c) in local {
                            guard[i] = Some((r, c));
                        }
                    });
                }
            })
            .expect("kernel worker panicked");
        }

        let mut results = Vec::with_capacity(blocks);
        let mut block_cycles = Vec::with_capacity(blocks);
        let mut total = BlockCost::default();
        let model = self.model.as_cost_model();
        for slot in slots {
            let (r, c) = slot.expect("every block must have run");
            block_cycles.push(model.block_cycles(&c));
            total.merge(&c);
            results.push(r);
        }
        let sim_seconds = model.makespan_seconds(&block_cycles);
        let saturated_seconds = block_cycles.iter().sum::<f64>()
            / (model.parallel_units().max(1) as f64 * model.clock_hz());
        let stats = KernelStats { blocks: blocks as u64, total, sim_seconds, saturated_seconds };

        if smiler_obs::enabled() {
            smiler_obs::count("gpu.launches", "", 1);
            smiler_obs::count("gpu.blocks", "", blocks as u64);
            smiler_obs::observe("gpu.sim_seconds", "", sim_seconds);
            smiler_obs::event("gpu.launch", "", &stats);
        }

        let mut clock = self.clock.lock();
        clock.sim_seconds += sim_seconds;
        clock.saturated_seconds += saturated_seconds;
        clock.kernel_launches += 1;
        clock.blocks_launched += blocks as u64;
        clock.total.merge(&total);

        LaunchReport { results, stats }
    }

    /// Cumulative simulated seconds across all launches since the last
    /// [`Device::reset_clock`].
    pub fn elapsed_seconds(&self) -> f64 {
        self.clock.lock().sim_seconds
    }

    /// Cumulative device-saturated seconds (see
    /// [`KernelStats::saturated_seconds`]) since the last reset. This is
    /// the meaningful aggregate when simulating a large sensor fleet that
    /// keeps every SM busy — the paper's operating point.
    pub fn saturated_seconds(&self) -> f64 {
        self.clock.lock().saturated_seconds
    }

    /// Number of kernel launches since the last reset.
    pub fn kernel_launches(&self) -> u64 {
        self.clock.lock().kernel_launches
    }

    /// Cumulative blocks across all launches since the last reset. Together
    /// with [`Device::kernel_launches`] this gives the mean grid width — the
    /// figure of merit for batched serving, where micro-batching should grow
    /// grids rather than multiply launches.
    pub fn blocks_launched(&self) -> u64 {
        self.clock.lock().blocks_launched
    }

    /// Per-block shared-memory budget in bytes. Callers batching many
    /// sensors into one grid use this to pre-screen kernels that could not
    /// fit, so an oversized request degrades before the launch instead of
    /// failing inside it.
    pub fn shared_capacity(&self) -> usize {
        self.shared_capacity
    }

    /// Reset the cumulative clock (between experiment phases).
    pub fn reset_clock(&self) {
        *self.clock.lock() = DeviceClock::default();
    }

    /// Try to reserve `bytes` of device memory (index residency, Fig 12c).
    /// Returns `false` without reserving when the capacity would be
    /// exceeded.
    pub fn try_reserve_memory(&self, bytes: usize) -> bool {
        let mut used = self.memory_used.lock();
        match used.checked_add(bytes) {
            Some(new_used) if new_used <= self.memory_capacity => {
                *used = new_used;
                true
            }
            _ => false,
        }
    }

    /// Release previously reserved device memory.
    pub fn release_memory(&self, bytes: usize) {
        let mut used = self.memory_used.lock();
        *used = used.saturating_sub(bytes);
    }

    /// Bytes currently reserved.
    pub fn memory_used(&self) -> usize {
        *self.memory_used.lock()
    }

    /// Total device memory capacity in bytes.
    pub fn memory_capacity(&self) -> usize {
        self.memory_capacity
    }
}

fn default_host_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_returns_results_in_grid_order() {
        let dev = Device::default_gpu();
        let report = dev.launch(100, |ctx| ctx.block_id() * 2);
        assert_eq!(report.results.len(), 100);
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(*r, i * 2);
        }
    }

    #[test]
    fn zero_blocks_is_a_noop() {
        let dev = Device::default_gpu();
        let report = dev.launch(0, |_| 0u8);
        assert!(report.results.is_empty());
        assert_eq!(report.stats.sim_seconds, 0.0);
        assert_eq!(dev.kernel_launches(), 1);
    }

    #[test]
    fn costs_accumulate_on_device_clock() {
        let dev = Device::default_gpu();
        dev.launch(10, |ctx| ctx.flops(1000));
        let t1 = dev.elapsed_seconds();
        assert!(t1 > 0.0);
        dev.launch(10, |ctx| ctx.flops(1000));
        assert!((dev.elapsed_seconds() - 2.0 * t1).abs() < 1e-15);
        dev.reset_clock();
        assert_eq!(dev.elapsed_seconds(), 0.0);
        assert_eq!(dev.kernel_launches(), 0);
    }

    #[test]
    fn blocks_launched_accumulates_grid_widths() {
        let dev = Device::default_gpu();
        dev.launch(10, |_| ());
        dev.launch(3, |_| ());
        assert_eq!(dev.kernel_launches(), 2);
        assert_eq!(dev.blocks_launched(), 13);
        dev.reset_clock();
        assert_eq!(dev.blocks_launched(), 0);
    }

    #[test]
    fn stats_sum_block_counts() {
        let dev = Device::default_gpu();
        let report = dev.launch(5, |ctx| {
            ctx.read_global(10);
            ctx.write_global(2);
            ctx.flops(100);
            ctx.sync();
        });
        assert_eq!(report.stats.blocks, 5);
        assert_eq!(report.stats.total.global_reads, 50);
        assert_eq!(report.stats.total.global_writes, 10);
        assert_eq!(report.stats.total.flops, 500);
        assert_eq!(report.stats.total.syncs, 5);
    }

    #[test]
    fn shared_memory_budget_enforced() {
        let dev = Device::default_gpu();
        let report = dev.launch(1, |ctx| {
            assert!(ctx.alloc_shared(16 * 1024).is_ok());
            assert!(ctx.alloc_shared(16 * 1024).is_ok());
            // 48 KiB budget: the third 32 KiB must fail.
            let err = ctx.alloc_shared(32 * 1024).unwrap_err();
            assert_eq!(err.capacity, 48 * 1024);
            ctx.shared_used()
        });
        assert_eq!(report.results[0], 32 * 1024);
    }

    #[test]
    fn cpu_device_is_slower_than_gpu_on_parallel_work() {
        let gpu = Device::default_gpu();
        let cpu = Device::cpu(CpuSpec::default());
        // Compute-bound work, like DTW verification: the GPU advantage
        // comes from arithmetic throughput, not bandwidth.
        let work = |ctx: &mut BlockCtx| {
            ctx.read_global(100);
            ctx.flops(50_000);
        };
        let g = gpu.launch(1000, work).stats.sim_seconds;
        let c = cpu.launch(1000, work).stats.sim_seconds;
        assert!(c > 10.0 * g, "cpu {c} vs gpu {g}");
    }

    #[test]
    fn memory_reservation_respects_capacity() {
        let spec = GpuSpec { memory_bytes: 1000, ..Default::default() };
        let dev = Device::gpu(spec);
        assert!(dev.try_reserve_memory(600));
        assert!(!dev.try_reserve_memory(600));
        assert_eq!(dev.memory_used(), 600);
        dev.release_memory(300);
        assert!(dev.try_reserve_memory(600));
        assert_eq!(dev.memory_used(), 900);
        dev.release_memory(10_000);
        assert_eq!(dev.memory_used(), 0);
    }

    #[test]
    fn parallel_launch_matches_serial_results() {
        let serial = Device::default_gpu().with_host_threads(1);
        let parallel = Device::default_gpu().with_host_threads(8);
        let kernel = |ctx: &mut BlockCtx| {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_mul(31).wrapping_add(i + ctx.block_id() as u64);
            }
            ctx.flops(100);
            acc
        };
        let a = serial.launch(257, kernel);
        let b = parallel.launch(257, kernel);
        assert_eq!(a.results, b.results);
        assert_eq!(a.stats, b.stats);
    }
}
