//! Block-level k-selection kernel.
//!
//! The paper's Selection phase (§4.3.3) uses the distributive-partitioning
//! k-selection of Alabi et al. with two extensions: *one block handles one
//! k-selection* (so many queries select concurrently) and *all k smallest
//! elements are returned*, not just the k-th. This module is that kernel:
//! [`select_k_smallest`] runs inside a block (taking the block's
//! [`BlockCtx`] for cost accounting) and the convenience launcher
//! [`launch_multi_select`] maps one block per query, exactly the paper's
//! grid shape.
//!
//! The algorithm repeatedly histograms the still-active candidates into
//! equal-width buckets over their value range, keeps every bucket strictly
//! below the one containing the k-th smallest, and recurses into that pivot
//! bucket. Each pass is one linear scan — the access pattern that makes it
//! GPU-friendly.

use crate::device::{BlockCtx, Device, LaunchReport};

/// Number of histogram buckets per partitioning pass.
const BUCKETS: usize = 32;
/// Below this many active candidates a direct sort is cheaper than another
/// pass (on a real GPU this is the in-warp bitonic-sort cutoff).
const SORT_CUTOFF: usize = 64;

/// Select the indices of the `k` smallest values, sorted ascending by value
/// (ties broken by index for determinism). Non-finite values are treated as
/// "filtered out" and never selected unless fewer than `k` finite values
/// exist.
///
/// Runs as a block-level kernel: every scan over candidates is reported to
/// `ctx` so the launch inherits the right simulated cost.
pub fn select_k_smallest(ctx: &mut BlockCtx, values: &[f64], k: usize) -> Vec<usize> {
    let mut active: Vec<usize> = (0..values.len()).filter(|&i| values[i].is_finite()).collect();
    ctx.read_global(values.len() as u64);
    if k == 0 {
        return Vec::new();
    }
    let mut result: Vec<usize> = Vec::with_capacity(k.min(active.len()));
    let mut remaining = k.min(active.len());

    while remaining > 0 {
        if active.len() <= remaining {
            result.extend_from_slice(&active);
            break;
        }
        if active.len() <= SORT_CUTOFF {
            // Terminal in-block sort of the small residue.
            ctx.access_shared((active.len() as f64 * (active.len() as f64).log2().max(1.0)) as u64);
            sort_by_value(&mut active, values);
            result.extend_from_slice(&active[..remaining]);
            break;
        }

        // One partitioning pass: min/max + histogram (two linear scans on a
        // real kernel are fused into one with registers; count it once).
        ctx.read_global(active.len() as u64);
        ctx.flops(2 * active.len() as u64);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &i in &active {
            lo = lo.min(values[i]);
            hi = hi.max(values[i]);
        }
        if lo == hi {
            // All remaining candidates are equal; any `remaining` of them do.
            result.extend_from_slice(&active[..remaining]);
            break;
        }

        let width = (hi - lo) / BUCKETS as f64;
        let bucket_of = |v: f64| (((v - lo) / width) as usize).min(BUCKETS - 1);
        let mut counts = [0usize; BUCKETS];
        for &i in &active {
            counts[bucket_of(values[i])] += 1;
        }
        ctx.access_shared(active.len() as u64); // histogram increments

        // Find the pivot bucket containing the remaining-th smallest.
        let mut below = 0usize;
        let mut pivot = 0usize;
        for (b, &c) in counts.iter().enumerate() {
            if below + c >= remaining {
                pivot = b;
                break;
            }
            below += c;
        }

        // Keep everything strictly below the pivot bucket; recurse into it.
        let mut pivot_members = Vec::with_capacity(counts[pivot]);
        for &i in &active {
            let b = bucket_of(values[i]);
            if b < pivot {
                result.push(i);
            } else if b == pivot {
                pivot_members.push(i);
            }
        }
        ctx.write_global(below as u64);
        remaining -= below;
        active = pivot_members;
    }

    sort_by_value(&mut result, values);
    result
}

fn sort_by_value(indices: &mut [usize], values: &[f64]) {
    indices.sort_by(|&a, &b| {
        values[a].partial_cmp(&values[b]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
}

/// Launch one k-selection per query: block `q` selects the `ks[q]` smallest
/// entries of `rows[q]` — the paper's "one block per query" extension.
pub fn launch_multi_select(
    device: &Device,
    rows: &[Vec<f64>],
    ks: &[usize],
) -> LaunchReport<Vec<usize>> {
    assert_eq!(rows.len(), ks.len(), "one k per query row");
    device.launch(rows.len(), |ctx| {
        let q = ctx.block_id();
        select_k_smallest(ctx, &rows[q], ks[q])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use proptest::prelude::*;

    fn run_select(values: &[f64], k: usize) -> Vec<usize> {
        let dev = Device::default_gpu().with_host_threads(1);
        let mut out = dev.launch(1, |ctx| select_k_smallest(ctx, values, k));
        out.results.pop().unwrap()
    }

    fn reference_select(values: &[f64], k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..values.len()).filter(|&i| values[i].is_finite()).collect();
        idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap().then(a.cmp(&b)));
        idx.truncate(k);
        idx
    }

    #[test]
    fn selects_smallest_sorted() {
        let values = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(run_select(&values, 3), vec![1, 3, 4]);
    }

    #[test]
    fn k_zero_and_k_over_len() {
        let values = [2.0, 1.0];
        assert_eq!(run_select(&values, 0), Vec::<usize>::new());
        assert_eq!(run_select(&values, 10), vec![1, 0]);
    }

    #[test]
    fn ignores_non_finite() {
        let values = [f64::INFINITY, 1.0, f64::NAN, 0.5, f64::INFINITY];
        assert_eq!(run_select(&values, 3), vec![3, 1]);
    }

    #[test]
    fn all_equal_values() {
        let values = [7.0; 100];
        let got = run_select(&values, 5);
        assert_eq!(got.len(), 5);
        assert!(got.iter().all(|&i| values[i] == 7.0));
    }

    #[test]
    fn large_input_matches_reference() {
        let values: Vec<f64> =
            (0..10_000).map(|i| ((i * 2654435761u64 as usize) % 9973) as f64).collect();
        assert_eq!(run_select(&values, 128), reference_select(&values, 128));
    }

    #[test]
    fn multi_select_one_block_per_query() {
        let dev = Device::default_gpu();
        let rows = vec![vec![3.0, 1.0, 2.0], vec![9.0, 8.0, 7.0, 6.0]];
        let report = launch_multi_select(&dev, &rows, &[2, 1]);
        assert_eq!(report.results[0], vec![1, 2]);
        assert_eq!(report.results[1], vec![3]);
        assert_eq!(report.stats.blocks, 2);
    }

    #[test]
    fn selection_cost_is_linear_ish() {
        // Two passes should not blow up cost: 10x data → ~10x sim time.
        let dev1 = Device::default_gpu().with_host_threads(1);
        let dev2 = Device::default_gpu().with_host_threads(1);
        let small: Vec<f64> = (0..1_000).map(|i| (i % 977) as f64).collect();
        let large: Vec<f64> = (0..10_000).map(|i| (i % 9973) as f64).collect();
        dev1.launch(1, |ctx| select_k_smallest(ctx, &small, 32));
        dev2.launch(1, |ctx| select_k_smallest(ctx, &large, 32));
        let ratio = dev2.elapsed_seconds() / dev1.elapsed_seconds();
        assert!(ratio < 20.0, "selection cost ratio {ratio}");
    }

    proptest! {
        #[test]
        fn matches_sorting_reference(
            values in prop::collection::vec(-1e6f64..1e6, 0..500),
            k in 0usize..600,
        ) {
            prop_assert_eq!(run_select(&values, k), reference_select(&values, k));
        }

        #[test]
        fn result_is_sorted_by_value(
            values in prop::collection::vec(-100f64..100.0, 1..300),
        ) {
            let got = run_select(&values, 10);
            for w in got.windows(2) {
                prop_assert!(values[w[0]] <= values[w[1]]);
            }
        }
    }
}
