//! Instantiations of the abstract semi-lazy predictor `f(·)` (paper
//! Def. 3.1): the Aggregation Regression predictor (§5.2.1) and the
//! Gaussian Process predictor with online-trained hyperparameters
//! (§5.2.2).

use smiler_gp::{train_full, train_online, GpModel, Hyperparams, TrainConfig};
use smiler_linalg::{stats, Matrix};

/// The kNN data one abstract predictor consumes: neighbour segments
/// `X_{k,d}`, their `h`-step-ahead values `Y_h`, and the test input
/// `x_{0,d}` (the sensor's latest segment).
#[derive(Debug, Clone)]
pub struct KnnData {
    /// `k × d` matrix of neighbour segments.
    pub x: Matrix,
    /// The `h`-step-ahead value of each neighbour.
    pub y: Vec<f64>,
    /// The current query segment.
    pub x0: Vec<f64>,
}

impl KnnData {
    /// Number of neighbours `k`.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the kNN set is empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }
}

/// Which instantiation of the abstract predictor a sensor uses —
/// SMiLer-AR vs SMiLer-GP in the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PredictorKind {
    /// Aggregation Regression (§5.2.1): mean/variance of the kNN labels.
    Aggregation,
    /// Gaussian Process (§5.2.2) with online LOO-CG hyperparameter
    /// training.
    GaussianProcess,
}

/// The simple aggregation predictor (paper Eqns 10–13): pseudo-mean and
/// pseudo-variance of the neighbour labels.
#[derive(Debug, Clone, Default)]
pub struct ArPredictor;

impl ArPredictor {
    /// Predict `N(ũ₀, σ̃₀²)` from the kNN labels. Returns `None` on empty
    /// kNN data.
    pub fn predict(&self, data: &KnnData) -> Option<(f64, f64)> {
        self.predict_labels(&data.y)
    }

    /// [`ArPredictor::predict`] from the labels alone — aggregation never
    /// reads the neighbour segments, so prefix-k ensemble cells can share
    /// one label vector.
    pub fn predict_labels(&self, y: &[f64]) -> Option<(f64, f64)> {
        if y.is_empty() {
            return None;
        }
        let mean = stats::mean(y);
        // Pseudo-variance floored: a degenerate neighbourhood (all labels
        // equal) still must not claim zero uncertainty.
        let var = stats::variance(y).max(1e-9);
        Some((mean, var))
    }
}

/// One GP cell of the ensemble matrix: carries its hyperparameters across
/// continuous-prediction steps so each step's training is a warm start
/// ("the energy paid for the training process in previous steps is
/// partially preserved", §5.2.2).
#[derive(Debug, Clone)]
pub struct GpCellPredictor {
    hyper: Option<Hyperparams>,
    train_config: TrainConfig,
    /// Retrain hyperparameters every `retrain_every` steps (1 = the paper's
    /// every-step online training; larger values trade accuracy for time).
    retrain_every: usize,
    steps_since_train: usize,
}

impl GpCellPredictor {
    /// New cell with the given training configuration.
    pub fn new(train_config: TrainConfig, retrain_every: usize) -> Self {
        GpCellPredictor {
            hyper: None,
            train_config,
            retrain_every: retrain_every.max(1),
            steps_since_train: 0,
        }
    }

    /// The cell's current hyperparameters, if trained.
    pub fn hyper(&self) -> Option<Hyperparams> {
        self.hyper
    }

    /// Reinstall previously trained hyperparameters (snapshot restore).
    pub fn set_hyper(&mut self, hyper: Option<Hyperparams>) {
        self.hyper = hyper;
        self.steps_since_train = 0;
    }

    /// Predict `N(u₀, σ₀²)` by conditioning a GP on the kNN data
    /// (Eqns 14–17). The first call trains hyperparameters from a cold
    /// start; subsequent calls warm-start with a fixed CG budget.
    pub fn predict(&mut self, data: &KnnData) -> Option<(f64, f64)> {
        let _span = smiler_obs::span("gp.predict");
        if data.is_empty() {
            return None;
        }
        // Degenerate neighbourhoods (k < 3) cannot support hyperparameter
        // training; fall back to aggregation.
        if data.len() < 3 {
            return ArPredictor.predict(data);
        }
        // The paper's GP has a zero mean function (Appendix B.3), which is
        // appropriate for the z-normalised *series* but not for the local
        // label neighbourhood: centre the targets on their mean so the GP
        // models the residual structure and reverts to the kNN average —
        // not to zero — when the kernel carries little information.
        let y_mean = stats::mean(&data.y);
        let centred: Vec<f64> = data.y.iter().map(|y| y - y_mean).collect();
        let hyper = self.ensure_hyper(&data.x, &centred);
        match GpModel::fit(data.x.clone(), &centred, hyper) {
            Ok(gp) => {
                let (mean, var) = gp.predict(&data.x0);
                Some((mean + y_mean, var))
            }
            // A pathological Gram matrix: fall back to aggregation rather
            // than dropping the prediction.
            Err(_) => ArPredictor.predict(data),
        }
    }

    /// Train (cold start), warm-start-retrain, or reuse the cell's
    /// hyperparameters for this step's training data, following the
    /// `retrain_every` schedule. Exposed so an ensemble column can train
    /// once on its largest-k cell and share the result (see
    /// `smiler_gp::PrefixGp`).
    pub fn ensure_hyper(&mut self, x: &Matrix, centred_y: &[f64]) -> Hyperparams {
        let plan = self.plan_hyper();
        let h = Self::compute_hyper(plan, x, centred_y, &self.train_config);
        self.install_hyper(h);
        h
    }

    /// Decide what this step's training looks like and advance the
    /// `retrain_every` bookkeeping. Splitting the (mutating, cheap)
    /// decision from the (pure, expensive) [`Self::compute_hyper`] lets
    /// independent ensemble columns run their training on worker threads
    /// while the cell state stays on the caller.
    pub fn plan_hyper(&mut self) -> HyperPlan {
        match self.hyper {
            None => {
                smiler_obs::count("gp.warm_start", "cold", 1);
                self.steps_since_train = 0;
                HyperPlan::Cold
            }
            Some(prev) => {
                self.steps_since_train += 1;
                if self.steps_since_train >= self.retrain_every {
                    smiler_obs::count("gp.warm_start", "online", 1);
                    self.steps_since_train = 0;
                    HyperPlan::Online(prev)
                } else {
                    smiler_obs::count("gp.warm_start", "hit", 1);
                    HyperPlan::Reuse(prev)
                }
            }
        }
    }

    /// The degraded-serving plan: reuse the stored hyperparameters without
    /// training and without advancing the retrain cadence. `None` when the
    /// cell has never been trained — under deadline pressure an untrained
    /// column is served by aggregation rather than paying for a cold start.
    pub fn plan_cached(&self) -> Option<HyperPlan> {
        self.hyper.map(HyperPlan::Reuse)
    }

    /// Execute a [`HyperPlan`] on the given training data. Pure: touches no
    /// cell state, so it may run on any thread.
    pub fn compute_hyper(
        plan: HyperPlan,
        x: &Matrix,
        centred_y: &[f64],
        config: &TrainConfig,
    ) -> Hyperparams {
        match plan {
            HyperPlan::Cold => train_full(x, centred_y, config),
            HyperPlan::Online(prev) => train_online(x, centred_y, prev, config),
            HyperPlan::Reuse(h) => h,
        }
    }

    /// Store the outcome of [`Self::compute_hyper`] back into the cell.
    pub fn install_hyper(&mut self, hyper: Hyperparams) {
        self.hyper = Some(hyper);
    }

    /// The cell's training configuration.
    pub fn train_config(&self) -> &TrainConfig {
        &self.train_config
    }

    /// Steps since the last hyperparameter (re)training — the retrain
    /// cadence position. Snapshot plumbing: restoring this makes the
    /// restored cell retrain on exactly the same future step the original
    /// would have.
    pub fn steps_since_train(&self) -> usize {
        self.steps_since_train
    }

    /// Restore the retrain cadence position (snapshot plumbing). Must be
    /// called *after* [`GpCellPredictor::set_hyper`], which resets it.
    pub fn set_steps_since_train(&mut self, steps: usize) {
        self.steps_since_train = steps;
    }
}

/// The outcome of [`GpCellPredictor::plan_hyper`]: what (if any) training
/// this step's hyperparameters need.
#[derive(Debug, Clone, Copy)]
pub enum HyperPlan {
    /// No previous hyperparameters: full training from a heuristic start.
    Cold,
    /// Warm-start online training from the previous step's optimum.
    Online(Hyperparams),
    /// Within the retrain cadence: reuse without training.
    Reuse(Hyperparams),
}

/// Capacity of the rolling model-quality window: enough steps to smooth
/// sensor noise, small enough that a drifting sensor shows up within a
/// minute of one-second observations.
const QUALITY_WINDOW: usize = 64;

/// Rolling one-step forecast-quality bookkeeping for a sensor: absolute
/// residuals of `h = 1` predictions scored against the observation that
/// arrives next, and whether that observation landed inside the predicted
/// 95% interval. Fixed-capacity rings — steady-state recording allocates
/// nothing.
#[derive(Debug, Clone)]
pub struct QualityStats {
    residuals: std::collections::VecDeque<f64>,
    covered: std::collections::VecDeque<bool>,
    samples: u64,
}

impl Default for QualityStats {
    fn default() -> Self {
        QualityStats {
            residuals: std::collections::VecDeque::with_capacity(QUALITY_WINDOW),
            covered: std::collections::VecDeque::with_capacity(QUALITY_WINDOW),
            samples: 0,
        }
    }
}

impl QualityStats {
    /// Record one scored forecast: the absolute residual and whether the
    /// realised value fell inside the predicted 95% interval. Non-finite
    /// residuals are dropped (a NaN would poison the rolling mean).
    pub fn record(&mut self, residual_abs: f64, covered: bool) {
        if !residual_abs.is_finite() {
            return;
        }
        if self.residuals.len() == QUALITY_WINDOW {
            self.residuals.pop_front();
            self.covered.pop_front();
        }
        self.residuals.push_back(residual_abs);
        self.covered.push_back(covered);
        self.samples += 1;
    }

    /// The current rolling summary. Cheap (sums the ≤64-entry window).
    pub fn snapshot(&self) -> QualitySnapshot {
        let window = self.residuals.len() as u64;
        if window == 0 {
            return QualitySnapshot { samples: self.samples, ..QualitySnapshot::default() };
        }
        let mae = self.residuals.iter().sum::<f64>() / window as f64;
        let inside = self.covered.iter().filter(|&&c| c).count() as f64;
        QualitySnapshot { samples: self.samples, window, mae, coverage: inside / window as f64 }
    }
}

/// A point-in-time summary of [`QualityStats`], exposed per sensor through
/// the serving status report. All-zero until the first scored forecast.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize)]
pub struct QualitySnapshot {
    /// Scored one-step forecasts over the sensor's lifetime.
    pub samples: u64,
    /// Scored forecasts currently in the rolling window (≤ 64).
    pub window: u64,
    /// Rolling mean absolute one-step residual (0.0 on an empty window).
    pub mae: f64,
    /// Fraction of realised values inside the predicted 95% interval
    /// (0.0 on an empty window; healthy GP sensors sit near 0.95).
    pub coverage: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knn_data(labels: &[f64]) -> KnnData {
        let k = labels.len();
        let x = Matrix::from_fn(k, 4, |i, j| (i * 4 + j) as f64 * 0.1);
        KnnData { x, y: labels.to_vec(), x0: vec![0.05, 0.15, 0.25, 0.35] }
    }

    #[test]
    fn ar_matches_paper_equations() {
        let data = knn_data(&[1.0, 2.0, 3.0, 4.0]);
        let (mean, var) = ArPredictor.predict(&data).unwrap();
        assert_eq!(mean, 2.5);
        assert_eq!(var, 1.25); // population variance (Eqn 13)
    }

    #[test]
    fn ar_empty_returns_none() {
        let data = KnnData { x: Matrix::zeros(0, 4), y: vec![], x0: vec![0.0; 4] };
        assert!(ArPredictor.predict(&data).is_none());
    }

    #[test]
    fn ar_constant_labels_have_floored_variance() {
        let (_, var) = ArPredictor.predict(&knn_data(&[2.0, 2.0, 2.0])).unwrap();
        assert!(var > 0.0);
    }

    #[test]
    fn gp_first_call_trains_then_warm_starts() {
        let mut cell = GpCellPredictor::new(TrainConfig::default(), 1);
        assert!(cell.hyper().is_none());
        // Smooth structured neighbourhood.
        let k = 10;
        let x = Matrix::from_fn(k, 3, |i, j| (i as f64 + j as f64) * 0.3);
        let y: Vec<f64> = (0..k).map(|i| (i as f64 * 0.3).sin()).collect();
        let data = KnnData { x, y, x0: vec![0.3, 0.6, 0.9] };
        let (mean, var) = cell.predict(&data).unwrap();
        assert!(mean.is_finite() && var > 0.0);
        let h1 = cell.hyper().unwrap();
        cell.predict(&data).unwrap();
        let h2 = cell.hyper().unwrap();
        // Online step keeps hyperparameters near the previous optimum.
        assert!((h1.theta0.ln() - h2.theta0.ln()).abs() < 2.0);
    }

    #[test]
    fn gp_interpolates_structured_neighborhood() {
        // Neighbours on a sine curve: the GP must predict the test point
        // far better than the plain mean.
        let mut cell = GpCellPredictor::new(TrainConfig::default(), 1);
        let k = 12;
        let x = Matrix::from_fn(k, 1, |i, _| i as f64 * 0.4);
        let y: Vec<f64> = (0..k).map(|i| (i as f64 * 0.4).sin()).collect();
        let x0 = vec![1.9];
        let truth = 1.9f64.sin();
        let data = KnnData { x, y: y.clone(), x0 };
        let (gp_mean, _) = cell.predict(&data).unwrap();
        let ar_mean = stats::mean(&y);
        assert!((gp_mean - truth).abs() < (ar_mean - truth).abs() / 2.0);
    }

    #[test]
    fn gp_tiny_neighborhood_falls_back_to_ar() {
        let mut cell = GpCellPredictor::new(TrainConfig::default(), 1);
        let data = knn_data(&[1.0, 3.0]);
        let (mean, _) = cell.predict(&data).unwrap();
        assert_eq!(mean, 2.0);
        assert!(cell.hyper().is_none(), "fallback must not fabricate hyperparameters");
    }

    #[test]
    fn retrain_every_skips_training() {
        let mut cell = GpCellPredictor::new(TrainConfig::default(), 3);
        let k = 8;
        let x = Matrix::from_fn(k, 2, |i, j| (i + j) as f64 * 0.5);
        let y: Vec<f64> = (0..k).map(|i| i as f64 * 0.1).collect();
        let data = KnnData { x, y, x0: vec![0.5, 1.0] };
        cell.predict(&data).unwrap();
        let h1 = cell.hyper().unwrap();
        cell.predict(&data).unwrap(); // step 1, no retrain
        assert_eq!(cell.hyper().unwrap(), h1);
        cell.predict(&data).unwrap(); // step 2, no retrain
        assert_eq!(cell.hyper().unwrap(), h1);
        cell.predict(&data).unwrap(); // step 3 → retrain fires
                                      // (value may or may not move; the counter must have reset)
        assert_eq!(cell.steps_since_train, 0);
    }

    #[test]
    fn quality_stats_empty_snapshot_is_zero_not_nan() {
        let q = QualityStats::default();
        let s = q.snapshot();
        assert_eq!(s, QualitySnapshot::default());
        assert_eq!(s.mae, 0.0);
        assert_eq!(s.coverage, 0.0);
    }

    #[test]
    fn quality_stats_window_rolls() {
        let mut q = QualityStats::default();
        for _ in 0..QUALITY_WINDOW {
            q.record(10.0, false);
        }
        // Overwrite the whole window with small, covered residuals.
        for _ in 0..QUALITY_WINDOW {
            q.record(1.0, true);
        }
        let s = q.snapshot();
        assert_eq!(s.samples, 2 * QUALITY_WINDOW as u64);
        assert_eq!(s.window, QUALITY_WINDOW as u64);
        assert!((s.mae - 1.0).abs() < 1e-12);
        assert_eq!(s.coverage, 1.0);
    }

    #[test]
    fn quality_stats_drops_non_finite() {
        let mut q = QualityStats::default();
        q.record(f64::NAN, true);
        q.record(f64::INFINITY, true);
        q.record(2.0, false);
        let s = q.snapshot();
        assert_eq!(s.samples, 1);
        assert_eq!(s.mae, 2.0);
        assert_eq!(s.coverage, 0.0);
    }
}
