//! Graceful degradation for the serving path.
//!
//! A prediction system deployed as infrastructure must degrade rather than
//! fail: a malformed observation, a non-PD Gram matrix or a blown latency
//! budget on one sensor must never take the fleet down. This module defines
//! the per-request **degradation ladder** — each rung trades accuracy for
//! latency and robustness — together with the request policy that drives
//! rung selection and the typed errors the serving path returns instead of
//! panicking.
//!
//! The ladder, least to most degraded:
//!
//! 1. [`DegradationLevel::FullEnsemble`] — the paper's full pipeline:
//!    suffix kNN search, per-column online GP hyperparameter training,
//!    ensemble fusion.
//! 2. [`DegradationLevel::CachedHyper`] — search and GP inference run, but
//!    hyperparameter (re)training is skipped: each column reuses its last
//!    trained hyperparameters (columns never trained fall back to
//!    aggregation).
//! 3. [`DegradationLevel::Aggregation`] — search runs, but every cell
//!    predicts by aggregation over the kNN labels (no GP math at all).
//! 4. [`DegradationLevel::LastValue`] — no search: hold the last finite
//!    observation with a wide variance.
//!
//! Rung selection combines the caller's deadline budget (checkpointed at
//! request entry and after the search step) with the sensor's recent error
//! state (consecutive GP failures park the sensor on aggregation for a
//! cooldown period).

use smiler_index::SearchError;
use std::time::Duration;

/// One rung of the degradation ladder. Ordered: a *greater* level is *more*
/// degraded, so `a.max(b)` means "at least as degraded as both".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize)]
pub enum DegradationLevel {
    /// Full pipeline: search + online GP training + ensemble fusion.
    FullEnsemble,
    /// Search + GP inference with cached hyperparameters (no retraining).
    CachedHyper,
    /// Search + aggregation over kNN labels (no GP).
    Aggregation,
    /// Last finite observation held, wide variance (no search).
    LastValue,
}

impl DegradationLevel {
    /// Every rung, least to most degraded; position i satisfies
    /// `ALL[i].index() == i`. Lets telemetry keep dense per-rung arrays.
    pub const ALL: [DegradationLevel; 4] = [
        DegradationLevel::FullEnsemble,
        DegradationLevel::CachedHyper,
        DegradationLevel::Aggregation,
        DegradationLevel::LastValue,
    ];

    /// Dense index of the rung (0 = full ensemble … 3 = last value).
    pub fn index(self) -> usize {
        match self {
            DegradationLevel::FullEnsemble => 0,
            DegradationLevel::CachedHyper => 1,
            DegradationLevel::Aggregation => 2,
            DegradationLevel::LastValue => 3,
        }
    }

    /// Stable label for metrics and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            DegradationLevel::FullEnsemble => "full_ensemble",
            DegradationLevel::CachedHyper => "cached_hyper",
            DegradationLevel::Aggregation => "aggregation",
            DegradationLevel::LastValue => "last_value",
        }
    }

    /// The more degraded of the two rungs.
    pub fn at_least(self, other: DegradationLevel) -> DegradationLevel {
        self.max(other)
    }

    /// The entry rung a serving queue at `depth`/`capacity` should impose:
    /// below half full nothing degrades, then each quarter of remaining
    /// headroom steps one rung down the ladder. A full (or zero-capacity)
    /// queue maps to the last-value hold — the same rung shed callers are
    /// told to fall back to ([`ServeError::shed_level`]).
    ///
    /// [`ServeError::shed_level`]: crate::serve::ServeError::shed_level
    pub fn for_queue_pressure(depth: usize, capacity: usize) -> DegradationLevel {
        if capacity == 0 || depth >= capacity {
            DegradationLevel::LastValue
        } else if depth * 2 < capacity {
            DegradationLevel::FullEnsemble
        } else if depth * 4 < capacity * 3 {
            DegradationLevel::CachedHyper
        } else {
            DegradationLevel::Aggregation
        }
    }
}

/// Per-request serving policy: how much latency the request may spend and
/// how aggressively the sensor backs off after repeated GP failures.
///
/// The default policy (no deadline, full ensemble, back off after 3
/// consecutive failing steps) makes the robust path bit-identical to the
/// original pipeline on healthy sensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestPolicy {
    /// Wall-clock budget for one prediction request. Checkpoints: already
    /// exhausted at entry → [`DegradationLevel::LastValue`]; exhausted
    /// after the search step → [`DegradationLevel::Aggregation`]; more
    /// than half spent after the search step →
    /// [`DegradationLevel::CachedHyper`]. `None` disables deadline
    /// degradation.
    pub deadline: Option<Duration>,
    /// The least degraded rung this request may use (callers can force a
    /// cheap prediction by starting further down the ladder).
    pub entry_level: DegradationLevel,
    /// After this many consecutive steps with GP failures, the sensor is
    /// parked on [`DegradationLevel::Aggregation`] for
    /// [`RequestPolicy::gp_cooldown_steps`] steps.
    pub gp_failure_threshold: u32,
    /// Length of the aggregation cooldown after repeated GP failures.
    pub gp_cooldown_steps: u32,
}

impl Default for RequestPolicy {
    fn default() -> Self {
        RequestPolicy {
            deadline: None,
            entry_level: DegradationLevel::FullEnsemble,
            gp_failure_threshold: 3,
            gp_cooldown_steps: 8,
        }
    }
}

impl RequestPolicy {
    /// The default policy with a wall-clock deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        RequestPolicy { deadline: Some(deadline), ..RequestPolicy::default() }
    }
}

/// A served prediction: the forecast plus how it was produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted mean.
    pub mean: f64,
    /// Predicted variance.
    pub variance: f64,
    /// The ladder rung that produced the forecast.
    pub level: DegradationLevel,
    /// Whether the request finished past its deadline (degradation bounds
    /// the overrun; it cannot cancel work already in flight).
    pub deadline_missed: bool,
    /// Wall-clock time the request took.
    pub elapsed: Duration,
}

impl Prediction {
    /// Whether the forecast came from anything below the full pipeline.
    pub fn degraded(&self) -> bool {
        self.level != DegradationLevel::FullEnsemble
    }
}

/// Typed errors of the fallible serving path — returned where the legacy
/// API panicked. A returned error means even the bottom of the ladder
/// could not produce a forecast (or the caller broke the contract).
#[derive(Debug, Clone, PartialEq)]
pub enum PredictError {
    /// The requested horizon is zero or exceeds the configured `h_max`.
    HorizonOutOfRange {
        /// The requested horizon.
        h: usize,
        /// The largest configured horizon.
        h_max: usize,
    },
    /// The suffix kNN search failed and the failure was not degradable
    /// (e.g. caller bookkeeping passed an out-of-range candidate bound).
    Search(SearchError),
    /// The history holds no finite value to fall back on.
    NoFiniteHistory,
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::HorizonOutOfRange { h, h_max } => {
                write!(f, "horizon {h} out of configured range 1..={h_max}")
            }
            PredictError::Search(e) => write!(f, "suffix kNN search failed: {e}"),
            PredictError::NoFiniteHistory => {
                write!(f, "history holds no finite value to fall back on")
            }
        }
    }
}

impl std::error::Error for PredictError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PredictError::Search(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SearchError> for PredictError {
    fn from(e: SearchError) -> Self {
        PredictError::Search(e)
    }
}

/// Rolling error bookkeeping of one sensor, driving the cooldown rung and
/// the health metrics. Serialisable: a restored sensor that was cooling
/// down must keep cooling down, or a restart would silently clear the
/// degradation a failing Gram matrix earned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ErrorState {
    /// Consecutive prediction steps in which at least one GP column failed
    /// to factorise (reset by a clean full/cached-hyper step).
    pub consecutive_gp_failures: u32,
    /// Remaining steps of the aggregation cooldown (0 = not cooling down).
    pub cooldown_remaining: u32,
    /// Total GP column failures over the sensor's lifetime.
    pub total_gp_failures: u64,
    /// Total search errors over the sensor's lifetime.
    pub total_search_errors: u64,
}

impl ErrorState {
    /// Whether the sensor currently serves degraded by its own error state
    /// (as opposed to deadline pressure).
    pub fn cooling_down(&self) -> bool {
        self.cooldown_remaining > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_orders_by_degradation() {
        use DegradationLevel::*;
        assert!(FullEnsemble < CachedHyper);
        assert!(CachedHyper < Aggregation);
        assert!(Aggregation < LastValue);
        assert_eq!(FullEnsemble.at_least(Aggregation), Aggregation);
        assert_eq!(LastValue.at_least(CachedHyper), LastValue);
    }

    #[test]
    fn default_policy_is_transparent() {
        let p = RequestPolicy::default();
        assert_eq!(p.deadline, None);
        assert_eq!(p.entry_level, DegradationLevel::FullEnsemble);
    }

    #[test]
    fn errors_display_and_chain() {
        let e = PredictError::Search(SearchError::NonFiniteQuery { length: 8 });
        assert!(e.to_string().contains("non-finite"));
        assert!(std::error::Error::source(&e).is_some());
        let e = PredictError::HorizonOutOfRange { h: 0, h_max: 30 };
        assert!(e.to_string().contains("out of configured range"));
    }
}
