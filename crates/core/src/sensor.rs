//! The per-sensor SMiLer predictor: Search Step + Prediction Step (Fig. 3).
//!
//! One [`SensorPredictor`] owns the sensor's [`SmilerIndex`], an ensemble
//! matrix per horizon, and the per-cell GP hyperparameter state. Each
//! prediction step runs ONE suffix kNN search (shared by every ensemble
//! cell and horizon — the whole point of the Suffix kNN formulation), then
//! instantiates the abstract predictors on prefix-k subsets of the results.

use crate::degrade::{DegradationLevel, ErrorState, PredictError, Prediction, RequestPolicy};
use crate::ensemble::{EnsembleConfig, EnsembleMatrix};
use crate::predictor::{
    ArPredictor, GpCellPredictor, HyperPlan, KnnData, PredictorKind, QualitySnapshot, QualityStats,
};
use smiler_gp::{GpError, GpModel, GpScratch, Hyperparams, PrefixGp, TrainConfig};
use smiler_gpu::Device;
use smiler_index::{IndexParams, SearchError, SearchOutput, SmilerIndex, ThresholdStrategy};
use smiler_linalg::{stats, Matrix};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of one SMiLer sensor predictor (paper Table 2 defaults).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SmilerConfig {
    /// Sakoe-Chiba warping width ρ.
    pub rho: usize,
    /// Window length ω.
    pub omega: usize,
    /// Ensemble configuration (EKV × ELV and mode).
    pub ensemble: EnsembleConfig,
    /// Largest horizon that will ever be requested; kNN candidates keep
    /// `h_max` labels of headroom so every neighbour is usable at every
    /// horizon.
    pub h_max: usize,
    /// GP hyperparameter training configuration.
    pub train: TrainConfig,
    /// Retrain GP hyperparameters every this many steps (1 = paper).
    pub retrain_every: usize,
    /// Filter threshold strategy of the index.
    pub threshold: ThresholdStrategy,
}

impl Default for SmilerConfig {
    fn default() -> Self {
        SmilerConfig {
            rho: 8,
            omega: 16,
            ensemble: EnsembleConfig::default(),
            h_max: 30,
            train: TrainConfig::default(),
            retrain_every: 1,
            threshold: ThresholdStrategy::ExactKBest,
        }
    }
}

impl SmilerConfig {
    /// A small configuration for unit tests and doctests.
    pub fn small_for_tests() -> Self {
        SmilerConfig {
            rho: 3,
            omega: 4,
            ensemble: EnsembleConfig {
                ekv: vec![3, 5],
                elv: vec![8, 16],
                mode: crate::ensemble::EnsembleMode::Full,
            },
            h_max: 8,
            train: TrainConfig { full_iters: 10, online_steps: 2 },
            retrain_every: 1,
            threshold: ThresholdStrategy::ExactKBest,
        }
    }

    fn index_params(&self) -> IndexParams {
        IndexParams {
            rho: self.rho,
            omega: self.omega,
            lengths: self.ensemble.elv.clone(),
            // Zero only for an empty EKV, which `IndexParams::validate`
            // rejects at build time with a proper message.
            k_max: self.ensemble.ekv.iter().copied().max().unwrap_or_default(),
        }
    }
}

/// Per-cell predictions of one step: `None` for asleep or failed cells.
type CellPredictions = Vec<Option<(f64, f64)>>;

/// Per-cell predictor state.
#[derive(Debug, Clone)]
enum CellState {
    Ar,
    Gp(GpCellPredictor),
}

/// Ensemble + cell state for one horizon.
#[derive(Debug)]
struct HorizonState {
    ensemble: EnsembleMatrix,
    cells: Vec<CellState>,
    /// Predictions awaiting their realised value: (absolute target index,
    /// per-cell predictions) — consumed by the λ update when the value
    /// arrives.
    pending: VecDeque<(usize, CellPredictions)>,
}

/// Decoded per-horizon state handed to
/// [`SensorPredictor::install_horizon_snapshots`] by the restore path.
pub(crate) struct RestoredHorizon {
    pub(crate) ensemble: EnsembleMatrix,
    pub(crate) gp_hypers: Vec<Option<smiler_gp::Hyperparams>>,
    pub(crate) pending: Vec<crate::snapshot::PendingPrediction>,
    pub(crate) gp_cadence: Vec<usize>,
}

/// Reusable buffers for the prediction step: GP triangular-solve scratch
/// and the per-cell centred-target vector. Lives on the predictor so the
/// steady-state predict loop performs no heap allocations in the GP math.
#[derive(Debug, Default)]
struct PredictScratch {
    gp: GpScratch,
    centred: Vec<f64>,
}

/// A fault the test harness can inject into a predictor to exercise the
/// fleet's isolation and degradation machinery.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the top of every prediction (worker-isolation tests).
    PanicOnPredict,
    /// Force non-finite hyperparameters into every GP column so the Gram
    /// matrix cannot be factorised (the non-PD Cholesky failure path).
    BadGram,
}

/// The per-sensor semi-lazy predictor.
#[derive(Debug)]
pub struct SensorPredictor {
    device: Arc<Device>,
    sensor_id: usize,
    config: SmilerConfig,
    kind: PredictorKind,
    index: SmilerIndex,
    /// Search result reused across horizons within one step.
    cache: Option<(usize, SearchOutput)>,
    horizons: HashMap<usize, HorizonState>,
    scratch: PredictScratch,
    /// Rolling error bookkeeping (degradation cooldown, health metrics).
    errors: ErrorState,
    /// Rolling one-step forecast quality (residual MAE, interval coverage).
    quality: QualityStats,
    /// The most recent `h = 1` forecast awaiting its realisation:
    /// `(target series length, mean, variance)`. Scored (then cleared) by
    /// the observation that brings the series to that length.
    pending_one_step: Option<(usize, f64, f64)>,
    /// Test-harness fault injection; `None` in production.
    injected: Option<FaultKind>,
}

impl SensorPredictor {
    /// Build a predictor over a sensor's (normalised) history.
    ///
    /// # Panics
    /// Panics if the history is shorter than the master query plus the
    /// horizon headroom.
    pub fn new(
        device: Arc<Device>,
        sensor_id: usize,
        history: Vec<f64>,
        config: SmilerConfig,
        kind: PredictorKind,
    ) -> Self {
        let params = config.index_params();
        let index = SmilerIndex::build(&device, history, params).with_threshold(config.threshold);
        SensorPredictor {
            device,
            sensor_id,
            config,
            kind,
            index,
            cache: None,
            horizons: HashMap::new(),
            scratch: PredictScratch::default(),
            errors: ErrorState::default(),
            quality: QualityStats::default(),
            pending_one_step: None,
            injected: None,
        }
    }

    /// The sensor's rolling one-step forecast-quality summary.
    pub fn quality_snapshot(&self) -> QualitySnapshot {
        self.quality.snapshot()
    }

    /// The sensor's rolling error state (cooldown, failure totals).
    pub fn error_state(&self) -> ErrorState {
        self.errors
    }

    /// Inject a fault for isolation/degradation tests.
    #[doc(hidden)]
    pub fn inject_fault(&mut self, fault: FaultKind) {
        self.injected = Some(fault);
    }

    /// Clear an injected fault.
    #[doc(hidden)]
    pub fn clear_fault(&mut self) {
        self.injected = None;
    }

    /// Sensor identifier.
    pub fn sensor_id(&self) -> usize {
        self.sensor_id
    }

    /// The sensor history (normalised).
    pub fn history(&self) -> &[f64] {
        self.index.series()
    }

    /// Device memory footprint of the sensor's index (Fig 12c).
    pub fn device_bytes(&self) -> usize {
        self.index.device_bytes()
    }

    /// The predictor configuration.
    pub fn config(&self) -> &SmilerConfig {
        &self.config
    }

    /// Which abstract predictor instantiates the cells.
    pub fn kind(&self) -> PredictorKind {
        self.kind
    }

    /// Per-horizon adaptive state for [`crate::snapshot`], including the
    /// transient per-step state (pending predictions, retrain cadence) the
    /// durable checkpoint needs for bitwise restart continuation.
    pub(crate) fn horizon_snapshots(&self) -> Vec<crate::snapshot::HorizonSnapshot> {
        self.horizons
            .iter()
            .map(|(&h, state)| {
                let mut hypers = Vec::with_capacity(state.cells.len());
                let mut cadence = Vec::with_capacity(state.cells.len());
                for c in &state.cells {
                    match c {
                        CellState::Ar => {
                            hypers.push(None);
                            cadence.push(0);
                        }
                        CellState::Gp(cell) => {
                            hypers.push(cell.hyper());
                            cadence.push(cell.steps_since_train());
                        }
                    }
                }
                let pending = state
                    .pending
                    .iter()
                    .map(|(target, cells)| crate::snapshot::PendingPrediction {
                        target: *target,
                        cells: cells.clone(),
                    })
                    .collect();
                crate::snapshot::HorizonSnapshot {
                    horizon: h,
                    ensemble: state.ensemble.snapshot(),
                    gp_hypers: hypers,
                    pending: Some(pending),
                    gp_cadence: Some(cadence),
                }
            })
            .collect()
    }

    /// Install restored per-horizon state: ensemble, GP hyperparameters,
    /// pending prediction rounds and the retrain cadence. The cadence is
    /// installed *after* [`GpCellPredictor::set_hyper`] (which resets it),
    /// so the restored cell retrains on exactly the original schedule.
    pub(crate) fn install_horizon_snapshots(&mut self, states: HashMap<usize, RestoredHorizon>) {
        for (h, restored) in states {
            let state = self.horizon_state(h);
            assert_eq!(
                restored.gp_hypers.len(),
                state.cells.len(),
                "snapshot cell count mismatch at horizon {h}"
            );
            state.ensemble = restored.ensemble;
            let mut cadence = restored.gp_cadence.into_iter();
            for (cell, hyper) in state.cells.iter_mut().zip(restored.gp_hypers) {
                let steps = cadence.next().unwrap_or(0);
                if let CellState::Gp(gp) = cell {
                    gp.set_hyper(hyper);
                    gp.set_steps_since_train(steps);
                }
            }
            state.pending =
                restored.pending.into_iter().map(|p| (p.target, p.cells)).collect::<VecDeque<_>>();
        }
    }

    /// Restore the rolling error state captured in a snapshot.
    pub(crate) fn set_error_state(&mut self, errors: ErrorState) {
        self.errors = errors;
    }

    /// Candidate-end bound this sensor's searches use (`len − h_max`).
    pub fn search_max_end(&self) -> usize {
        self.index.series().len().saturating_sub(self.config.h_max)
    }

    /// Mutable access to the sensor's index (fleet-batched searching).
    pub(crate) fn index_mut(&mut self) -> &mut SmilerIndex {
        &mut self.index
    }

    /// Install an externally computed search result (from
    /// [`smiler_index::fleet_search`]) as this step's cached search.
    pub(crate) fn install_search(&mut self, out: SearchOutput) {
        let len = self.index.series().len();
        self.cache = Some((len, out));
    }

    /// Whether the cached search already matches the current series length
    /// (i.e. the next predict will not search again).
    pub(crate) fn has_current_search(&self) -> bool {
        matches!(&self.cache, Some((at, _)) if *at == self.index.series().len())
    }

    /// Run (or reuse) this step's suffix kNN search.
    fn try_ensure_search(&mut self) -> Result<SearchOutput, SearchError> {
        let len = self.index.series().len();
        if let Some((at, out)) = &self.cache {
            if *at == len {
                return Ok(out.clone());
            }
        }
        let max_end = len.saturating_sub(self.config.h_max);
        let out = self.index.try_search(&self.device, max_end)?;
        self.cache = Some((len, out.clone()));
        Ok(out)
    }

    fn horizon_state(&mut self, h: usize) -> &mut HorizonState {
        let config = &self.config;
        let kind = self.kind;
        self.horizons.entry(h).or_insert_with(|| {
            let ensemble = EnsembleMatrix::new(config.ensemble.clone());
            let cells = (0..config.ensemble.cells())
                .map(|_| match kind {
                    PredictorKind::Aggregation => CellState::Ar,
                    PredictorKind::GaussianProcess => CellState::Gp(GpCellPredictor::new(
                        config.train.clone(),
                        config.retrain_every,
                    )),
                })
                .collect();
            HorizonState { ensemble, cells, pending: VecDeque::new() }
        })
    }

    /// Assemble the kNN data of ensemble cell `(k, d)` at horizon `h` from
    /// the shared search output.
    fn knn_data(&self, search: &SearchOutput, k: usize, d_idx: usize, h: usize) -> KnnData {
        let d = self.config.ensemble.elv[d_idx];
        let series = self.index.series();
        let neighbors = &search.neighbors[d_idx];
        let take = k.min(neighbors.len());
        let mut rows = Vec::with_capacity(take);
        let mut y = Vec::with_capacity(take);
        for nb in &neighbors[..take] {
            let t = nb.start;
            // Labels exist by construction: t + d ≤ len − h_max ≤ len − h.
            rows.push(&series[t..t + d]);
            y.push(series[t + d - 1 + h]);
        }
        let x = Matrix::from_fn(take, d, |i, j| rows[i][j]);
        let x0 = series[series.len() - d..].to_vec();
        KnnData { x, y, x0 }
    }

    /// Predict `N(mean, variance)` for the value `h` steps past the last
    /// observation — the infallible convenience wrapper over
    /// [`SensorPredictor::try_predict`] for tests, benches and offline
    /// tools. Serving paths use the fallible API.
    ///
    /// # Panics
    /// Panics if `h` is zero or exceeds the configured `h_max`, or on any
    /// [`PredictError`].
    pub fn predict(&mut self, h: usize) -> (f64, f64) {
        assert!(h >= 1 && h <= self.config.h_max, "horizon {h} out of configured range");
        match self.try_predict(h) {
            Ok(p) => (p.mean, p.variance),
            Err(e) => panic!("sensor {}: prediction failed: {e}", self.sensor_id),
        }
    }

    /// Fallible prediction under the default [`RequestPolicy`]:
    /// bit-identical to [`SensorPredictor::predict`] on healthy data,
    /// degrading instead of panicking on poisoned data.
    pub fn try_predict(&mut self, h: usize) -> Result<Prediction, PredictError> {
        self.try_predict_with(h, &RequestPolicy::default())
    }

    /// Fallible prediction under a caller-supplied [`RequestPolicy`] — the
    /// serving path's entry point.
    ///
    /// Runs the Search Step once per time step (cached across horizons) and
    /// the Prediction Step per ensemble cell. Because a search's neighbour
    /// lists are distance-sorted, every EKV cell of a `(d, h)` column
    /// trains on a *prefix* of the same list, so the kNN data is assembled
    /// once per column at the largest awake `k` and GP cells share one
    /// hyperparameter set and one Gram factorisation ([`PrefixGp`]) instead
    /// of Σ O(k³) independent fits.
    ///
    /// Walks the degradation ladder (full ensemble → cached
    /// hyperparameters → aggregation → last-value hold) driven by the
    /// policy's deadline checkpoints and the sensor's recent error state;
    /// returns [`PredictError`] only when even the bottom rung cannot
    /// produce a forecast.
    pub fn try_predict_with(
        &mut self,
        h: usize,
        policy: &RequestPolicy,
    ) -> Result<Prediction, PredictError> {
        let result = self.predict_with_ladder(h, policy);
        // Remember the freshest one-step forecast so the next observation
        // can score it (rolling residual MAE / interval coverage). Pure
        // bookkeeping — no effect on the forecast itself.
        if h == 1 {
            if let Ok(p) = &result {
                self.pending_one_step = Some((self.index.series().len(), p.mean, p.variance));
            }
        }
        result
    }

    /// [`Self::try_predict_with`] minus the quality bookkeeping: the
    /// degradation-ladder walk itself.
    fn predict_with_ladder(
        &mut self,
        h: usize,
        policy: &RequestPolicy,
    ) -> Result<Prediction, PredictError> {
        let started = Instant::now();
        if h < 1 || h > self.config.h_max {
            return Err(PredictError::HorizonOutOfRange { h, h_max: self.config.h_max });
        }
        if self.injected == Some(FaultKind::PanicOnPredict) {
            panic!("injected fault: sensor {} predict panicked", self.sensor_id);
        }

        let mut level = policy.entry_level;
        // Error-state rung: repeated GP failures park the sensor on
        // aggregation until the cooldown drains.
        if self.errors.cooldown_remaining > 0 {
            self.errors.cooldown_remaining -= 1;
            level = level.at_least(DegradationLevel::Aggregation);
            smiler_obs::count("health.gp_cooldown", "", 1);
            smiler_obs::trace::mark_current("rung.gp_cooldown");
            smiler_obs::trace::reason_current("gp_cooldown");
        }
        // Entry checkpoint: a budget that is already gone buys only the
        // last-value hold.
        if let Some(deadline) = policy.deadline {
            if started.elapsed() >= deadline {
                level = DegradationLevel::LastValue;
                smiler_obs::trace::mark_current("rung.deadline_entry");
                smiler_obs::trace::reason_current("deadline_exhausted_at_entry");
            }
        }
        if level == DegradationLevel::LastValue {
            return self.finish_last_value(h, policy, started);
        }

        // Search Step — shared by every rung above the last-value hold.
        smiler_obs::trace::mark_current("search.start");
        let search = match self.try_ensure_search() {
            Ok(out) => {
                smiler_obs::trace::mark_current("search.done");
                out
            }
            Err(SearchError::NonFiniteQuery { .. }) => {
                // The query suffix itself is poisoned: nothing can be
                // ranked, so nothing can be aggregated either — hold.
                self.errors.total_search_errors += 1;
                smiler_obs::count("health.search_error", "nonfinite_query", 1);
                smiler_obs::trace::mark_current("rung.search_nonfinite");
                smiler_obs::trace::reason_current("search_nonfinite_query");
                return self.finish_last_value(h, policy, started);
            }
            Err(e) => {
                self.errors.total_search_errors += 1;
                smiler_obs::count("health.search_error", "fatal", 1);
                return Err(PredictError::Search(e));
            }
        };

        // Post-search checkpoints: budget overrun → aggregation; more than
        // half the budget spent → skip hyperparameter retraining.
        if let Some(deadline) = policy.deadline {
            let elapsed = started.elapsed();
            if elapsed >= deadline {
                level = level.at_least(DegradationLevel::Aggregation);
                smiler_obs::trace::mark_current("rung.deadline_post_search");
                smiler_obs::trace::reason_current("deadline_exhausted_post_search");
            } else if elapsed * 2 >= deadline {
                level = level.at_least(DegradationLevel::CachedHyper);
                smiler_obs::trace::mark_current("rung.deadline_half_budget");
                smiler_obs::trace::reason_current("deadline_half_budget");
            }
        }

        let (fused, gp_failures) = self.predict_core(h, &search, level);
        smiler_obs::trace::mark_current("predict.done");

        // Error-state update feeding the cooldown rung.
        if gp_failures > 0 {
            self.errors.total_gp_failures += gp_failures;
            self.errors.consecutive_gp_failures += 1;
            smiler_obs::count("health.gp_failure", "", gp_failures);
            if self.errors.consecutive_gp_failures >= policy.gp_failure_threshold {
                self.errors.consecutive_gp_failures = 0;
                self.errors.cooldown_remaining = policy.gp_cooldown_steps;
                smiler_obs::count("health.gp_cooldown_entered", "", 1);
            }
        } else if level < DegradationLevel::Aggregation {
            self.errors.consecutive_gp_failures = 0;
        }

        match fused {
            Some((mean, variance)) => Ok(self.finish(mean, variance, level, policy, started)),
            // Every cell asleep or failed: hold the last finite value.
            None => {
                smiler_obs::trace::mark_current("rung.cells_exhausted");
                smiler_obs::trace::reason_current("cells_exhausted");
                self.finish_last_value(h, policy, started)
            }
        }
    }

    /// The bottom rung: hold the last finite observation with a wide,
    /// horizon-scaled variance.
    fn finish_last_value(
        &self,
        h: usize,
        policy: &RequestPolicy,
        started: Instant,
    ) -> Result<Prediction, PredictError> {
        let last = self
            .index
            .series()
            .iter()
            .rev()
            .copied()
            .find(|v| v.is_finite())
            .ok_or(PredictError::NoFiniteHistory)?;
        Ok(self.finish(last, 1.0 + h as f64, DegradationLevel::LastValue, policy, started))
    }

    /// Stamp a forecast with its serving metadata and health metrics.
    fn finish(
        &self,
        mean: f64,
        variance: f64,
        level: DegradationLevel,
        policy: &RequestPolicy,
        started: Instant,
    ) -> Prediction {
        let elapsed = started.elapsed();
        let deadline_missed = match policy.deadline {
            Some(d) if elapsed > d => {
                smiler_obs::count("health.deadline_miss", "", 1);
                smiler_obs::observe(
                    "health.deadline_overrun_ms",
                    "",
                    (elapsed - d).as_secs_f64() * 1e3,
                );
                true
            }
            _ => false,
        };
        if smiler_obs::enabled() {
            smiler_obs::count("health.predictions", level.as_str(), 1);
            if level != DegradationLevel::FullEnsemble {
                smiler_obs::count("health.degraded", level.as_str(), 1);
            }
        }
        Prediction { mean, variance, level, deadline_missed, elapsed }
    }

    /// One prediction step at a fixed degradation rung (at most
    /// aggregation; the last-value hold never reaches here). Returns the
    /// fused forecast and the number of GP cell failures encountered.
    fn predict_core(
        &mut self,
        h: usize,
        search: &SearchOutput,
        level: DegradationLevel,
    ) -> (Option<(f64, f64)>, u64) {
        let n_elv = self.config.ensemble.elv.len();
        let ekv = self.config.ensemble.ekv.clone();
        let target = self.index.series().len() - 1 + h;
        let n_cells = ekv.len() * n_elv;
        let bad_gram = self.injected == Some(FaultKind::BadGram);

        let awake: Vec<bool> = {
            let state = self.horizons.get(&h);
            (0..n_cells).map(|idx| state.map_or(true, |s| s.ensemble.is_awake(idx))).collect()
        };
        // One kNN assembly per ELV column at the largest awake k; `None`
        // when the whole column is asleep.
        let col_data: Vec<Option<KnnData>> = (0..n_elv)
            .map(|d_idx| {
                let k_col = ekv
                    .iter()
                    .enumerate()
                    .filter(|&(ci, _)| awake[ci * n_elv + d_idx])
                    .map(|(_, &k)| k)
                    .max()?;
                Some(self.knn_data(search, k_col, d_idx, h))
            })
            .collect();

        let mut scratch = std::mem::take(&mut self.scratch);
        let state = self.horizon_state(h);
        let mut predictions: Vec<Option<(f64, f64)>> = vec![None; n_cells];

        // Phase 1 (serial): per column, pick the trainer cell, snapshot its
        // training inputs and advance the retrain-cadence bookkeeping. The
        // aggregation rung trains nothing.
        let jobs: Vec<ColumnTrainJob> = if level >= DegradationLevel::Aggregation {
            Vec::new()
        } else {
            col_data
                .iter()
                .enumerate()
                .filter_map(|(d_idx, data)| {
                    let data = data.as_ref()?;
                    let (take, idx) = column_trainer(state, &ekv, n_elv, d_idx, &awake, data)?;
                    let y = &data.y[..take];
                    let y_mean = stats::mean(y);
                    let centred: Vec<f64> = y.iter().map(|v| v - y_mean).collect();
                    let x = if take == data.x.rows() {
                        data.x.clone()
                    } else {
                        Matrix::from_fn(take, data.x.cols(), |i, j| data.x[(i, j)])
                    };
                    let CellState::Gp(cell) = &mut state.cells[idx] else {
                        unreachable!("trainer is a GP cell")
                    };
                    let plan = if bad_gram {
                        // Injected fault: non-finite hyperparameters make
                        // the Gram matrix unfactorisable.
                        HyperPlan::Reuse(Hyperparams {
                            theta0: f64::NAN,
                            theta1: f64::NAN,
                            theta2: f64::NAN,
                        })
                    } else if level == DegradationLevel::CachedHyper {
                        // Degraded rung: reuse without retraining;
                        // never-trained columns fall to aggregation.
                        cell.plan_cached()?
                    } else {
                        cell.plan_hyper()
                    };
                    let config = cell.train_config().clone();
                    Some(ColumnTrainJob { d_idx, idx, x, centred, plan, config })
                })
                .collect()
        };

        // Phase 2: hyperparameter training + shared-prefix factorisation —
        // pure, column-independent computations, so extra columns run on
        // scoped worker threads when the host has cores to spare. The
        // first job stays on the calling thread (its spans nest under the
        // step as before); single-job (one-column) ensembles always train
        // inline.
        let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let results: Vec<ColumnGpFit> = if jobs.len() <= 1 || host_cores <= 1 {
            jobs.into_iter().map(run_column_train).collect()
        } else {
            let mut jobs = jobs.into_iter();
            match jobs.next() {
                None => Vec::new(),
                Some(first) => {
                    let rest: Vec<ColumnTrainJob> = jobs.collect();
                    crossbeam::thread::scope(|scope| {
                        let handles: Vec<_> = rest
                            .into_iter()
                            .map(|job| scope.spawn(move |_| run_column_train(job)))
                            .collect();
                        let mut out = vec![run_column_train(first)];
                        out.extend(handles.into_iter().map(|handle| match handle.join() {
                            Ok(fit) => fit,
                            // Re-raise the worker's own panic payload so
                            // fleet-level isolation sees the original fault.
                            Err(payload) => std::panic::resume_unwind(payload),
                        }));
                        out
                    })
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                }
            }
        };

        // Phase 3 (serial): install the trained hyperparameters (never
        // non-finite ones — a poisoned optimum must not outlive its step),
        // then predict every awake cell from its column's shared
        // factorisation.
        let mut gp_failures = 0u64;
        let mut column_gp: Vec<Option<(Hyperparams, Result<PrefixGp, GpError>)>> =
            (0..n_elv).map(|_| None).collect();
        for fit in results {
            let CellState::Gp(cell) = &mut state.cells[fit.idx] else {
                unreachable!("trainer is a GP cell")
            };
            if fit.hyper.theta0.is_finite()
                && fit.hyper.theta1.is_finite()
                && fit.hyper.theta2.is_finite()
            {
                cell.install_hyper(fit.hyper);
            }
            column_gp[fit.d_idx] = Some((fit.hyper, fit.fit));
        }
        for (d_idx, data) in col_data.iter().enumerate() {
            if let Some(data) = data {
                gp_failures += predict_column(
                    state,
                    &ekv,
                    n_elv,
                    d_idx,
                    &awake,
                    data,
                    &column_gp[d_idx],
                    &mut scratch,
                    &mut predictions,
                );
            }
        }

        let fused = state.ensemble.fuse(&predictions);
        // λ updates only score undegraded cell outputs: an aggregation-rung
        // step must not attribute AR forecasts to GP cells. Replace any
        // stale pending entry for the same target (the caller predicted
        // this horizon twice in one step).
        if level < DegradationLevel::Aggregation {
            state.pending.retain(|(t, _)| *t != target);
            state.pending.push_back((target, predictions));
        }
        self.scratch = scratch;
        (fused, gp_failures)
    }

    /// Absorb the newly observed value: score pending predictions whose
    /// target just realised (the λ update of Eqn 8–9), then advance the
    /// index (Remark 1 reuse).
    pub fn observe(&mut self, value: f64) {
        let arriving = self.index.series().len();
        // Score the pending one-step forecast if this is the value it
        // predicted; stale entries (missed steps) are silently dropped.
        if let Some((target, mean, variance)) = self.pending_one_step.take() {
            if target == arriving && value.is_finite() {
                let residual = (value - mean).abs();
                // 95% two-sided normal interval: mean ± 1.96σ.
                let covered = residual <= 1.96 * variance.max(0.0).sqrt();
                self.quality.record(residual, covered);
                if smiler_obs::enabled() {
                    smiler_obs::observe("quality.residual_abs", "", residual);
                    smiler_obs::count(
                        "quality.interval",
                        if covered { "covered" } else { "missed" },
                        1,
                    );
                }
            }
        }
        for state in self.horizons.values_mut() {
            // Drop stale entries, score the matching one.
            while let Some((t, _)) = state.pending.front() {
                if *t < arriving {
                    state.pending.pop_front();
                } else {
                    break;
                }
            }
            if let Some((t, _)) = state.pending.front() {
                if *t == arriving {
                    if let Some((_, preds)) = state.pending.pop_front() {
                        let _span = smiler_obs::span("ensemble.update");
                        state.ensemble.update(value, &preds);
                    }
                }
            }
        }
        self.index.advance(&self.device, value);
        self.cache = None;
    }

    /// Current ensemble weights at horizon `h` (diagnostics; `None` if the
    /// horizon has not been predicted yet).
    pub fn weights(&self, h: usize) -> Option<Vec<f64>> {
        self.horizons
            .get(&h)
            .map(|s| (0..s.ensemble.config().cells()).map(|i| s.ensemble.weight(i)).collect())
    }
}

/// One column's hyperparameter-training inputs, snapshotted on the calling
/// thread so the expensive pure computation can run on any thread.
struct ColumnTrainJob {
    d_idx: usize,
    idx: usize,
    x: Matrix,
    centred: Vec<f64>,
    plan: HyperPlan,
    config: TrainConfig,
}

/// The trained hyperparameters and shared-prefix factorisation of one
/// `(d, h)` ensemble column.
struct ColumnGpFit {
    d_idx: usize,
    idx: usize,
    hyper: Hyperparams,
    fit: Result<PrefixGp, GpError>,
}

/// Execute one column's [`HyperPlan`] and fit the column-wide
/// [`PrefixGp`] factorisation.
fn run_column_train(job: ColumnTrainJob) -> ColumnGpFit {
    let _span = smiler_obs::span("gp.predict");
    let hyper = GpCellPredictor::compute_hyper(job.plan, &job.x, &job.centred, &job.config);
    let fit = PrefixGp::fit(job.x, hyper);
    ColumnGpFit { d_idx: job.d_idx, idx: job.idx, hyper, fit }
}

/// The trainer of a `(d, h)` column: the awake GP cell with the most
/// neighbours, whose hyperparameters and factorisation are shared
/// column-wide. Returns `(take, cell idx)`, or `None` when no awake GP
/// cell has a trainable (k ≥ 3) neighbourhood.
fn column_trainer(
    state: &HorizonState,
    ekv: &[usize],
    n_elv: usize,
    d_idx: usize,
    awake: &[bool],
    data: &KnnData,
) -> Option<(usize, usize)> {
    let mut trainer: Option<(usize, usize)> = None; // (take, cell idx)
    for (ci, &k) in ekv.iter().enumerate() {
        let idx = ci * n_elv + d_idx;
        let take = k.min(data.len());
        if awake[idx]
            && take >= 3
            && matches!(state.cells[idx], CellState::Gp(_))
            && trainer.map_or(true, |(t, _)| take > t)
        {
            trainer = Some((take, idx));
        }
    }
    trainer
}

/// Predict every awake cell of one `(d, h)` ensemble column from the
/// column's shared kNN data (`data` holds the largest awake cell's
/// neighbours; smaller cells read prefixes of it).
///
/// GP cells share one hyperparameter set — trained through the largest
/// cell's warm-start schedule, see [`run_column_train`] — and one Gram
/// factorisation whose leading principal blocks serve every prefix
/// length. When the factorisation needed jitter the prefix identity no
/// longer holds and each cell falls back to an independent fit with the
/// shared hyperparameters.
///
/// Returns the number of cells whose GP posterior failed outright (the
/// cell served an aggregation fallback instead) — the health signal that
/// feeds the sensor's cooldown bookkeeping.
#[allow(clippy::too_many_arguments)] // internal helper mirroring the cell grid
fn predict_column(
    state: &HorizonState,
    ekv: &[usize],
    n_elv: usize,
    d_idx: usize,
    awake: &[bool],
    data: &KnnData,
    column_gp: &Option<(Hyperparams, Result<PrefixGp, GpError>)>,
    scratch: &mut PredictScratch,
    predictions: &mut [Option<(f64, f64)>],
) -> u64 {
    let _gp_span = column_gp.is_some().then(|| smiler_obs::span("gp.predict"));
    let mut gp_failures = 0u64;
    for (ci, &k) in ekv.iter().enumerate() {
        let idx = ci * n_elv + d_idx;
        if !awake[idx] {
            continue;
        }
        let take = k.min(data.len());
        let y = &data.y[..take];
        predictions[idx] = match (&state.cells[idx], column_gp) {
            (CellState::Ar, _) => ArPredictor.predict_labels(y),
            // Degenerate neighbourhoods (k < 3) cannot support GP
            // hyperparameters; aggregate instead.
            (CellState::Gp(_), _) if take < 3 => ArPredictor.predict_labels(y),
            (CellState::Gp(_), Some((hyper, fit))) => {
                let y_mean = stats::mean(y);
                scratch.centred.clear();
                scratch.centred.extend(y.iter().map(|v| v - y_mean));
                let posterior = match fit {
                    Ok(pg) if pg.exact() => {
                        Ok(pg.predict_prefix(take, &scratch.centred, &data.x0, &mut scratch.gp))
                    }
                    // Jittered factorisation: the prefix identity is gone,
                    // fit this cell independently (shared hyperparameters).
                    Ok(pg) => pg.oracle_fit(take, &scratch.centred).map(|gp| gp.predict(&data.x0)),
                    Err(_) => {
                        let sub = Matrix::from_fn(take, data.x.cols(), |i, j| data.x[(i, j)]);
                        GpModel::fit(sub, &scratch.centred, *hyper).map(|gp| gp.predict(&data.x0))
                    }
                };
                match posterior {
                    Ok((mean, var)) => Some((mean + y_mean, var)),
                    // Pathological Gram matrix even cell-by-cell: aggregate.
                    Err(_) => {
                        gp_failures += 1;
                        ArPredictor.predict_labels(y)
                    }
                }
            }
            // No trainable cell in the column (all prefixes degenerate).
            (CellState::Gp(_), None) => ArPredictor.predict_labels(y),
        };
    }
    gp_failures
}

/// Adapter: a [`SensorPredictor`] as a [`smiler_baselines::SeriesPredictor`]
/// so the evaluation harness drives SMiLer and the competitors through one
/// interface.
pub struct SmilerForecaster {
    device: Arc<Device>,
    config: SmilerConfig,
    kind: PredictorKind,
    inner: Option<SensorPredictor>,
    fallback_history: Vec<f64>,
}

impl SmilerForecaster {
    /// SMiLer with the GP predictor.
    pub fn gp(device: Arc<Device>, config: SmilerConfig) -> Self {
        SmilerForecaster {
            device,
            config,
            kind: PredictorKind::GaussianProcess,
            inner: None,
            fallback_history: Vec::new(),
        }
    }

    /// SMiLer with the aggregation predictor.
    pub fn ar(device: Arc<Device>, config: SmilerConfig) -> Self {
        SmilerForecaster {
            device,
            config,
            kind: PredictorKind::Aggregation,
            inner: None,
            fallback_history: Vec::new(),
        }
    }
}

impl smiler_baselines::SeriesPredictor for SmilerForecaster {
    fn name(&self) -> &'static str {
        match self.kind {
            PredictorKind::GaussianProcess => "SMiLer-GP",
            PredictorKind::Aggregation => "SMiLer-AR",
        }
    }

    fn is_online(&self) -> bool {
        true
    }

    fn train(&mut self, history: &[f64]) {
        let d_master = self.config.ensemble.elv.iter().copied().max().unwrap_or_default();
        if history.len() < d_master + self.config.h_max + 1 {
            self.inner = None;
            self.fallback_history = history.to_vec();
            return;
        }
        self.inner = Some(SensorPredictor::new(
            Arc::clone(&self.device),
            0,
            history.to_vec(),
            self.config.clone(),
            self.kind,
        ));
    }

    fn observe(&mut self, value: f64) {
        match &mut self.inner {
            Some(p) => p.observe(value),
            None => self.fallback_history.push(value),
        }
    }

    fn predict(&mut self, h: usize) -> (f64, f64) {
        match &mut self.inner {
            Some(p) => p.predict(h),
            None => (self.fallback_history.last().copied().unwrap_or(0.0), 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic_history(n: usize) -> Vec<f64> {
        // Periodic base plus deterministic noise: exact periodicity would
        // make every ensemble cell predict identically (and weights would
        // rightly stay uniform), so the noise is what differentiates cells.
        let mut state = 0x9E3779B97F4A7C15u64;
        (0..n)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let noise = (state % 1000) as f64 / 1000.0 - 0.5;
                (i as f64 * std::f64::consts::TAU / 24.0).sin()
                    + 0.3 * (i as f64 * std::f64::consts::TAU / 8.0).sin()
                    + 0.15 * noise
            })
            .collect()
    }

    fn make(kind: PredictorKind) -> (SensorPredictor, Vec<f64>) {
        let device = Arc::new(Device::default_gpu());
        let history = periodic_history(400);
        let p =
            SensorPredictor::new(device, 7, history.clone(), SmilerConfig::small_for_tests(), kind);
        (p, history)
    }

    #[test]
    fn ar_predicts_periodic_series() {
        let (mut p, _) = make(PredictorKind::Aggregation);
        for h in [1usize, 4, 8] {
            let (mean, var) = p.predict(h);
            let truth = ((399 + h) as f64 * std::f64::consts::TAU / 24.0).sin()
                + 0.3 * (((399 + h) as f64) * std::f64::consts::TAU / 8.0).sin();
            assert!((mean - truth).abs() < 0.4, "h={h}: {mean} vs {truth}");
            assert!(var > 0.0);
        }
    }

    #[test]
    fn gp_predicts_periodic_series() {
        let (mut p, _) = make(PredictorKind::GaussianProcess);
        let (mean, var) = p.predict(1);
        let truth = (400.0 * std::f64::consts::TAU / 24.0).sin()
            + 0.3 * (400.0 * std::f64::consts::TAU / 8.0).sin();
        assert!((mean - truth).abs() < 0.4, "{mean} vs {truth}");
        assert!(var > 0.0 && var.is_finite());
    }

    #[test]
    fn search_is_cached_across_horizons() {
        let (mut p, _) = make(PredictorKind::Aggregation);
        p.predict(1);
        let launches_after_first = p.device.kernel_launches();
        p.predict(2);
        p.predict(3);
        assert_eq!(
            p.device.kernel_launches(),
            launches_after_first,
            "additional horizons must reuse the cached search"
        );
        // A new observation invalidates the cache.
        p.observe(0.1);
        p.predict(1);
        assert!(p.device.kernel_launches() > launches_after_first);
    }

    #[test]
    fn continuous_prediction_updates_weights() {
        let (mut p, history) = make(PredictorKind::Aggregation);
        let mut future = periodic_history(420);
        future.drain(..history.len());
        assert!(p.weights(1).is_none());
        for &v in future.iter().take(10) {
            p.predict(1);
            p.observe(v);
        }
        let w = p.weights(1).expect("weights exist after predictions");
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Self-adaptive tuning must have moved the weights off uniform.
        let uniform = 1.0 / w.len() as f64;
        assert!(w.iter().any(|&wi| (wi - uniform).abs() > 1e-6));
    }

    #[test]
    fn pending_predictions_consumed_in_order() {
        let (mut p, _) = make(PredictorKind::Aggregation);
        // Predict h=2 now; its λ update must fire exactly when the value
        // two steps ahead arrives.
        p.predict(2);
        let before = p.weights(2).unwrap();
        p.observe(0.0); // target not yet realised
        assert_eq!(p.weights(2).unwrap(), before);
        p.observe(0.0); // target realises now
        let after = p.weights(2).unwrap();
        assert_ne!(after, before);
    }

    #[test]
    #[should_panic(expected = "out of configured range")]
    fn horizon_zero_rejected() {
        let (mut p, _) = make(PredictorKind::Aggregation);
        p.predict(0);
    }

    #[test]
    fn forecaster_adapter_handles_short_history() {
        use smiler_baselines::SeriesPredictor as _;
        let device = Arc::new(Device::default_gpu());
        let mut f = SmilerForecaster::ar(device, SmilerConfig::small_for_tests());
        f.train(&[1.0, 2.0, 3.0]);
        assert_eq!(f.predict(1), (3.0, 1.0));
        f.observe(4.0);
        assert_eq!(f.predict(1), (4.0, 1.0));
    }

    #[test]
    fn forecaster_adapter_names() {
        use smiler_baselines::SeriesPredictor as _;
        let device = Arc::new(Device::default_gpu());
        assert_eq!(
            SmilerForecaster::gp(Arc::clone(&device), SmilerConfig::small_for_tests()).name(),
            "SMiLer-GP"
        );
        assert_eq!(
            SmilerForecaster::ar(device, SmilerConfig::small_for_tests()).name(),
            "SMiLer-AR"
        );
    }
}
