//! **SMiLer** — a semi-lazy time series prediction system for sensors.
//!
//! Reproduction of Zhou & Tung, SIGMOD 2015. The system predicts the
//! `h`-step-ahead value of a sensor by (1) retrieving the k nearest
//! historical segments of the sensor's own time series under banded DTW —
//! accelerated by a two-level inverted-like index on a (simulated) GPU —
//! and (2) fitting a small, query-dependent Gaussian Process on just those
//! neighbours. An ensemble over several `(k, d)` choices is auto-tuned
//! online so no per-sensor parameters need manual configuration.
//!
//! ```
//! use smiler_core::{SensorPredictor, SmilerConfig, PredictorKind};
//! use smiler_gpu::Device;
//! use std::sync::Arc;
//!
//! // A toy periodic sensor history (normally: a real, z-normalised trace).
//! let history: Vec<f64> = (0..600)
//!     .map(|i| (i as f64 * std::f64::consts::TAU / 48.0).sin())
//!     .collect();
//!
//! let device = Arc::new(Device::default_gpu());
//! let config = SmilerConfig::small_for_tests();
//! let mut predictor =
//!     SensorPredictor::new(device, 0, history, config, PredictorKind::Aggregation);
//!
//! let (mean, variance) = predictor.predict(1);
//! assert!(mean.is_finite() && variance > 0.0);
//!
//! // Continuous prediction: feed the observed value, predict again.
//! predictor.observe(0.5);
//! let _ = predictor.predict(1);
//! ```
//!
//! Crate layout: [`predictor`] instantiates the abstract predictor `f(·)`
//! (paper Def. 3.1) as AR (§5.2.1) or GP (§5.2.2); [`ensemble`] implements
//! the auto-tuned ensemble matrix λ with sleep/recovery (§5.1);
//! [`sensor`] wires index + ensemble into the per-sensor predictor of
//! Fig. 3; [`system`] scales to many sensors on one device; [`eval`] is the
//! continuous-prediction evaluation loop producing the paper's MAE/MNLPD
//! measures.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod degrade;
pub mod durable;
pub mod ensemble;
pub mod eval;
pub mod predictor;
pub mod sensor;
pub mod serve;
pub mod snapshot;
pub mod stream;
pub mod system;

pub use degrade::{DegradationLevel, ErrorState, PredictError, Prediction, RequestPolicy};
pub use durable::{store_status, DurableError, DurableSystem, RestoreReport, StoreStatus};
pub use ensemble::{EnsembleConfig, EnsembleMatrix, EnsembleMode};
pub use predictor::{
    ArPredictor, GpCellPredictor, KnnData, PredictorKind, QualitySnapshot, QualityStats,
};
pub use sensor::{FaultKind, SensorPredictor, SmilerConfig};
pub use serve::{
    run_load, LoadGen, LoadReport, PendingForecast, RungStatus, SensorStatusRow, ServeConfig,
    ServeError, ServeHandle, ServeStatsSnapshot, SmilerServer, StatusReport,
};
pub use snapshot::{HorizonSnapshot, SensorSnapshot};
pub use stream::{Forecast, SensorStream, StreamError};
pub use system::{SensorFault, SensorHealth, SmilerSystem};
