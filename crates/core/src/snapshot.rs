//! Snapshot & restore: persist a sensor predictor's *learned* state across
//! restarts.
//!
//! SMiLer has no trained model to save — that is the point of semi-lazy
//! learning — but during continuous operation it accumulates adaptive state
//! worth keeping: the ensemble weights λ (and their sleep schedules,
//! §5.1.2) and the warm-started GP hyperparameters per cell and horizon
//! (§5.2.2). A restart that discards those re-pays the cold-start cost and
//! forgets which `(k, d)` cells were working. A [`SensorSnapshot`]
//! round-trips all of it through JSON; the index itself is deterministic in
//! the history and is rebuilt on restore.
//!
//! Since the durable store landed (PR 5), snapshots also carry the
//! *transient* per-step state — pending (not-yet-scored) predictions, the
//! GP retrain-cadence position and the degradation error counters — so that
//! a predictor restored from a checkpoint continues **bitwise-identically**
//! to one that never stopped. Pending entries are safe to restore even when
//! the stream diverges after the snapshot: [`SensorPredictor::observe`]
//! drops entries whose target already passed, so a stale pending list decays
//! harmlessly instead of corrupting the weights. All three fields are
//! `Option`-typed so snapshots written before PR 5 still deserialise
//! (missing field → `None` → legacy drop-pending behaviour).

use crate::degrade::ErrorState;
use crate::ensemble::{EnsembleMatrix, EnsembleState};
use crate::predictor::PredictorKind;
use crate::sensor::{RestoredHorizon, SensorPredictor, SmilerConfig};
use smiler_gp::Hyperparams;
use smiler_gpu::Device;
use std::collections::HashMap;
use std::sync::Arc;

/// One not-yet-scored prediction round of one horizon: the per-cell
/// forecasts issued for history position `target`, awaiting the true value
/// so the λ update can score them.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PendingPrediction {
    /// History index the forecasts were issued for.
    pub target: usize,
    /// Per-cell `(mean, variance)`; `None` for cells that sat out.
    pub cells: Vec<Option<(f64, f64)>>,
}

/// Adaptive state of one horizon's ensemble.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct HorizonSnapshot {
    /// The horizon `h`.
    pub horizon: usize,
    /// Ensemble weights and sleep schedules.
    pub ensemble: EnsembleState,
    /// Per-cell GP hyperparameters (`None` for untrained or AR cells).
    pub gp_hypers: Vec<Option<Hyperparams>>,
    /// Not-yet-scored prediction rounds (`None` in pre-durability
    /// snapshots; restored as empty).
    pub pending: Option<Vec<PendingPrediction>>,
    /// Per-cell steps-since-retrain cadence position (`None` in
    /// pre-durability snapshots; restored as 0, i.e. just-trained).
    pub gp_cadence: Option<Vec<usize>>,
}

/// Everything needed to reconstruct a [`SensorPredictor`] with its learned
/// state.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SensorSnapshot {
    /// Sensor identifier.
    pub sensor_id: usize,
    /// Full normalised history (the index is rebuilt from it).
    pub history: Vec<f64>,
    /// Predictor configuration.
    pub config: SmilerConfig,
    /// AR or GP.
    pub kind: PredictorKind,
    /// Per-horizon adaptive state.
    pub horizons: Vec<HorizonSnapshot>,
    /// Degradation error counters (`None` in pre-durability snapshots;
    /// restored as a clean slate).
    pub errors: Option<ErrorState>,
}

impl SensorSnapshot {
    /// Serialise to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot always serialises")
    }

    /// Deserialise from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

impl SensorPredictor {
    /// Capture a restorable snapshot of this predictor.
    pub fn snapshot(&self) -> SensorSnapshot {
        let mut horizons = self.horizon_snapshots();
        horizons.sort_by_key(|h| h.horizon);
        SensorSnapshot {
            sensor_id: self.sensor_id(),
            history: self.history().to_vec(),
            config: self.config().clone(),
            kind: self.kind(),
            horizons,
            errors: Some(self.error_state()),
        }
    }

    /// Reconstruct a predictor from a snapshot: rebuild the index over the
    /// saved history, then reinstall the adaptive state.
    ///
    /// # Panics
    /// Panics if the snapshot is internally inconsistent (cell counts not
    /// matching its own configuration).
    pub fn restore(device: Arc<Device>, snapshot: SensorSnapshot) -> Self {
        let mut predictor = SensorPredictor::new(
            device,
            snapshot.sensor_id,
            snapshot.history,
            snapshot.config.clone(),
            snapshot.kind,
        );
        let mut states = HashMap::new();
        for h in snapshot.horizons {
            let ensemble = EnsembleMatrix::restore(snapshot.config.ensemble.clone(), h.ensemble);
            states.insert(
                h.horizon,
                RestoredHorizon {
                    ensemble,
                    gp_hypers: h.gp_hypers,
                    pending: h.pending.unwrap_or_default(),
                    gp_cadence: h.gp_cadence.unwrap_or_default(),
                },
            );
        }
        predictor.install_horizon_snapshots(states);
        if let Some(errors) = snapshot.errors {
            predictor.set_error_state(errors);
        }
        predictor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history() -> Vec<f64> {
        let mut state = 0xABCD_EF01u64;
        (0..420)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (i as f64 * std::f64::consts::TAU / 24.0).sin() + (state % 100) as f64 / 200.0
            })
            .collect()
    }

    fn run_steps(p: &mut SensorPredictor, n: usize) {
        for i in 0..n {
            p.predict(1);
            p.predict(3);
            p.observe((i as f64 * 0.37).sin());
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let device = Arc::new(Device::default_gpu());
        let mut p = SensorPredictor::new(
            Arc::clone(&device),
            3,
            history(),
            SmilerConfig::small_for_tests(),
            PredictorKind::GaussianProcess,
        );
        run_steps(&mut p, 6);
        let snap = p.snapshot();
        let json = snap.to_json();
        let back = SensorSnapshot::from_json(&json).unwrap();
        assert_eq!(back.sensor_id, 3);
        assert_eq!(back.history.len(), p.history().len());
        assert_eq!(back.horizons.len(), 2);
    }

    #[test]
    fn restored_predictor_matches_original() {
        let device = Arc::new(Device::default_gpu());
        let mut original = SensorPredictor::new(
            Arc::clone(&device),
            0,
            history(),
            SmilerConfig::small_for_tests(),
            PredictorKind::GaussianProcess,
        );
        run_steps(&mut original, 8);
        let snap = original.snapshot();

        let mut restored = SensorPredictor::restore(Arc::new(Device::default_gpu()), snap);
        // Weights must be identical immediately.
        assert_eq!(original.weights(1), restored.weights(1));
        assert_eq!(original.weights(3), restored.weights(3));
        // And predictions must coincide (same history, same hyper state;
        // the original's pending entries don't affect predict()).
        let (m0, v0) = original.predict(1);
        let (m1, v1) = restored.predict(1);
        assert!((m0 - m1).abs() < 1e-9, "{m0} vs {m1}");
        assert!((v0 - v1).abs() < 1e-9, "{v0} vs {v1}");
    }

    #[test]
    fn restored_predictor_keeps_learning() {
        let device = Arc::new(Device::default_gpu());
        let mut p = SensorPredictor::new(
            Arc::clone(&device),
            0,
            history(),
            SmilerConfig::small_for_tests(),
            PredictorKind::Aggregation,
        );
        run_steps(&mut p, 5);
        let snap = p.snapshot();
        let mut restored = SensorPredictor::restore(device, snap);
        let before = restored.weights(1).unwrap();
        run_steps(&mut restored, 8);
        let after = restored.weights(1).unwrap();
        assert_ne!(before, after, "adaptation must continue after restore");
        assert!((after.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fresh_predictor_snapshot_is_empty_of_state() {
        let device = Arc::new(Device::default_gpu());
        let p = SensorPredictor::new(
            device,
            9,
            history(),
            SmilerConfig::small_for_tests(),
            PredictorKind::Aggregation,
        );
        let snap = p.snapshot();
        assert!(snap.horizons.is_empty());
        assert_eq!(snap.sensor_id, 9);
    }
}
