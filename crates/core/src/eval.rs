//! Continuous-prediction evaluation (paper §6.3.1).
//!
//! Protocol: cut a leave-out segment off the end of each series, train on
//! the prefix, then walk the segment step by step — at every step predict
//! all requested horizons, then reveal the next true value. MAE and MNLPD
//! are computed per horizon over all scored predictions, exactly the
//! quantities plotted in Figures 9–11.

use smiler_baselines::SeriesPredictor;
use smiler_linalg::stats;
use std::collections::BTreeMap;
use std::time::Instant;

/// Evaluation configuration.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Horizons to score (the paper plots h ∈ {1, 5, 10, 15, 20, 25, 30}).
    pub horizons: Vec<usize>,
    /// Continuous prediction steps (the paper uses 200).
    pub steps: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig { horizons: vec![1, 5, 10, 15, 20, 25, 30], steps: 200 }
    }
}

/// Result of evaluating one predictor on one series.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Predictor display name.
    pub name: String,
    /// Mean absolute error per horizon.
    pub mae: BTreeMap<usize, f64>,
    /// Mean negative log predictive density per horizon.
    pub mnlpd: BTreeMap<usize, f64>,
    /// Empirical coverage of the 95% predictive interval per horizon
    /// (PICP): the fraction of truths inside `mean ± 1.96σ`. A calibrated
    /// model scores ≈ 0.95; the MNLPD blow-ups of Fig 9(d) correspond to
    /// coverage collapsing here.
    pub coverage95: BTreeMap<usize, f64>,
    /// Mean 95% interval width per horizon (sharpness; meaningful together
    /// with coverage).
    pub interval_width: BTreeMap<usize, f64>,
    /// Wall-clock seconds spent in `train`.
    pub train_seconds: f64,
    /// Wall-clock milliseconds per `predict` call.
    pub predict_ms: f64,
}

/// Evaluate `predictor` on `series` with the continuous protocol.
///
/// # Panics
/// Panics if the series is too short for the requested steps + horizons.
pub fn evaluate(
    predictor: &mut dyn SeriesPredictor,
    series: &[f64],
    config: &EvalConfig,
) -> EvalResult {
    let h_max = *config.horizons.iter().max().expect("at least one horizon");
    let needed = config.steps + h_max;
    assert!(
        series.len() > needed + 1,
        "series of {} too short for {} steps at h_max {}",
        series.len(),
        config.steps,
        h_max
    );
    let split = series.len() - needed;

    let t0 = Instant::now();
    predictor.train(&series[..split]);
    let train_seconds = t0.elapsed().as_secs_f64();

    // recorded[h] = (means, vars, truths)
    type Recorded = (Vec<f64>, Vec<f64>, Vec<f64>);
    let mut recorded: BTreeMap<usize, Recorded> =
        config.horizons.iter().map(|&h| (h, (Vec::new(), Vec::new(), Vec::new()))).collect();

    let mut predict_seconds = 0.0;
    let mut predict_calls = 0usize;
    for step in 0..config.steps {
        let now = split + step; // index of the next unobserved value
        for &h in &config.horizons {
            let t = Instant::now();
            let (mean, var) = predictor.predict(h);
            predict_seconds += t.elapsed().as_secs_f64();
            predict_calls += 1;
            let truth = series[now + h - 1];
            let slot = recorded.get_mut(&h).expect("configured horizon");
            slot.0.push(mean);
            slot.1.push(var.max(1e-12));
            slot.2.push(truth);
        }
        predictor.observe(series[now]);
    }

    let mut mae = BTreeMap::new();
    let mut mnlpd = BTreeMap::new();
    let mut coverage95 = BTreeMap::new();
    let mut interval_width = BTreeMap::new();
    for (h, (means, vars, truths)) in &recorded {
        mae.insert(*h, stats::mean_absolute_error(means, truths));
        mnlpd.insert(*h, stats::mean_nlpd(means, vars, truths));
        let inside = means
            .iter()
            .zip(vars)
            .zip(truths)
            .filter(|((m, v), t)| (*t - *m).abs() <= 1.96 * v.sqrt())
            .count();
        coverage95.insert(*h, inside as f64 / means.len().max(1) as f64);
        let width: f64 =
            vars.iter().map(|v| 2.0 * 1.96 * v.sqrt()).sum::<f64>() / vars.len().max(1) as f64;
        interval_width.insert(*h, width);
    }

    EvalResult {
        name: predictor.name().to_string(),
        mae,
        mnlpd,
        coverage95,
        interval_width,
        train_seconds,
        predict_ms: predict_seconds * 1000.0 / predict_calls.max(1) as f64,
    }
}

/// Average several per-sensor [`EvalResult`]s (same predictor, same
/// horizons) into one row — how the paper aggregates across a dataset's
/// sensors.
///
/// # Panics
/// Panics on an empty slice or inconsistent horizon sets.
pub fn average_results(results: &[EvalResult]) -> EvalResult {
    assert!(!results.is_empty(), "cannot average zero results");
    let horizons: Vec<usize> = results[0].mae.keys().copied().collect();
    let mut mae = BTreeMap::new();
    let mut mnlpd = BTreeMap::new();
    let mut coverage95 = BTreeMap::new();
    let mut interval_width = BTreeMap::new();
    let field = |pick: &dyn Fn(&EvalResult) -> &BTreeMap<usize, f64>, h: usize| -> f64 {
        stats::mean(
            &results
                .iter()
                .map(|r| *pick(r).get(&h).expect("consistent horizons"))
                .collect::<Vec<_>>(),
        )
    };
    for &h in &horizons {
        mae.insert(h, field(&|r| &r.mae, h));
        mnlpd.insert(h, field(&|r| &r.mnlpd, h));
        coverage95.insert(h, field(&|r| &r.coverage95, h));
        interval_width.insert(h, field(&|r| &r.interval_width, h));
    }
    EvalResult {
        name: results[0].name.clone(),
        mae,
        mnlpd,
        coverage95,
        interval_width,
        train_seconds: results.iter().map(|r| r.train_seconds).sum(),
        predict_ms: stats::mean(&results.iter().map(|r| r.predict_ms).collect::<Vec<_>>()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A perfect oracle for a known series (honest unit variance).
    struct Oracle {
        series: Vec<f64>,
        seen: usize,
    }

    impl SeriesPredictor for Oracle {
        fn name(&self) -> &'static str {
            "Oracle"
        }
        fn is_online(&self) -> bool {
            true
        }
        fn train(&mut self, history: &[f64]) {
            self.seen = history.len();
        }
        fn observe(&mut self, _value: f64) {
            self.seen += 1;
        }
        fn predict(&mut self, h: usize) -> (f64, f64) {
            (self.series[self.seen + h - 1], 1.0)
        }
    }

    /// Always predicts zero with overconfident variance.
    struct Zero;
    impl SeriesPredictor for Zero {
        fn name(&self) -> &'static str {
            "Zero"
        }
        fn is_online(&self) -> bool {
            false
        }
        fn train(&mut self, _h: &[f64]) {}
        fn observe(&mut self, _v: f64) {}
        fn predict(&mut self, _h: usize) -> (f64, f64) {
            (0.0, 0.01)
        }
    }

    fn series() -> Vec<f64> {
        (0..300).map(|i| (i as f64 * 0.3).sin() + 1.0).collect()
    }

    fn config() -> EvalConfig {
        EvalConfig { horizons: vec![1, 3], steps: 20 }
    }

    #[test]
    fn oracle_scores_zero_mae() {
        let s = series();
        let mut oracle = Oracle { series: s.clone(), seen: 0 };
        let r = evaluate(&mut oracle, &s, &config());
        assert!(r.mae[&1] < 1e-12);
        assert!(r.mae[&3] < 1e-12);
        // NLPD of a perfect mean with unit variance: ½ln(2π).
        assert!((r.mnlpd[&1] - 0.9189385332046727).abs() < 1e-9);
        // A perfect mean is always inside any interval.
        assert_eq!(r.coverage95[&1], 1.0);
        // Unit variance → interval width 2·1.96.
        assert!((r.interval_width[&1] - 3.92).abs() < 1e-9);
    }

    #[test]
    fn bad_predictor_scores_poorly() {
        let s = series();
        let mut zero = Zero;
        let r = evaluate(&mut zero, &s, &config());
        assert!(r.mae[&1] > 0.5);
        // Overconfidence is punished by MNLPD.
        assert!(r.mnlpd[&1] > 5.0);
        // And visible as collapsed coverage.
        assert!(r.coverage95[&1] < 0.5);
    }

    #[test]
    fn counts_all_steps() {
        let s = series();
        let mut oracle = Oracle { series: s.clone(), seen: 0 };
        struct Counter<'a>(&'a mut usize, Oracle);
        impl SeriesPredictor for Counter<'_> {
            fn name(&self) -> &'static str {
                "Counter"
            }
            fn is_online(&self) -> bool {
                true
            }
            fn train(&mut self, h: &[f64]) {
                self.1.train(h)
            }
            fn observe(&mut self, v: f64) {
                self.1.observe(v)
            }
            fn predict(&mut self, h: usize) -> (f64, f64) {
                *self.0 += 1;
                self.1.predict(h)
            }
        }
        let mut calls = 0usize;
        {
            let mut c = Counter(&mut calls, Oracle { series: s.clone(), seen: 0 });
            evaluate(&mut c, &s, &config());
        }
        let _ = &mut oracle;
        assert_eq!(calls, 20 * 2);
    }

    #[test]
    fn averaging_is_elementwise() {
        let s = series();
        let r1 = evaluate(&mut Oracle { series: s.clone(), seen: 0 }, &s, &config());
        let r2 = evaluate(&mut Zero, &s, &config());
        // Pretend both are the same predictor for averaging purposes.
        let avg = average_results(&[r1.clone(), r2.clone()]);
        let expect = (r1.mae[&1] + r2.mae[&1]) / 2.0;
        assert!((avg.mae[&1] - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_series_rejected() {
        let s = vec![0.0; 10];
        evaluate(&mut Zero, &s, &config());
    }
}
