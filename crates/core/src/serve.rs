//! Sharded serving frontend with request micro-batching.
//!
//! The library's fleet APIs ([`crate::SmilerSystem`]) are synchronous: one
//! caller drives every sensor in lockstep. A deployment serving heavy
//! traffic looks different — many concurrent clients each asking about one
//! sensor — and that shape is exactly where the fleet-batched search
//! ([`smiler_index::try_fleet_search`]) pays off, *if* something gathers
//! concurrent requests back into batches. This module is that something:
//!
//! * the fleet is **partitioned across N shard workers** (sensor `s` lives
//!   on shard `s % N`), each owning its sensors outright — no locks on the
//!   request path;
//! * requests enter through **bounded MPMC queues**; a full queue returns
//!   a typed [`ServeError::Overloaded`] immediately (admission control —
//!   the caller sheds to [`DegradationLevel::LastValue`] locally rather
//!   than blocking) and queue pressure below the shed point maps onto the
//!   degradation ladder via [`DegradationLevel::for_queue_pressure`];
//! * a worker **micro-batches** forecasts queued concurrently on its
//!   shard: it collects up to `max_batch` requests inside a short batch
//!   window and runs ONE fleet search for all their sensors — one
//!   simulated GPU launch per phase serves many sensors' suffix queries;
//! * per-request **deadlines propagate** into the worker's
//!   [`RequestPolicy`]: the budget remaining after queueing is what the
//!   ladder checkpoints see, so a request that waited too long degrades
//!   instead of overshooting;
//! * a sensor that panics is **quarantined shard-locally** (the PR 3
//!   boundary) and its shard keeps draining — one poisoned sensor never
//!   stalls a queue;
//! * shutdown **drains**: queued requests complete, then workers exit;
//!   late requests get a typed [`ServeError::ShuttingDown`].
//!
//! Observability (`serve.*`): per-shard queue-depth gauges, a batch-size
//! histogram, shed/timeout counters, per-batch spans and end-to-end
//! request latency. On top of those process-global aggregates the server
//! keeps **request-level accountability**:
//!
//! * when a trace sink is installed ([`smiler_obs::trace`]), admission
//!   allocates a [`RequestTrace`] that rides the queue with the job; the
//!   worker marks dequeue / batch / search / predict milestones, the
//!   ladder annotates *why* a rung answered, and exactly one terminal
//!   record per admitted request reaches the sink (tail-sampled);
//! * always-on windowed telemetry — tail latency overall and per rung,
//!   SLO error-budget burn, WAL-append latency, per-sensor health and
//!   model quality — surfaces through [`ServeHandle::status_report`].
//!
//! Tracing and telemetry never touch the prediction math: forecasts are
//! bitwise identical with tracing on or off.

use crate::degrade::{DegradationLevel, Prediction, RequestPolicy};
use crate::durable::StoreStatus;
use crate::predictor::QualitySnapshot;
use crate::sensor::SensorPredictor;
use crate::system::{panic_message, SensorFault, SensorHealth};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TryRecvError, TrySendError};
use parking_lot::Mutex;
use smiler_gpu::Device;
use smiler_index::{try_fleet_search, SearchOutput, SmilerIndex};
use smiler_obs::trace::RequestTrace;
use smiler_obs::{SloReport, SloTracker, TailQuantiles, WindowedHistogram};
use smiler_store::SharedStore;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Width of one telemetry window; [`TELEMETRY_KEEP`] of them are
/// retained, so status reports cover roughly the last minute.
const TELEMETRY_WINDOW: Duration = Duration::from_secs(1);
/// Closed telemetry windows retained per histogram / SLO ring.
const TELEMETRY_KEEP: usize = 60;

/// Configuration of the serving frontend.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Number of shard workers the fleet is partitioned across.
    pub shards: usize,
    /// Bounded queue capacity per shard; a full queue sheds load with
    /// [`ServeError::Overloaded`] instead of blocking.
    pub queue_capacity: usize,
    /// Most forecasts one micro-batch may serve with a single fleet
    /// search. `1` disables batching (per-request serving).
    pub max_batch: usize,
    /// How long a worker waits for more concurrent requests before closing
    /// a micro-batch smaller than `max_batch`. Zero closes immediately.
    pub batch_window: Duration,
    /// Base policy for every request; per-request deadlines override
    /// `policy.deadline` with the budget remaining after queueing, and
    /// queue pressure can only push `policy.entry_level` further down the
    /// ladder.
    pub policy: RequestPolicy,
    /// End-to-end latency target for SLO accounting (admission →
    /// terminal). Purely observational: it never changes rung selection.
    pub slo_target: Duration,
    /// Allowed fraction of requests over `slo_target` — the error budget
    /// the burn rate in [`StatusReport`] is measured against.
    pub slo_budget: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            queue_capacity: 64,
            max_batch: 16,
            batch_window: Duration::from_micros(500),
            policy: RequestPolicy::default(),
            slo_target: Duration::from_millis(50),
            slo_budget: 0.01,
        }
    }
}

/// Typed errors of the serving frontend. Admission-control errors are
/// returned to the *caller* — the server itself never blocks or panics on
/// them.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// The shard's queue was full; the request was shed at admission.
    /// Callers should degrade locally ([`ServeError::shed_level`]).
    Overloaded {
        /// The shard whose queue was full.
        shard: usize,
        /// Queue depth observed at rejection.
        depth: usize,
        /// The queue's capacity.
        capacity: usize,
    },
    /// The sensor id is outside the fleet.
    UnknownSensor {
        /// The requested sensor id.
        sensor: usize,
        /// Number of sensors the server owns.
        fleet: usize,
    },
    /// The server is draining or already stopped.
    ShuttingDown,
    /// The sensor could not serve the request (typed fault, quarantine, or
    /// a panic that just quarantined it).
    Fault(SensorFault),
    /// The durable store rejected the append; the observation was **not**
    /// absorbed (a value that is not durable must not advance the index).
    Durability {
        /// The store's error, stringified.
        message: String,
    },
}

impl ServeError {
    /// The ladder rung a shed caller should degrade to while the server is
    /// saturated: the last-value hold needs no server round-trip at all.
    /// `None` for errors that are not load-shedding.
    pub fn shed_level(&self) -> Option<DegradationLevel> {
        match self {
            ServeError::Overloaded { .. } => Some(DegradationLevel::LastValue),
            _ => None,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { shard, depth, capacity } => {
                write!(f, "shard {shard} overloaded: queue {depth}/{capacity}")
            }
            ServeError::UnknownSensor { sensor, fleet } => {
                write!(f, "sensor {sensor} outside fleet of {fleet}")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Fault(fault) => write!(f, "sensor fault: {fault}"),
            ServeError::Durability { message } => {
                write!(f, "durable store rejected the append: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Fault(fault) => Some(fault),
            _ => None,
        }
    }
}

/// One queued forecast request.
struct ForecastJob {
    sensor: usize,
    h: usize,
    deadline: Option<Instant>,
    enqueued: Instant,
    reply: Sender<Result<Prediction, ServeError>>,
    /// Rides the queue with the job; `None` while no trace sink is
    /// installed, so the inactive path allocates nothing.
    trace: Option<RequestTrace>,
}

/// One queued observation.
struct ObserveJob {
    sensor: usize,
    value: f64,
    reply: Sender<Result<(), ServeError>>,
}

enum ShardMsg {
    Forecast(ForecastJob),
    Observe(ObserveJob),
    Shutdown,
}

/// Shared serving counters (lock-free; read by [`SmilerServer::stats`]).
#[derive(Debug, Default)]
struct ServeStats {
    served: AtomicU64,
    shed: AtomicU64,
    timeouts: AtomicU64,
    faults: AtomicU64,
    observed: AtomicU64,
    batches: AtomicU64,
    batched_forecasts: AtomicU64,
}

/// A point-in-time snapshot of the serving counters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct ServeStatsSnapshot {
    /// Forecasts served (any rung, including degraded ones).
    pub served: u64,
    /// Requests rejected at admission because a queue was full.
    pub shed: u64,
    /// Requests whose deadline had fully expired while queued.
    pub timeouts: u64,
    /// Requests answered with a typed fault (quarantine, panic, error).
    pub faults: u64,
    /// Observations absorbed.
    pub observed: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Forecasts served through micro-batches (Σ batch sizes).
    pub batched_forecasts: u64,
}

impl ServeStatsSnapshot {
    /// Mean micro-batch size — the launch-amortisation factor.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_forecasts as f64 / self.batches as f64
        }
    }
}

impl ServeStats {
    fn snapshot(&self) -> ServeStatsSnapshot {
        ServeStatsSnapshot {
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
            observed: self.observed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_forecasts: self.batched_forecasts.load(Ordering::Relaxed),
        }
    }
}

/// Always-on windowed serving telemetry, shared by the shard workers and
/// every handle. Recording costs one short mutex section per request —
/// negligible against the prediction work — and never feeds back into
/// serving decisions.
struct Telemetry {
    started: Instant,
    /// Windowed end-to-end latency of served requests, seconds.
    latency: Mutex<LatencyWindows>,
    slo: Mutex<SloTracker>,
    /// Windowed WAL-append latency (store-backed serving only), seconds.
    wal_append: Mutex<WindowedHistogram>,
    /// Lifetime served count per ladder rung (`DegradationLevel::index`).
    served_by_rung: [AtomicU64; 4],
    /// Per-sensor health/quality rows, indexed by global sensor id.
    sensors: Mutex<Vec<SensorRow>>,
}

struct LatencyWindows {
    all: WindowedHistogram,
    by_rung: [WindowedHistogram; 4],
}

#[derive(Clone)]
struct SensorRow {
    served: u64,
    faults: u64,
    last_rung: Option<DegradationLevel>,
    quarantined: bool,
    quality: QualitySnapshot,
}

impl Telemetry {
    fn new(fleet: usize, config: &ServeConfig) -> Telemetry {
        let fresh = || WindowedHistogram::new(TELEMETRY_WINDOW, TELEMETRY_KEEP);
        Telemetry {
            started: Instant::now(),
            latency: Mutex::new(LatencyWindows {
                all: fresh(),
                by_rung: std::array::from_fn(|_| fresh()),
            }),
            slo: Mutex::new(SloTracker::new(
                config.slo_target,
                config.slo_budget,
                TELEMETRY_WINDOW,
                TELEMETRY_KEEP,
            )),
            wal_append: Mutex::new(fresh()),
            served_by_rung: std::array::from_fn(|_| AtomicU64::new(0)),
            sensors: Mutex::new(vec![
                SensorRow {
                    served: 0,
                    faults: 0,
                    last_rung: None,
                    quarantined: false,
                    quality: QualitySnapshot::default(),
                };
                fleet
            ]),
        }
    }

    fn record_served(&self, sensor: usize, level: DegradationLevel, latency: Duration) {
        self.served_by_rung[level.index()].fetch_add(1, Ordering::Relaxed);
        let seconds = latency.as_secs_f64();
        {
            let mut windows = self.latency.lock();
            windows.all.record(seconds);
            windows.by_rung[level.index()].record(seconds);
        }
        self.slo.lock().record(latency);
        let mut rows = self.sensors.lock();
        if let Some(row) = rows.get_mut(sensor) {
            row.served += 1;
            row.last_rung = Some(level);
        }
    }

    fn record_fault(&self, sensor: usize, quarantined: bool) {
        let mut rows = self.sensors.lock();
        if let Some(row) = rows.get_mut(sensor) {
            row.faults += 1;
            row.quarantined = row.quarantined || quarantined;
        }
    }

    fn update_quality(&self, sensor: usize, quality: QualitySnapshot) {
        let mut rows = self.sensors.lock();
        if let Some(row) = rows.get_mut(sensor) {
            row.quality = quality;
        }
    }
}

/// Windowed latency breakdown of one ladder rung.
#[derive(Debug, Clone, serde::Serialize)]
pub struct RungStatus {
    /// The rung.
    pub rung: DegradationLevel,
    /// Lifetime forecasts served at this rung.
    pub served: u64,
    /// Windowed latency quantiles at this rung, seconds.
    pub latency: TailQuantiles,
}

/// Per-sensor health and model-quality row of a [`StatusReport`].
#[derive(Debug, Clone, serde::Serialize)]
pub struct SensorStatusRow {
    /// Global sensor id.
    pub sensor: u64,
    /// Whether the sensor is quarantined on its shard.
    pub quarantined: bool,
    /// Lifetime forecasts served for this sensor.
    pub served: u64,
    /// Lifetime faults answered for this sensor.
    pub faults: u64,
    /// The rung that answered its most recent forecast.
    pub last_rung: Option<DegradationLevel>,
    /// Rolling one-step residual MAE and GP-interval coverage.
    pub quality: QualitySnapshot,
}

/// A structured point-in-time snapshot of the serving frontend: what an
/// operator (or the `--status-every` ticker) needs to judge fleet health
/// at a glance. Built by [`ServeHandle::status_report`].
#[derive(Debug, Clone, serde::Serialize)]
pub struct StatusReport {
    /// Seconds since the server started.
    pub uptime_seconds: f64,
    /// Number of sensors the server owns.
    pub fleet: u64,
    /// Number of shard workers.
    pub shards: u64,
    /// Instantaneous queue depth per shard.
    pub queue_depths: Vec<u64>,
    /// Lifetime serving counters.
    pub stats: ServeStatsSnapshot,
    /// Fraction of admission attempts rejected for queue pressure.
    pub shed_rate: f64,
    /// Windowed end-to-end latency quantiles, seconds (roughly the last
    /// minute; see `TELEMETRY_WINDOW`/`TELEMETRY_KEEP`).
    pub latency: TailQuantiles,
    /// The same windowed quantiles broken down per ladder rung, plus the
    /// lifetime rung mix.
    pub latency_by_rung: Vec<RungStatus>,
    /// SLO target, windowed violation counts, and error-budget burn.
    pub slo: SloReport,
    /// Windowed WAL-append latency, seconds (store-backed serving only).
    pub wal_append: Option<TailQuantiles>,
    /// Durable-store position: WAL head vs newest checkpoint.
    pub store: Option<StoreStatus>,
    /// Per-sensor health and model-quality telemetry.
    pub sensors: Vec<SensorStatusRow>,
}

impl StatusReport {
    /// One human-readable status line (the `--status-every` ticker).
    pub fn render_line(&self) -> String {
        let ms = |s: f64| s * 1e3;
        let depths = self.queue_depths.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(",");
        let rungs = self
            .latency_by_rung
            .iter()
            .filter(|r| r.served > 0)
            .map(|r| format!("{}:{}", r.rung.as_str(), r.served))
            .collect::<Vec<_>>()
            .join(" ");
        let quarantined = self.sensors.iter().filter(|s| s.quarantined).count();
        let mut line = format!(
            "smiler up {:.1}s | q[{}] | served {} shed {} fault {} obs {} | batch {:.1} | p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms p999 {:.2}ms | slo {:.0}ms burn {:.2}",
            self.uptime_seconds,
            depths,
            self.stats.served,
            self.stats.shed,
            self.stats.faults,
            self.stats.observed,
            self.stats.mean_batch_size(),
            ms(self.latency.p50),
            ms(self.latency.p95),
            ms(self.latency.p99),
            ms(self.latency.p999),
            self.slo.target_ms,
            self.slo.burn_rate,
        );
        if !rungs.is_empty() {
            line.push_str(&format!(" | rungs {rungs}"));
        }
        if let Some(store) = &self.store {
            line.push_str(&format!(" | wal lag {}", store.wal_lag));
        }
        if quarantined > 0 {
            line.push_str(&format!(" | quarantined {quarantined}"));
        }
        line
    }
}

/// A forecast submitted but not yet answered. Dropping it abandons the
/// request (the worker's reply is discarded).
pub struct PendingForecast {
    rx: Receiver<Result<Prediction, ServeError>>,
}

impl PendingForecast {
    /// Block until the shard worker answers. A worker that exited before
    /// answering (shutdown race) reads as [`ServeError::ShuttingDown`].
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }
}

/// Clonable client handle: routes requests to shard queues.
#[derive(Clone)]
pub struct ServeHandle {
    senders: Vec<Sender<ShardMsg>>,
    fleet: usize,
    stats: Arc<ServeStats>,
    telemetry: Arc<Telemetry>,
    store: Option<SharedStore>,
}

impl ServeHandle {
    /// Forecast horizon `h` for `sensor`, blocking until served.
    pub fn forecast(&self, sensor: usize, h: usize) -> Result<Prediction, ServeError> {
        self.submit_forecast(sensor, h, None)?.wait()
    }

    /// Forecast with a latency budget measured from *now* (so queueing time
    /// counts against it — the worker sees only the remaining budget).
    pub fn forecast_with_deadline(
        &self,
        sensor: usize,
        h: usize,
        budget: Duration,
    ) -> Result<Prediction, ServeError> {
        self.submit_forecast(sensor, h, Some(budget))?.wait()
    }

    /// Enqueue a forecast without waiting for the answer. Admission control
    /// happens here: a full shard queue returns
    /// [`ServeError::Overloaded`] immediately.
    pub fn submit_forecast(
        &self,
        sensor: usize,
        h: usize,
        budget: Option<Duration>,
    ) -> Result<PendingForecast, ServeError> {
        if sensor >= self.fleet {
            return Err(ServeError::UnknownSensor { sensor, fleet: self.fleet });
        }
        let shard = sensor % self.senders.len();
        let now = Instant::now();
        let trace = smiler_obs::trace::active().then(|| RequestTrace::begin(sensor, h, shard));
        let (reply, rx) = channel::bounded(1);
        let job = ForecastJob {
            sensor,
            h,
            deadline: budget.map(|b| now + b),
            enqueued: now,
            reply,
            trace,
        };
        match self.senders[shard].try_send(ShardMsg::Forecast(job)) {
            Ok(()) => Ok(PendingForecast { rx }),
            Err(TrySendError::Full(msg)) => {
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                if smiler_obs::enabled() {
                    smiler_obs::count("serve.shed", &format!("shard={shard}"), 1);
                }
                // The bounced job carries the trace back: finish it here so
                // shed requests get their terminal record too.
                if let ShardMsg::Forecast(job) = msg {
                    if let Some(mut trace) = job.trace {
                        trace.finish_shed();
                        smiler_obs::trace::submit(trace);
                    }
                }
                Err(ServeError::Overloaded {
                    shard,
                    depth: self.senders[shard].len(),
                    capacity: self.senders[shard].capacity(),
                })
            }
            Err(TrySendError::Disconnected(msg)) => {
                if let ShardMsg::Forecast(job) = msg {
                    if let Some(mut trace) = job.trace {
                        trace.finish_error("shutting_down");
                        smiler_obs::trace::submit(trace);
                    }
                }
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Feed `sensor` one observed value, blocking until absorbed. Subject
    /// to the same admission control as forecasts.
    pub fn observe(&self, sensor: usize, value: f64) -> Result<(), ServeError> {
        if sensor >= self.fleet {
            return Err(ServeError::UnknownSensor { sensor, fleet: self.fleet });
        }
        let shard = sensor % self.senders.len();
        let (reply, rx) = channel::bounded(1);
        let job = ObserveJob { sensor, value, reply };
        match self.senders[shard].try_send(ShardMsg::Observe(job)) {
            Ok(()) => rx.recv().unwrap_or(Err(ServeError::ShuttingDown)),
            Err(TrySendError::Full(_)) => {
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                if smiler_obs::enabled() {
                    smiler_obs::count("serve.shed", &format!("shard={shard}"), 1);
                }
                Err(ServeError::Overloaded {
                    shard,
                    depth: self.senders[shard].len(),
                    capacity: self.senders[shard].capacity(),
                })
            }
            Err(TrySendError::Disconnected(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Number of sensors the server owns.
    pub fn fleet_size(&self) -> usize {
        self.fleet
    }

    /// A structured snapshot of fleet health: queue depths, rung mix,
    /// windowed tail latency (overall and per rung), SLO burn, store
    /// position, and per-sensor model-quality telemetry.
    pub fn status_report(&self) -> StatusReport {
        let stats = self.stats.snapshot();
        let admissions = stats.served + stats.faults + stats.observed + stats.shed;
        let shed_rate = if admissions == 0 { 0.0 } else { stats.shed as f64 / admissions as f64 };
        let telemetry = &self.telemetry;
        let (latency, latency_by_rung) = {
            let mut windows = telemetry.latency.lock();
            let all = windows.all.quantiles();
            let by_rung = DegradationLevel::ALL
                .iter()
                .map(|&rung| RungStatus {
                    rung,
                    served: telemetry.served_by_rung[rung.index()].load(Ordering::Relaxed),
                    latency: windows.by_rung[rung.index()].quantiles(),
                })
                .collect();
            (all, by_rung)
        };
        let slo = telemetry.slo.lock().report();
        let wal_append = self.store.as_ref().map(|_| telemetry.wal_append.lock().quantiles());
        let store = self.store.as_ref().map(|s| crate::durable::store_status(&s.lock()));
        let sensors = telemetry
            .sensors
            .lock()
            .iter()
            .enumerate()
            .map(|(id, row)| SensorStatusRow {
                sensor: id as u64,
                quarantined: row.quarantined,
                served: row.served,
                faults: row.faults,
                last_rung: row.last_rung,
                quality: row.quality,
            })
            .collect();
        StatusReport {
            uptime_seconds: telemetry.started.elapsed().as_secs_f64(),
            fleet: self.fleet as u64,
            shards: self.senders.len() as u64,
            queue_depths: self.senders.iter().map(|s| s.len() as u64).collect(),
            stats,
            shed_rate,
            latency,
            latency_by_rung,
            slo,
            wal_append,
            store,
            sensors,
        }
    }
}

/// The serving frontend: shard workers plus the client handle factory.
pub struct SmilerServer {
    handle: ServeHandle,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Workers hand their sensors (and health) back through this when they
    /// exit, so a drained server can checkpoint the whole fleet.
    drained: Receiver<(Vec<SensorPredictor>, Vec<SensorHealth>)>,
    store: Option<SharedStore>,
}

impl SmilerServer {
    /// Partition `sensors` across shard workers and start serving. Sensor
    /// ids are their positions in `sensors`; sensor `s` lands on shard
    /// `s % shards`.
    pub fn start(device: Arc<Device>, sensors: Vec<SensorPredictor>, config: ServeConfig) -> Self {
        Self::start_inner(device, sensors, config, None)
    }

    /// Like [`SmilerServer::start`], with a durable store attached: every
    /// absorbed observation is WAL-logged *before* the sensor's index
    /// advances, and [`SmilerServer::shutdown`] checkpoints the drained
    /// fleet so a later `serve --data-dir` restart resumes warm.
    pub fn start_with_store(
        device: Arc<Device>,
        sensors: Vec<SensorPredictor>,
        config: ServeConfig,
        store: SharedStore,
    ) -> Self {
        Self::start_inner(device, sensors, config, Some(store))
    }

    fn start_inner(
        device: Arc<Device>,
        sensors: Vec<SensorPredictor>,
        config: ServeConfig,
        store: Option<SharedStore>,
    ) -> Self {
        let shards = config.shards.max(1);
        let fleet = sensors.len();
        let stats = Arc::new(ServeStats::default());
        let telemetry = Arc::new(Telemetry::new(fleet, &config));

        let mut partitions: Vec<Vec<SensorPredictor>> = Vec::new();
        partitions.resize_with(shards, Vec::new);
        for (id, sensor) in sensors.into_iter().enumerate() {
            partitions[id % shards].push(sensor);
        }

        let (drained_tx, drained) = channel::bounded(shards);
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for (shard, part) in partitions.into_iter().enumerate() {
            let (tx, rx) = channel::bounded::<ShardMsg>(config.queue_capacity.max(1));
            senders.push(tx);
            let worker = ShardWorker {
                shard,
                shards,
                device: Arc::clone(&device),
                health: vec![SensorHealth::Healthy; part.len()],
                sensors: part,
                config,
                stats: Arc::clone(&stats),
                telemetry: Arc::clone(&telemetry),
                rx,
                store: store.clone(),
                drained: drained_tx.clone(),
            };
            workers.push(std::thread::spawn(move || worker.run()));
        }
        let handle = ServeHandle { senders, fleet, stats, telemetry, store: store.clone() };
        SmilerServer { handle, workers, drained, store }
    }

    /// A clonable client handle.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServeStatsSnapshot {
        self.handle.stats.snapshot()
    }

    /// A structured fleet-health snapshot ([`ServeHandle::status_report`]).
    pub fn status_report(&self) -> StatusReport {
        self.handle.status_report()
    }

    /// Graceful shutdown: every queued request completes (drain), then the
    /// workers exit and are joined. Handles still held by clients answer
    /// [`ServeError::ShuttingDown`] afterwards.
    ///
    /// With a store attached ([`SmilerServer::start_with_store`]), the
    /// drained fleet is checkpointed: healthy sensors contribute their
    /// live state; a quarantined sensor's entry is rebuilt from the prior
    /// durable checkpoint plus its WAL tail (the recovery ladder applied
    /// at checkpoint time) so a torn predictor is never persisted.
    pub fn shutdown(self) -> ServeStatsSnapshot {
        for tx in &self.handle.senders {
            // A blocking send so the drain marker lands even on a full
            // queue; a worker that already exited reads as disconnected.
            let _ = tx.send(ShardMsg::Shutdown);
        }
        for worker in self.workers {
            if let Err(payload) = worker.join() {
                panic::resume_unwind(payload);
            }
        }
        if let Some(store) = &self.store {
            let mut fleet: Vec<(SensorPredictor, SensorHealth)> = Vec::new();
            while let Ok((sensors, health)) = self.drained.try_recv() {
                fleet.extend(sensors.into_iter().zip(health));
            }
            fleet.sort_by_key(|(s, _)| s.sensor_id());
            Self::checkpoint_drained(store, fleet);
        }
        self.handle.stats.snapshot()
    }

    /// Checkpoint a drained fleet, never persisting a torn predictor.
    fn checkpoint_drained(store: &SharedStore, fleet: Vec<(SensorPredictor, SensorHealth)>) {
        let mut store = store.lock();
        // Prior durable state backs the entries of quarantined sensors.
        let prior = store.latest_checkpoint().ok().flatten().and_then(|(seq, payload)| {
            let snaps = crate::durable::decode_fleet(&payload).ok()?;
            let tail = store.read_tail(seq).ok()?;
            Some((snaps, tail))
        });
        let mut snapshots = Vec::with_capacity(fleet.len());
        for (sensor, health) in &fleet {
            match health {
                SensorHealth::Healthy => snapshots.push(sensor.snapshot()),
                SensorHealth::Quarantined { .. } => {
                    let rebuilt = prior.as_ref().and_then(|(snaps, tail)| {
                        let mut snap =
                            snaps.iter().find(|s| s.sensor_id == sensor.sensor_id())?.clone();
                        for record in tail {
                            if let smiler_store::WalRecord::Observe { sensor: id, value, .. } =
                                record
                            {
                                if *id as usize == snap.sensor_id {
                                    snap.history.push(*value);
                                }
                            }
                        }
                        Some(snap)
                    });
                    match rebuilt {
                        Some(snap) => snapshots.push(snap),
                        None => {
                            // No durable fallback: drop the sensor from the
                            // checkpoint rather than persist torn state.
                            smiler_obs::count("store.checkpoint.sensor_dropped", "", 1);
                        }
                    }
                }
            }
        }
        if store.checkpoint(&crate::durable::encode_fleet(&snapshots)).is_err() {
            smiler_obs::count("store.checkpoint_error", "", 1);
        }
    }
}

/// One shard: exclusive owner of its sensors, drained by a single thread.
struct ShardWorker {
    shard: usize,
    shards: usize,
    device: Arc<Device>,
    sensors: Vec<SensorPredictor>,
    health: Vec<SensorHealth>,
    config: ServeConfig,
    stats: Arc<ServeStats>,
    telemetry: Arc<Telemetry>,
    rx: Receiver<ShardMsg>,
    /// Durable log: observations append here before any index advances.
    store: Option<SharedStore>,
    /// Hands the shard's sensors back to the server on exit.
    drained: Sender<(Vec<SensorPredictor>, Vec<SensorHealth>)>,
}

/// What [`ShardWorker::collect_batch`] found after the forecast run ended.
enum BatchTail {
    /// Queue empty (or window closed) — keep serving.
    Continue,
    /// A non-forecast message interrupted the run; handle it next.
    /// Boxed: a stashed message is rare, the happy-path variants stay
    /// small.
    Stashed(Box<ShardMsg>),
    /// Shutdown was queued behind the batch; drain and exit.
    Drain,
}

impl ShardWorker {
    fn run(mut self) {
        loop {
            // Park until work arrives; all handles dropped also ends the
            // shard (nothing can ever arrive again).
            let msg = match self.rx.recv() {
                Ok(msg) => msg,
                Err(_) => break,
            };
            match msg {
                ShardMsg::Shutdown => {
                    self.drain();
                    break;
                }
                ShardMsg::Observe(job) => self.serve_observe(job),
                ShardMsg::Forecast(first) => {
                    let (batch, tail) = self.collect_batch(first);
                    self.serve_batch(batch);
                    match tail {
                        BatchTail::Continue => {}
                        BatchTail::Stashed(msg) => match *msg {
                            ShardMsg::Observe(job) => self.serve_observe(job),
                            _ => {
                                self.drain();
                                break;
                            }
                        },
                        BatchTail::Drain => {
                            self.drain();
                            break;
                        }
                    }
                }
            }
        }
        // Hand the shard's sensors back so the server can checkpoint the
        // drained fleet (no-op when nobody is listening).
        let _ = self.drained.try_send((self.sensors, self.health));
    }

    /// Gather a micro-batch: consecutive forecasts already queued, topped
    /// up by waiting out the batch window for stragglers. An observation
    /// or shutdown marker ends the run (order across request kinds is
    /// preserved per shard).
    fn collect_batch(&self, first: ForecastJob) -> (Vec<ForecastJob>, BatchTail) {
        let mut batch = vec![first];
        if self.config.max_batch <= 1 {
            return (batch, BatchTail::Continue);
        }
        let window_closes = Instant::now() + self.config.batch_window;
        while batch.len() < self.config.max_batch {
            match self.rx.try_recv() {
                Ok(ShardMsg::Forecast(job)) => batch.push(job),
                Ok(ShardMsg::Shutdown) => return (batch, BatchTail::Drain),
                Ok(msg) => return (batch, BatchTail::Stashed(Box::new(msg))),
                Err(TryRecvError::Disconnected) => return (batch, BatchTail::Continue),
                Err(TryRecvError::Empty) => {
                    let now = Instant::now();
                    if now >= window_closes {
                        return (batch, BatchTail::Continue);
                    }
                    match self.rx.recv_timeout(window_closes - now) {
                        Ok(ShardMsg::Forecast(job)) => batch.push(job),
                        Ok(ShardMsg::Shutdown) => return (batch, BatchTail::Drain),
                        Ok(msg) => return (batch, BatchTail::Stashed(Box::new(msg))),
                        Err(RecvTimeoutError::Timeout) => return (batch, BatchTail::Continue),
                        Err(RecvTimeoutError::Disconnected) => return (batch, BatchTail::Continue),
                    }
                }
            }
        }
        (batch, BatchTail::Continue)
    }

    /// Serve one micro-batch: a single fleet search covers every distinct
    /// healthy sensor in the batch that lacks a current cached search, then
    /// each request predicts off the installed result.
    fn serve_batch(&mut self, mut batch: Vec<ForecastJob>) {
        let depth = self.rx.len();
        let pressure = DegradationLevel::for_queue_pressure(depth, self.config.queue_capacity);
        let _span = smiler_obs::span("serve.batch");
        if smiler_obs::enabled() {
            smiler_obs::gauge_set(
                "serve.queue_depth",
                &format!("shard={}", self.shard),
                depth as f64,
            );
            smiler_obs::observe("serve.batch_size", "", batch.len() as f64);
        }
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.stats.batched_forecasts.fetch_add(batch.len() as u64, Ordering::Relaxed);

        // Stamp member traces with the dequeue milestone and the batch id
        // that links them to the single fleet-search launch below.
        if batch.iter().any(|j| j.trace.is_some()) {
            let batch_id = smiler_obs::trace::next_batch_id();
            let size = batch.len();
            for job in &mut batch {
                if let Some(trace) = &mut job.trace {
                    trace.mark("dequeue");
                    trace.set_batch(batch_id, size);
                }
            }
        }

        if batch.len() > 1 {
            for job in &mut batch {
                if let Some(trace) = &mut job.trace {
                    trace.mark("batch_search.start");
                }
            }
            self.batch_search(&batch);
            for job in &mut batch {
                if let Some(trace) = &mut job.trace {
                    trace.mark("batch_search.done");
                }
            }
        }
        for job in batch {
            self.serve_forecast(job, pressure);
        }
    }

    /// The amortised search: one [`try_fleet_search`] call for the batch's
    /// distinct, healthy, search-stale sensors. An error slot is simply
    /// not installed — that sensor's request re-searches (and degrades)
    /// through its own `try_predict_with` path. A panic inside the fleet
    /// launch falls back the same way; the per-request boundary below is
    /// where quarantine happens.
    fn batch_search(&mut self, batch: &[ForecastJob]) {
        let mut locals: Vec<usize> = batch.iter().filter_map(|j| self.local_of(j.sensor)).collect();
        locals.sort_unstable();
        locals.dedup();
        locals.retain(|&l| {
            self.health[l] == SensorHealth::Healthy && !self.sensors[l].has_current_search()
        });
        if locals.len() < 2 {
            return;
        }
        let max_ends: Vec<usize> =
            locals.iter().map(|&l| self.sensors[l].search_max_end()).collect();
        let slots = {
            let mut refs: Vec<&mut SmilerIndex> = Vec::with_capacity(locals.len());
            let mut remaining = &mut self.sensors[..];
            let mut offset = 0usize;
            for &l in &locals {
                let (_, rest) = remaining.split_at_mut(l - offset);
                let (target, rest) = rest.split_at_mut(1);
                if let Some(sensor) = target.first_mut() {
                    refs.push(sensor.index_mut());
                }
                remaining = rest;
                offset = l + 1;
            }
            let device = &self.device;
            panic::catch_unwind(AssertUnwindSafe(|| try_fleet_search(device, &mut refs, &max_ends)))
        };
        let slots: Vec<Result<SearchOutput, smiler_index::SearchError>> = match slots {
            Ok(slots) => slots,
            Err(_) => return,
        };
        for (&l, slot) in locals.iter().zip(slots) {
            if let Ok(out) = slot {
                self.sensors[l].install_search(out);
            }
        }
    }

    /// Serve one forecast behind the per-sensor panic boundary. Exactly
    /// one terminal trace record leaves here per job, whatever path the
    /// request takes (served at any rung, typed fault, quarantine, panic,
    /// or unknown sensor).
    fn serve_forecast(&mut self, job: ForecastJob, pressure: DegradationLevel) {
        let ForecastJob { sensor: sensor_id, h, deadline, enqueued, reply, mut trace } = job;
        let now = Instant::now();
        let mut policy = self.config.policy;
        policy.entry_level = policy.entry_level.at_least(pressure);
        if pressure > DegradationLevel::FullEnsemble {
            if let Some(trace) = &mut trace {
                trace.mark("rung.queue_pressure");
                trace.set_reason("queue_pressure");
            }
        }
        if let Some(deadline) = deadline {
            let remaining = deadline.saturating_duration_since(now);
            if remaining.is_zero() {
                self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                smiler_obs::count("serve.timeout", "", 1);
                if let Some(trace) = &mut trace {
                    trace.mark("rung.deadline_queued_out");
                    trace.set_reason("deadline_exhausted_in_queue");
                }
            }
            policy.deadline = Some(remaining);
        }

        let Some(local) = self.local_of(sensor_id) else {
            let _ = reply.try_send(Err(ServeError::UnknownSensor {
                sensor: sensor_id,
                fleet: self.shards * self.sensors.len(),
            }));
            if let Some(mut trace) = trace {
                trace.finish_error("unknown_sensor");
                smiler_obs::trace::submit(trace);
            }
            return;
        };
        if let SensorHealth::Quarantined { message } = &self.health[local] {
            self.stats.faults.fetch_add(1, Ordering::Relaxed);
            self.telemetry.record_fault(sensor_id, true);
            let fault = SensorFault::Quarantined { message: message.clone() };
            let _ = reply.try_send(Err(ServeError::Fault(fault)));
            if let Some(mut trace) = trace {
                trace.set_reason("quarantined");
                trace.finish_fault("quarantined");
                smiler_obs::trace::submit(trace);
            }
            return;
        }

        let sensor = &mut self.sensors[local];
        // Hand the trace to the thread-local so the degradation ladder
        // deep inside `try_predict_with` can annotate it; the thread-local
        // survives the unwind of a panicking prediction.
        smiler_obs::trace::set_current(trace.take());
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| sensor.try_predict_with(h, &policy)));
        let mut trace = smiler_obs::trace::take_current();
        let reply_value = match outcome {
            Ok(Ok(mut prediction)) => {
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    prediction.deadline_missed = true;
                }
                self.stats.served.fetch_add(1, Ordering::Relaxed);
                let latency = enqueued.elapsed();
                self.telemetry.record_served(sensor_id, prediction.level, latency);
                if smiler_obs::enabled() {
                    smiler_obs::observe("serve.latency_seconds", "", latency.as_secs_f64());
                }
                if let Some(trace) = &mut trace {
                    trace.finish_served(prediction.level.as_str(), prediction.deadline_missed);
                }
                Ok(prediction)
            }
            Ok(Err(e)) => {
                self.stats.faults.fetch_add(1, Ordering::Relaxed);
                self.telemetry.record_fault(sensor_id, false);
                if let Some(trace) = &mut trace {
                    trace.finish_fault("predict_error");
                }
                Err(ServeError::Fault(SensorFault::Predict(e)))
            }
            Err(payload) => {
                // Torn mid-update: fence the sensor off; the shard keeps
                // draining for everyone else.
                let message = panic_message(payload);
                self.health[local] = SensorHealth::Quarantined { message: message.clone() };
                self.stats.faults.fetch_add(1, Ordering::Relaxed);
                self.telemetry.record_fault(sensor_id, true);
                smiler_obs::count("health.sensor_panic", "", 1);
                if let Some(trace) = &mut trace {
                    trace.set_aborted();
                    trace.finish_fault("panic");
                }
                Err(ServeError::Fault(SensorFault::Panicked { message }))
            }
        };
        let _ = reply.try_send(reply_value);
        if let Some(trace) = trace {
            smiler_obs::trace::submit(trace);
        }
    }

    /// Absorb one observation behind the same panic boundary.
    fn serve_observe(&mut self, job: ObserveJob) {
        let Some(local) = self.local_of(job.sensor) else {
            let _ = job.reply.try_send(Err(ServeError::UnknownSensor {
                sensor: job.sensor,
                fleet: self.shards * self.sensors.len(),
            }));
            return;
        };
        if let SensorHealth::Quarantined { message } = &self.health[local] {
            let fault = SensorFault::Quarantined { message: message.clone() };
            let _ = job.reply.try_send(Err(ServeError::Fault(fault)));
            return;
        }
        // Durability first: the value reaches the WAL before the index
        // advances; an append failure absorbs nothing.
        if let Some(store) = &self.store {
            let append_started = Instant::now();
            let appended = store.lock().append_observe(job.sensor as u32, job.value);
            let append_seconds = append_started.elapsed().as_secs_f64();
            self.telemetry.wal_append.lock().record(append_seconds);
            if smiler_obs::enabled() {
                smiler_obs::observe("serve.wal_append_seconds", "", append_seconds);
            }
            if let Err(e) = appended {
                smiler_obs::count("store.append_error", "", 1);
                let _ = job.reply.try_send(Err(ServeError::Durability { message: e.to_string() }));
                return;
            }
        }
        let sensor = &mut self.sensors[local];
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| sensor.observe(job.value)));
        let reply = match outcome {
            Ok(()) => {
                self.stats.observed.fetch_add(1, Ordering::Relaxed);
                // The arriving value may have scored a pending one-step
                // prediction; refresh the sensor's quality telemetry row.
                self.telemetry.update_quality(job.sensor, sensor.quality_snapshot());
                Ok(())
            }
            Err(payload) => {
                let message = panic_message(payload);
                self.health[local] = SensorHealth::Quarantined { message: message.clone() };
                smiler_obs::count("health.sensor_panic", "", 1);
                Err(ServeError::Fault(SensorFault::Panicked { message }))
            }
        };
        let _ = job.reply.try_send(reply);
    }

    /// Complete everything already queued, then stop accepting.
    fn drain(&mut self) {
        loop {
            match self.rx.try_recv() {
                Ok(ShardMsg::Forecast(job)) => self.serve_batch(vec![job]),
                Ok(ShardMsg::Observe(job)) => self.serve_observe(job),
                Ok(ShardMsg::Shutdown) => {}
                Err(_) => break,
            }
        }
    }

    /// Global sensor id → this shard's local index (`None` if the sensor
    /// lives elsewhere or does not exist).
    fn local_of(&self, sensor: usize) -> Option<usize> {
        if sensor % self.shards != self.shard {
            return None;
        }
        let local = sensor / self.shards;
        (local < self.sensors.len()).then_some(local)
    }
}

// ---------------------------------------------------------------------------
// Closed-loop load generator (shared by the CLI `serve` subcommand and the
// serving bench).
// ---------------------------------------------------------------------------

/// Closed-loop load-generation parameters: `clients` threads each issue
/// `requests_per_client` forecasts round-robin over the fleet, waiting for
/// each answer (optionally paced to an aggregate `qps`).
#[derive(Debug, Clone, Copy)]
pub struct LoadGen {
    /// Concurrent closed-loop client threads.
    pub clients: usize,
    /// Forecasts each client issues.
    pub requests_per_client: usize,
    /// Forecast horizon.
    pub horizon: usize,
    /// Aggregate request-rate target; `None` runs unpaced (max pressure).
    pub qps: Option<f64>,
    /// Per-request latency budget handed to the server.
    pub deadline: Option<Duration>,
}

impl Default for LoadGen {
    fn default() -> Self {
        LoadGen { clients: 4, requests_per_client: 64, horizon: 1, qps: None, deadline: None }
    }
}

/// What a load-generation run measured.
#[derive(Debug, Clone, serde::Serialize)]
pub struct LoadReport {
    /// Requests issued.
    pub requests: u64,
    /// Requests answered with a prediction.
    pub ok: u64,
    /// Requests shed at admission ([`ServeError::Overloaded`]).
    pub shed: u64,
    /// Requests answered with any other typed error.
    pub errors: u64,
    /// Wall-clock seconds of the whole run.
    pub elapsed_seconds: f64,
    /// Served predictions per wall-clock second.
    pub throughput_rps: f64,
    /// Median end-to-end latency of served requests, milliseconds.
    pub latency_p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub latency_p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub latency_p99_ms: f64,
    /// Worst served latency, milliseconds.
    pub latency_max_ms: f64,
}

/// Drive the server with closed-loop clients and measure it.
pub fn run_load(handle: &ServeHandle, gen: &LoadGen) -> LoadReport {
    let fleet = handle.fleet_size().max(1);
    let clients = gen.clients.max(1);
    let (tx, results) = channel::bounded::<(Vec<f64>, u64, u64, u64)>(clients);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let handle = handle.clone();
            let tx = tx.clone();
            let gen = *gen;
            scope.spawn(move || {
                let mut latencies = Vec::with_capacity(gen.requests_per_client);
                let (mut ok, mut shed, mut errors) = (0u64, 0u64, 0u64);
                let pace = gen.qps.map(|q| Duration::from_secs_f64(clients as f64 / q.max(1e-9)));
                let mut next_issue = Instant::now();
                for r in 0..gen.requests_per_client {
                    if let Some(pace) = pace {
                        let now = Instant::now();
                        if now < next_issue {
                            std::thread::sleep(next_issue - now);
                        }
                        next_issue += pace;
                    }
                    let sensor = (c + r * clients) % fleet;
                    let t0 = Instant::now();
                    let outcome = match gen.deadline {
                        Some(budget) => handle.forecast_with_deadline(sensor, gen.horizon, budget),
                        None => handle.forecast(sensor, gen.horizon),
                    };
                    match outcome {
                        Ok(_) => {
                            ok += 1;
                            latencies.push(t0.elapsed().as_secs_f64());
                        }
                        Err(ServeError::Overloaded { .. }) => shed += 1,
                        Err(_) => errors += 1,
                    }
                }
                let _ = tx.send((latencies, ok, shed, errors));
            });
        }
        drop(tx);
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut latencies = Vec::new();
    let (mut ok, mut shed, mut errors) = (0u64, 0u64, 0u64);
    while let Ok((lat, o, s, e)) = results.recv() {
        latencies.extend(lat);
        ok += o;
        shed += s;
        errors += e;
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx.min(latencies.len() - 1)] * 1e3
    };
    LoadReport {
        requests: (clients * gen.requests_per_client) as u64,
        ok,
        shed,
        errors,
        elapsed_seconds: elapsed,
        throughput_rps: if elapsed > 0.0 { ok as f64 / elapsed } else { 0.0 },
        latency_p50_ms: pct(0.50),
        latency_p95_ms: pct(0.95),
        latency_p99_ms: pct(0.99),
        latency_max_ms: latencies.last().copied().map_or(0.0, |v| v * 1e3),
    }
}
