//! Durable fleet operation: WAL-logged steps, binary checkpoints and the
//! store-backed recovery ladder.
//!
//! [`DurableSystem`] wraps a [`SmilerSystem`] and a [`Store`] so that a
//! fleet killed at any moment restarts **bitwise-identically** to one that
//! never stopped:
//!
//! 1. every fleet round is appended to the WAL *before* any sensor's
//!    index advances (a redo log: a crash between the append and the
//!    in-memory step replays the round on restart);
//! 2. periodic checkpoints serialise the full adaptive state — history,
//!    λ weights and sleep schedules, warm-started GP hyperparameters,
//!    pending λ-update rounds, retrain cadence and error counters — in a
//!    length-prefixed binary format whose floats travel as raw IEEE-754
//!    bits (JSON would lose NaN gaps and cost the bitwise guarantee);
//! 3. [`DurableSystem::open`] recovers along the ladder *checkpoint →
//!    WAL replay → cold rebuild*: decode the newest valid checkpoint,
//!    rebuild each sensor's index from its saved history (bitwise
//!    equivalent to having advanced it online), then re-apply the WAL
//!    tail as ordinary fleet rounds.
//!
//! The same ladder serves per-sensor quarantine recovery:
//! [`DurableSystem::recover_all`] first tries the in-memory snapshot rung
//! ([`SmilerSystem::recover_all`]) and, for sensors whose snapshot rung
//! fails, falls back to rebuilding from the durable checkpoint plus the
//! WAL tail.

use crate::predictor::PredictorKind;
use crate::sensor::SensorPredictor;
use crate::snapshot::{HorizonSnapshot, PendingPrediction, SensorSnapshot};
use crate::system::{OutOfDeviceMemory, SmilerSystem};
use crate::SmilerConfig;
use smiler_gp::Hyperparams;
use smiler_gpu::Device;
use smiler_store::{codec, ByteReader, CodecError, Store, StoreConfig, StoreError, WalRecord};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Version of the fleet checkpoint payload layout.
pub const FLEET_FORMAT_VERSION: u32 = 1;

/// Durability position of a store: where the WAL head is relative to the
/// newest checkpoint. Surfaced by [`crate::serve::StatusReport`] so an
/// operator can see how much replay a crash right now would cost.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct StoreStatus {
    /// Sequence number of the newest WAL record.
    pub last_seq: u64,
    /// WAL sequence the newest checkpoint covers (0 when none exists).
    pub checkpoint_seq: u64,
    /// WAL records past the checkpoint — the replay cost of a crash now.
    pub wal_lag: u64,
    /// Seconds since the newest checkpoint file was written (its mtime);
    /// `None` when no checkpoint exists or the clock/file is unreadable.
    pub checkpoint_age_seconds: Option<f64>,
}

/// Read the durability position of `store`. Cheap: lists checkpoint file
/// names without decoding any payload.
pub fn store_status(store: &Store) -> StoreStatus {
    let last_seq = store.last_seq();
    let checkpoint_seq = smiler_store::checkpoint::list(store.dir())
        .ok()
        .and_then(|seqs| seqs.last().copied())
        .unwrap_or(0);
    let checkpoint_age_seconds = (checkpoint_seq > 0)
        .then(|| {
            let path = store.dir().join(format!("ckpt-{checkpoint_seq:016}.ck"));
            let modified = std::fs::metadata(path).ok()?.modified().ok()?;
            std::time::SystemTime::now().duration_since(modified).ok().map(|d| d.as_secs_f64())
        })
        .flatten();
    StoreStatus {
        last_seq,
        checkpoint_seq,
        wal_lag: last_seq.saturating_sub(checkpoint_seq),
        checkpoint_age_seconds,
    }
}

/// Failures of the durable fleet layer.
#[derive(Debug)]
pub enum DurableError {
    /// The store itself failed (I/O, container corruption).
    Store(StoreError),
    /// A checkpoint payload failed structural decoding.
    Codec(CodecError),
    /// The payload decoded but its contents are unusable.
    Corrupt(String),
    /// The data directory holds no recoverable fleet state.
    NoState,
    /// Restored sensors exceed device memory.
    OutOfMemory(OutOfDeviceMemory),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Store(e) => write!(f, "durable store failed: {e}"),
            DurableError::Codec(e) => write!(f, "fleet checkpoint undecodable: {e}"),
            DurableError::Corrupt(msg) => write!(f, "fleet checkpoint corrupt: {msg}"),
            DurableError::NoState => {
                write!(f, "data directory holds no recoverable fleet state")
            }
            DurableError::OutOfMemory(e) => write!(f, "restored fleet does not fit: {e}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Store(e) => Some(e),
            DurableError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for DurableError {
    fn from(e: StoreError) -> Self {
        DurableError::Store(e)
    }
}

impl From<CodecError> for DurableError {
    fn from(e: CodecError) -> Self {
        DurableError::Codec(e)
    }
}

// ------------------------------------------------------------- encoding

fn encode_hyper(buf: &mut Vec<u8>, hyper: &Option<Hyperparams>) {
    match hyper {
        None => codec::put_u8(buf, 0),
        Some(h) => {
            codec::put_u8(buf, 1);
            codec::put_f64(buf, h.theta0);
            codec::put_f64(buf, h.theta1);
            codec::put_f64(buf, h.theta2);
        }
    }
}

fn decode_hyper(r: &mut ByteReader<'_>) -> Result<Option<Hyperparams>, DurableError> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let theta0 = r.f64()?;
            let theta1 = r.f64()?;
            let theta2 = r.f64()?;
            Ok(Some(Hyperparams { theta0, theta1, theta2 }))
        }
        tag => Err(DurableError::Codec(CodecError::BadTag { tag })),
    }
}

fn encode_cells(buf: &mut Vec<u8>, cells: &[Option<(f64, f64)>]) {
    codec::put_u64(buf, cells.len() as u64);
    for cell in cells {
        match cell {
            None => codec::put_u8(buf, 0),
            Some((m, v)) => {
                codec::put_u8(buf, 1);
                codec::put_f64(buf, *m);
                codec::put_f64(buf, *v);
            }
        }
    }
}

fn decode_cells(r: &mut ByteReader<'_>) -> Result<Vec<Option<(f64, f64)>>, DurableError> {
    let n = r.u64()? as usize;
    let mut cells = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        cells.push(match r.u8()? {
            0 => None,
            1 => Some((r.f64()?, r.f64()?)),
            tag => return Err(DurableError::Codec(CodecError::BadTag { tag })),
        });
    }
    Ok(cells)
}

fn encode_horizon(buf: &mut Vec<u8>, h: &HorizonSnapshot) {
    codec::put_u64(buf, h.horizon as u64);
    codec::put_f64_slice(buf, &h.ensemble.lambda);
    codec::put_u64(buf, h.ensemble.sleep.len() as u64);
    for &(remaining, counter, just_recovered) in &h.ensemble.sleep {
        codec::put_u64(buf, remaining as u64);
        codec::put_u64(buf, counter as u64);
        codec::put_u8(buf, just_recovered as u8);
    }
    codec::put_u64(buf, h.gp_hypers.len() as u64);
    for hyper in &h.gp_hypers {
        encode_hyper(buf, hyper);
    }
    let pending = h.pending.as_deref().unwrap_or(&[]);
    codec::put_u64(buf, pending.len() as u64);
    for p in pending {
        codec::put_u64(buf, p.target as u64);
        encode_cells(buf, &p.cells);
    }
    let cadence = h.gp_cadence.as_deref().unwrap_or(&[]);
    codec::put_u64(buf, cadence.len() as u64);
    for &steps in cadence {
        codec::put_u64(buf, steps as u64);
    }
}

fn decode_horizon(r: &mut ByteReader<'_>) -> Result<HorizonSnapshot, DurableError> {
    let horizon = r.u64()? as usize;
    let lambda = r.f64_vec()?;
    let n_sleep = r.u64()? as usize;
    let mut sleep = Vec::with_capacity(n_sleep.min(1 << 16));
    for _ in 0..n_sleep {
        let remaining = r.u64()? as usize;
        let counter = r.u64()? as usize;
        let just_recovered = r.u8()? != 0;
        sleep.push((remaining, counter, just_recovered));
    }
    let n_hypers = r.u64()? as usize;
    let mut gp_hypers = Vec::with_capacity(n_hypers.min(1 << 16));
    for _ in 0..n_hypers {
        gp_hypers.push(decode_hyper(r)?);
    }
    let n_pending = r.u64()? as usize;
    let mut pending = Vec::with_capacity(n_pending.min(1 << 16));
    for _ in 0..n_pending {
        let target = r.u64()? as usize;
        let cells = decode_cells(r)?;
        pending.push(PendingPrediction { target, cells });
    }
    let n_cadence = r.u64()? as usize;
    let mut gp_cadence = Vec::with_capacity(n_cadence.min(1 << 16));
    for _ in 0..n_cadence {
        gp_cadence.push(r.u64()? as usize);
    }
    Ok(HorizonSnapshot {
        horizon,
        ensemble: crate::ensemble::EnsembleState { lambda, sleep },
        gp_hypers,
        pending: Some(pending),
        gp_cadence: Some(gp_cadence),
    })
}

fn encode_sensor(buf: &mut Vec<u8>, snap: &SensorSnapshot) {
    codec::put_u64(buf, snap.sensor_id as u64);
    // The config holds only finite tunables, so a JSON round-trip is exact
    // (Rust's shortest-roundtrip float formatting); the bitwise-sensitive
    // state below travels as raw bits.
    codec::put_str(buf, &serde_json::to_string(&snap.config).expect("config serialises"));
    codec::put_u8(
        buf,
        match snap.kind {
            PredictorKind::Aggregation => 0,
            PredictorKind::GaussianProcess => 1,
        },
    );
    codec::put_f64_slice(buf, &snap.history);
    let errors = snap.errors.unwrap_or_default();
    codec::put_u32(buf, errors.consecutive_gp_failures);
    codec::put_u32(buf, errors.cooldown_remaining);
    codec::put_u64(buf, errors.total_gp_failures);
    codec::put_u64(buf, errors.total_search_errors);
    codec::put_u64(buf, snap.horizons.len() as u64);
    for h in &snap.horizons {
        encode_horizon(buf, h);
    }
}

fn decode_sensor(r: &mut ByteReader<'_>) -> Result<SensorSnapshot, DurableError> {
    let sensor_id = r.u64()? as usize;
    let config_json = r.str()?;
    let config: SmilerConfig = serde_json::from_str(&config_json)
        .map_err(|e| DurableError::Corrupt(format!("sensor {sensor_id} config: {e}")))?;
    let kind = match r.u8()? {
        0 => PredictorKind::Aggregation,
        1 => PredictorKind::GaussianProcess,
        tag => return Err(DurableError::Codec(CodecError::BadTag { tag })),
    };
    let history = r.f64_vec()?;
    let errors = crate::degrade::ErrorState {
        consecutive_gp_failures: r.u32()?,
        cooldown_remaining: r.u32()?,
        total_gp_failures: r.u64()?,
        total_search_errors: r.u64()?,
    };
    let n_horizons = r.u64()? as usize;
    let mut horizons = Vec::with_capacity(n_horizons.min(1 << 16));
    for _ in 0..n_horizons {
        horizons.push(decode_horizon(r)?);
    }
    Ok(SensorSnapshot { sensor_id, history, config, kind, horizons, errors: Some(errors) })
}

/// Serialise a fleet's per-sensor snapshots as a checkpoint payload.
pub fn encode_fleet(snapshots: &[SensorSnapshot]) -> Vec<u8> {
    let mut buf =
        Vec::with_capacity(64 + snapshots.iter().map(|s| s.history.len() * 8).sum::<usize>());
    codec::put_u32(&mut buf, FLEET_FORMAT_VERSION);
    codec::put_u64(&mut buf, snapshots.len() as u64);
    for snap in snapshots {
        encode_sensor(&mut buf, snap);
    }
    buf
}

/// Decode a fleet checkpoint payload back into per-sensor snapshots.
pub fn decode_fleet(payload: &[u8]) -> Result<Vec<SensorSnapshot>, DurableError> {
    let mut r = ByteReader::new(payload);
    let version = r.u32()?;
    if version != FLEET_FORMAT_VERSION {
        return Err(DurableError::Corrupt(format!(
            "fleet payload version {version}, this build reads {FLEET_FORMAT_VERSION}"
        )));
    }
    let n = r.u64()? as usize;
    let mut snapshots = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        snapshots.push(decode_sensor(&mut r)?);
    }
    if !r.is_empty() {
        return Err(DurableError::Corrupt(format!("{} trailing bytes", r.remaining())));
    }
    Ok(snapshots)
}

// ------------------------------------------------------ the durable fleet

/// What [`DurableSystem::open`] rebuilt, for logs and experiment JSON.
#[derive(Debug, Clone, serde::Serialize)]
pub struct RestoreReport {
    /// Sequence number of the checkpoint restored from.
    pub checkpoint_seq: u64,
    /// Sensors rebuilt from the checkpoint.
    pub sensors: usize,
    /// Fleet rounds re-applied from the WAL tail.
    pub replayed_rounds: usize,
    /// Single-sensor observations re-applied from the WAL tail.
    pub replayed_observes: usize,
    /// Checkpoint files quarantined during recovery.
    pub quarantined_checkpoints: usize,
    /// WAL segments quarantined during recovery.
    pub quarantined_segments: usize,
    /// Bytes cut off the WAL's torn tail.
    pub truncated_bytes: u64,
    /// Seconds spent opening and repairing the store.
    pub open_seconds: f64,
    /// Seconds spent decoding the checkpoint and rebuilding indexes.
    pub rebuild_seconds: f64,
    /// Seconds spent re-applying the WAL tail.
    pub replay_seconds: f64,
}

/// A [`SmilerSystem`] whose every round is durable: WAL first, then the
/// in-memory step; checkpoints on a configurable cadence.
pub struct DurableSystem {
    system: SmilerSystem,
    store: Store,
    /// Checkpoint after this many durable rounds (0 = only on demand).
    checkpoint_every: u64,
    rounds_since_checkpoint: u64,
}

impl DurableSystem {
    /// Start a **fresh** durable fleet at `dir`: build the system from
    /// `histories` and write the initial checkpoint (the baseline every
    /// later WAL replay builds on). Fails with [`DurableError::Corrupt`]
    /// if the directory already holds fleet state — restarting an
    /// existing directory is [`DurableSystem::open`]'s job.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        device: Arc<Device>,
        histories: Vec<Vec<f64>>,
        config: SmilerConfig,
        kind: PredictorKind,
        dir: &Path,
        store_config: StoreConfig,
        checkpoint_every: u64,
    ) -> Result<(Self, Option<OutOfDeviceMemory>), DurableError> {
        let (mut store, recovery) = Store::open(dir, store_config)?;
        if !recovery.is_cold() {
            return Err(DurableError::Corrupt(format!(
                "{} already holds fleet state (checkpoint {:?}, {} tail records); \
                 open it instead of re-creating",
                dir.display(),
                recovery.checkpoint_seq,
                recovery.replay.len()
            )));
        }
        let (system, oom) = SmilerSystem::new(device, histories, config, kind);
        store.checkpoint(&encode_fleet(&system.durable_snapshots()))?;
        Ok((DurableSystem { system, store, checkpoint_every, rounds_since_checkpoint: 0 }, oom))
    }

    /// Recover a durable fleet from `dir`: newest valid checkpoint, index
    /// rebuild, WAL-tail replay. The restored fleet's next prediction is
    /// bitwise-identical to what the never-stopped fleet would have
    /// produced.
    pub fn open(
        device: Arc<Device>,
        dir: &Path,
        store_config: StoreConfig,
        checkpoint_every: u64,
    ) -> Result<(Self, RestoreReport), DurableError> {
        let (store, recovery) = Store::open(dir, store_config)?;
        let payload = recovery.checkpoint_payload.as_deref().ok_or(DurableError::NoState)?;

        let rebuild_started = Instant::now();
        let snapshots = decode_fleet(payload)?;
        let sensor_count = snapshots.len();
        let sensors: Vec<SensorPredictor> = snapshots
            .into_iter()
            .map(|snap| SensorPredictor::restore(Arc::clone(&device), snap))
            .collect();
        let (mut system, oom) = SmilerSystem::from_restored(device, sensors);
        if let Some(oom) = oom {
            return Err(DurableError::OutOfMemory(oom));
        }
        let rebuild_seconds = rebuild_started.elapsed().as_secs_f64();

        let replay_started = Instant::now();
        let (mut replayed_rounds, mut replayed_observes) = (0usize, 0usize);
        for record in &recovery.replay {
            Self::apply_record(&mut system, record)?;
            match record {
                WalRecord::Round { .. } => replayed_rounds += 1,
                WalRecord::Observe { .. } => replayed_observes += 1,
            }
        }
        let replay_seconds = replay_started.elapsed().as_secs_f64();

        let report = RestoreReport {
            checkpoint_seq: recovery.checkpoint_seq.unwrap_or(0),
            sensors: sensor_count,
            replayed_rounds,
            replayed_observes,
            quarantined_checkpoints: recovery.quarantined_checkpoints,
            quarantined_segments: recovery.quarantined_segments,
            truncated_bytes: recovery.truncated_bytes,
            open_seconds: recovery.open_seconds,
            rebuild_seconds,
            replay_seconds,
        };
        if smiler_obs::enabled() {
            smiler_obs::observe("store.rebuild_seconds", "", rebuild_seconds);
            smiler_obs::observe("store.replay_seconds", "", replay_seconds);
        }
        Ok((DurableSystem { system, store, checkpoint_every, rounds_since_checkpoint: 0 }, report))
    }

    /// Re-apply one WAL record to the in-memory fleet.
    fn apply_record(system: &mut SmilerSystem, record: &WalRecord) -> Result<(), DurableError> {
        match record {
            WalRecord::Round { horizon: 0, values, .. } => {
                Self::check_width(system, values.len())?;
                system.observe_all(values);
            }
            WalRecord::Round { horizon, values, .. } => {
                Self::check_width(system, values.len())?;
                system.step(*horizon as usize, values);
            }
            WalRecord::Observe { sensor, value, .. } => {
                let idx = (0..system.len())
                    .find(|&i| system.sensor(i).sensor_id() == *sensor as usize)
                    .ok_or_else(|| {
                        DurableError::Corrupt(format!("WAL names unknown sensor {sensor}"))
                    })?;
                system.sensor_mut(idx).observe(*value);
            }
        }
        Ok(())
    }

    fn check_width(system: &SmilerSystem, width: usize) -> Result<(), DurableError> {
        if width != system.len() {
            return Err(DurableError::Corrupt(format!(
                "WAL round carries {width} values for a {}-sensor fleet",
                system.len()
            )));
        }
        Ok(())
    }

    /// One durable fleet round: the round is appended to the WAL *before*
    /// any sensor's index advances, so a crash at any point replays it.
    /// Checkpoints automatically on the configured cadence.
    ///
    /// # Panics
    /// Panics if the observation count differs from the sensor count
    /// (same contract as [`SmilerSystem::step`]).
    pub fn step(
        &mut self,
        h: usize,
        observations: &[f64],
    ) -> Result<Vec<(f64, f64)>, DurableError> {
        self.store.append_round(h as u32, observations)?;
        let predictions = self.system.step(h, observations);
        self.tick_checkpoint()?;
        Ok(predictions)
    }

    /// One durable observe-only round (horizon 0 in the log).
    ///
    /// # Panics
    /// Panics if the observation count differs from the sensor count.
    pub fn observe_all(&mut self, observations: &[f64]) -> Result<(), DurableError> {
        self.store.append_round(0, observations)?;
        self.system.observe_all(observations);
        self.tick_checkpoint()?;
        Ok(())
    }

    fn tick_checkpoint(&mut self) -> Result<(), DurableError> {
        self.rounds_since_checkpoint += 1;
        if self.checkpoint_every > 0 && self.rounds_since_checkpoint >= self.checkpoint_every {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Write a checkpoint of the fleet's current durable state now.
    /// Quarantined sensors contribute their last good snapshot, never a
    /// torn live predictor ([`SmilerSystem::durable_snapshots`]).
    pub fn checkpoint(&mut self) -> Result<u64, DurableError> {
        self.rounds_since_checkpoint = 0;
        Ok(self.store.checkpoint(&encode_fleet(&self.system.durable_snapshots()))?)
    }

    /// Force the WAL to the platter regardless of flush policy.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        Ok(self.store.sync()?)
    }

    /// Recover every quarantined sensor along the full ladder: the
    /// in-memory snapshot rung first ([`SmilerSystem::recover_all`]),
    /// then — for sensors whose snapshot rung failed — a rebuild from the
    /// durable checkpoint plus the WAL tail. Returns the indices brought
    /// back.
    pub fn recover_all(&mut self) -> Result<Vec<usize>, DurableError> {
        let mut recovered = self.system.recover_all();
        let still_out = self.system.quarantined();
        if still_out.is_empty() {
            return Ok(recovered);
        }
        // Store rung: decode the newest durable checkpoint once, then
        // rebuild each failed sensor from its saved snapshot plus the
        // observations the WAL holds past the checkpoint.
        let (seq, payload) = match self.store.latest_checkpoint()? {
            Some(c) => c,
            None => return Ok(recovered),
        };
        let snapshots = decode_fleet(&payload)?;
        let tail = self.store.read_tail(seq)?;
        for idx in still_out {
            let sensor_id = self.system.sensor(idx).sensor_id();
            let Some(mut snap) = snapshots.iter().find(|s| s.sensor_id == sensor_id).cloned()
            else {
                continue;
            };
            // Absorb this sensor's share of the tail into the history so
            // the rebuilt index is current; adaptive state stays at the
            // checkpoint cut (the snapshot rung's exact semantics).
            for record in &tail {
                match record {
                    WalRecord::Round { values, .. } => {
                        if let Some(&v) = values.get(idx) {
                            snap.history.push(v);
                        }
                    }
                    WalRecord::Observe { sensor, value, .. } => {
                        if *sensor as usize == sensor_id {
                            snap.history.push(*value);
                        }
                    }
                }
            }
            let device = Arc::clone(self.system.device_arc());
            let rebuilt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                SensorPredictor::restore(device, snap)
            }));
            if let Ok(predictor) = rebuilt {
                self.system.install_recovered(idx, predictor);
                smiler_obs::count("store.sensor_rebuilt", "", 1);
                recovered.push(idx);
            }
        }
        recovered.sort_unstable();
        Ok(recovered)
    }

    /// The wrapped fleet (read-only).
    pub fn system(&self) -> &SmilerSystem {
        &self.system
    }

    /// Mutable access to the wrapped fleet. Steps driven through this
    /// handle bypass the WAL — use [`DurableSystem::step`] /
    /// [`DurableSystem::observe_all`] for durable rounds.
    pub fn system_mut(&mut self) -> &mut SmilerSystem {
        &mut self.system
    }

    /// The underlying store (read-only).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Dismantle into the fleet and the store (e.g. to hand both to the
    /// sharded serving frontend, which logs and checkpoints itself).
    pub fn into_parts(self) -> (SmilerSystem, Store) {
        (self.system, self.store)
    }
}
