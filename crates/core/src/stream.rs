//! Raw-stream ingestion: the adoption layer between real sensor feeds and
//! the normalised, fixed-rate series SMiLer operates on.
//!
//! The paper assumes each sensor delivers a fixed-rate, z-normalised
//! series (§3.1 + §6.1.2), noting that users "can easily re-interpolate
//! data if the sample rate is changed". Real feeds drop samples, repeat
//! timestamps and arrive in engineering units. [`SensorStream`] owns that
//! gap: it fits normalisation statistics on the training history, fills
//! missing ticks by linear interpolation, rejects stale input, and returns
//! forecasts in the sensor's raw units with calibrated intervals.

use crate::predictor::PredictorKind;
use crate::sensor::{SensorPredictor, SmilerConfig};
use smiler_gpu::Device;
use smiler_store::SharedStore;
use smiler_timeseries::normalize::ZNorm;
use std::sync::Arc;

/// Errors raised by stream ingestion.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// The observation's timestamp is not newer than the last accepted one.
    StaleTimestamp {
        /// Timestamp of the rejected observation.
        got: u64,
        /// Newest timestamp already ingested.
        newest: u64,
    },
    /// The value is not a finite number.
    NotFinite,
    /// The gap is too large to interpolate responsibly.
    GapTooLarge {
        /// Number of missing ticks.
        missing: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The attached durable store rejected the append; nothing was
    /// absorbed (a value that is not durable must not advance the index).
    Store {
        /// The store's error, stringified (I/O errors are not `Clone`).
        message: String,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::StaleTimestamp { got, newest } => {
                write!(f, "timestamp {got} is not newer than {newest}")
            }
            StreamError::NotFinite => write!(f, "observation is not a finite number"),
            StreamError::GapTooLarge { missing, max } => {
                write!(f, "gap of {missing} ticks exceeds the interpolation limit {max}")
            }
            StreamError::Store { message } => {
                write!(f, "durable store rejected the append: {message}")
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// A forecast in the sensor's raw units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Forecast {
    /// Predictive mean.
    pub mean: f64,
    /// Predictive standard deviation.
    pub std_dev: f64,
    /// 95% interval (mean ± 1.96 σ).
    pub interval95: (f64, f64),
}

/// A raw-unit, wall-clock-timestamped front end over a [`SensorPredictor`].
pub struct SensorStream {
    predictor: SensorPredictor,
    znorm: ZNorm,
    /// Sampling interval in timestamp units.
    interval: u64,
    /// Timestamp of the newest ingested sample.
    newest: u64,
    /// Raw value of the newest ingested sample (interpolation anchor).
    newest_value: f64,
    /// Longest gap (in ticks) that will be linearly filled.
    max_gap: usize,
    /// Optional durable log: every absorbed (normalised) value is appended
    /// *before* the predictor's index advances.
    store: Option<SharedStore>,
}

impl SensorStream {
    /// Create a stream from raw history sampled at `interval` units ending
    /// at timestamp `last_timestamp`.
    ///
    /// # Panics
    /// Panics if the history is too short for the configuration (same
    /// requirement as [`SensorPredictor::new`]) or `interval` is zero.
    pub fn new(
        device: Arc<Device>,
        sensor_id: usize,
        raw_history: &[f64],
        last_timestamp: u64,
        interval: u64,
        config: SmilerConfig,
        kind: PredictorKind,
    ) -> Self {
        assert!(interval > 0, "sampling interval must be positive");
        assert!(!raw_history.is_empty(), "history must not be empty");
        let znorm = ZNorm::fit(raw_history);
        let normalised = znorm.apply_all(raw_history);
        let newest_value = *raw_history.last().expect("non-empty");
        let predictor = SensorPredictor::new(device, sensor_id, normalised, config, kind);
        SensorStream {
            predictor,
            znorm,
            interval,
            newest: last_timestamp,
            newest_value,
            max_gap: 16,
            store: None,
        }
    }

    /// Change the interpolation limit (ticks).
    pub fn with_max_gap(mut self, max_gap: usize) -> Self {
        self.max_gap = max_gap;
        self
    }

    /// Attach a durable store: every sample [`SensorStream::ingest`]
    /// absorbs (including interpolated fills) is WAL-logged under this
    /// sensor's id *before* the in-memory index advances.
    pub fn with_store(mut self, store: SharedStore) -> Self {
        self.store = Some(store);
        self
    }

    /// The normalisation parameters in use.
    pub fn znorm(&self) -> ZNorm {
        self.znorm
    }

    /// Timestamp of the newest ingested observation.
    pub fn newest_timestamp(&self) -> u64 {
        self.newest
    }

    /// Ingest one raw observation. Missing ticks between the previous
    /// observation and this one are filled by linear interpolation; the
    /// return value is the number of samples absorbed (1 + fills).
    /// Off-grid timestamps snap to the **nearest** tick, keeping `newest`
    /// on the sampling grid.
    pub fn ingest(&mut self, timestamp: u64, raw_value: f64) -> Result<usize, StreamError> {
        if !raw_value.is_finite() {
            return Err(StreamError::NotFinite);
        }
        if timestamp <= self.newest {
            return Err(StreamError::StaleTimestamp { got: timestamp, newest: self.newest });
        }
        let elapsed = timestamp - self.newest;
        // Nearest-tick snap. Floor rounding re-times late-jittered samples
        // one tick early; the error accumulates until it exceeds one
        // interval and then surfaces as a spurious interpolated fill.
        let ticks = ((elapsed + self.interval / 2) / self.interval).max(1) as usize;
        let missing = ticks - 1;
        if missing > self.max_gap {
            return Err(StreamError::GapTooLarge { missing, max: self.max_gap });
        }
        // Linear fill from the previous raw value to this one.
        let values: Vec<f64> = (1..=ticks)
            .map(|i| {
                let frac = i as f64 / ticks as f64;
                self.znorm.apply(self.newest_value * (1.0 - frac) + raw_value * frac)
            })
            .collect();
        // Durability first: every value reaches the WAL before any index
        // advances, so a crash mid-ingest replays the whole batch and an
        // append failure absorbs nothing (the clock stays put too).
        if let Some(store) = &self.store {
            let sensor = self.predictor.sensor_id() as u32;
            let mut store = store.lock();
            for &v in &values {
                store
                    .append_observe(sensor, v)
                    .map_err(|e| StreamError::Store { message: e.to_string() })?;
            }
        }
        for v in values {
            self.predictor.observe(v);
        }
        self.newest += ticks as u64 * self.interval;
        self.newest_value = raw_value;
        Ok(ticks)
    }

    /// Forecast `h` ticks ahead, in raw units.
    pub fn forecast(&mut self, h: usize) -> Forecast {
        let (mean_z, var_z) = self.predictor.predict(h);
        let mean = self.znorm.invert(mean_z);
        let var = self.znorm.invert_variance(var_z);
        let sd = var.max(0.0).sqrt();
        Forecast { mean, std_dev: sd, interval95: (mean - 1.96 * sd, mean + 1.96 * sd) }
    }

    /// Borrow the underlying predictor (diagnostics).
    pub fn predictor(&self) -> &SensorPredictor {
        &self.predictor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw_history(n: usize) -> Vec<f64> {
        // A ~400-unit seasonal raw signal (e.g. car-park lots).
        (0..n).map(|i| 400.0 + 150.0 * (i as f64 * std::f64::consts::TAU / 24.0).sin()).collect()
    }

    fn stream() -> SensorStream {
        let device = Arc::new(Device::default_gpu());
        SensorStream::new(
            device,
            0,
            &raw_history(400),
            /* last ts */ 4000,
            /* interval */ 10,
            SmilerConfig::small_for_tests(),
            PredictorKind::Aggregation,
        )
    }

    #[test]
    fn forecasts_come_back_in_raw_units() {
        let mut s = stream();
        let f = s.forecast(1);
        assert!(f.mean > 200.0 && f.mean < 600.0, "raw-unit mean, got {}", f.mean);
        assert!(f.std_dev >= 0.0);
        assert!(f.interval95.0 <= f.mean && f.mean <= f.interval95.1);
    }

    #[test]
    fn ingest_advances_clock_and_counts_ticks() {
        let mut s = stream();
        assert_eq!(s.ingest(4010, 420.0), Ok(1));
        assert_eq!(s.newest_timestamp(), 4010);
        // A 3-tick jump fills 2 missing samples.
        assert_eq!(s.ingest(4040, 450.0), Ok(3));
        assert_eq!(s.newest_timestamp(), 4040);
    }

    #[test]
    fn gap_interpolation_is_linear() {
        let mut s = stream();
        let len_before = s.predictor.history().len();
        s.ingest(4030, 700.0).unwrap(); // 3 ticks from 4000
        let hist = s.predictor.history();
        assert_eq!(hist.len(), len_before + 3);
        // The filled values climb monotonically toward the new reading.
        let z = s.znorm();
        let raw: Vec<f64> = hist[hist.len() - 3..].iter().map(|&v| z.invert(v)).collect();
        assert!(raw[0] < raw[1] && raw[1] < raw[2]);
        assert!((raw[2] - 700.0).abs() < 1e-9);
    }

    #[test]
    fn stale_and_bad_input_rejected() {
        let mut s = stream();
        s.ingest(4010, 400.0).unwrap();
        assert_eq!(
            s.ingest(4010, 401.0),
            Err(StreamError::StaleTimestamp { got: 4010, newest: 4010 })
        );
        assert_eq!(
            s.ingest(3990, 401.0).unwrap_err(),
            StreamError::StaleTimestamp { got: 3990, newest: 4010 }
        );
        assert_eq!(s.ingest(4020, f64::NAN), Err(StreamError::NotFinite));
        // Errors must not corrupt the clock.
        assert_eq!(s.newest_timestamp(), 4010);
    }

    #[test]
    fn oversized_gap_rejected() {
        let mut s = stream().with_max_gap(2);
        let err = s.ingest(4000 + 10 * 10, 400.0).unwrap_err();
        assert_eq!(err, StreamError::GapTooLarge { missing: 9, max: 2 });
        // Clock unchanged: the caller decides how to resynchronise.
        assert_eq!(s.newest_timestamp(), 4000);
    }

    #[test]
    fn off_grid_arrivals_do_not_drift_the_clock() {
        // Property: a stream arriving once per true tick, with bounded
        // random timestamp jitter, must absorb exactly one sample per
        // arrival (no spurious interpolation) and keep `newest` on the
        // sampling grid.
        let mut rng = 0x2545_F491_4F6C_DD1Du64;
        let mut next = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _case in 0..8 {
            let mut s = stream();
            for i in 1..=200u64 {
                let jitter = (next() % 9) as i64 - 4; // [-4, 4] on interval 10
                let t = (4000 + i * 10) as i64 + jitter;
                let absorbed = s.ingest(t as u64, 400.0 + (i % 7) as f64).unwrap();
                assert_eq!(absorbed, 1, "arrival {i} at t={t} caused spurious fills");
                assert_eq!(s.newest_timestamp(), 4000 + i * 10, "clock drifted at arrival {i}");
            }
        }
    }

    #[test]
    fn off_grid_gap_snaps_to_nearest_tick() {
        let mut s = stream();
        // 18 units past the newest tick is nearest to 2 ticks, not 1.
        assert_eq!(s.ingest(4018, 420.0), Ok(2));
        assert_eq!(s.newest_timestamp(), 4020);
        // 4 units short of the next tick still counts as that tick.
        assert_eq!(s.ingest(4026, 430.0), Ok(1));
        assert_eq!(s.newest_timestamp(), 4030);
    }

    #[test]
    fn continuous_operation_tracks_signal() {
        let mut s = stream();
        let mut err = 0.0;
        let mut steps = 0;
        for i in 0..24usize {
            let t = 4000 + (i as u64 + 1) * 10;
            let truth = 400.0 + 150.0 * ((400 + i) as f64 * std::f64::consts::TAU / 24.0).sin();
            let f = s.forecast(1);
            err += (f.mean - truth).abs();
            steps += 1;
            s.ingest(t, truth).unwrap();
        }
        let mae = err / steps as f64;
        assert!(mae < 40.0, "raw-unit MAE {mae} too high for a clean seasonal signal");
    }
}
