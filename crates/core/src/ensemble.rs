//! The auto-tuned ensemble matrix λ (paper §3.2.2, §5.1).
//!
//! A sensor's predictor is a mixture over an `m × n` matrix of abstract
//! predictors `f_{i,j}`, one per `(kᵢ ∈ EKV, dⱼ ∈ ELV)` pair (Eqn 2–3).
//! After each true value arrives, every awake cell is scored by its
//! Gaussian likelihood (Eqn 6–7), weights are bumped by the normalised
//! likelihoods (Eqn 8) and renormalised (Eqn 9) — an exponential smoothing
//! of each cell's posterior probability. Cells whose weight sinks below
//! `η = 1/(2nm)` are put to *sleep* (§5.1.2) to save computation; sleep
//! spans double for chronic under-performers and halve while a cell stays
//! awake.

/// Ensemble operating mode — the Fig 11 ablation axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum EnsembleMode {
    /// Full SMiLer: ensemble + self-adaptive weights + sleep/recovery.
    Full,
    /// SMiLerNS: ensemble with *fixed uniform* weights (no self-adaptive
    /// tuning, no sleeping).
    NoSelfAdaptive,
}

/// Configuration of the ensemble matrix.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct EnsembleConfig {
    /// Ensemble kNN Vector (paper default {8, 16, 32}).
    pub ekv: Vec<usize>,
    /// Ensemble Length Vector (paper default {32, 64, 96}).
    pub elv: Vec<usize>,
    /// Operating mode.
    pub mode: EnsembleMode,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        EnsembleConfig { ekv: vec![8, 16, 32], elv: vec![32, 64, 96], mode: EnsembleMode::Full }
    }
}

impl EnsembleConfig {
    /// SMiLerNE: a single predictor (k = 32, d = 64 in the paper's Fig 11).
    pub fn single(k: usize, d: usize) -> Self {
        EnsembleConfig { ekv: vec![k], elv: vec![d], mode: EnsembleMode::Full }
    }

    /// Number of cells `m·n`.
    pub fn cells(&self) -> usize {
        self.ekv.len() * self.elv.len()
    }

    /// The `(k, d)` of a flat cell index (row-major over `ekv × elv`).
    pub fn cell(&self, idx: usize) -> (usize, usize) {
        let n = self.elv.len();
        (self.ekv[idx / n], self.elv[idx % n])
    }
}

/// Serialisable adaptive state of an [`EnsembleMatrix`]: the weights and
/// per-cell sleep bookkeeping `(remaining, counter ς, just_recovered)`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnsembleState {
    /// Cell weights (0 for sleeping cells).
    pub lambda: Vec<f64>,
    /// Per-cell `(remaining, ς, just_recovered)`.
    pub sleep: Vec<(usize, usize, bool)>,
}

/// Per-cell sleep bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
struct SleepState {
    /// Steps left to sleep; 0 = awake.
    remaining: usize,
    /// The sleep counter ς (doubles on immediate re-sleep, halves while
    /// awake).
    counter: usize,
    /// Whether the cell recovered on the previous update.
    just_recovered: bool,
}

/// The ensemble matrix with its adaptive weights.
#[derive(Debug, Clone)]
pub struct EnsembleMatrix {
    config: EnsembleConfig,
    /// Cell weights; awake cells sum to 1, sleeping cells hold 0.
    lambda: Vec<f64>,
    sleep: Vec<SleepState>,
}

impl EnsembleMatrix {
    /// Uniform initial weights.
    pub fn new(config: EnsembleConfig) -> Self {
        assert!(!config.ekv.is_empty() && !config.elv.is_empty(), "empty ensemble");
        let cells = config.cells();
        EnsembleMatrix {
            config,
            lambda: vec![1.0 / cells as f64; cells],
            sleep: vec![SleepState { remaining: 0, counter: 1, just_recovered: false }; cells],
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EnsembleConfig {
        &self.config
    }

    /// The sleep threshold `η = 1/(2nm)` (§5.1.2).
    pub fn eta(&self) -> f64 {
        1.0 / (2.0 * self.config.cells() as f64)
    }

    /// Current weight of a cell (0 while sleeping).
    pub fn weight(&self, idx: usize) -> f64 {
        self.lambda[idx]
    }

    /// Whether the cell participates this step.
    pub fn is_awake(&self, idx: usize) -> bool {
        self.sleep[idx].remaining == 0
    }

    /// Number of awake cells.
    pub fn awake_count(&self) -> usize {
        self.sleep.iter().filter(|s| s.remaining == 0).count()
    }

    /// Fuse per-cell predictions into the ensemble's `N(u, σ²)` (Eqn 3),
    /// moment-matching the Gaussian mixture. Cells may be `None` (asleep or
    /// failed); returns `None` if no weighted prediction exists.
    pub fn fuse(&self, predictions: &[Option<(f64, f64)>]) -> Option<(f64, f64)> {
        assert_eq!(predictions.len(), self.lambda.len(), "one prediction slot per cell");
        let mut wsum = 0.0;
        for (idx, p) in predictions.iter().enumerate() {
            if p.is_some() && self.is_awake(idx) {
                wsum += self.lambda[idx];
            }
        }
        if wsum <= 0.0 {
            // All weight is on failed cells: fall back to an unweighted
            // average of whatever predictions exist.
            let avail: Vec<(f64, f64)> = predictions.iter().flatten().copied().collect();
            if avail.is_empty() {
                return None;
            }
            let w = 1.0 / avail.len() as f64;
            let mean: f64 = avail.iter().map(|(u, _)| w * u).sum();
            let var: f64 = avail.iter().map(|(u, v)| w * (v + u * u)).sum::<f64>() - mean * mean;
            return Some((mean, var.max(1e-9)));
        }
        let mut mean = 0.0;
        for (idx, p) in predictions.iter().enumerate() {
            if let Some((u, _)) = p {
                if self.is_awake(idx) {
                    mean += self.lambda[idx] / wsum * u;
                }
            }
        }
        let mut var = 0.0;
        for (idx, p) in predictions.iter().enumerate() {
            if let Some((u, v)) = p {
                if self.is_awake(idx) {
                    let w = self.lambda[idx] / wsum;
                    var += w * (v + (u - mean) * (u - mean));
                }
            }
        }
        Some((mean, var.max(1e-9)))
    }

    /// Score the step's predictions against the realised value and update
    /// weights (Eqns 6–9), then run the sleep/recovery schedule (§5.1.2).
    pub fn update(&mut self, truth: f64, predictions: &[Option<(f64, f64)>]) {
        assert_eq!(predictions.len(), self.lambda.len(), "one prediction slot per cell");
        if self.config.mode == EnsembleMode::NoSelfAdaptive {
            return;
        }

        // Eqn 6–7: likelihood of each awake cell's prediction.
        let mut likelihood = vec![0.0; self.lambda.len()];
        let mut lsum = 0.0;
        for (idx, p) in predictions.iter().enumerate() {
            if let Some((u, v)) = p {
                if self.is_awake(idx) {
                    let l = smiler_linalg::stats::gaussian_pdf(truth, *u, *v);
                    likelihood[idx] = l;
                    lsum += l;
                }
            }
        }
        // Eqn 8–9: bump by normalised likelihood, renormalise.
        if lsum > 0.0 {
            for (idx, l) in likelihood.iter().enumerate() {
                if self.is_awake(idx) {
                    self.lambda[idx] += l / lsum;
                }
            }
        }
        self.normalize_awake();

        // Sleep/recovery schedule.
        let eta = self.eta();

        // 1. Tick sleepers; collect recoveries.
        let mut recovered = Vec::new();
        for (idx, s) in self.sleep.iter_mut().enumerate() {
            if s.remaining > 0 {
                s.remaining -= 1;
                if s.remaining == 0 {
                    recovered.push(idx);
                }
            }
        }
        // 2. Recovered cells re-enter at weight η: assign η/(1−κη) then
        //    renormalise (the paper's bookkeeping, §5.1.2).
        if !recovered.is_empty() {
            let kappa = recovered.len() as f64;
            let w = eta / (1.0 - kappa * eta);
            for &idx in &recovered {
                self.lambda[idx] = w;
                self.sleep[idx].just_recovered = true;
                if smiler_obs::enabled() {
                    let (k, d) = self.config.cell(idx);
                    smiler_obs::count("ensemble.wakes", "", 1);
                    smiler_obs::event(
                        "ensemble.wake",
                        &format!("cell={idx}"),
                        &CellTransition { cell: idx, k, d, counter: self.sleep[idx].counter },
                    );
                }
            }
            self.normalize_awake();
        }

        // 3. Put under-performers to sleep — but never the last awake cell.
        let mut sleepers = Vec::new();
        for idx in 0..self.lambda.len() {
            if self.is_awake(idx) && self.lambda[idx] < eta {
                sleepers.push(idx);
            }
        }
        if sleepers.len() >= self.awake_count() {
            // Keep the single best of the would-be sleepers awake.
            let best = *sleepers
                .iter()
                .max_by(|&&a, &&b| {
                    self.lambda[a].partial_cmp(&self.lambda[b]).expect("weights are finite")
                })
                .expect("non-empty");
            sleepers.retain(|&i| i != best);
        }
        for idx in 0..self.lambda.len() {
            if !self.is_awake(idx) {
                continue;
            }
            // Cells that recovered *during this update* were not scored yet;
            // their first real test is the next update, so the
            // double-on-immediate-resleep flag must survive until then.
            if recovered.contains(&idx) {
                continue;
            }
            let s = &mut self.sleep[idx];
            if sleepers.contains(&idx) {
                if s.just_recovered {
                    // Slept again right after recovery: double ς.
                    s.counter *= 2;
                }
                s.remaining = s.counter;
                s.just_recovered = false;
                self.lambda[idx] = 0.0;
                if smiler_obs::enabled() {
                    let (k, d) = self.config.cell(idx);
                    let counter = self.sleep[idx].counter;
                    smiler_obs::count("ensemble.sleeps", "", 1);
                    smiler_obs::event(
                        "ensemble.sleep",
                        &format!("cell={idx}"),
                        &CellTransition { cell: idx, k, d, counter },
                    );
                }
            } else {
                // Survived a scored step awake: halve ς towards 1.
                s.counter = (s.counter / 2).max(1);
                s.just_recovered = false;
            }
        }
        self.normalize_awake();
        if smiler_obs::enabled() {
            smiler_obs::gauge_set("ensemble.awake_cells", "", self.awake_count() as f64);
            smiler_obs::event(
                "ensemble.lambda",
                "",
                &LambdaSnapshot { lambda: self.lambda.clone(), awake: self.awake_count() },
            );
        }
    }

    /// Capture the adaptive state for persistence.
    pub fn snapshot(&self) -> EnsembleState {
        EnsembleState {
            lambda: self.lambda.clone(),
            sleep: self.sleep.iter().map(|s| (s.remaining, s.counter, s.just_recovered)).collect(),
        }
    }

    /// Restore a matrix from a snapshot taken with the same configuration.
    ///
    /// # Panics
    /// Panics if the snapshot's cell count does not match `config`.
    pub fn restore(config: EnsembleConfig, state: EnsembleState) -> Self {
        assert_eq!(state.lambda.len(), config.cells(), "snapshot/config cell mismatch");
        assert_eq!(state.sleep.len(), config.cells(), "snapshot/config cell mismatch");
        EnsembleMatrix {
            config,
            lambda: state.lambda,
            sleep: state
                .sleep
                .into_iter()
                .map(|(remaining, counter, just_recovered)| SleepState {
                    remaining,
                    counter: counter.max(1),
                    just_recovered,
                })
                .collect(),
        }
    }

    fn normalize_awake(&mut self) {
        let sum: f64 = self
            .lambda
            .iter()
            .zip(&self.sleep)
            .filter(|(_, s)| s.remaining == 0)
            .map(|(l, _)| *l)
            .sum();
        if sum > 0.0 {
            for (l, s) in self.lambda.iter_mut().zip(&self.sleep) {
                if s.remaining == 0 {
                    *l /= sum;
                } else {
                    *l = 0.0;
                }
            }
        } else {
            // Degenerate: reset awake cells to uniform.
            let awake = self.awake_count().max(1);
            for (l, s) in self.lambda.iter_mut().zip(&self.sleep) {
                *l = if s.remaining == 0 { 1.0 / awake as f64 } else { 0.0 };
            }
        }
    }
}

/// Event payload for a cell falling asleep or waking up.
#[derive(serde::Serialize)]
struct CellTransition {
    /// Flat cell index in the ensemble matrix.
    cell: usize,
    /// Cell's neighbour count k.
    k: usize,
    /// Cell's item-query length d.
    d: usize,
    /// Sleep counter ς after the transition.
    counter: usize,
}

/// Event payload capturing the full λ-weight vector after an update.
#[derive(serde::Serialize)]
struct LambdaSnapshot {
    /// Per-cell weights (0 for sleeping cells).
    lambda: Vec<f64>,
    /// Number of awake cells.
    awake: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_2x2() -> EnsembleMatrix {
        EnsembleMatrix::new(EnsembleConfig {
            ekv: vec![4, 8],
            elv: vec![16, 32],
            mode: EnsembleMode::Full,
        })
    }

    #[test]
    fn initial_weights_uniform() {
        let m = matrix_2x2();
        for idx in 0..4 {
            assert!((m.weight(idx) - 0.25).abs() < 1e-12);
            assert!(m.is_awake(idx));
        }
        assert_eq!(m.eta(), 1.0 / 8.0);
        assert_eq!(m.config().cell(0), (4, 16));
        assert_eq!(m.config().cell(3), (8, 32));
    }

    #[test]
    fn good_predictor_gains_weight() {
        let mut m = matrix_2x2();
        // Cell 0 predicts perfectly; others are far off.
        let preds = vec![Some((1.0, 0.1)), Some((5.0, 0.1)), Some((5.0, 0.1)), Some((5.0, 0.1))];
        for _ in 0..5 {
            m.update(1.0, &preds);
        }
        // The losers cycle through sleep/recovery (re-entering at η each
        // time), so the winner's weight oscillates between 1 and 1 − 3η;
        // it must stay the dominant cell throughout.
        assert!(m.weight(0) >= 0.6, "winner weight {}", m.weight(0));
        for idx in 1..4 {
            assert!(m.weight(idx) < m.weight(0));
        }
        let sum: f64 = (0..4).map(|i| m.weight(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9, "weights must stay normalised");
    }

    #[test]
    fn hand_computed_single_update() {
        // Two cells, equal initial weight 0.5. Likelihoods l0, l1 →
        // λ̄ᵢ = 0.5 + lᵢ/(l0+l1); λᵢ = λ̄ᵢ/Σλ̄ (Eqns 8–9).
        let mut m = EnsembleMatrix::new(EnsembleConfig {
            ekv: vec![4],
            elv: vec![8, 16],
            mode: EnsembleMode::Full,
        });
        let preds = vec![Some((0.0, 1.0)), Some((2.0, 1.0))];
        let l0 = smiler_linalg::stats::gaussian_pdf(0.0, 0.0, 1.0);
        let l1 = smiler_linalg::stats::gaussian_pdf(0.0, 2.0, 1.0);
        let b0 = 0.5 + l0 / (l0 + l1);
        let b1 = 0.5 + l1 / (l0 + l1);
        m.update(0.0, &preds);
        assert!((m.weight(0) - b0 / (b0 + b1)).abs() < 1e-12);
        assert!((m.weight(1) - b1 / (b0 + b1)).abs() < 1e-12);
    }

    #[test]
    fn fuse_weights_means_and_variances() {
        let m = EnsembleMatrix::new(EnsembleConfig {
            ekv: vec![4],
            elv: vec![8, 16],
            mode: EnsembleMode::Full,
        });
        let (mean, var) = m.fuse(&[Some((0.0, 1.0)), Some((2.0, 1.0))]).unwrap();
        assert!((mean - 1.0).abs() < 1e-12);
        // Mixture variance: E[v] + E[(u−mean)²] = 1 + 1 = 2.
        assert!((var - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fuse_skips_missing_cells() {
        let m = matrix_2x2();
        let (mean, _) = m.fuse(&[Some((3.0, 0.5)), None, None, None]).unwrap();
        assert_eq!(mean, 3.0);
        assert!(m.fuse(&[None, None, None, None]).is_none());
    }

    #[test]
    fn bad_cell_goes_to_sleep_and_recovers() {
        let mut m = matrix_2x2();
        let preds =
            vec![Some((1.0, 0.01)), Some((50.0, 0.01)), Some((1.0, 0.01)), Some((1.0, 0.01))];
        // Repeated truth = 1.0 crushes cell 1's weight below η = 1/8.
        let mut slept = false;
        for _ in 0..10 {
            m.update(1.0, &preds);
            if !m.is_awake(1) {
                slept = true;
                break;
            }
        }
        assert!(slept, "hopeless cell must fall asleep");
        assert_eq!(m.weight(1), 0.0);
        // ς = 1 initially → it recovers after one step.
        m.update(1.0, &preds);
        assert!(m.is_awake(1), "cell must recover after its sleep span");
        assert!((m.weight(1) - m.eta()).abs() < 1e-9, "recovered weight must equal η");
    }

    #[test]
    fn chronic_sleeper_doubles_its_span() {
        let mut m = matrix_2x2();
        let preds =
            vec![Some((1.0, 0.01)), Some((50.0, 0.01)), Some((1.0, 0.01)), Some((1.0, 0.01))];
        // Drive cell 1 through repeated sleep cycles.
        let mut spans = Vec::new();
        let mut current_sleep = 0usize;
        for _ in 0..40 {
            m.update(1.0, &preds);
            if !m.is_awake(1) {
                current_sleep += 1;
            } else if current_sleep > 0 {
                spans.push(current_sleep);
                current_sleep = 0;
            }
        }
        assert!(spans.len() >= 2, "need at least two completed sleep spans: {spans:?}");
        assert!(
            spans.windows(2).any(|w| w[1] >= w[0] * 2),
            "sleep spans must grow for chronic under-performers: {spans:?}"
        );
    }

    #[test]
    fn no_self_adaptive_mode_freezes_weights() {
        let mut m = EnsembleMatrix::new(EnsembleConfig {
            ekv: vec![4, 8],
            elv: vec![16, 32],
            mode: EnsembleMode::NoSelfAdaptive,
        });
        let preds =
            vec![Some((1.0, 0.01)), Some((99.0, 0.01)), Some((99.0, 0.01)), Some((99.0, 0.01))];
        for _ in 0..10 {
            m.update(1.0, &preds);
        }
        for idx in 0..4 {
            assert!((m.weight(idx) - 0.25).abs() < 1e-12);
            assert!(m.is_awake(idx));
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Under arbitrary prediction/truth streams the weights stay a
            /// probability distribution over awake cells and sleeping cells
            /// stay at zero.
            #[test]
            fn weights_remain_a_distribution(
                rounds in prop::collection::vec(
                    (prop::collection::vec(prop::option::of((-10.0f64..10.0, 0.01f64..5.0)), 6),
                     -10.0f64..10.0),
                    1..40,
                ),
            ) {
                let mut m = EnsembleMatrix::new(EnsembleConfig {
                    ekv: vec![4, 8],
                    elv: vec![8, 16, 32],
                    mode: EnsembleMode::Full,
                });
                for (preds, truth) in rounds {
                    m.update(truth, &preds);
                    let mut sum = 0.0;
                    for idx in 0..6 {
                        let w = m.weight(idx);
                        prop_assert!(w.is_finite());
                        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&w));
                        if !m.is_awake(idx) {
                            prop_assert_eq!(w, 0.0);
                        }
                        sum += w;
                    }
                    prop_assert!((sum - 1.0).abs() < 1e-6, "weights sum to {}", sum);
                    prop_assert!(m.awake_count() >= 1, "at least one cell stays awake");
                }
            }

            /// Fusing any prediction set yields a finite mean and positive
            /// variance whenever any prediction exists.
            #[test]
            fn fuse_is_well_formed(
                preds in prop::collection::vec(
                    prop::option::of((-100.0f64..100.0, 0.001f64..100.0)), 4),
            ) {
                let m = matrix_2x2();
                match m.fuse(&preds) {
                    Some((mean, var)) => {
                        prop_assert!(mean.is_finite());
                        prop_assert!(var > 0.0 && var.is_finite());
                    }
                    None => prop_assert!(preds.iter().all(Option::is_none)),
                }
            }
        }
    }

    #[test]
    fn never_sleeps_everyone() {
        let mut m = EnsembleMatrix::new(EnsembleConfig {
            ekv: vec![4],
            elv: vec![16],
            mode: EnsembleMode::Full,
        });
        // A single terrible cell must stay awake regardless.
        for _ in 0..20 {
            m.update(100.0, &[Some((0.0, 0.001))]);
            assert!(m.is_awake(0));
            assert!((m.weight(0) - 1.0).abs() < 1e-9);
        }
    }
}
