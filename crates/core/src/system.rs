//! Multi-sensor orchestration: one device, many per-sensor predictors.
//!
//! The paper's Fig. 3 shows n sensors sharing one GPU: each has its own
//! SMiLer index and predictor matrix, and "the SMiLer Index can easily
//! scale up with multiple sensors, where we only need to create multiple
//! SMiLer Indexes and invoke more blocks" (§4.4). [`SmilerSystem`] is that
//! arrangement; it also enforces the device-memory budget that bounds the
//! number of resident sensors (the Fig 12c capacity experiment).

use crate::degrade::{PredictError, Prediction, RequestPolicy};
use crate::predictor::PredictorKind;
use crate::sensor::{SensorPredictor, SmilerConfig};
use crate::snapshot::SensorSnapshot;
use smiler_gpu::Device;
use smiler_index::{fleet_search, SmilerIndex};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

/// How many fleet observation rounds pass between snapshot refreshes of
/// healthy sensors (the recovery point a quarantined sensor restarts from).
const SNAPSHOT_REFRESH_INTERVAL: u64 = 16;

/// Error returned when a sensor's index does not fit in device memory.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct OutOfDeviceMemory {
    /// Sensor that failed to fit.
    pub sensor_id: usize,
    /// Bytes the sensor's index needs.
    pub needed: usize,
    /// Bytes still available on the device.
    pub available: usize,
}

impl std::fmt::Display for OutOfDeviceMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sensor {} needs {} bytes but only {} remain on the device",
            self.sensor_id, self.needed, self.available
        )
    }
}

impl std::error::Error for OutOfDeviceMemory {}

/// Health of one resident sensor, as tracked by the fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SensorHealth {
    /// Serving normally.
    Healthy,
    /// The sensor's predictor panicked and is fenced off until
    /// [`SmilerSystem::recover`] rebuilds it from its last good snapshot.
    Quarantined {
        /// The panic message that caused the quarantine.
        message: String,
    },
}

/// Why a sensor produced no forecast during a robust fleet pass.
#[derive(Debug, Clone)]
pub enum SensorFault {
    /// The predictor panicked during this pass; the sensor is now
    /// quarantined.
    Panicked {
        /// The panic payload, stringified.
        message: String,
    },
    /// The sensor was already quarantined when the pass started.
    Quarantined {
        /// The panic message that caused the quarantine.
        message: String,
    },
    /// The fallible serving path returned a typed error.
    Predict(PredictError),
}

impl std::fmt::Display for SensorFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SensorFault::Panicked { message } => write!(f, "predictor panicked: {message}"),
            SensorFault::Quarantined { message } => {
                write!(f, "sensor is quarantined (cause: {message})")
            }
            SensorFault::Predict(e) => write!(f, "prediction failed: {e}"),
        }
    }
}

impl std::error::Error for SensorFault {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SensorFault::Predict(e) => Some(e),
            _ => None,
        }
    }
}

/// Stringify a panic payload for quarantine bookkeeping.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A fleet of per-sensor SMiLer predictors sharing one device.
pub struct SmilerSystem {
    device: Arc<Device>,
    sensors: Vec<SensorPredictor>,
    health: Vec<SensorHealth>,
    /// Last good snapshot per sensor — the recovery point. While a sensor
    /// is quarantined its snapshot keeps absorbing the fleet's incoming
    /// observations so recovery resumes with a current history.
    snapshots: Vec<SensorSnapshot>,
    rounds_since_refresh: u64,
}

impl SmilerSystem {
    /// Build the system, admitting sensors until device memory runs out.
    ///
    /// Returns the system and, if some sensors did not fit, the error for
    /// the first rejected one (sensors after it are also not admitted —
    /// mirroring a fixed resident set).
    pub fn new(
        device: Arc<Device>,
        histories: Vec<Vec<f64>>,
        config: SmilerConfig,
        kind: PredictorKind,
    ) -> (Self, Option<OutOfDeviceMemory>) {
        let mut sensors = Vec::new();
        let mut rejection = None;
        for (id, history) in histories.into_iter().enumerate() {
            let predictor =
                SensorPredictor::new(Arc::clone(&device), id, history, config.clone(), kind);
            let needed = predictor.device_bytes();
            if device.try_reserve_memory(needed) {
                sensors.push(predictor);
            } else {
                let oom = OutOfDeviceMemory {
                    sensor_id: id,
                    needed,
                    available: device.memory_capacity() - device.memory_used(),
                };
                if smiler_obs::enabled() {
                    smiler_obs::event("admission.oom", &format!("sensor={id}"), &oom);
                }
                rejection = Some(oom);
                break;
            }
        }
        if smiler_obs::enabled() {
            smiler_obs::gauge_set("sensors.resident", "", sensors.len() as f64);
        }
        let health = vec![SensorHealth::Healthy; sensors.len()];
        let snapshots = sensors.iter().map(|s| s.snapshot()).collect();
        (SmilerSystem { device, sensors, health, snapshots, rounds_since_refresh: 0 }, rejection)
    }

    /// Assemble a fleet from predictors already restored from durable
    /// state (checkpoint decode). Device memory is reserved exactly as in
    /// [`SmilerSystem::new`]; sensors past the first rejection are dropped.
    pub(crate) fn from_restored(
        device: Arc<Device>,
        restored: Vec<SensorPredictor>,
    ) -> (Self, Option<OutOfDeviceMemory>) {
        let mut sensors = Vec::new();
        let mut rejection = None;
        for predictor in restored {
            let needed = predictor.device_bytes();
            if device.try_reserve_memory(needed) {
                sensors.push(predictor);
            } else {
                rejection = Some(OutOfDeviceMemory {
                    sensor_id: predictor.sensor_id(),
                    needed,
                    available: device.memory_capacity() - device.memory_used(),
                });
                break;
            }
        }
        let health = vec![SensorHealth::Healthy; sensors.len()];
        let snapshots = sensors.iter().map(|s| s.snapshot()).collect();
        (SmilerSystem { device, sensors, health, snapshots, rounds_since_refresh: 0 }, rejection)
    }

    /// Number of resident sensors.
    pub fn len(&self) -> usize {
        self.sensors.len()
    }

    /// Whether no sensor is resident.
    pub fn is_empty(&self) -> bool {
        self.sensors.is_empty()
    }

    /// The shared device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The shared device handle (for rebuilding sensors on it).
    pub(crate) fn device_arc(&self) -> &Arc<Device> {
        &self.device
    }

    /// Shared access to one sensor's predictor.
    pub fn sensor(&self, idx: usize) -> &SensorPredictor {
        &self.sensors[idx]
    }

    /// Mutable access to one sensor's predictor.
    pub fn sensor_mut(&mut self, idx: usize) -> &mut SensorPredictor {
        &mut self.sensors[idx]
    }

    /// Per-sensor snapshots safe to persist: a healthy sensor contributes
    /// its *current* state; a quarantined sensor contributes its **last
    /// good snapshot** (which kept absorbing observations while fenced
    /// off), never the torn in-memory predictor a panic may have left
    /// mid-update. This is the durable-checkpoint entry point.
    pub fn durable_snapshots(&self) -> Vec<SensorSnapshot> {
        self.sensors
            .iter()
            .enumerate()
            .map(|(idx, s)| match self.health[idx] {
                SensorHealth::Healthy => s.snapshot(),
                SensorHealth::Quarantined { .. } => self.snapshots[idx].clone(),
            })
            .collect()
    }

    /// Install an externally rebuilt predictor (the durable store's
    /// recovery rung) and mark the sensor healthy.
    pub(crate) fn install_recovered(&mut self, idx: usize, predictor: SensorPredictor) {
        self.snapshots[idx] = predictor.snapshot();
        self.sensors[idx] = predictor;
        self.health[idx] = SensorHealth::Healthy;
        smiler_obs::count("health.sensor_recovered", "store", 1);
    }

    /// Predict horizon `h` for every resident sensor.
    pub fn predict_all(&mut self, h: usize) -> Vec<(f64, f64)> {
        self.sensors.iter_mut().map(|s| s.predict(h)).collect()
    }

    /// Predict horizon `h` for every sensor with the **fleet-batched**
    /// search pipeline: one device grid per search phase spans all sensors
    /// (paper Fig 3 / §4.4), instead of one small launch sequence per
    /// sensor. Results are identical to [`SmilerSystem::predict_all`]; the
    /// device does the same work in ~16× fewer launches.
    pub fn predict_all_batched(&mut self, h: usize) -> Vec<(f64, f64)> {
        let max_ends: Vec<usize> = self.sensors.iter().map(|s| s.search_max_end()).collect();
        {
            let mut refs: Vec<&mut SmilerIndex> =
                self.sensors.iter_mut().map(|s| s.index_mut()).collect();
            let outputs = fleet_search(&self.device, &mut refs, &max_ends);
            drop(refs);
            for (sensor, out) in self.sensors.iter_mut().zip(outputs) {
                sensor.install_search(out);
            }
        }
        // The prediction math reuses each sensor's installed search.
        self.sensors.iter_mut().map(|s| s.predict(h)).collect()
    }

    /// Predict horizon `h` for every sensor using host threads — the
    /// paper's §6.4.1 note that "the running time of SMiLer-GP can be
    /// further reduced by multithreading on multi-core architecture".
    /// Sensors are independent (each owns its index and ensemble), so the
    /// prediction step parallelises trivially; the shared device's
    /// simulated clock stays correct because cost accounting is atomic
    /// per launch.
    ///
    /// Fault-isolated: a sensor that panics or errors is quarantined and
    /// reports `(NaN, ∞)`; every healthy sensor's forecast is unaffected.
    /// Use [`SmilerSystem::predict_all_robust`] to see typed per-sensor
    /// faults instead of the NaN marker.
    pub fn predict_all_parallel(&mut self, h: usize) -> Vec<(f64, f64)> {
        self.predict_all_robust(h, &RequestPolicy::default())
            .into_iter()
            .map(|r| match r {
                Ok(p) => (p.mean, p.variance),
                Err(_) => (f64::NAN, f64::INFINITY),
            })
            .collect()
    }

    /// Predict horizon `h` for every sensor with full fault isolation: the
    /// fleet's serving entry point.
    ///
    /// Each sensor runs the fallible, degradation-aware path
    /// ([`SensorPredictor::try_predict_with`]) on a host worker thread
    /// behind a panic boundary. A panicking sensor is **quarantined** —
    /// fenced off from further requests until [`SmilerSystem::recover`]
    /// rebuilds it from its last good snapshot — and reported as a
    /// [`SensorFault`]; the other sensors' forecasts are exactly what a
    /// fault-free pass would have produced.
    pub fn predict_all_robust(
        &mut self,
        h: usize,
        policy: &RequestPolicy,
    ) -> Vec<Result<Prediction, SensorFault>> {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        let chunk = self.sensors.len().div_ceil(threads.max(1)).max(1);
        let mut results: Vec<Vec<Result<Prediction, SensorFault>>> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = self
                .sensors
                .chunks_mut(chunk)
                .zip(self.health.chunks_mut(chunk))
                .map(|(sensors, health)| {
                    scope.spawn(move |_| {
                        sensors
                            .iter_mut()
                            .zip(health.iter_mut())
                            .map(|(s, state)| Self::predict_one_isolated(s, state, h, policy))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            results = handles
                .into_iter()
                .map(|j| match j.join() {
                    Ok(r) => r,
                    // Only the harness itself can reach here — sensor
                    // panics were already caught at the panic boundary.
                    Err(payload) => panic::resume_unwind(payload),
                })
                .collect();
        })
        .unwrap_or_else(|payload| panic::resume_unwind(payload));
        if smiler_obs::enabled() {
            smiler_obs::gauge_set("health.quarantined", "", self.quarantined().len() as f64);
        }
        results.into_iter().flatten().collect()
    }

    /// One sensor's isolated prediction: skip it if quarantined, otherwise
    /// run the fallible path behind a panic boundary and quarantine on
    /// unwind.
    fn predict_one_isolated(
        sensor: &mut SensorPredictor,
        state: &mut SensorHealth,
        h: usize,
        policy: &RequestPolicy,
    ) -> Result<Prediction, SensorFault> {
        if let SensorHealth::Quarantined { message } = state {
            return Err(SensorFault::Quarantined { message: message.clone() });
        }
        match panic::catch_unwind(AssertUnwindSafe(|| sensor.try_predict_with(h, policy))) {
            Ok(Ok(p)) => Ok(p),
            Ok(Err(e)) => Err(SensorFault::Predict(e)),
            Err(payload) => {
                // The predictor's in-memory state may be torn mid-update:
                // fence the sensor off until it is rebuilt from snapshot.
                let message = panic_message(payload);
                *state = SensorHealth::Quarantined { message: message.clone() };
                smiler_obs::count("health.sensor_panic", "", 1);
                Err(SensorFault::Panicked { message })
            }
        }
    }

    /// Health of one resident sensor.
    pub fn health(&self, idx: usize) -> &SensorHealth {
        &self.health[idx]
    }

    /// Indices of currently quarantined sensors.
    pub fn quarantined(&self) -> Vec<usize> {
        self.health
            .iter()
            .enumerate()
            .filter(|(_, h)| matches!(h, SensorHealth::Quarantined { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    /// Test support: wreck the stored recovery snapshot for `idx` so the
    /// in-memory rung of the recovery ladder fails (restore panics on an
    /// empty history) and callers fall through to the durable-store rung.
    #[doc(hidden)]
    pub fn poison_snapshot_for_tests(&mut self, idx: usize) {
        self.snapshots[idx].history.clear();
    }

    /// Rebuild a quarantined sensor from its last good snapshot (including
    /// the observations that arrived while it was fenced off) and mark it
    /// healthy. Returns `true` on success; `false` if the sensor was not
    /// quarantined, or if the rebuild itself panicked (it then stays
    /// quarantined).
    pub fn recover(&mut self, idx: usize) -> bool {
        if !matches!(self.health[idx], SensorHealth::Quarantined { .. }) {
            return false;
        }
        let snapshot = self.snapshots[idx].clone();
        let device = Arc::clone(&self.device);
        match panic::catch_unwind(AssertUnwindSafe(|| SensorPredictor::restore(device, snapshot))) {
            Ok(predictor) => {
                self.sensors[idx] = predictor;
                self.health[idx] = SensorHealth::Healthy;
                smiler_obs::count("health.sensor_recovered", "", 1);
                true
            }
            Err(_) => false,
        }
    }

    /// Attempt recovery of every quarantined sensor; returns the indices
    /// brought back.
    pub fn recover_all(&mut self) -> Vec<usize> {
        let quarantined = self.quarantined();
        quarantined.into_iter().filter(|&idx| self.recover(idx)).collect()
    }

    /// One full continuous-prediction step for the whole fleet: predict
    /// horizon `h` for every resident sensor, then absorb the realised
    /// `observations` (same order as construction). Returns the fused
    /// `(mean, variance)` forecasts made *before* the observations were
    /// seen.
    ///
    /// Health-aware: a quarantined sensor is **never touched** — it
    /// reports `(NaN, ∞)` and its *snapshot* absorbs the observation, the
    /// same contract as [`SmilerSystem::observe_all`]. (It used to drive
    /// the torn predictor anyway, re-panicking or corrupting state, and
    /// never refreshed recovery snapshots — so a crash during a
    /// `step`-driven run recovered to an arbitrarily stale point.)
    ///
    /// With observability on, the step runs under a `step` span, records a
    /// per-sensor latency histogram (`step.sensor_seconds`), and updates
    /// the `sensors.resident` / `cells.active` / `cells.sleeping` gauges.
    ///
    /// # Panics
    /// Panics if the observation count differs from the sensor count.
    pub fn step(&mut self, h: usize, observations: &[f64]) -> Vec<(f64, f64)> {
        assert_eq!(observations.len(), self.sensors.len(), "one observation per sensor");
        let _span = smiler_obs::span("step");
        let obs_on = smiler_obs::enabled();
        let mut predictions = Vec::with_capacity(self.sensors.len());
        // Sensors are independent, so interleaving predict/observe per
        // sensor is equivalent to predict_all followed by observe_all.
        for (idx, &v) in observations.iter().enumerate() {
            if matches!(self.health[idx], SensorHealth::Quarantined { .. }) {
                self.snapshots[idx].history.push(v);
                predictions.push((f64::NAN, f64::INFINITY));
                continue;
            }
            let s = &mut self.sensors[idx];
            let started = if obs_on { Some(std::time::Instant::now()) } else { None };
            predictions.push(s.predict(h));
            s.observe(v);
            if let Some(started) = started {
                smiler_obs::observe("step.sensor_seconds", "", started.elapsed().as_secs_f64());
            }
        }
        self.tick_snapshot_refresh();
        if obs_on {
            smiler_obs::gauge_set("sensors.resident", "", self.sensors.len() as f64);
            let (mut active, mut sleeping) = (0usize, 0usize);
            for s in &self.sensors {
                if let Some(weights) = s.weights(h) {
                    // λ is zero exactly for sleeping cells.
                    active += weights.iter().filter(|w| **w > 0.0).count();
                    sleeping += weights.iter().filter(|w| **w == 0.0).count();
                }
            }
            smiler_obs::gauge_set("cells.active", "", active as f64);
            smiler_obs::gauge_set("cells.sleeping", "", sleeping as f64);
        }
        predictions
    }

    /// Feed one new observation per sensor (same order as construction).
    ///
    /// Healthy sensors absorb the value normally; a quarantined sensor's
    /// *snapshot* absorbs it instead, so [`SmilerSystem::recover`] rebuilds
    /// with a current history. Every [`SNAPSHOT_REFRESH_INTERVAL`] rounds
    /// the healthy sensors' recovery snapshots are refreshed.
    ///
    /// # Panics
    /// Panics if the observation count differs from the sensor count.
    pub fn observe_all(&mut self, observations: &[f64]) {
        assert_eq!(observations.len(), self.sensors.len(), "one observation per sensor");
        for (idx, &v) in observations.iter().enumerate() {
            match self.health[idx] {
                SensorHealth::Healthy => self.sensors[idx].observe(v),
                SensorHealth::Quarantined { .. } => self.snapshots[idx].history.push(v),
            }
        }
        self.tick_snapshot_refresh();
    }

    /// Advance the observation-round counter and, every
    /// [`SNAPSHOT_REFRESH_INTERVAL`] rounds, refresh the recovery
    /// snapshots of **healthy** sensors only — a quarantined sensor's
    /// recovery point must never be overwritten by its torn live state.
    fn tick_snapshot_refresh(&mut self) {
        self.rounds_since_refresh += 1;
        if self.rounds_since_refresh >= SNAPSHOT_REFRESH_INTERVAL {
            self.rounds_since_refresh = 0;
            for (idx, s) in self.sensors.iter().enumerate() {
                if self.health[idx] == SensorHealth::Healthy {
                    self.snapshots[idx] = s.snapshot();
                }
            }
        }
    }

    /// Dismantle the fleet into its sensors (e.g. to hand them to the
    /// sharded serving frontend).
    pub fn into_sensors(self) -> Vec<SensorPredictor> {
        self.sensors
    }

    /// Total device bytes the resident indexes occupy.
    pub fn resident_bytes(&self) -> usize {
        self.sensors.iter().map(|s| s.device_bytes()).sum()
    }

    /// How many sensors of `bytes_per_sensor` fit on a device with
    /// `capacity` bytes — the Fig 12c headline number.
    pub fn capacity_in_sensors(capacity: usize, bytes_per_sensor: usize) -> usize {
        if bytes_per_sensor == 0 {
            return usize::MAX;
        }
        capacity / bytes_per_sensor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smiler_gpu::GpuSpec;

    fn histories(count: usize, n: usize) -> Vec<Vec<f64>> {
        (0..count)
            .map(|s| {
                (0..n).map(|i| ((i + s * 13) as f64 * std::f64::consts::TAU / 24.0).sin()).collect()
            })
            .collect()
    }

    #[test]
    fn all_sensors_fit_on_default_device() {
        let device = Arc::new(Device::default_gpu());
        let (mut system, rejected) = SmilerSystem::new(
            device,
            histories(3, 300),
            SmilerConfig::small_for_tests(),
            PredictorKind::Aggregation,
        );
        assert!(rejected.is_none());
        assert_eq!(system.len(), 3);
        let preds = system.predict_all(1);
        assert_eq!(preds.len(), 3);
        assert!(preds.iter().all(|(m, v)| m.is_finite() && *v > 0.0));
        system.observe_all(&[0.0, 0.1, 0.2]);
        assert_eq!(system.predict_all(1).len(), 3);
    }

    #[test]
    fn tiny_device_rejects_overflow() {
        let spec = GpuSpec { memory_bytes: 100_000, ..Default::default() };
        let device = Arc::new(Device::gpu(spec));
        let (system, rejected) = SmilerSystem::new(
            device,
            histories(10, 300),
            SmilerConfig::small_for_tests(),
            PredictorKind::Aggregation,
        );
        let err = rejected.expect("must reject some sensor");
        assert!(system.len() < 10);
        assert_eq!(err.sensor_id, system.len());
        assert!(err.needed > err.available);
    }

    #[test]
    fn batched_prediction_matches_serial() {
        let (mut serial, _) = SmilerSystem::new(
            Arc::new(Device::default_gpu()),
            histories(4, 300),
            SmilerConfig::small_for_tests(),
            PredictorKind::Aggregation,
        );
        let (mut batched, _) = SmilerSystem::new(
            Arc::new(Device::default_gpu()),
            histories(4, 300),
            SmilerConfig::small_for_tests(),
            PredictorKind::Aggregation,
        );
        let a = serial.predict_all(2);
        let b = batched.predict_all_batched(2);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.0 - y.0).abs() < 1e-9 && (x.1 - y.1).abs() < 1e-9, "{x:?} vs {y:?}");
        }
        // And the batched path must use far fewer launches.
        let solo_launches = serial.device().kernel_launches();
        let batched_launches = batched.device().kernel_launches();
        assert!(
            batched_launches < solo_launches,
            "batched {batched_launches} vs solo {solo_launches}"
        );
        // Continuous operation stays in lockstep.
        serial.observe_all(&[0.1, 0.2, 0.3, 0.4]);
        batched.observe_all(&[0.1, 0.2, 0.3, 0.4]);
        let a = serial.predict_all(1);
        let b = batched.predict_all_batched(1);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.0 - y.0).abs() < 1e-9, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn parallel_prediction_matches_serial() {
        let device = Arc::new(Device::default_gpu());
        let (mut serial, _) = SmilerSystem::new(
            Arc::clone(&device),
            histories(5, 300),
            SmilerConfig::small_for_tests(),
            PredictorKind::Aggregation,
        );
        let (mut parallel, _) = SmilerSystem::new(
            Arc::new(Device::default_gpu()),
            histories(5, 300),
            SmilerConfig::small_for_tests(),
            PredictorKind::Aggregation,
        );
        let a = serial.predict_all(2);
        let b = parallel.predict_all_parallel(2);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x.0 - y.0).abs() < 1e-12 && (x.1 - y.1).abs() < 1e-12);
        }
    }

    #[test]
    fn capacity_arithmetic() {
        assert_eq!(SmilerSystem::capacity_in_sensors(6_000_000, 6_000), 1000);
        assert_eq!(SmilerSystem::capacity_in_sensors(5, 10), 0);
    }

    #[test]
    fn step_skips_quarantined_sensors_and_feeds_their_snapshots() {
        use crate::sensor::FaultKind;
        let device = Arc::new(Device::default_gpu());
        let (mut system, _) = SmilerSystem::new(
            device,
            histories(3, 300),
            SmilerConfig::small_for_tests(),
            PredictorKind::Aggregation,
        );
        system.sensor_mut(1).inject_fault(FaultKind::PanicOnPredict);
        let results = system.predict_all_robust(1, &RequestPolicy::default());
        assert!(results[1].is_err());
        assert!(matches!(system.health(1), SensorHealth::Quarantined { .. }));
        let history_before = system.durable_snapshots()[1].history.len();

        // Regression: step() used to drive the quarantined predictor
        // anyway, re-panicking on the injected fault. It must now skip it
        // (NaN marker) and let the recovery snapshot absorb the values.
        for round in 0..20 {
            let preds = system.step(1, &[0.1, 0.2, 0.3 + round as f64 * 0.01]);
            assert!(preds[0].0.is_finite() && preds[2].0.is_finite());
            assert!(preds[1].0.is_nan() && preds[1].1.is_infinite());
        }
        let snaps = system.durable_snapshots();
        assert_eq!(snaps[1].history.len(), history_before + 20, "snapshot must absorb values");
        // And recovery resumes from the absorbed history.
        assert!(system.recover(1));
        assert_eq!(system.sensor(1).history().len(), history_before + 20);
        let preds = system.step(1, &[0.0, 0.0, 0.0]);
        assert!(preds[1].0.is_finite());
    }

    #[test]
    fn step_refreshes_recovery_snapshots_of_healthy_sensors() {
        let device = Arc::new(Device::default_gpu());
        let (mut system, _) = SmilerSystem::new(
            device,
            histories(2, 300),
            SmilerConfig::small_for_tests(),
            PredictorKind::Aggregation,
        );
        // Regression: step() never refreshed recovery snapshots, so a
        // sensor quarantined after N step() rounds recovered to the
        // construction-time state, losing every absorbed observation.
        let rounds = SNAPSHOT_REFRESH_INTERVAL as usize + 1;
        for i in 0..rounds {
            system.step(1, &[i as f64 * 0.01, i as f64 * 0.02]);
        }
        system.sensor_mut(0).inject_fault(crate::sensor::FaultKind::PanicOnPredict);
        let _ = system.predict_all_robust(1, &RequestPolicy::default());
        assert!(matches!(system.health(0), SensorHealth::Quarantined { .. }));
        assert!(system.recover(0));
        assert!(
            system.sensor(0).history().len() >= 300 + SNAPSHOT_REFRESH_INTERVAL as usize,
            "recovered to a stale point: {} values",
            system.sensor(0).history().len()
        );
    }

    #[test]
    fn resident_bytes_match_reservations() {
        let device = Arc::new(Device::default_gpu());
        let (system, _) = SmilerSystem::new(
            Arc::clone(&device),
            histories(2, 300),
            SmilerConfig::small_for_tests(),
            PredictorKind::Aggregation,
        );
        assert_eq!(system.resident_bytes(), device.memory_used());
    }
}
