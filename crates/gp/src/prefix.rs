//! Shared-prefix GP fits for the ensemble's EKV cells.
//!
//! For a fixed `(d, h)` ensemble column every EKV cell conditions on a
//! *prefix* of the same distance-sorted neighbour list: the `k = 8` cell's
//! training set is the first 8 rows of the `k = 32` cell's. The Gram matrix
//! of a prefix is the leading principal submatrix of the full Gram matrix,
//! and Cholesky factorisation is prefix-stable — row `i` of `L` depends
//! only on rows `≤ i` of `A` — so one `k_max × k_max` factorisation serves
//! *every* cell in the column. [`PrefixGp`] exploits this: one O(k_max³)
//! fit replaces Σ O(k³) independent fits, and each per-cell prediction is
//! two O(k²) triangular solves into caller-owned scratch, allocation-free.
//!
//! When the full Gram matrix needed diagonal jitter the prefix identity no
//! longer matches what an independent fit would do (the small fit may have
//! succeeded un-jittered), so [`PrefixGp::exact`] reports whether prefix
//! predictions are bitwise identical to independent [`GpModel`] fits;
//! callers fall back to the oracle path when it is `false`.

use crate::kernel::{self, Hyperparams};
use crate::model::{GpError, GpModel};
use smiler_linalg::{Cholesky, Matrix};

/// Reusable buffers for [`PrefixGp::predict_prefix`]: the per-cell weight
/// solve and covariance vector live here so the steady-state predict loop
/// performs zero heap allocations.
#[derive(Debug, Clone, Default)]
pub struct GpScratch {
    alpha: Vec<f64>,
    c0: Vec<f64>,
}

impl GpScratch {
    /// An empty scratch; grows on first use.
    pub fn new() -> Self {
        GpScratch::default()
    }
}

/// One Cholesky factorisation of the `k_max × k_max` Gram matrix, serving
/// GP predictions for every prefix length `k ≤ k_max`.
#[derive(Debug, Clone)]
pub struct PrefixGp {
    x: Matrix,
    hyper: Hyperparams,
    chol: Cholesky,
}

impl PrefixGp {
    /// Factorise the Gram matrix of all `k_max` neighbour inputs at once.
    ///
    /// `x` must hold the neighbour segments in ascending-distance order —
    /// the invariant that makes each EKV cell's training set a prefix.
    pub fn fit(x: Matrix, hyper: Hyperparams) -> Result<Self, GpError> {
        if x.rows() == 0 {
            return Err(GpError::Empty);
        }
        let sq = kernel::squared_distances(&x);
        let gram = kernel::gram(&sq, &hyper);
        // Same jitter policy as `GpModel::fit`, so the exact (jitter-zero)
        // path performs identical arithmetic.
        let chol = Cholesky::decompose_with_jitter(&gram, 1e-10, 1e-4 * hyper.prior_variance())
            .map_err(|_| GpError::SingularGram)?;
        Ok(PrefixGp { x, hyper, chol })
    }

    /// Number of neighbour inputs `k_max`.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// Whether there are no neighbour inputs (never true after a
    /// successful [`PrefixGp::fit`]).
    pub fn is_empty(&self) -> bool {
        self.x.rows() == 0
    }

    /// The hyperparameters shared by the whole column.
    pub fn hyper(&self) -> Hyperparams {
        self.hyper
    }

    /// `true` when the factorisation needed no jitter, in which case every
    /// prefix prediction is bitwise identical to an independent
    /// [`GpModel`] fit on the first `k` rows (see module docs).
    pub fn exact(&self) -> bool {
        self.chol.jitter() == 0.0
    }

    /// Predict from the first `k` neighbours: `centred_y` are their
    /// (already mean-centred) targets, `x0` the query segment. Returns
    /// `(mean, variance)` exactly as [`GpModel::predict`] would, with the
    /// mean still centred (caller adds its `y` mean back).
    ///
    /// # Panics
    /// Panics if `k` is zero or exceeds [`PrefixGp::len`], if
    /// `centred_y.len() != k`, or if `x0` has the wrong dimensionality.
    pub fn predict_prefix(
        &self,
        k: usize,
        centred_y: &[f64],
        x0: &[f64],
        scratch: &mut GpScratch,
    ) -> (f64, f64) {
        assert!(k >= 1 && k <= self.len(), "prefix length {k} out of range");
        assert_eq!(centred_y.len(), k, "targets must match the prefix length");
        assert_eq!(x0.len(), self.x.cols(), "test input dimensionality mismatch");
        // α = C_k⁻¹ y through the shared factor's leading k×k block.
        let alpha = &mut scratch.alpha;
        alpha.clear();
        alpha.extend_from_slice(centred_y);
        self.chol.solve_in_place(alpha);
        let c0 = &mut scratch.c0;
        c0.clear();
        for a in 0..k {
            c0.push(self.hyper.cov(self.x.row(a), x0, false));
        }
        let mean: f64 = c0.iter().zip(alpha.iter()).map(|(c, a)| c * a).sum();
        // quad_form destroys c0, which is no longer needed after the mean.
        let var = self.hyper.prior_variance() - self.chol.quad_form_in_place(c0);
        let floor = self.hyper.theta2 * self.hyper.theta2;
        (mean, var.max(floor * 1e-6).max(0.0))
    }

    /// The oracle this factorisation replaces: an independent [`GpModel`]
    /// fit on the first `k` rows. Used by equivalence tests and by callers
    /// falling back when [`PrefixGp::exact`] is `false`.
    pub fn oracle_fit(&self, k: usize, centred_y: &[f64]) -> Result<GpModel, GpError> {
        let sub = Matrix::from_fn(k, self.x.cols(), |i, j| self.x[(i, j)]);
        GpModel::fit(sub, centred_y, self.hyper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn neighbour_inputs(k_max: usize, d: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        Matrix::from_fn(k_max, d, |_, _| next() * 2.0)
    }

    fn hyper() -> Hyperparams {
        Hyperparams::new(1.0, 1.2, 0.08)
    }

    #[test]
    fn prefix_predictions_match_independent_fits_bitwise() {
        let k_max = 24;
        let d = 6;
        let x = neighbour_inputs(k_max, d, 7);
        let y: Vec<f64> = (0..k_max).map(|i| ((i as f64) * 0.37).sin()).collect();
        let x0: Vec<f64> = (0..d).map(|j| (j as f64) * 0.1 - 0.2).collect();
        let pg = PrefixGp::fit(x, hyper()).unwrap();
        assert!(pg.exact(), "well-separated inputs should factor without jitter");
        let mut scratch = GpScratch::new();
        for k in 1..=k_max {
            let yk = &y[..k];
            let mean_k = yk.iter().sum::<f64>() / k as f64;
            let centred: Vec<f64> = yk.iter().map(|v| v - mean_k).collect();
            let (mean, var) = pg.predict_prefix(k, &centred, &x0, &mut scratch);
            let oracle = pg.oracle_fit(k, &centred).unwrap();
            let (o_mean, o_var) = oracle.predict(&x0);
            assert_eq!(mean, o_mean, "mean differs at k={k}");
            assert_eq!(var, o_var, "variance differs at k={k}");
        }
    }

    #[test]
    fn scratch_reuse_across_columns_is_harmless() {
        let mut scratch = GpScratch::new();
        let x0 = [0.3, -0.1, 0.5];
        for seed in 1..5u64 {
            let x = neighbour_inputs(10, 3, seed);
            let y: Vec<f64> = (0..10).map(|i| (i as f64 * 0.51).cos()).collect();
            let pg = PrefixGp::fit(x, hyper()).unwrap();
            for k in (2..=10).rev() {
                let yk = &y[..k];
                let mean_k = yk.iter().sum::<f64>() / k as f64;
                let centred: Vec<f64> = yk.iter().map(|v| v - mean_k).collect();
                let (mean, var) = pg.predict_prefix(k, &centred, &x0, &mut scratch);
                let (o_mean, o_var) = pg.oracle_fit(k, &centred).unwrap().predict(&x0);
                assert_eq!((mean, var), (o_mean, o_var), "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn jittered_gram_reports_inexact() {
        // Duplicate rows with near-zero noise force the jitter path.
        let x = Matrix::from_rows(4, 1, vec![1.0, 1.0, 1.0, 1.0]);
        let pg = PrefixGp::fit(x, Hyperparams::new(1.0, 1.0, 1e-9)).unwrap();
        assert!(!pg.exact());
    }

    #[test]
    fn empty_inputs_are_rejected() {
        assert_eq!(PrefixGp::fit(Matrix::zeros(0, 3), hyper()).unwrap_err(), GpError::Empty);
    }
}
