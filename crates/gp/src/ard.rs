//! Automatic Relevance Determination (ARD) extension of the SE kernel.
//!
//! The paper's covariance (Eqn 18) uses one isotropic length-scale; its own
//! reference for hyperparameter selection (Sundararajan & Keerthi 2001)
//! develops the LOO machinery for the *ARD* squared-exponential
//!
//! ```text
//! c(xa, xb) = θ₀² · exp( −½ Σ_j (xa_j − xb_j)² / ℓ_j² ) + δ_ab θ₂²
//! ```
//!
//! where each input dimension gets its own length-scale ℓ_j. For segment
//! inputs this lets the model discover that *recent* points of the segment
//! matter more than old ones (small ℓ for trailing positions, large ℓ —
//! "effectively removing it from the inference", Appendix B.3 — for stale
//! ones). This module implements the extension end to end: kernel,
//! leave-one-out likelihood with analytic gradients over all `d + 2`
//! log-hyperparameters, CG training, and the conditioned model.
//!
//! Training costs `(d + 2)` gradient matrices of size k² per CG evaluation
//! versus 3 for the isotropic kernel, so this is intended for offline /
//! low-rate use; the per-query online path keeps the paper's isotropic
//! kernel.

#![allow(clippy::needless_range_loop)] // index loops mirror the GPML equations

use crate::model::GpError;
use smiler_linalg::optimize::{minimize_cg, CgOptions};
use smiler_linalg::{Cholesky, Matrix};

const HALF_LN_2PI: f64 = 0.9189385332046727;

/// Hyperparameters of the ARD SE kernel: signal θ₀, per-dimension
/// length-scales ℓ, noise θ₂.
#[derive(Debug, Clone, PartialEq)]
pub struct ArdHyperparams {
    /// Signal standard deviation θ₀.
    pub theta0: f64,
    /// One length-scale per input dimension.
    pub lengthscales: Vec<f64>,
    /// Noise standard deviation θ₂.
    pub theta2: f64,
}

impl ArdHyperparams {
    /// Construct, validating positivity.
    ///
    /// # Panics
    /// Panics if any value is not strictly positive and finite.
    pub fn new(theta0: f64, lengthscales: Vec<f64>, theta2: f64) -> Self {
        assert!(theta0.is_finite() && theta0 > 0.0, "theta0 must be positive");
        assert!(theta2.is_finite() && theta2 > 0.0, "theta2 must be positive");
        assert!(!lengthscales.is_empty(), "at least one dimension");
        assert!(
            lengthscales.iter().all(|l| l.is_finite() && *l > 0.0),
            "lengthscales must be positive"
        );
        ArdHyperparams { theta0, lengthscales, theta2 }
    }

    /// Isotropic initialisation from the plain kernel's heuristic.
    pub fn isotropic(dims: usize, hyper: crate::kernel::Hyperparams) -> Self {
        ArdHyperparams::new(hyper.theta0, vec![hyper.theta1; dims], hyper.theta2)
    }

    /// Log-space coordinates `[ln θ₀, ln ℓ₁ … ln ℓ_d, ln θ₂]`.
    pub fn to_log(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.lengthscales.len() + 2);
        v.push(self.theta0.ln());
        v.extend(self.lengthscales.iter().map(|l| l.ln()));
        v.push(self.theta2.ln());
        v
    }

    /// Inverse of [`ArdHyperparams::to_log`], with the same ±6 clamp as the
    /// isotropic kernel.
    ///
    /// # Panics
    /// Panics if `log` has fewer than 3 entries.
    pub fn from_log(log: &[f64]) -> Self {
        assert!(log.len() >= 3, "θ₀ + ≥1 length-scale + θ₂ expected");
        let clamp = |v: f64| v.clamp(-6.0, 6.0).exp();
        ArdHyperparams {
            theta0: clamp(log[0]),
            lengthscales: log[1..log.len() - 1].iter().map(|&v| clamp(v)).collect(),
            theta2: clamp(log[log.len() - 1]),
        }
    }

    /// Covariance of two points (no noise term).
    pub fn cov(&self, xa: &[f64], xb: &[f64]) -> f64 {
        let mut acc = 0.0;
        for ((a, b), l) in xa.iter().zip(xb).zip(&self.lengthscales) {
            let d = (a - b) / l;
            acc += d * d;
        }
        self.theta0 * self.theta0 * (-0.5 * acc).exp()
    }

    /// Prior variance `θ₀² + θ₂²`.
    pub fn prior_variance(&self) -> f64 {
        self.theta0 * self.theta0 + self.theta2 * self.theta2
    }

    fn gram(&self, x: &Matrix) -> Matrix {
        let n = x.rows();
        let noise = self.theta2 * self.theta2;
        Matrix::from_fn(n, n, |i, j| {
            self.cov(x.row(i), x.row(j)) + if i == j { noise } else { 0.0 }
        })
    }
}

/// LOO log likelihood and gradient with respect to the log hyperparameters
/// `[s₀, s_ℓ1…s_ℓd, s₂]`. Returns `None` on a singular Gram matrix.
pub fn ard_loo_value_and_log_gradient(
    x: &Matrix,
    y: &[f64],
    hyper: &ArdHyperparams,
) -> Option<(f64, Vec<f64>)> {
    let n = x.rows();
    let d = x.cols();
    assert_eq!(hyper.lengthscales.len(), d, "one length-scale per dimension");
    let gram = hyper.gram(x);
    let chol = Cholesky::decompose_with_jitter(&gram, 1e-10, 1e-4 * hyper.prior_variance()).ok()?;
    let inv = chol.inverse();
    let alpha = chol.solve(y);

    let mut value = 0.0;
    for a in 0..n {
        let kaa = inv[(a, a)];
        value += 0.5 * kaa.ln() - alpha[a] * alpha[a] / (2.0 * kaa) - HALF_LN_2PI;
    }

    // Noise-free kernel part (shared by every derivative).
    let mut kse = gram.clone();
    let noise = hyper.theta2 * hyper.theta2;
    for i in 0..n {
        kse[(i, i)] -= noise;
    }

    // Gradient contribution of one ∂K/∂s via GPML Eqn 5.13.
    let grad_for = |dk: &Matrix| -> f64 {
        let zj = inv.matmul(dk);
        let zj_alpha = zj.matvec(&alpha);
        let mut g = 0.0;
        for a in 0..n {
            let kaa = inv[(a, a)];
            let mut zk_aa = 0.0;
            for b in 0..n {
                zk_aa += zj[(a, b)] * inv[(b, a)];
            }
            g += (alpha[a] * zj_alpha[a] - 0.5 * (1.0 + alpha[a] * alpha[a] / kaa) * zk_aa) / kaa;
        }
        g
    };

    let mut grad = Vec::with_capacity(d + 2);
    // ∂K/∂s₀ = 2 K_se.
    let mut dk0 = kse.clone();
    dk0.scale(2.0);
    grad.push(grad_for(&dk0));
    // ∂K/∂s_ℓj = K_se ∘ diff_j²/ℓ_j².
    for j in 0..d {
        let lj2 = hyper.lengthscales[j] * hyper.lengthscales[j];
        let dk = Matrix::from_fn(n, n, |a, b| {
            let diff = x[(a, j)] - x[(b, j)];
            kse[(a, b)] * diff * diff / lj2
        });
        grad.push(grad_for(&dk));
    }
    // ∂K/∂s₂ = 2 θ₂² I.
    let dk2 = Matrix::from_fn(n, n, |a, b| if a == b { 2.0 * noise } else { 0.0 });
    grad.push(grad_for(&dk2));

    Some((value, grad))
}

/// Train ARD hyperparameters by LOO-CG from an isotropic warm start, with
/// the same box constraint and weak log-normal prior as the isotropic
/// trainer.
pub fn train_ard(x: &Matrix, y: &[f64], iters: usize) -> ArdHyperparams {
    let init = ArdHyperparams::isotropic(x.cols(), crate::kernel::Hyperparams::heuristic(x, y));
    const LOG_PRIOR_WEIGHT: f64 = 0.01;
    let mut f = |logs: &[f64]| {
        if logs.iter().any(|s| s.abs() > 6.0) {
            return (f64::INFINITY, vec![0.0; logs.len()]);
        }
        let hyper = ArdHyperparams::from_log(logs);
        match ard_loo_value_and_log_gradient(x, y, &hyper) {
            Some((v, g)) => {
                let prior: f64 = logs.iter().map(|s| LOG_PRIOR_WEIGHT * s * s).sum();
                let grad =
                    g.iter().zip(logs).map(|(gi, s)| -gi + 2.0 * LOG_PRIOR_WEIGHT * s).collect();
                (-v + prior, grad)
            }
            None => (f64::INFINITY, vec![0.0; logs.len()]),
        }
    };
    let opts = CgOptions { max_iters: iters, ..Default::default() };
    let report = minimize_cg(&mut f, &init.to_log(), &opts);
    ArdHyperparams::from_log(&report.x)
}

/// A GP conditioned with the ARD kernel.
#[derive(Debug, Clone)]
pub struct ArdGpModel {
    x: Matrix,
    hyper: ArdHyperparams,
    chol: Cholesky,
    alpha: Vec<f64>,
}

impl ArdGpModel {
    /// Condition on training data.
    pub fn fit(x: Matrix, y: &[f64], hyper: ArdHyperparams) -> Result<Self, GpError> {
        if x.rows() == 0 {
            return Err(GpError::Empty);
        }
        if x.rows() != y.len() {
            return Err(GpError::ShapeMismatch { inputs: x.rows(), targets: y.len() });
        }
        assert_eq!(hyper.lengthscales.len(), x.cols(), "one length-scale per dimension");
        let gram = hyper.gram(&x);
        let chol = Cholesky::decompose_with_jitter(&gram, 1e-10, 1e-4 * hyper.prior_variance())
            .map_err(|_| GpError::SingularGram)?;
        let alpha = chol.solve(y);
        Ok(ArdGpModel { x, hyper, chol, alpha })
    }

    /// The fitted hyperparameters.
    pub fn hyper(&self) -> &ArdHyperparams {
        &self.hyper
    }

    /// Predictive mean and variance at a test input.
    ///
    /// # Panics
    /// Panics on a dimensionality mismatch.
    pub fn predict(&self, x0: &[f64]) -> (f64, f64) {
        assert_eq!(x0.len(), self.x.cols(), "test input dimensionality mismatch");
        let k = self.x.rows();
        let mut c0 = Vec::with_capacity(k);
        for a in 0..k {
            c0.push(self.hyper.cov(self.x.row(a), x0));
        }
        let mean: f64 = c0.iter().zip(&self.alpha).map(|(c, a)| c * a).sum();
        let var = self.hyper.prior_variance() - self.chol.quad_form(&c0);
        (mean, var.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smiler_linalg::optimize::finite_difference_gradient;
    use smiler_linalg::rng as srng;

    /// Targets depend only on dimension 0; dimension 1 is noise.
    fn relevance_data(n: usize) -> (Matrix, Vec<f64>) {
        let mut rng = srng::seeded(5);
        let x = Matrix::from_fn(n, 2, |i, j| {
            if j == 0 {
                i as f64 * 0.4
            } else {
                3.0 * srng::normal(&mut rng)
            }
        });
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).sin()).collect();
        (x, y)
    }

    #[test]
    fn log_round_trip() {
        let h = ArdHyperparams::new(1.5, vec![0.5, 2.0, 4.0], 0.1);
        let back = ArdHyperparams::from_log(&h.to_log());
        assert!((back.theta0 - 1.5).abs() < 1e-12);
        assert!((back.lengthscales[1] - 2.0).abs() < 1e-12);
        assert!((back.theta2 - 0.1).abs() < 1e-12);
    }

    #[test]
    fn reduces_to_isotropic_kernel_when_lengthscales_equal() {
        let iso = crate::kernel::Hyperparams::new(1.2, 0.8, 0.1);
        let ard = ArdHyperparams::isotropic(3, iso);
        let a = [0.1, 0.5, -0.3];
        let b = [0.4, 0.2, 0.0];
        assert!((ard.cov(&a, &b) - iso.cov(&a, &b, false)).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (x, y) = relevance_data(8);
        let hyper = ArdHyperparams::new(1.0, vec![0.9, 2.5], 0.2);
        let (_, grad) = ard_loo_value_and_log_gradient(&x, &y, &hyper).unwrap();
        let logs = hyper.to_log();
        let fd = finite_difference_gradient(
            &mut |s: &[f64]| {
                let h = ArdHyperparams::from_log(s);
                ard_loo_value_and_log_gradient(&x, &y, &h).unwrap().0
            },
            &logs,
            1e-5,
        );
        for (j, (a, b)) in grad.iter().zip(&fd).enumerate() {
            assert!((a - b).abs() < 1e-4 * (1.0 + b.abs()), "param {j}: analytic {a} vs fd {b}");
        }
    }

    #[test]
    fn discovers_irrelevant_dimension() {
        let (x, y) = relevance_data(20);
        let trained = train_ard(&x, &y, 40);
        // The noise dimension's length-scale must grow far beyond the
        // informative one ("effectively removing it from the inference").
        assert!(
            trained.lengthscales[1] > 2.0 * trained.lengthscales[0],
            "ℓ = {:?}",
            trained.lengthscales
        );
    }

    #[test]
    fn ard_fit_predicts_structured_data() {
        let (x, y) = relevance_data(20);
        let trained = train_ard(&x, &y, 40);
        let gp = ArdGpModel::fit(x.clone(), &y, trained).unwrap();
        // Leave-one-in check: predicting each training input must track its
        // target (the informative axis carries the signal), and perturbing
        // the noise axis must move the prediction far less than the target
        // scale — the relevance property ARD is supposed to learn.
        let mut err = 0.0;
        let mut noise_shift = 0.0;
        for a in 0..x.rows() {
            let (m, _) = gp.predict(x.row(a));
            err += (m - y[a]).abs();
            let mut moved = x.row(a).to_vec();
            moved[1] += 4.0;
            let (m2, _) = gp.predict(&moved);
            noise_shift += (m - m2).abs();
        }
        let n = x.rows() as f64;
        assert!(err / n < 0.2, "training-point MAE {}", err / n);
        assert!(
            noise_shift / n < 2.0 * err / n + 0.2,
            "noise axis moved predictions by {} on average",
            noise_shift / n
        );
    }

    #[test]
    fn training_improves_loo() {
        let (x, y) = relevance_data(14);
        let init = ArdHyperparams::isotropic(2, crate::kernel::Hyperparams::heuristic(&x, &y));
        let trained = train_ard(&x, &y, 30);
        let before = ard_loo_value_and_log_gradient(&x, &y, &init).unwrap().0;
        let after = ard_loo_value_and_log_gradient(&x, &y, &trained).unwrap().0;
        assert!(after >= before - 1e-9, "{before} → {after}");
    }

    #[test]
    fn shape_errors() {
        let x = Matrix::from_rows(2, 2, vec![0.0, 1.0, 2.0, 3.0]);
        let h = ArdHyperparams::new(1.0, vec![1.0, 1.0], 0.1);
        assert!(matches!(ArdGpModel::fit(x, &[1.0], h), Err(GpError::ShapeMismatch { .. })));
    }
}
