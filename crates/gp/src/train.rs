//! Hyperparameter training: full CG optimisation and the paper's online
//! warm-start variant.
//!
//! §5.2.2: *"we only use the fixed five-step gradient descent to update the
//! hyperparameters for the subsequential predictions … the energy paid for
//! the training process in previous steps is partially preserved."* —
//! [`train_online`] starts from the previous step's Θ and runs a fixed CG
//! budget; [`train_full`] is the initial-query optimisation run to
//! (approximate) convergence.

use crate::kernel::{self, Hyperparams};
use crate::loo;
use smiler_linalg::optimize::{minimize_cg, CgOptions};
use smiler_linalg::Matrix;

/// Training configuration.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TrainConfig {
    /// CG iteration budget for the initial (cold) optimisation.
    pub full_iters: usize,
    /// CG iteration budget per online update (the paper uses five).
    pub online_steps: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { full_iters: 40, online_steps: 5 }
    }
}

/// Strength of the vague log-normal hyperprior. It contributes ~0.01·s²
/// to the negated likelihood — negligible for |ln θ| of order one, but it
/// stops the optimiser from drifting to the clamp boundary when a
/// degenerate neighbourhood makes the LOO surface flat (which would
/// otherwise produce astronomically wide predictive variances).
const LOG_PRIOR_WEIGHT: f64 = 0.01;

/// Objective adapter: negated LOO likelihood over log hyperparameters,
/// plus the weak log-normal hyperprior above. A singular Gram matrix
/// scores `+∞` so the line search backs away from degenerate regions
/// instead of crashing.
fn objective<'a>(x: &'a Matrix, y: &'a [f64]) -> impl FnMut(&[f64]) -> (f64, Vec<f64>) + 'a {
    // X is fixed for the whole optimisation run, so the O(k²·d) pairwise
    // distance matrix is computed once here, not per line-search probe.
    let sq = kernel::squared_distances(x);
    move |logs: &[f64]| {
        // Hard box: outside |ln θ| ≤ 6 the parameters are clamped by
        // `from_log`, making the likelihood flat there. Reject such trial
        // points outright so the line search stays inside the box instead
        // of parking on its (gradient-less) boundary.
        if logs.iter().any(|s| s.abs() > 6.0) {
            return (f64::INFINITY, vec![0.0; logs.len()]);
        }
        let hyper = Hyperparams::from_log(logs);
        match loo::loo_value_and_log_gradient_from_sq(&sq, y, &hyper) {
            Some((value, grad)) => {
                let prior: f64 = logs.iter().map(|s| LOG_PRIOR_WEIGHT * s * s).sum();
                let g =
                    grad.iter().zip(logs).map(|(g, s)| -g + 2.0 * LOG_PRIOR_WEIGHT * s).collect();
                (-value + prior, g)
            }
            None => (f64::INFINITY, vec![0.0; logs.len()]),
        }
    }
}

/// Full training from a heuristic cold start (the initial query of a
/// sensor). Returns the trained hyperparameters.
pub fn train_full(x: &Matrix, y: &[f64], config: &TrainConfig) -> Hyperparams {
    let init = Hyperparams::heuristic(x, y);
    let mut f = objective(x, y);
    let opts = CgOptions { max_iters: config.full_iters, ..Default::default() };
    let report = traced_minimize("full", &mut f, &init.to_log(), &opts);
    Hyperparams::from_log(&report.x)
}

/// Online training: warm-start from the previous step's hyperparameters and
/// spend a fixed CG budget (paper §5.2.2, "fixed steps pursuit").
pub fn train_online(
    x: &Matrix,
    y: &[f64],
    previous: Hyperparams,
    config: &TrainConfig,
) -> Hyperparams {
    let mut f = objective(x, y);
    let opts = CgOptions::fixed_steps(config.online_steps);
    let report = traced_minimize("online", &mut f, &previous.to_log(), &opts);
    Hyperparams::from_log(&report.x)
}

/// Event payload describing one hyperparameter optimisation run.
#[derive(serde::Serialize)]
struct TrainTrace {
    /// `"full"` or `"online"`.
    mode: String,
    /// CG iterations performed.
    iterations: usize,
    /// Objective evaluations (line-search probes included).
    evaluations: usize,
    /// Final negated-LOO objective value.
    final_value: f64,
    /// LOO log-likelihood at each finite objective evaluation, in
    /// evaluation order — the optimisation trajectory.
    loo_trajectory: Vec<f64>,
}

/// Run `minimize_cg` under a `gp.train` span, recording the CG iteration
/// count and the LOO likelihood trajectory when observability is on.
fn traced_minimize(
    mode: &'static str,
    f: &mut impl FnMut(&[f64]) -> (f64, Vec<f64>),
    start: &[f64],
    opts: &CgOptions,
) -> smiler_linalg::optimize::CgReport {
    let _span = smiler_obs::span("gp.train");
    if !smiler_obs::enabled() {
        return minimize_cg(f, start, opts);
    }
    let mut trajectory: Vec<f64> = Vec::new();
    let report = {
        let mut wrapped = |logs: &[f64]| {
            let (value, grad) = f(logs);
            if value.is_finite() {
                // Store the LOO log-likelihood (objective sign flipped back).
                trajectory.push(-value);
            }
            (value, grad)
        };
        minimize_cg(&mut wrapped, start, opts)
    };
    smiler_obs::count("gp.cg_iters", mode, report.iterations as u64);
    smiler_obs::count("gp.train_runs", mode, 1);
    smiler_obs::event(
        "gp.train",
        mode,
        &TrainTrace {
            mode: mode.to_string(),
            iterations: report.iterations,
            evaluations: report.evaluations,
            final_value: report.value,
            loo_trajectory: trajectory,
        },
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loo::loo_log_likelihood;
    use rand::Rng;
    use smiler_linalg::rng as srng;

    fn noisy_sine(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = srng::seeded(seed);
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.35 + 0.05 * rng.gen::<f64>()).collect();
        let y: Vec<f64> =
            xs.iter().map(|x| (0.9 * x).sin() + 0.05 * srng::normal(&mut rng)).collect();
        (Matrix::from_rows(n, 1, xs), y)
    }

    #[test]
    fn full_training_improves_over_heuristic() {
        let (x, y) = noisy_sine(16, 1);
        let init = Hyperparams::heuristic(&x, &y);
        let trained = train_full(&x, &y, &TrainConfig::default());
        let before = loo_log_likelihood(&x, &y, &init).unwrap();
        let after = loo_log_likelihood(&x, &y, &trained).unwrap();
        assert!(after >= before, "training must not hurt: {before} → {after}");
    }

    #[test]
    fn online_training_improves_or_holds() {
        let (x, y) = noisy_sine(16, 2);
        let prev = Hyperparams::new(1.0, 1.0, 0.3);
        let updated = train_online(&x, &y, prev, &TrainConfig::default());
        let before = loo_log_likelihood(&x, &y, &prev).unwrap();
        let after = loo_log_likelihood(&x, &y, &updated).unwrap();
        assert!(after >= before - 1e-9, "online step regressed: {before} → {after}");
    }

    #[test]
    fn online_tracks_slow_drift() {
        // The data-generating process drifts; warm-started online training
        // must follow. Compare against *not* retraining at all.
        let config = TrainConfig::default();
        let (x0, y0) = noisy_sine(16, 3);
        let mut theta = train_full(&x0, &y0, &config);
        let frozen = theta;
        let mut online_wins = 0;
        for step in 1..6 {
            // Drifting amplitude.
            let mut rng = srng::seeded(100 + step);
            let scale = 1.0 + 0.4 * step as f64;
            let xs: Vec<f64> = (0..16).map(|i| i as f64 * 0.35).collect();
            let y: Vec<f64> = xs
                .iter()
                .map(|x| scale * (0.9 * x).sin() + 0.05 * srng::normal(&mut rng))
                .collect();
            let x = Matrix::from_rows(16, 1, xs);
            theta = train_online(&x, &y, theta, &config);
            let l_online = loo_log_likelihood(&x, &y, &theta).unwrap();
            let l_frozen = loo_log_likelihood(&x, &y, &frozen).unwrap();
            if l_online > l_frozen {
                online_wins += 1;
            }
        }
        assert!(online_wins >= 3, "online training should usually beat frozen Θ");
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = noisy_sine(12, 4);
        let a = train_full(&x, &y, &TrainConfig::default());
        let b = train_full(&x, &y, &TrainConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn online_budget_is_cheap() {
        // The online path must evaluate the objective far fewer times than
        // the full path — the whole point of §5.2.2. Count evaluations via
        // a wrapper.
        let (x, y) = noisy_sine(16, 5);
        let count_evals = |iters: usize, warm: Hyperparams| {
            let mut evals = 0usize;
            let mut f = |logs: &[f64]| {
                evals += 1;
                let h = Hyperparams::from_log(logs);
                match loo::loo_value_and_log_gradient(&x, &y, &h) {
                    Some((v, g)) => (-v, g.iter().map(|gi| -gi).collect()),
                    None => (f64::INFINITY, vec![0.0; 3]),
                }
            };
            let opts = CgOptions::fixed_steps(iters);
            minimize_cg(&mut f, &warm.to_log(), &opts);
            evals
        };
        let warm = train_full(&x, &y, &TrainConfig::default());
        let online = count_evals(5, warm);
        let full = count_evals(40, Hyperparams::heuristic(&x, &y));
        assert!(online < full, "online {online} evals vs full {full}");
    }
}
