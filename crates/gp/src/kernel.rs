//! The squared-exponential covariance function and its hyperparameters.

use smiler_linalg::{vector, Matrix};

/// Hyperparameters `Θ = {θ₀, θ₁, θ₂}` of the SE kernel (paper Eqn 18):
/// signal amplitude, characteristic length-scale and noise level. All three
/// are strictly positive; optimisation happens in log space.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Hyperparams {
    /// Signal standard deviation θ₀.
    pub theta0: f64,
    /// Characteristic length-scale θ₁ ("how relevant an input is",
    /// Appendix B.3).
    pub theta1: f64,
    /// Noise standard deviation θ₂.
    pub theta2: f64,
}

impl Hyperparams {
    /// Construct, validating positivity.
    ///
    /// # Panics
    /// Panics if any parameter is not strictly positive and finite.
    pub fn new(theta0: f64, theta1: f64, theta2: f64) -> Self {
        for (name, v) in [("theta0", theta0), ("theta1", theta1), ("theta2", theta2)] {
            assert!(v.is_finite() && v > 0.0, "{name} must be positive and finite, got {v}");
        }
        Hyperparams { theta0, theta1, theta2 }
    }

    /// Log-space coordinates `[ln θ₀, ln θ₁, ln θ₂]` for the optimiser.
    pub fn to_log(self) -> [f64; 3] {
        [self.theta0.ln(), self.theta1.ln(), self.theta2.ln()]
    }

    /// Inverse of [`Hyperparams::to_log`], clamping to a sane range so a
    /// wild optimiser step cannot produce overflowing kernels. The bound
    /// e^±6 ≈ 403 is far beyond anything meaningful for z-normalised
    /// sensor data while still leaving the optimiser room to move.
    pub fn from_log(log: &[f64]) -> Self {
        assert_eq!(log.len(), 3, "three log-hyperparameters expected");
        let clamp = |v: f64| v.clamp(-6.0, 6.0).exp();
        Hyperparams { theta0: clamp(log[0]), theta1: clamp(log[1]), theta2: clamp(log[2]) }
    }

    /// Data-driven initialisation: θ₀ = std(y), θ₁ = median pairwise input
    /// distance, θ₂ = std(y)/10 — the standard GP folklore defaults that
    /// make the online training's cold start reasonable.
    pub fn heuristic(x: &Matrix, y: &[f64]) -> Self {
        let sd = smiler_linalg::stats::std_dev(y).max(1e-3);
        let n = x.rows();
        let mut dists = Vec::new();
        // Sample up to ~200 pairs for the median; exact for small n.
        let step = (n * n / 200).max(1);
        let mut c = 0usize;
        for i in 0..n {
            for j in i + 1..n {
                if c % step == 0 {
                    dists.push(vector::squared_distance(x.row(i), x.row(j)).sqrt());
                }
                c += 1;
            }
        }
        dists.sort_by(|a, b| a.partial_cmp(b).expect("distances are finite"));
        let median = if dists.is_empty() { 1.0 } else { dists[dists.len() / 2].max(1e-3) };
        Hyperparams::new(sd, median, sd / 10.0)
    }

    /// Covariance between two inputs (Eqn 18). `same_point` adds the noise
    /// term δ_ab θ₂².
    pub fn cov(&self, xa: &[f64], xb: &[f64], same_point: bool) -> f64 {
        let sq = vector::squared_distance(xa, xb);
        self.cov_from_sqdist(sq) + if same_point { self.theta2 * self.theta2 } else { 0.0 }
    }

    /// Noise-free covariance from a precomputed squared distance.
    pub fn cov_from_sqdist(&self, sq: f64) -> f64 {
        self.theta0 * self.theta0 * (-0.5 * sq / (self.theta1 * self.theta1)).exp()
    }

    /// Prior variance of a single observation: `c(x,x) = θ₀² + θ₂²`.
    pub fn prior_variance(&self) -> f64 {
        self.theta0 * self.theta0 + self.theta2 * self.theta2
    }
}

/// Pairwise squared-distance matrix of the rows of `x`, computed once per
/// fit and shared by the kernel and its derivatives.
pub fn squared_distances(x: &Matrix) -> Matrix {
    let n = x.rows();
    Matrix::from_fn(
        n,
        n,
        |i, j| {
            if i == j {
                0.0
            } else {
                vector::squared_distance(x.row(i), x.row(j))
            }
        },
    )
}

/// Gram matrix `C(X, X)` including the noise diagonal.
pub fn gram(sqdist: &Matrix, hyper: &Hyperparams) -> Matrix {
    let n = sqdist.rows();
    let noise = hyper.theta2 * hyper.theta2;
    Matrix::from_fn(n, n, |i, j| {
        hyper.cov_from_sqdist(sqdist[(i, j)]) + if i == j { noise } else { 0.0 }
    })
}

/// Derivatives of the Gram matrix with respect to the *log* hyperparameters
/// `s = ln θ`: `∂K/∂s₀ = 2·K_se`, `∂K/∂s₁ = K_se ∘ (‖·‖²/θ₁²)`,
/// `∂K/∂s₂ = 2θ₂²·I`.
pub fn gram_log_gradients(sqdist: &Matrix, hyper: &Hyperparams) -> [Matrix; 3] {
    let n = sqdist.rows();
    let l2 = hyper.theta1 * hyper.theta1;
    let d0 = Matrix::from_fn(n, n, |i, j| 2.0 * hyper.cov_from_sqdist(sqdist[(i, j)]));
    let d1 =
        Matrix::from_fn(n, n, |i, j| hyper.cov_from_sqdist(sqdist[(i, j)]) * sqdist[(i, j)] / l2);
    let noise2 = 2.0 * hyper.theta2 * hyper.theta2;
    let d2 = Matrix::from_fn(n, n, |i, j| if i == j { noise2 } else { 0.0 });
    [d0, d1, d2]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hyper() -> Hyperparams {
        Hyperparams::new(2.0, 0.5, 0.1)
    }

    #[test]
    fn covariance_at_zero_distance() {
        let h = hyper();
        assert!((h.cov(&[1.0, 2.0], &[1.0, 2.0], false) - 4.0).abs() < 1e-12);
        assert!((h.cov(&[1.0, 2.0], &[1.0, 2.0], true) - 4.01).abs() < 1e-12);
        assert!((h.prior_variance() - 4.01).abs() < 1e-12);
    }

    #[test]
    fn covariance_decays_with_distance() {
        let h = hyper();
        let near = h.cov(&[0.0], &[0.1], false);
        let far = h.cov(&[0.0], &[2.0], false);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn log_round_trip() {
        let h = hyper();
        let back = Hyperparams::from_log(&h.to_log());
        assert!((back.theta0 - h.theta0).abs() < 1e-12);
        assert!((back.theta1 - h.theta1).abs() < 1e-12);
        assert!((back.theta2 - h.theta2).abs() < 1e-12);
    }

    #[test]
    fn from_log_clamps_extremes() {
        let h = Hyperparams::from_log(&[100.0, -100.0, 0.0]);
        assert!(h.theta0.is_finite());
        assert!(h.theta1 > 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_non_positive() {
        Hyperparams::new(1.0, 0.0, 1.0);
    }

    #[test]
    fn gram_is_symmetric_with_noise_diagonal() {
        let x = Matrix::from_rows(3, 1, vec![0.0, 1.0, 3.0]);
        let sq = squared_distances(&x);
        let h = hyper();
        let g = gram(&sq, &h);
        for i in 0..3 {
            for j in 0..3 {
                assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-14);
            }
            assert!((g[(i, i)] - h.prior_variance()).abs() < 1e-12);
        }
    }

    #[test]
    fn log_gradients_match_finite_differences() {
        let x = Matrix::from_rows(4, 2, vec![0.0, 0.1, 1.0, -0.5, 0.3, 0.8, -1.0, 0.2]);
        let sq = squared_distances(&x);
        let h = hyper();
        let grads = gram_log_gradients(&sq, &h);
        let logs = h.to_log();
        let eps = 1e-6;
        for p in 0..3 {
            let mut lp = logs;
            lp[p] += eps;
            let gp = gram(&sq, &Hyperparams::from_log(&lp));
            let mut lm = logs;
            lm[p] -= eps;
            let gm = gram(&sq, &Hyperparams::from_log(&lm));
            for i in 0..4 {
                for j in 0..4 {
                    let fd = (gp[(i, j)] - gm[(i, j)]) / (2.0 * eps);
                    assert!(
                        (fd - grads[p][(i, j)]).abs() < 1e-6,
                        "param {p} entry ({i},{j}): fd {fd} vs analytic {}",
                        grads[p][(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn heuristic_is_positive_and_scales() {
        let x = Matrix::from_rows(3, 1, vec![0.0, 5.0, 10.0]);
        let y = [1.0, -1.0, 3.0];
        let h = Hyperparams::heuristic(&x, &y);
        assert!(h.theta0 > 0.0 && h.theta1 > 0.0 && h.theta2 > 0.0);
        assert!(h.theta1 >= 5.0, "median distance should drive θ₁, got {}", h.theta1);
    }
}
