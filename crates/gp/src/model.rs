//! The GP posterior: fitting on kNN data and predicting mean/variance.

#![allow(clippy::needless_range_loop)] // index loops mirror the GPML equations

use crate::kernel::{self, Hyperparams};
use smiler_linalg::{Cholesky, Matrix};

/// Errors raised when conditioning the GP.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// Input matrix and target vector disagree in length.
    ShapeMismatch {
        /// Rows of the input matrix.
        inputs: usize,
        /// Length of the target vector.
        targets: usize,
    },
    /// Empty training set.
    Empty,
    /// The Gram matrix could not be factorised even with jitter.
    SingularGram,
}

impl std::fmt::Display for GpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpError::ShapeMismatch { inputs, targets } => {
                write!(f, "{inputs} inputs but {targets} targets")
            }
            GpError::Empty => write!(f, "cannot fit a GP on an empty training set"),
            GpError::SingularGram => write!(f, "Gram matrix is numerically singular"),
        }
    }
}

impl std::error::Error for GpError {}

/// A GP conditioned on kNN data `(X_{k,d}, Y_h)` — the instantiated
/// semi-lazy predictor of paper Eqns 14–17.
#[derive(Debug, Clone)]
pub struct GpModel {
    x: Matrix,
    hyper: Hyperparams,
    chol: Cholesky,
    /// `α = C⁻¹ Y` — the weights of the predictive mean (Eqn 16).
    alpha: Vec<f64>,
}

impl GpModel {
    /// Condition the GP on training inputs `x` (one row per neighbour
    /// segment) and targets `y` (their h-step-ahead values).
    pub fn fit(x: Matrix, y: &[f64], hyper: Hyperparams) -> Result<Self, GpError> {
        if x.rows() == 0 {
            return Err(GpError::Empty);
        }
        if x.rows() != y.len() {
            return Err(GpError::ShapeMismatch { inputs: x.rows(), targets: y.len() });
        }
        let sq = kernel::squared_distances(&x);
        let gram = kernel::gram(&sq, &hyper);
        // Duplicate kNN segments make the Gram matrix semi-definite; jitter
        // up to a fraction of the prior variance before giving up.
        let chol = Cholesky::decompose_with_jitter(&gram, 1e-10, 1e-4 * hyper.prior_variance())
            .map_err(|_| GpError::SingularGram)?;
        let alpha = chol.solve(y);
        Ok(GpModel { x, hyper, chol, alpha })
    }

    /// Number of training points `k`.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// Whether the model has no training points (never true for a
    /// successfully fitted model).
    pub fn is_empty(&self) -> bool {
        self.x.rows() == 0
    }

    /// The hyperparameters this model was fitted with.
    pub fn hyper(&self) -> Hyperparams {
        self.hyper
    }

    /// Predictive distribution for a test input (Eqns 16–17):
    /// mean `u₀ = c₀ᵀ C⁻¹ Y` and variance `σ₀² = c(x₀,x₀) − c₀ᵀ C⁻¹ c₀`.
    ///
    /// # Panics
    /// Panics if `x0` has the wrong dimensionality.
    pub fn predict(&self, x0: &[f64]) -> (f64, f64) {
        assert_eq!(x0.len(), self.x.cols(), "test input dimensionality mismatch");
        let k = self.x.rows();
        let mut c0 = Vec::with_capacity(k);
        for a in 0..k {
            c0.push(self.hyper.cov(self.x.row(a), x0, false));
        }
        let mean: f64 = c0.iter().zip(&self.alpha).map(|(c, a)| c * a).sum();
        // Stable quadratic form via the Cholesky factor.
        let var = self.hyper.prior_variance() - self.chol.quad_form(&c0);
        // Numerical cancellation can push the variance a hair below zero;
        // the noise floor θ₂² is the physically smallest honest value.
        let floor = self.hyper.theta2 * self.hyper.theta2;
        (mean, var.max(floor * 1e-6).max(0.0))
    }

    /// Borrow the training inputs.
    pub fn inputs(&self) -> &Matrix {
        &self.x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Matrix, Vec<f64>) {
        // y = sin(x) sampled on a grid.
        let xs: Vec<f64> = (0..12).map(|i| i as f64 * 0.5).collect();
        let y: Vec<f64> = xs.iter().map(|x| x.sin()).collect();
        (Matrix::from_rows(12, 1, xs), y)
    }

    fn hyper() -> Hyperparams {
        Hyperparams::new(1.0, 1.0, 0.05)
    }

    #[test]
    fn interpolates_training_points_with_low_noise() {
        let (x, y) = toy();
        let gp = GpModel::fit(x.clone(), &y, hyper()).unwrap();
        for a in 0..x.rows() {
            let (mean, var) = gp.predict(x.row(a));
            assert!((mean - y[a]).abs() < 0.05, "mean {mean} vs {}", y[a]);
            assert!(var < 0.05, "variance {var} too large at a training point");
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let (x, y) = toy();
        let gp = GpModel::fit(x, &y, hyper()).unwrap();
        let (_, near) = gp.predict(&[2.75]);
        let (_, far) = gp.predict(&[30.0]);
        assert!(far > near);
        // Far from all data the posterior reverts to the prior.
        assert!((far - hyper().prior_variance()).abs() < 1e-3);
    }

    #[test]
    fn mean_reverts_to_zero_prior_far_away() {
        let (x, y) = toy();
        let gp = GpModel::fit(x, &y, hyper()).unwrap();
        let (mean, _) = gp.predict(&[100.0]);
        assert!(mean.abs() < 1e-6);
    }

    #[test]
    fn sensible_interpolation_between_points() {
        let (x, y) = toy();
        let gp = GpModel::fit(x, &y, hyper()).unwrap();
        let (mean, _) = gp.predict(&[2.25]);
        assert!((mean - 2.25f64.sin()).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn duplicate_rows_survive_via_jitter() {
        let x = Matrix::from_rows(4, 1, vec![1.0, 1.0, 2.0, 2.0]);
        let y = [0.5, 0.5, -0.5, -0.5];
        // Tiny noise makes the Gram matrix nearly singular.
        let gp = GpModel::fit(x, &y, Hyperparams::new(1.0, 1.0, 1e-9)).unwrap();
        let (mean, var) = gp.predict(&[1.0]);
        assert!(mean.is_finite() && var.is_finite() && var >= 0.0);
        assert!((mean - 0.5).abs() < 0.05);
    }

    #[test]
    fn shape_errors() {
        let x = Matrix::from_rows(2, 1, vec![0.0, 1.0]);
        assert_eq!(
            GpModel::fit(x, &[1.0], hyper()).unwrap_err(),
            GpError::ShapeMismatch { inputs: 2, targets: 1 }
        );
        assert_eq!(GpModel::fit(Matrix::zeros(0, 1), &[], hyper()).unwrap_err(), GpError::Empty);
    }

    #[test]
    fn manual_two_point_posterior() {
        // Two points, hand-computed posterior mean at a test location.
        let h = Hyperparams::new(1.0, 1.0, 0.1);
        let x = Matrix::from_rows(2, 1, vec![0.0, 1.0]);
        let y = [1.0, 2.0];
        let gp = GpModel::fit(x, &y, h).unwrap();
        let k01 = (-0.5f64).exp();
        let diag = 1.0 + 0.01;
        // C = [[1.01, k01],[k01, 1.01]]; alpha = C^{-1} y.
        let det = diag * diag - k01 * k01;
        let a0 = (diag * y[0] - k01 * y[1]) / det;
        let a1 = (-k01 * y[0] + diag * y[1]) / det;
        let x0 = 0.5f64;
        let c0 = [(-0.125f64).exp(), (-0.125f64).exp()];
        let expect = c0[0] * a0 + c0[1] * a1;
        let (mean, _) = gp.predict(&[x0]);
        assert!((mean - expect).abs() < 1e-10, "mean {mean} vs manual {expect}");
    }

    #[test]
    fn noisier_hyper_means_higher_predictive_variance() {
        let (x, y) = toy();
        let quiet = GpModel::fit(x.clone(), &y, Hyperparams::new(1.0, 1.0, 0.01)).unwrap();
        let loud = GpModel::fit(x, &y, Hyperparams::new(1.0, 1.0, 0.5)).unwrap();
        let (_, vq) = quiet.predict(&[1.25]);
        let (_, vl) = loud.predict(&[1.25]);
        assert!(vl > vq);
    }
}
