//! Gaussian Process regression for the semi-lazy predictor.
//!
//! The paper's GP predictor (§5.2.2, Appendix B.3) conditions a zero-mean
//! GP with the squared-exponential covariance
//!
//! ```text
//! c(xa, xb) = θ₀² · exp(−‖xa − xb‖² / (2 θ₁²)) + δ_ab θ₂²      (Eqn 18)
//! ```
//!
//! on the kNN data `(X_{k,d}, Y_h)` of each prediction request. Because the
//! training set is tiny (k ≤ 128 neighbours), the paper can afford to train
//! hyperparameters *online, per query*, by maximising the leave-one-out
//! (LOO) predictive log likelihood (Eqn 19–20) with conjugate gradients —
//! warm-started and budgeted to five steps during continuous prediction.
//!
//! This crate implements exactly that: [`model`] holds the posterior
//! machinery (Eqns 16–17), [`loo`] the LOO likelihood and its analytic
//! gradients via the partitioned-inverse identities (Sundararajan & Keerthi
//! 2001; Rasmussen & Williams §5.4.2), and [`train`] the CG driver in
//! log-hyperparameter space.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ard;
pub mod kernel;
pub mod loo;
pub mod model;
pub mod prefix;
pub mod train;

pub use ard::{ArdGpModel, ArdHyperparams};
pub use kernel::Hyperparams;
pub use model::{GpError, GpModel};
pub use prefix::{GpScratch, PrefixGp};
pub use train::{train_full, train_online, TrainConfig};
