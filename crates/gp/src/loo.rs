//! Leave-one-out predictive likelihood and its gradients.
//!
//! The paper trains hyperparameters by maximising the LOO log likelihood
//! (Eqn 20), noting that "the computation cost … can be significantly
//! reduced by the inversion of the partitioned matrix" with a pointer to
//! Sundararajan & Keerthi 2001. The classical identities used here
//! (Rasmussen & Williams, *GPML*, §5.4.2) are exactly that trick: with
//! `K⁻¹` and `α = K⁻¹y`,
//!
//! ```text
//! μ_a  = y_a − α_a / K⁻¹_aa            (LOO mean of point a)
//! σ²_a = 1 / K⁻¹_aa                    (LOO variance of point a)
//! L    = Σ_a [ −½ ln σ²_a − (y_a−μ_a)²/(2σ²_a) − ½ ln 2π ]     (Eqn 20)
//!      = Σ_a [  ½ ln K⁻¹_aa − α_a²/(2 K⁻¹_aa) − ½ ln 2π ]
//! ```
//!
//! and for each hyperparameter, with `Z_j = K⁻¹ ∂K/∂θ_j`,
//!
//! ```text
//! ∂L/∂θ_j = Σ_a [ α_a (Z_j α)_a − ½ (1 + α_a²/K⁻¹_aa) (Z_j K⁻¹)_aa ] / K⁻¹_aa
//! ```
//!
//! (GPML Eqn 5.13). All of this costs one O(k³) inverse plus O(k²) per
//! hyperparameter — affordable because `k ≤ 128` in the semi-lazy setting.

#![allow(clippy::needless_range_loop)] // index loops mirror the GPML equations

use crate::kernel::{self, Hyperparams};
use smiler_linalg::{Cholesky, Matrix};

const HALF_LN_2PI: f64 = 0.9189385332046727;

/// Per-point LOO predictive moments `(μ_a, σ²_a)`.
pub fn loo_moments(x: &Matrix, y: &[f64], hyper: &Hyperparams) -> Option<Vec<(f64, f64)>> {
    let sq = kernel::squared_distances(x);
    let gram = kernel::gram(&sq, hyper);
    let chol = Cholesky::decompose_with_jitter(&gram, 1e-10, 1e-4 * hyper.prior_variance()).ok()?;
    let inv = chol.inverse();
    let alpha = chol.solve(y);
    Some(
        (0..x.rows())
            .map(|a| {
                let kaa = inv[(a, a)];
                (y[a] - alpha[a] / kaa, 1.0 / kaa)
            })
            .collect(),
    )
}

/// The LOO log likelihood `L(X, Y, Θ)` (paper Eqn 20). Returns `None` when
/// the Gram matrix cannot be factorised.
pub fn loo_log_likelihood(x: &Matrix, y: &[f64], hyper: &Hyperparams) -> Option<f64> {
    let moments = loo_moments(x, y, hyper)?;
    Some(
        moments
            .iter()
            .zip(y)
            .map(|(&(mu, var), &ya)| {
                -0.5 * var.ln() - (ya - mu) * (ya - mu) / (2.0 * var) - HALF_LN_2PI
            })
            .sum(),
    )
}

/// LOO log likelihood and its gradient with respect to the **log**
/// hyperparameters. Returns `None` on a singular Gram matrix.
pub fn loo_value_and_log_gradient(
    x: &Matrix,
    y: &[f64],
    hyper: &Hyperparams,
) -> Option<(f64, [f64; 3])> {
    let sq = kernel::squared_distances(x);
    loo_value_and_log_gradient_from_sq(&sq, y, hyper)
}

/// [`loo_value_and_log_gradient`] with the pairwise squared distances
/// precomputed. The line search evaluates the objective dozens of times
/// per training run while `X` never changes, so the O(k²·d) distance
/// matrix is hoisted out of the inner loop (see [`crate::train`]).
///
/// The gradient exploits the SE kernel's structure instead of running the
/// generic GPML recipe for all three directions. With `B = K⁻¹`:
///
/// ```text
/// ∂K/∂s₀ = 2(K − θ₂²I)  ⇒  Z₀ = 2I − 2θ₂²B
/// ∂K/∂s₂ = 2θ₂²I        ⇒  Z₂ = 2θ₂²B
/// ```
///
/// so both reduce to `β = Bα` and `diag(BB)` — O(k²) — leaving only the
/// length-scale direction with a dense O(k³) product. This replaces three
/// dense matmuls and two exp-filled derivative matrices with one of each.
pub fn loo_value_and_log_gradient_from_sq(
    sq: &Matrix,
    y: &[f64],
    hyper: &Hyperparams,
) -> Option<(f64, [f64; 3])> {
    let n = sq.rows();
    let gram = kernel::gram(sq, hyper);
    let chol = Cholesky::decompose_with_jitter(&gram, 1e-10, 1e-4 * hyper.prior_variance()).ok()?;
    let inv = chol.inverse();
    let alpha = chol.solve(y);

    let mut value = 0.0;
    for a in 0..n {
        let kaa = inv[(a, a)];
        value += 0.5 * kaa.ln() - alpha[a] * alpha[a] / (2.0 * kaa) - HALF_LN_2PI;
    }

    // β = Bα and q_a = (BB)_aa feed the two closed-form directions.
    let noise = hyper.theta2 * hyper.theta2;
    let beta = inv.matvec(&alpha);
    let q: Vec<f64> = (0..n).map(|a| (0..n).map(|b| inv[(a, b)] * inv[(a, b)]).sum()).collect();

    // Length-scale direction: ∂K/∂s₁ = K_se ∘ (‖·‖²/θ₁²). Off the diagonal
    // the Gram matrix *is* K_se, and on it `sq = 0` zeroes the entry, so
    // the Hadamard form below needs no fresh exponentials.
    let l2 = hyper.theta1 * hyper.theta1;
    let dk1 = Matrix::from_fn(n, n, |i, j| gram[(i, j)] * sq[(i, j)] / l2);
    let t1 = inv.matvec(&dk1.matvec(&alpha));
    let m = dk1.matmul(&inv);

    let mut grad = [0.0; 3];
    for a in 0..n {
        let kaa = inv[(a, a)];
        // 0.5·(1 + α_a²/K⁻¹_aa), the weight on diag(Z_j K⁻¹) in GPML 5.13.
        let w = 0.5 * (1.0 + alpha[a] * alpha[a] / kaa);
        let d1: f64 = (0..n).map(|b| inv[(a, b)] * m[(b, a)]).sum();
        grad[0] += (alpha[a] * (2.0 * alpha[a] - 2.0 * noise * beta[a])
            - w * (2.0 * kaa - 2.0 * noise * q[a]))
            / kaa;
        grad[1] += (alpha[a] * t1[a] - w * d1) / kaa;
        grad[2] += 2.0 * noise * (alpha[a] * beta[a] - w * q[a]) / kaa;
    }
    Some((value, grad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smiler_linalg::optimize::finite_difference_gradient;

    fn toy() -> (Matrix, Vec<f64>) {
        let xs: Vec<f64> = (0..10).map(|i| i as f64 * 0.4).collect();
        let y: Vec<f64> = xs.iter().map(|x| (1.3 * x).sin() + 0.1 * x).collect();
        (Matrix::from_rows(10, 1, xs), y)
    }

    #[test]
    fn loo_moments_match_explicit_refits() {
        // Gold standard: actually delete each point, refit, predict it.
        let (x, y) = toy();
        let h = Hyperparams::new(1.0, 0.8, 0.1);
        let moments = loo_moments(&x, &y, &h).unwrap();
        for a in 0..x.rows() {
            let keep: Vec<usize> = (0..x.rows()).filter(|&i| i != a).collect();
            let xa = Matrix::from_fn(keep.len(), 1, |i, _| x[(keep[i], 0)]);
            let ya: Vec<f64> = keep.iter().map(|&i| y[i]).collect();
            let gp = crate::model::GpModel::fit(xa, &ya, h).unwrap();
            let (mu, var) = gp.predict(x.row(a));
            assert!(
                (moments[a].0 - mu).abs() < 1e-8,
                "point {a}: LOO mean {} vs refit {mu}",
                moments[a].0
            );
            assert!(
                (moments[a].1 - var).abs() < 1e-8,
                "point {a}: LOO var {} vs refit {var}",
                moments[a].1
            );
        }
    }

    #[test]
    fn likelihood_matches_moment_sum() {
        let (x, y) = toy();
        let h = Hyperparams::new(0.9, 1.1, 0.2);
        let l = loo_log_likelihood(&x, &y, &h).unwrap();
        let moments = loo_moments(&x, &y, &h).unwrap();
        let manual: f64 = moments
            .iter()
            .zip(&y)
            .map(|(&(mu, var), &ya)| {
                -smiler_linalg::stats::negative_log_predictive_density(ya, mu, var)
            })
            .sum();
        assert!((l - manual).abs() < 1e-9);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (x, y) = toy();
        let h = Hyperparams::new(1.2, 0.7, 0.15);
        let (_, grad) = loo_value_and_log_gradient(&x, &y, &h).unwrap();
        let logs = h.to_log();
        let fd = finite_difference_gradient(
            &mut |s: &[f64]| {
                loo_log_likelihood(&x, &y, &Hyperparams::from_log(s)).expect("factorisable")
            },
            &logs,
            1e-5,
        );
        for j in 0..3 {
            assert!(
                (grad[j] - fd[j]).abs() < 1e-4 * (1.0 + fd[j].abs()),
                "param {j}: analytic {} vs fd {}",
                grad[j],
                fd[j]
            );
        }
    }

    #[test]
    fn better_hyperparameters_score_higher() {
        // Data generated with a known length-scale; wildly wrong θ₁ must
        // score worse.
        let (x, y) = toy();
        let good = loo_log_likelihood(&x, &y, &Hyperparams::new(1.0, 1.0, 0.1)).unwrap();
        let bad = loo_log_likelihood(&x, &y, &Hyperparams::new(1.0, 100.0, 0.1)).unwrap();
        assert!(good > bad, "good {good} vs bad {bad}");
    }

    #[test]
    fn closed_form_gradient_matches_generic_recipe() {
        // Oracle: the generic GPML 5.13 recipe with explicit ∂K/∂s_j
        // matrices and three dense products, applied to a multivariate X.
        let x = Matrix::from_rows(
            8,
            3,
            (0..24).map(|i| ((i as f64 * 0.37).sin() * 1.4).cos()).collect::<Vec<_>>(),
        );
        let y: Vec<f64> = (0..8).map(|i| (i as f64 * 0.61).sin()).collect();
        let h = Hyperparams::new(1.1, 0.8, 0.2);

        let sq = kernel::squared_distances(&x);
        let gram = kernel::gram(&sq, &h);
        let chol =
            Cholesky::decompose_with_jitter(&gram, 1e-10, 1e-4 * h.prior_variance()).unwrap();
        let inv = chol.inverse();
        let alpha = chol.solve(&y);
        let dgrams = kernel::gram_log_gradients(&sq, &h);
        let mut oracle = [0.0; 3];
        for (j, dk) in dgrams.iter().enumerate() {
            let zj = inv.matmul(dk);
            let zj_alpha = zj.matvec(&alpha);
            for a in 0..x.rows() {
                let kaa = inv[(a, a)];
                let zk_aa: f64 = (0..x.rows()).map(|b| zj[(a, b)] * inv[(b, a)]).sum();
                oracle[j] += (alpha[a] * zj_alpha[a]
                    - 0.5 * (1.0 + alpha[a] * alpha[a] / kaa) * zk_aa)
                    / kaa;
            }
        }

        let (_, fast) = loo_value_and_log_gradient(&x, &y, &h).unwrap();
        for j in 0..3 {
            assert!(
                (fast[j] - oracle[j]).abs() < 1e-9 * (1.0 + oracle[j].abs()),
                "param {j}: closed form {} vs generic {}",
                fast[j],
                oracle[j]
            );
        }
    }

    #[test]
    fn value_agrees_between_entry_points() {
        let (x, y) = toy();
        let h = Hyperparams::new(1.0, 0.9, 0.12);
        let v1 = loo_log_likelihood(&x, &y, &h).unwrap();
        let (v2, _) = loo_value_and_log_gradient(&x, &y, &h).unwrap();
        assert!((v1 - v2).abs() < 1e-9);
    }
}
