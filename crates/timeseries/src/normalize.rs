//! Z-normalisation.
//!
//! The paper normalises "the time series of each sensor" with
//! z-normalisation before indexing and prediction (§6.1.2). Normalising the
//! whole series once (rather than per segment) is what makes the suffix-kNN
//! index sound: every segment is compared in the same normalised space.

use smiler_linalg::stats;

/// Parameters of a z-normalisation, kept so predictions can be mapped back
/// to sensor units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZNorm {
    /// Mean of the original series.
    pub mean: f64,
    /// Standard deviation of the original series (floored to avoid division
    /// by zero on constant series).
    pub std_dev: f64,
}

impl ZNorm {
    /// Fit normalisation parameters to `values`.
    pub fn fit(values: &[f64]) -> Self {
        ZNorm { mean: stats::mean(values), std_dev: stats::std_dev(values).max(1e-12) }
    }

    /// Normalise one value.
    pub fn apply(&self, v: f64) -> f64 {
        (v - self.mean) / self.std_dev
    }

    /// Map a normalised value back to sensor units.
    pub fn invert(&self, z: f64) -> f64 {
        z * self.std_dev + self.mean
    }

    /// Map a normalised *variance* back to sensor units.
    pub fn invert_variance(&self, var: f64) -> f64 {
        var * self.std_dev * self.std_dev
    }

    /// Normalise a whole slice into a new vector.
    pub fn apply_all(&self, values: &[f64]) -> Vec<f64> {
        values.iter().map(|&v| self.apply(v)).collect()
    }
}

/// Fit-and-apply convenience: returns the normalised series and the fitted
/// parameters.
pub fn z_normalize(values: &[f64]) -> (Vec<f64>, ZNorm) {
    let z = ZNorm::fit(values);
    (z.apply_all(values), z)
}

/// Linearly re-interpolate a series to a new length.
///
/// The paper assumes a fixed sample rate per sensor, noting that "the user
/// can easily re-interpolate data if the sample rate is changed" (§3.1
/// footnote). This is that utility: resample `values` onto `new_len`
/// equally spaced points spanning the same time range.
///
/// # Panics
/// Panics when the input is empty or `new_len` is zero.
pub fn resample_linear(values: &[f64], new_len: usize) -> Vec<f64> {
    assert!(!values.is_empty(), "cannot resample an empty series");
    assert!(new_len > 0, "target length must be positive");
    if values.len() == 1 {
        return vec![values[0]; new_len];
    }
    if new_len == 1 {
        return vec![values[0]];
    }
    let scale = (values.len() - 1) as f64 / (new_len - 1) as f64;
    (0..new_len)
        .map(|i| {
            let pos = i as f64 * scale;
            let lo = pos.floor() as usize;
            let hi = (lo + 1).min(values.len() - 1);
            let frac = pos - lo as f64;
            values[lo] * (1.0 - frac) + values[hi] * frac
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smiler_linalg::stats;

    #[test]
    fn normalized_series_has_zero_mean_unit_variance() {
        let values: Vec<f64> = (0..100).map(|i| 3.0 + 2.0 * (i as f64 * 0.31).sin()).collect();
        let (z, _) = z_normalize(&values);
        assert!(stats::mean(&z).abs() < 1e-10);
        assert!((stats::variance(&z) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn round_trip() {
        let values = [4.0, 8.0, 15.0, 16.0, 23.0, 42.0];
        let (z, params) = z_normalize(&values);
        for (orig, zi) in values.iter().zip(&z) {
            assert!((params.invert(*zi) - orig).abs() < 1e-10);
        }
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let values = [5.0; 10];
        let (z, params) = z_normalize(&values);
        assert!(z.iter().all(|v| v.is_finite()));
        assert!((params.invert(z[0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn variance_inversion_scales_quadratically() {
        let params = ZNorm { mean: 10.0, std_dev: 3.0 };
        assert!((params.invert_variance(2.0) - 18.0).abs() < 1e-12);
    }

    #[test]
    fn resample_preserves_endpoints() {
        let v = [1.0, 3.0, 2.0, 5.0];
        for &n in &[2usize, 4, 7, 100] {
            let r = resample_linear(&v, n);
            assert_eq!(r.len(), n);
            assert_eq!(r[0], 1.0);
            assert!((r[n - 1] - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn resample_identity_when_length_unchanged() {
        let v = [0.5, -1.0, 2.0];
        let r = resample_linear(&v, 3);
        for (a, b) in r.iter().zip(&v) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn upsample_interpolates_midpoints() {
        let v = [0.0, 2.0];
        let r = resample_linear(&v, 3);
        assert!((r[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn resample_degenerate_inputs() {
        assert_eq!(resample_linear(&[7.0], 4), vec![7.0; 4]);
        assert_eq!(resample_linear(&[1.0, 2.0, 3.0], 1), vec![1.0]);
    }
}
