//! DTW envelopes under a Sakoe-Chiba band.
//!
//! The envelope of a series `C` with warping width `ρ` (paper Def. B.1) is
//! the pair of sequences `U_i = max(c_{i−ρ} … c_{i+ρ})` and
//! `L_i = min(c_{i−ρ} … c_{i+ρ})` (clamped at the boundaries). `LB_Keogh`
//! and therefore the whole SMiLer index are built on envelopes, so they are
//! computed with the O(n) monotonic-deque algorithm rather than the naive
//! O(nρ) scan, and support the incremental tail update the continuous query
//! needs (paper §4.3.1 Remark 1: appending one point only changes the last
//! `ρ` envelope entries).

use std::collections::VecDeque;

/// Upper/lower DTW envelope of a series for a fixed warping width.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Envelope {
    rho: usize,
    /// `U_i = max_{|r|≤ρ} c_{i+r}` (indices clamped to the series).
    pub upper: Vec<f64>,
    /// `L_i = min_{|r|≤ρ} c_{i+r}` (indices clamped to the series).
    pub lower: Vec<f64>,
}

/// Reusable deque workspace for [`Envelope::compute_into`], so the
/// continuous-query loop recomputes query envelopes without allocating.
#[derive(Debug, Clone, Default)]
pub struct EnvelopeScratch {
    maxq: VecDeque<usize>,
    minq: VecDeque<usize>,
}

impl EnvelopeScratch {
    /// An empty scratch; grows on first use.
    pub fn new() -> Self {
        EnvelopeScratch::default()
    }
}

impl Envelope {
    /// Compute the envelope of `values` with warping width `rho`.
    pub fn compute(values: &[f64], rho: usize) -> Self {
        let mut env = Envelope { rho, upper: Vec::new(), lower: Vec::new() };
        env.compute_into(values, rho, &mut EnvelopeScratch::new());
        env
    }

    /// Recompute this envelope in place from `values` with width `rho`,
    /// reusing both the envelope's own buffers and the caller's
    /// [`EnvelopeScratch`] — zero allocations once buffers have grown.
    pub fn compute_into(&mut self, values: &[f64], rho: usize, scratch: &mut EnvelopeScratch) {
        smiler_obs::count("envelope.computed", "", 1);
        let n = values.len();
        self.rho = rho;
        self.upper.clear();
        self.upper.resize(n, 0.0);
        self.lower.clear();
        self.lower.resize(n, 0.0);
        let upper = &mut self.upper;
        let lower = &mut self.lower;
        // Monotonic deques of indices: `maxq` non-increasing, `minq`
        // non-decreasing. When the centre `i` is emitted the deques hold
        // exactly the window [i-ρ, min(i+ρ, n-1)].
        let maxq = &mut scratch.maxq;
        let minq = &mut scratch.minq;
        maxq.clear();
        minq.clear();
        for j in 0..n + rho {
            if j < n {
                while maxq.back().is_some_and(|&b| values[b] <= values[j]) {
                    maxq.pop_back();
                }
                maxq.push_back(j);
                while minq.back().is_some_and(|&b| values[b] >= values[j]) {
                    minq.pop_back();
                }
                minq.push_back(j);
            }
            if j >= rho {
                let i = j - rho;
                if i >= n {
                    break;
                }
                let left = i.saturating_sub(rho);
                while maxq.front().is_some_and(|&f| f < left) {
                    maxq.pop_front();
                }
                while minq.front().is_some_and(|&f| f < left) {
                    minq.pop_front();
                }
                upper[i] = values[*maxq.front().expect("window never empty")];
                lower[i] = values[*minq.front().expect("window never empty")];
            }
        }
    }

    /// Warping width this envelope was computed with.
    pub fn rho(&self) -> usize {
        self.rho
    }

    /// Envelope length (equal to the series length).
    pub fn len(&self) -> usize {
        self.upper.len()
    }

    /// Whether the envelope is empty.
    pub fn is_empty(&self) -> bool {
        self.upper.is_empty()
    }

    /// Grow the envelope after `values` gained new observations at the end.
    ///
    /// `values` must be the *full* series including the new points. Only the
    /// entries whose ±ρ window now contains a new point are recomputed —
    /// the incremental update that keeps continuous queries cheap
    /// (paper Remark 1). The affected region is tiny (≤ ρ + appended count),
    /// so a direct window scan is used.
    ///
    /// # Panics
    /// Panics if `values` is shorter than the current envelope.
    pub fn extend_to(&mut self, values: &[f64]) {
        let old_n = self.upper.len();
        let n = values.len();
        assert!(n >= old_n, "series must not shrink");
        if n == old_n {
            return;
        }
        self.upper.resize(n, 0.0);
        self.lower.resize(n, 0.0);
        // Entries at i >= old_n - ρ see at least one appended point.
        let from = old_n.saturating_sub(self.rho);
        for i in from..n {
            let left = i.saturating_sub(self.rho);
            let right = (i + self.rho).min(n - 1);
            let window = &values[left..=right];
            self.upper[i] = window.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            self.lower[i] = window.iter().copied().fold(f64::INFINITY, f64::min);
        }
    }

    /// Check the defining envelope invariant `L_i ≤ c_i ≤ U_i`.
    pub fn contains_series(&self, values: &[f64]) -> bool {
        values.len() == self.len()
            && values.iter().enumerate().all(|(i, &v)| self.lower[i] <= v && v <= self.upper[i])
    }
}

/// Naive reference envelope (O(nρ)); used by tests and kept public so other
/// crates' property tests can cross-check against it.
pub fn envelope_naive(values: &[f64], rho: usize) -> Envelope {
    let n = values.len();
    let mut upper = vec![0.0; n];
    let mut lower = vec![0.0; n];
    for i in 0..n {
        let left = i.saturating_sub(rho);
        let right = (i + rho).min(n.saturating_sub(1));
        let window = &values[left..=right];
        upper[i] = window.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        lower[i] = window.iter().copied().fold(f64::INFINITY, f64::min);
    }
    Envelope { rho, upper, lower }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_envelope() {
        let v = [1.0, 3.0, 2.0, 5.0, 4.0];
        let e = Envelope::compute(&v, 1);
        assert_eq!(e.upper, vec![3.0, 3.0, 5.0, 5.0, 5.0]);
        assert_eq!(e.lower, vec![1.0, 1.0, 2.0, 2.0, 4.0]);
    }

    #[test]
    fn rho_zero_is_identity() {
        let v = [2.0, -1.0, 0.5];
        let e = Envelope::compute(&v, 0);
        assert_eq!(e.upper, v.to_vec());
        assert_eq!(e.lower, v.to_vec());
    }

    #[test]
    fn rho_larger_than_series_is_global_minmax() {
        let v = [2.0, -1.0, 0.5];
        let e = Envelope::compute(&v, 10);
        assert!(e.upper.iter().all(|&u| u == 2.0));
        assert!(e.lower.iter().all(|&l| l == -1.0));
    }

    #[test]
    fn empty_series() {
        let e = Envelope::compute(&[], 4);
        assert!(e.is_empty());
        assert!(e.contains_series(&[]));
    }

    #[test]
    fn extend_matches_full_recompute() {
        let mut v: Vec<f64> = (0..50).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let mut e = Envelope::compute(&v, 8);
        for step in 0..20 {
            v.push(((step * 13) % 7) as f64 * if step % 2 == 0 { 1.0 } else { -1.0 });
            e.extend_to(&v);
            assert_eq!(e, Envelope::compute(&v, 8), "mismatch after step {step}");
        }
    }

    #[test]
    fn extend_multiple_points_at_once() {
        let mut v: Vec<f64> = (0..30).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut e = Envelope::compute(&v, 5);
        v.extend((0..7).map(|i| (i as f64 * 1.3).cos()));
        e.extend_to(&v);
        assert_eq!(e, Envelope::compute(&v, 5));
    }

    proptest! {
        #[test]
        fn deque_matches_naive(values in prop::collection::vec(-100.0f64..100.0, 0..200), rho in 0usize..20) {
            let fast = Envelope::compute(&values, rho);
            let slow = envelope_naive(&values, rho);
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn compute_into_with_reused_scratch_matches_fresh(
            series in prop::collection::vec(
                prop::collection::vec(-100.0f64..100.0, 0..120),
                1..5,
            ),
            rho in 0usize..12,
        ) {
            // One envelope + scratch reused across different inputs must
            // match a fresh computation every time.
            let mut env = Envelope::compute(&[0.0; 4], 1);
            let mut scratch = EnvelopeScratch::new();
            for values in &series {
                env.compute_into(values, rho, &mut scratch);
                prop_assert_eq!(&env, &Envelope::compute(values, rho));
            }
        }

        #[test]
        fn envelope_contains_series(values in prop::collection::vec(-50.0f64..50.0, 1..100), rho in 0usize..10) {
            let e = Envelope::compute(&values, rho);
            prop_assert!(e.contains_series(&values));
        }

        #[test]
        fn envelope_widens_with_rho(values in prop::collection::vec(-50.0f64..50.0, 1..100), rho in 0usize..8) {
            let narrow = Envelope::compute(&values, rho);
            let wide = Envelope::compute(&values, rho + 1);
            for i in 0..values.len() {
                prop_assert!(wide.upper[i] >= narrow.upper[i]);
                prop_assert!(wide.lower[i] <= narrow.lower[i]);
            }
        }
    }
}
