//! Time-series substrate for the SMiLer reproduction.
//!
//! The paper (§3.1) models a sensor as a fixed-rate sequence of observations
//! `Cⁱ = {c₀, c₁, …}`; a *segment* `C_{t,d}` is `d` contiguous observations
//! starting at `t`, and the `h`-step-ahead prediction maps the `d`-length
//! segment ending "now" to the value `h` steps later. This crate provides:
//!
//! * [`series::TimeSeries`] — an append-only sensor history with segment
//!   views and the training-pair extraction used by the semi-lazy predictor;
//! * [`normalize`] — the z-normalisation the paper applies per sensor (§6.1.2);
//! * [`envelope`] — DTW envelopes (upper/lower, Sakoe-Chiba width ρ) computed
//!   by the streaming monotonic-deque algorithm, plus incremental suffix
//!   recomputation for continuous queries;
//! * [`synthetic`] — deterministic generators standing in for the ROAD,
//!   MALL and NET datasets (see DESIGN.md §2 for the substitution rationale);
//! * [`io`] — plain-text / CSV series reading and writing for the CLI and
//!   user pipelines.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod envelope;
pub mod io;
pub mod normalize;
pub mod series;
pub mod synthetic;

pub use envelope::{Envelope, EnvelopeScratch};
pub use series::{SegmentRef, TimeSeries};
pub use synthetic::{SensorDataset, SyntheticSpec};
