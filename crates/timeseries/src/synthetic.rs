//! Deterministic synthetic stand-ins for the paper's evaluation datasets.
//!
//! The paper evaluates on three real traces (§6.1.2): **ROAD** (963 PeMS
//! traffic-occupancy sensors, 10-minute rate), **MALL** (Singapore car-park
//! availability, 10-minute rate, duplicated ×40) and **NET** (one backbone
//! internet-traffic series, 5-minute rate, duplicated ×1024). ROAD is public
//! but large; MALL is proprietary. Per the substitution policy in
//! DESIGN.md §2 we generate synthetic equivalents that preserve the
//! *characteristics the evaluation depends on*:
//!
//! * ROAD — dynamic, incident-laden traffic where simple averaging
//!   (SMiLer-AR) clearly trails the GP (paper §6.3.2 explains the ROAD gap
//!   by its dynamics);
//! * MALL — strongly seasonal, smooth series where AR ≈ GP;
//! * NET — periodic multi-harmonic traffic, one mother series duplicated
//!   with small perturbations exactly as the paper duplicated its trace.
//!
//! Every generator is a pure function of a seed, so experiments are
//! reproducible bit-for-bit.

use crate::normalize;
use crate::series::TimeSeries;
use rand::Rng;
use smiler_linalg::rng as srng;

/// Which of the paper's three datasets to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Traffic-occupancy sensors (dynamic; incidents).
    Road,
    /// Car-park availability (smooth; strong daily/weekly seasonality).
    Mall,
    /// Backbone internet traffic (multi-harmonic diurnal; duplicated clones).
    Net,
}

impl DatasetKind {
    /// Paper name of the dataset.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Road => "ROAD",
            DatasetKind::Mall => "MALL",
            DatasetKind::Net => "NET",
        }
    }

    /// Samples per day at the paper's sampling rate (10 min for ROAD/MALL,
    /// 5 min for NET).
    pub fn samples_per_day(self) -> usize {
        match self {
            DatasetKind::Road | DatasetKind::Mall => 144,
            DatasetKind::Net => 288,
        }
    }

    /// All three kinds, in the order the paper's tables list them.
    pub fn all() -> [DatasetKind; 3] {
        [DatasetKind::Road, DatasetKind::Mall, DatasetKind::Net]
    }
}

/// Specification of a synthetic dataset instance.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticSpec {
    /// Which dataset to emulate.
    pub kind: DatasetKind,
    /// Number of sensors to generate.
    pub sensors: usize,
    /// Number of days of history per sensor.
    pub days: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticSpec {
    /// A small instance suitable for unit/integration tests.
    pub fn small(kind: DatasetKind, seed: u64) -> Self {
        SyntheticSpec { kind, sensors: 4, days: 14, seed }
    }

    /// Generate the dataset.
    pub fn generate(&self) -> SensorDataset {
        let n = self.days * self.kind.samples_per_day();
        let mut rng = srng::seeded(self.seed ^ (self.kind as u64).wrapping_mul(0x9E37));
        let sensors = match self.kind {
            DatasetKind::Road => (0..self.sensors).map(|id| road_sensor(id, n, &mut rng)).collect(),
            DatasetKind::Mall => (0..self.sensors).map(|id| mall_sensor(id, n, &mut rng)).collect(),
            DatasetKind::Net => net_sensors(self.sensors, n, &mut rng),
        };
        SensorDataset {
            name: self.kind.name().to_string(),
            kind: self.kind,
            samples_per_day: self.kind.samples_per_day(),
            sensors,
        }
    }
}

/// A generated multi-sensor dataset. All series are z-normalised, matching
/// the paper's preprocessing (§6.1.2).
#[derive(Debug, Clone)]
pub struct SensorDataset {
    /// Dataset name ("ROAD", "MALL" or "NET").
    pub name: String,
    /// Dataset kind.
    pub kind: DatasetKind,
    /// Samples per day (defines the seasonal period used by HoltWinters).
    pub samples_per_day: usize,
    /// One z-normalised series per sensor.
    pub sensors: Vec<TimeSeries>,
}

impl SensorDataset {
    /// Total number of observations across all sensors.
    pub fn total_points(&self) -> usize {
        self.sensors.iter().map(|s| s.len()).sum()
    }
}

fn finish(id: usize, raw: Vec<f64>) -> TimeSeries {
    let (z, _) = normalize::z_normalize(&raw);
    TimeSeries::new(id, z)
}

/// Fraction of the day in [0, 1) for sample index `i`.
fn day_frac(i: usize, per_day: usize) -> f64 {
    (i % per_day) as f64 / per_day as f64
}

fn is_weekend(i: usize, per_day: usize) -> bool {
    matches!((i / per_day) % 7, 5 | 6)
}

fn gaussian_bump(x: f64, centre: f64, width: f64) -> f64 {
    let d = x - centre;
    (-d * d / (2.0 * width * width)).exp()
}

/// One ROAD sensor: double-peak commuter occupancy with AR(1) noise and
/// exponential-decay congestion incidents.
fn road_sensor(id: usize, n: usize, rng: &mut impl Rng) -> TimeSeries {
    let per_day = DatasetKind::Road.samples_per_day();
    // Sensor-specific commute profile.
    let am_peak = 0.33 + 0.03 * srng::normal(rng); // ~ 8:00
    let pm_peak = 0.74 + 0.03 * srng::normal(rng); // ~ 17:45
    let am_amp = 0.35 + 0.1 * rng.gen::<f64>();
    let pm_amp = 0.30 + 0.1 * rng.gen::<f64>();
    let base = 0.05 + 0.05 * rng.gen::<f64>();
    let phi = 0.75 + 0.15 * rng.gen::<f64>(); // AR(1) coefficient
    let noise_sd = 0.015 + 0.01 * rng.gen::<f64>();
    let incident_rate = 1.0 / (2.5 * per_day as f64); // ~1 incident / 2.5 days

    let mut values = Vec::with_capacity(n);
    let mut ar = 0.0;
    let mut incident = 0.0f64;
    // Rush hours shift from day to day (weather, events): a per-day phase
    // jitter of ~±20 minutes. This is what makes DTW's warping robustness
    // matter for traffic data (paper §4).
    let mut day_shift = 0.0;
    for i in 0..n {
        if i % per_day == 0 {
            day_shift = 0.015 * srng::normal(rng);
        }
        let x = day_frac(i, per_day);
        let weekday = if is_weekend(i, per_day) { 0.45 } else { 1.0 };
        let profile = base
            + weekday
                * (am_amp * gaussian_bump(x, am_peak + day_shift, 0.055)
                    + pm_amp * gaussian_bump(x, pm_peak + day_shift, 0.065));
        ar = phi * ar + noise_sd * srng::normal(rng);
        // Incidents: rare onset, multiplicative decay — produces the sharp
        // congestion transients that make ROAD "dynamic".
        if rng.gen::<f64>() < incident_rate {
            incident += 0.25 + 0.35 * rng.gen::<f64>();
        }
        incident *= 0.94;
        values.push((profile + ar + incident).clamp(0.0, 1.0));
    }
    finish(id, values)
}

/// One MALL sensor: car-park availability with opening-hours ramps, weekend
/// crowds and little noise.
fn mall_sensor(id: usize, n: usize, rng: &mut impl Rng) -> TimeSeries {
    let per_day = DatasetKind::Mall.samples_per_day();
    let capacity = 300.0 + 700.0 * rng.gen::<f64>();
    let open = 10.0 / 24.0;
    let close = 22.0 / 24.0;
    let lunch = 13.0 / 24.0;
    let dinner = 19.0 / 24.0;
    let noise_sd = 0.01 + 0.005 * rng.gen::<f64>();
    let mut values = Vec::with_capacity(n);
    for i in 0..n {
        let x = day_frac(i, per_day);
        let weekend_boost = if is_weekend(i, per_day) { 1.35 } else { 1.0 };
        // Occupancy: zero outside opening hours, two meal-time peaks inside.
        let occupancy = if x < open || x > close {
            0.03
        } else {
            let ramp_in = ((x - open) / 0.04).min(1.0);
            let ramp_out = ((close - x) / 0.04).min(1.0);
            let meals =
                0.55 * gaussian_bump(x, lunch, 0.07) + 0.65 * gaussian_bump(x, dinner, 0.08);
            (0.15 + weekend_boost * meals) * ramp_in * ramp_out
        };
        let available =
            capacity * (1.0 - occupancy.clamp(0.0, 0.97)) + capacity * noise_sd * srng::normal(rng);
        values.push(available.max(0.0));
    }
    finish(id, values)
}

/// NET: one mother series, duplicated with small perturbations — the same
/// construction the paper used (its single backbone trace ×1024).
fn net_sensors(count: usize, n: usize, rng: &mut impl Rng) -> Vec<TimeSeries> {
    let per_day = DatasetKind::Net.samples_per_day();
    // Mother series: diurnal fundamental + two harmonics + weekly modulation
    // + slow growth trend + AR noise.
    let mut mother = Vec::with_capacity(n);
    let mut ar = 0.0;
    for i in 0..n {
        let x = day_frac(i, per_day) * std::f64::consts::TAU;
        let week = ((i / per_day) % 7) as f64 / 7.0 * std::f64::consts::TAU;
        ar = 0.7 * ar + 0.03 * srng::normal(rng);
        let v = 1.0
            + 0.45 * (x - 1.1).sin()
            + 0.18 * (2.0 * x + 0.4).sin()
            + 0.07 * (3.0 * x).cos()
            + 0.10 * (week).sin()
            + 0.0002 * i as f64 // slow traffic growth
            + ar;
        mother.push(v.max(0.0));
    }
    (0..count)
        .map(|id| {
            let perturbed: Vec<f64> =
                mother.iter().map(|&v| v + 0.02 * srng::normal(rng)).collect();
            finish(id, perturbed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smiler_linalg::stats;

    #[test]
    fn generation_is_deterministic() {
        let spec = SyntheticSpec::small(DatasetKind::Road, 11);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.sensors, b.sensors);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticSpec::small(DatasetKind::Road, 1).generate();
        let b = SyntheticSpec::small(DatasetKind::Road, 2).generate();
        assert_ne!(a.sensors[0], b.sensors[0]);
    }

    #[test]
    fn sizes_match_spec() {
        for kind in DatasetKind::all() {
            let spec = SyntheticSpec { kind, sensors: 3, days: 5, seed: 7 };
            let ds = spec.generate();
            assert_eq!(ds.sensors.len(), 3);
            let expect = 5 * kind.samples_per_day();
            assert!(ds.sensors.iter().all(|s| s.len() == expect));
            assert_eq!(ds.total_points(), 3 * expect);
        }
    }

    #[test]
    fn series_are_z_normalized() {
        for kind in DatasetKind::all() {
            let ds = SyntheticSpec::small(kind, 5).generate();
            for s in &ds.sensors {
                assert!(stats::mean(s.values()).abs() < 1e-9, "{} mean", ds.name);
                assert!((stats::variance(s.values()) - 1.0).abs() < 1e-6, "{} var", ds.name);
            }
        }
    }

    #[test]
    fn road_has_daily_structure() {
        // Autocorrelation at a 1-day lag should be clearly positive.
        let ds =
            SyntheticSpec { kind: DatasetKind::Road, sensors: 1, days: 20, seed: 3 }.generate();
        let v = ds.sensors[0].values();
        let lag = DatasetKind::Road.samples_per_day();
        let n = v.len() - lag;
        let ac: f64 = (0..n).map(|i| v[i] * v[i + lag]).sum::<f64>() / n as f64;
        assert!(ac > 0.3, "daily autocorrelation too weak: {ac}");
    }

    #[test]
    fn net_clones_are_similar_but_not_identical() {
        let ds = SyntheticSpec { kind: DatasetKind::Net, sensors: 3, days: 6, seed: 9 }.generate();
        let a = ds.sensors[0].values();
        let b = ds.sensors[1].values();
        assert_ne!(a, b);
        // Correlation between clones should be very high.
        let corr: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>() / a.len() as f64;
        assert!(corr > 0.9, "clone correlation too weak: {corr}");
    }

    #[test]
    fn mall_weekends_are_busier() {
        // More cars on weekend => fewer available lots => lower mean value on
        // weekends in the raw series; after z-normalisation the sign of the
        // difference is preserved.
        let ds =
            SyntheticSpec { kind: DatasetKind::Mall, sensors: 1, days: 28, seed: 13 }.generate();
        let v = ds.sensors[0].values();
        let per_day = DatasetKind::Mall.samples_per_day();
        let (mut we, mut wd) = (Vec::new(), Vec::new());
        for (i, &x) in v.iter().enumerate() {
            if is_weekend(i, per_day) {
                we.push(x);
            } else {
                wd.push(x);
            }
        }
        assert!(stats::mean(&we) < stats::mean(&wd));
    }
}
