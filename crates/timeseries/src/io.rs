//! Plain-text series I/O.
//!
//! Real deployments feed SMiLer from files and pipes; this module reads and
//! writes the two trivially interoperable formats — one value per line, and
//! single-header CSV columns — without pulling in a CSV dependency (the
//! subset needed here is a dozen lines of splitting).

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors raised while reading series data.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A cell could not be parsed as a number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// The requested column does not exist.
    MissingColumn {
        /// Requested column name.
        column: String,
    },
    /// The file contained no data rows.
    Empty,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, text } => {
                write!(f, "line {line}: cannot parse {text:?} as a number")
            }
            IoError::MissingColumn { column } => write!(f, "no column named {column:?}"),
            IoError::Empty => write!(f, "no data rows"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Read a series from a reader: one value per line, or CSV with an optional
/// header. `column` selects a CSV column by name (header required) or, when
/// `None`, the first numeric column is used. `#` comments are skipped.
///
/// An **empty field** (a blank line in single-column data, or an empty cell
/// in a CSV row) is a measurement gap and reads as `NaN`. Gaps used to be
/// dropped as skipped rows, silently shifting every later value one tick
/// earlier — fatal for WAL replay, which relies on positional alignment.
/// Blank lines before a header row are decorative and still skipped; blank
/// lines before the first *data* row are gaps.
pub fn read_series(reader: impl Read, column: Option<&str>) -> Result<Vec<f64>, IoError> {
    let reader = BufReader::new(reader);
    let mut values = Vec::new();
    let mut col_index: Option<usize> = None;
    let mut header_seen = false;
    // Blank lines seen before the first content row: gaps if that row is
    // data, decoration if it is a header. Resolved once we know which.
    let mut leading_gaps = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.starts_with('#') {
            continue;
        }
        if trimmed.is_empty() {
            if header_seen {
                // An empty row inside the data is a gap, not a skip.
                values.push(f64::NAN);
            } else {
                leading_gaps += 1;
            }
            continue;
        }
        let cells: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        // Header detection: the first non-comment row whose selected cell is
        // not numeric is treated as a header.
        if !header_seen {
            header_seen = true;
            if let Some(name) = column {
                let pos = cells.iter().position(|c| c.eq_ignore_ascii_case(name));
                match pos {
                    Some(p) => {
                        col_index = Some(p);
                        continue; // header row consumed
                    }
                    None => return Err(IoError::MissingColumn { column: name.to_string() }),
                }
            }
            // No named column: if the first cell parses (or is a gap), it
            // is data — and any blank lines above it were gaps too.
            if cells[0].is_empty() || cells[0].parse::<f64>().is_ok() {
                col_index = Some(0);
                values.resize(leading_gaps, f64::NAN);
                // fall through to parse this row as data
            } else {
                col_index = Some(0);
                continue; // unnamed header row
            }
        }
        let p = match col_index {
            Some(p) => p,
            // Unreachable by construction (the first row either resolves
            // the column or errors), but a named column must never fall
            // back to an arbitrary one.
            None => {
                return Err(IoError::MissingColumn {
                    column: column.unwrap_or("<first>").to_string(),
                });
            }
        };
        let cell = cells.get(p).copied().unwrap_or("");
        if cell.is_empty() {
            values.push(f64::NAN);
            continue;
        }
        let v: f64 =
            cell.parse().map_err(|_| IoError::Parse { line: idx + 1, text: cell.to_string() })?;
        values.push(v);
    }
    if values.is_empty() {
        return Err(IoError::Empty);
    }
    Ok(values)
}

/// Read a series from a file path (see [`read_series`]).
pub fn read_series_file(path: impl AsRef<Path>, column: Option<&str>) -> Result<Vec<f64>, IoError> {
    let file = std::fs::File::open(path)?;
    read_series(file, column)
}

/// Write a series, one value per line. A `NaN` gap is written as an empty
/// field so [`read_series`] recovers it in place — the write→read roundtrip
/// is lossless (finite values print in Rust's shortest-exact form and parse
/// back to the identical bits; gaps come back as `NaN` at the same index).
pub fn write_series(mut writer: impl Write, values: &[f64]) -> std::io::Result<()> {
    for v in values {
        if v.is_nan() {
            writeln!(writer)?;
        } else {
            writeln!(writer, "{v}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_plain_values() {
        let input = "1.5\n2.5\n# comment\n3.5\n";
        assert_eq!(read_series(input.as_bytes(), None).unwrap(), vec![1.5, 2.5, 3.5]);
    }

    #[test]
    fn blank_rows_are_gaps_not_skips() {
        // A blank line inside the data marks a missing measurement; it must
        // hold its position instead of shifting everything after it.
        let got = read_series("1.5\n2.5\n\n3.5\n".as_bytes(), None).unwrap();
        assert_eq!(got.len(), 4);
        assert_eq!(got[0], 1.5);
        assert_eq!(got[1], 2.5);
        assert!(got[2].is_nan());
        assert_eq!(got[3], 3.5);

        // Empty CSV cells are gaps in the selected column only.
        let got = read_series("time,speed\n0,55\n1,\n2,42\n".as_bytes(), Some("speed")).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], 55.0);
        assert!(got[1].is_nan());
        assert_eq!(got[2], 42.0);

        // Blank lines above a header are decoration; above data, gaps.
        let got = read_series("\n\nvalue\n7.0\n".as_bytes(), None).unwrap();
        assert_eq!(got, vec![7.0]);
        let got = read_series("\n7.0\n".as_bytes(), None).unwrap();
        assert_eq!(got.len(), 2);
        assert!(got[0].is_nan());
        assert_eq!(got[1], 7.0);
    }

    #[test]
    fn reads_csv_with_named_column() {
        let input = "time,occupancy,speed\n0,0.5,55\n1,0.7,42\n";
        assert_eq!(read_series(input.as_bytes(), Some("occupancy")).unwrap(), vec![0.5, 0.7]);
        assert_eq!(read_series(input.as_bytes(), Some("speed")).unwrap(), vec![55.0, 42.0]);
    }

    #[test]
    fn skips_unnamed_header() {
        let input = "value\n1.0\n2.0\n";
        assert_eq!(read_series(input.as_bytes(), None).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn missing_column_is_reported() {
        let input = "a,b\n1,2\n";
        let err = read_series(input.as_bytes(), Some("c")).unwrap_err();
        assert!(matches!(err, IoError::MissingColumn { .. }));
    }

    #[test]
    fn named_column_on_headerless_csv_is_a_typed_error() {
        // No header row at all: a named column cannot be resolved and the
        // error must carry the requested name, not panic or misread.
        let input = "1,2\n3,4\n";
        match read_series(input.as_bytes(), Some("speed")).unwrap_err() {
            IoError::MissingColumn { column } => assert_eq!(column, "speed"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(read_series("# comment only\n5,6\n".as_bytes(), Some("occupancy")).is_err());
    }

    #[test]
    fn parse_error_carries_line_number() {
        let input = "1.0\nnot-a-number\n";
        match read_series(input.as_bytes(), None).unwrap_err() {
            IoError::Parse { line, text } => {
                assert_eq!(line, 2);
                assert_eq!(text, "not-a-number");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(matches!(read_series("# only comments\n".as_bytes(), None), Err(IoError::Empty)));
    }

    #[test]
    fn write_read_round_trip() {
        let values = vec![1.25, -3.5, 0.0, 1e-9];
        let mut buf = Vec::new();
        write_series(&mut buf, &values).unwrap();
        assert_eq!(read_series(buf.as_slice(), None).unwrap(), values);
    }

    /// Property test: for randomly generated series (finite values, signed
    /// zeros, subnormals, infinities, NaN gaps in random positions — but at
    /// least one value, since an all-gap file is indistinguishable from an
    /// empty one), write→read returns the identical bits at the identical
    /// index, with every gap still a gap.
    #[test]
    fn write_read_roundtrip_is_lossless_for_gapped_series() {
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..200 {
            let len = 1 + (next() % 40) as usize;
            let mut values: Vec<f64> = (0..len)
                .map(|_| match next() % 8 {
                    0 => f64::NAN,                           // gap
                    1 => -(next() as f64 / u64::MAX as f64), // negative
                    2 => f64::from_bits(next() % 4096),      // subnormal
                    3 => -0.0,
                    4 => f64::INFINITY,
                    5 => f64::NEG_INFINITY,
                    _ => (next() as f64 / u64::MAX as f64) * 1e6,
                })
                .collect();
            if values.iter().all(|v| v.is_nan()) {
                values[0] = 1.0;
            }
            let mut buf = Vec::new();
            write_series(&mut buf, &values).unwrap();
            let back = read_series(buf.as_slice(), None).unwrap();
            assert_eq!(back.len(), values.len(), "case {case}: length changed");
            for (i, (a, b)) in values.iter().zip(&back).enumerate() {
                if a.is_nan() {
                    assert!(b.is_nan(), "case {case}[{i}]: gap became {b}");
                } else {
                    assert_eq!(a.to_bits(), b.to_bits(), "case {case}[{i}]: {a} came back as {b}");
                }
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let path = std::env::temp_dir().join("smiler_io_test.csv");
        let values = vec![4.0, 8.0, 15.0];
        write_series(std::fs::File::create(&path).unwrap(), &values).unwrap();
        assert_eq!(read_series_file(&path, None).unwrap(), values);
        let _ = std::fs::remove_file(&path);
    }
}
