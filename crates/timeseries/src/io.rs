//! Plain-text series I/O.
//!
//! Real deployments feed SMiLer from files and pipes; this module reads and
//! writes the two trivially interoperable formats — one value per line, and
//! single-header CSV columns — without pulling in a CSV dependency (the
//! subset needed here is a dozen lines of splitting).

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors raised while reading series data.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A cell could not be parsed as a number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// The requested column does not exist.
    MissingColumn {
        /// Requested column name.
        column: String,
    },
    /// The file contained no data rows.
    Empty,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, text } => {
                write!(f, "line {line}: cannot parse {text:?} as a number")
            }
            IoError::MissingColumn { column } => write!(f, "no column named {column:?}"),
            IoError::Empty => write!(f, "no data rows"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Read a series from a reader: one value per line, or CSV with an optional
/// header. `column` selects a CSV column by name (header required) or, when
/// `None`, the first numeric column is used. Blank lines and `#` comments
/// are skipped.
pub fn read_series(reader: impl Read, column: Option<&str>) -> Result<Vec<f64>, IoError> {
    let reader = BufReader::new(reader);
    let mut values = Vec::new();
    let mut col_index: Option<usize> = None;
    let mut header_seen = false;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let cells: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        // Header detection: the first non-comment row whose selected cell is
        // not numeric is treated as a header.
        if !header_seen {
            header_seen = true;
            if let Some(name) = column {
                let pos = cells.iter().position(|c| c.eq_ignore_ascii_case(name));
                match pos {
                    Some(p) => {
                        col_index = Some(p);
                        continue; // header row consumed
                    }
                    None => return Err(IoError::MissingColumn { column: name.to_string() }),
                }
            }
            // No named column: if the first cell parses, it is data.
            if cells[0].parse::<f64>().is_ok() {
                col_index = Some(0);
                // fall through to parse this row as data
            } else {
                col_index = Some(0);
                continue; // unnamed header row
            }
        }
        let p = match col_index {
            Some(p) => p,
            // Unreachable by construction (the first row either resolves
            // the column or errors), but a named column must never fall
            // back to an arbitrary one.
            None => {
                return Err(IoError::MissingColumn {
                    column: column.unwrap_or("<first>").to_string(),
                });
            }
        };
        let cell = cells.get(p).copied().unwrap_or("");
        let v: f64 =
            cell.parse().map_err(|_| IoError::Parse { line: idx + 1, text: cell.to_string() })?;
        values.push(v);
    }
    if values.is_empty() {
        return Err(IoError::Empty);
    }
    Ok(values)
}

/// Read a series from a file path (see [`read_series`]).
pub fn read_series_file(path: impl AsRef<Path>, column: Option<&str>) -> Result<Vec<f64>, IoError> {
    let file = std::fs::File::open(path)?;
    read_series(file, column)
}

/// Write a series, one value per line.
pub fn write_series(mut writer: impl Write, values: &[f64]) -> std::io::Result<()> {
    for v in values {
        writeln!(writer, "{v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_plain_values() {
        let input = "1.5\n2.5\n\n# comment\n3.5\n";
        assert_eq!(read_series(input.as_bytes(), None).unwrap(), vec![1.5, 2.5, 3.5]);
    }

    #[test]
    fn reads_csv_with_named_column() {
        let input = "time,occupancy,speed\n0,0.5,55\n1,0.7,42\n";
        assert_eq!(read_series(input.as_bytes(), Some("occupancy")).unwrap(), vec![0.5, 0.7]);
        assert_eq!(read_series(input.as_bytes(), Some("speed")).unwrap(), vec![55.0, 42.0]);
    }

    #[test]
    fn skips_unnamed_header() {
        let input = "value\n1.0\n2.0\n";
        assert_eq!(read_series(input.as_bytes(), None).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn missing_column_is_reported() {
        let input = "a,b\n1,2\n";
        let err = read_series(input.as_bytes(), Some("c")).unwrap_err();
        assert!(matches!(err, IoError::MissingColumn { .. }));
    }

    #[test]
    fn named_column_on_headerless_csv_is_a_typed_error() {
        // No header row at all: a named column cannot be resolved and the
        // error must carry the requested name, not panic or misread.
        let input = "1,2\n3,4\n";
        match read_series(input.as_bytes(), Some("speed")).unwrap_err() {
            IoError::MissingColumn { column } => assert_eq!(column, "speed"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(read_series("# comment only\n5,6\n".as_bytes(), Some("occupancy")).is_err());
    }

    #[test]
    fn parse_error_carries_line_number() {
        let input = "1.0\nnot-a-number\n";
        match read_series(input.as_bytes(), None).unwrap_err() {
            IoError::Parse { line, text } => {
                assert_eq!(line, 2);
                assert_eq!(text, "not-a-number");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(matches!(read_series("# only comments\n".as_bytes(), None), Err(IoError::Empty)));
    }

    #[test]
    fn write_read_round_trip() {
        let values = vec![1.25, -3.5, 0.0, 1e-9];
        let mut buf = Vec::new();
        write_series(&mut buf, &values).unwrap();
        assert_eq!(read_series(buf.as_slice(), None).unwrap(), values);
    }

    #[test]
    fn file_round_trip() {
        let path = std::env::temp_dir().join("smiler_io_test.csv");
        let values = vec![4.0, 8.0, 15.0];
        write_series(std::fs::File::create(&path).unwrap(), &values).unwrap();
        assert_eq!(read_series_file(&path, None).unwrap(), values);
        let _ = std::fs::remove_file(&path);
    }
}
