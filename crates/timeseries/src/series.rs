//! Sensor time series and segment views.

/// A borrowed view of the segment `C_{t,d}` — `d` contiguous observations of
/// a series starting at timestamp `t` (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentRef<'a> {
    /// Start timestamp `t` within the owning series.
    pub start: usize,
    /// The observations `c_t … c_{t+d-1}`.
    pub values: &'a [f64],
}

impl<'a> SegmentRef<'a> {
    /// Segment length `d`.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the segment is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Timestamp one past the segment's last observation.
    pub fn end(&self) -> usize {
        self.start + self.values.len()
    }
}

/// An append-only sensor time series.
///
/// The semi-lazy predictor keeps the entire history of every sensor "as part
/// of the data" (paper §1); this type is that history. Observations arrive
/// through [`TimeSeries::push`] during continuous prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// Stable identifier of the sensor this series belongs to.
    sensor_id: usize,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Create a series for `sensor_id` from existing history.
    pub fn new(sensor_id: usize, values: Vec<f64>) -> Self {
        TimeSeries { sensor_id, values }
    }

    /// Create an empty series for `sensor_id`.
    pub fn empty(sensor_id: usize) -> Self {
        TimeSeries { sensor_id, values: Vec::new() }
    }

    /// The sensor identifier.
    pub fn sensor_id(&self) -> usize {
        self.sensor_id
    }

    /// Number of observations `|C|`.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series has no observations.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All observations.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Observation at timestamp `t`, if recorded.
    pub fn get(&self, t: usize) -> Option<f64> {
        self.values.get(t).copied()
    }

    /// Append a newly observed value (continuous prediction, Def. 4.1).
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// The segment `C_{t,d}`, or `None` if it does not fit in the history.
    pub fn segment(&self, start: usize, len: usize) -> Option<SegmentRef<'_>> {
        let end = start.checked_add(len)?;
        if end > self.values.len() {
            return None;
        }
        Some(SegmentRef { start, values: &self.values[start..end] })
    }

    /// The `d`-length segment ending at the latest observation — the model
    /// input `x_{0,d}` of paper §3.1 (`x_{0,d} = C_{t₀−d+1, d}`).
    pub fn latest_segment(&self, len: usize) -> Option<SegmentRef<'_>> {
        let start = self.values.len().checked_sub(len)?;
        self.segment(start, len)
    }

    /// The `h`-step-ahead value `y = c_{t+d-1+h}` for the segment starting at
    /// `start` with length `len` — i.e. the label the semi-lazy predictor
    /// attaches to a retrieved neighbour (paper §3.2.1).
    pub fn ahead_value(&self, start: usize, len: usize, h: usize) -> Option<f64> {
        // The segment ends at index start+len-1; its h-step-ahead value sits
        // at start+len-1+h.
        let idx = start.checked_add(len)?.checked_sub(1)?.checked_add(h)?;
        self.get(idx)
    }

    /// Number of `d`-length segments whose `h`-step-ahead label exists, i.e.
    /// the candidate population for a (k, d) predictor at horizon `h`.
    pub fn usable_segments(&self, d: usize, h: usize) -> usize {
        if d == 0 {
            return 0;
        }
        self.values.len().saturating_sub(d - 1 + h).min(self.values.len().saturating_sub(d) + 1)
    }

    /// Iterator over every `(start, segment)` pair of length `d`.
    pub fn segments(&self, d: usize) -> impl Iterator<Item = SegmentRef<'_>> + '_ {
        let count = if d == 0 || d > self.values.len() { 0 } else { self.values.len() - d + 1 };
        (0..count).map(move |t| SegmentRef { start: t, values: &self.values[t..t + d] })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        TimeSeries::new(7, (0..10).map(|i| i as f64).collect())
    }

    #[test]
    fn segment_bounds() {
        let s = series();
        assert_eq!(s.segment(2, 3).unwrap().values, &[2.0, 3.0, 4.0]);
        assert_eq!(s.segment(8, 2).unwrap().values, &[8.0, 9.0]);
        assert!(s.segment(8, 3).is_none());
        assert!(s.segment(usize::MAX, 2).is_none());
    }

    #[test]
    fn latest_segment_is_suffix() {
        let s = series();
        let seg = s.latest_segment(4).unwrap();
        assert_eq!(seg.start, 6);
        assert_eq!(seg.values, &[6.0, 7.0, 8.0, 9.0]);
        assert!(s.latest_segment(11).is_none());
    }

    #[test]
    fn ahead_value_matches_definition() {
        let s = series();
        // Segment C_{2,3} covers indices 2..4 and ends at index 4;
        // its 2-step-ahead value is c_6 = 6.
        assert_eq!(s.ahead_value(2, 3, 2), Some(6.0));
        // Out of range: segment ends at 9, 1-ahead would be index 10.
        assert_eq!(s.ahead_value(7, 3, 1), None);
        assert_eq!(s.ahead_value(7, 3, 0), Some(9.0));
    }

    #[test]
    fn usable_segments_counts_labelled_pairs() {
        let s = series(); // length 10
                          // d=3, h=2: last usable start is t with t+3-1+2 <= 9 → t <= 5 → 6.
        assert_eq!(s.usable_segments(3, 2), 6);
        assert_eq!(s.usable_segments(10, 0), 1);
        assert_eq!(s.usable_segments(10, 1), 0);
        assert_eq!(s.usable_segments(0, 1), 0);
    }

    #[test]
    fn push_extends_history() {
        let mut s = TimeSeries::empty(1);
        assert!(s.is_empty());
        s.push(1.5);
        s.push(2.5);
        assert_eq!(s.len(), 2);
        assert_eq!(s.latest_segment(2).unwrap().values, &[1.5, 2.5]);
    }

    #[test]
    fn segments_iterator_covers_all_offsets() {
        let s = series();
        let segs: Vec<_> = s.segments(8).collect();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].start, 0);
        assert_eq!(segs[2].start, 2);
        assert_eq!(s.segments(11).count(), 0);
        assert_eq!(s.segments(0).count(), 0);
    }

    #[test]
    fn segment_ref_end() {
        let s = series();
        let seg = s.segment(3, 4).unwrap();
        assert_eq!(seg.end(), 7);
        assert_eq!(seg.len(), 4);
        assert!(!seg.is_empty());
    }
}
