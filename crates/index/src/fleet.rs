//! Fleet-batched suffix kNN search: many sensors, one grid per phase.
//!
//! The paper's deployment (Fig. 3, §4.4) runs ~1000 sensors on one GPU:
//! "the SMiLer Index can easily scale up with multiple sensors, where we
//! only need to create multiple SMiLer Indexes and invoke more blocks."
//! Per-sensor searching (as [`crate::SmilerIndex::search`] does) launches a
//! handful of blocks at a time, leaving most SMs idle; this module batches
//! the fleet's work so that each phase — group-level bounds, threshold
//! probes, filtering, verification, selection — is **one launch whose grid
//! spans every sensor**, keeping the device occupied and slashing launch
//! overhead.
//!
//! The outputs are bit-identical to running each sensor's
//! [`crate::SmilerIndex::search`] in isolation (tested), because the
//! batching only regroups independent blocks.

use crate::group::{self, GroupBounds};
use crate::search::{
    Neighbor, SearchError, SearchOutput, SearchStats, SmilerIndex, ThresholdStrategy,
};
use smiler_gpu::kselect;
use smiler_gpu::Device;
use std::sync::Arc;

/// Scratch describing one (sensor, item-query) task in a batched phase.
/// `sensor` indexes the *healthy* sub-fleet actually being batched.
#[derive(Debug, Clone)]
struct ItemTask {
    sensor: usize,
    item: usize,
    d: usize,
    /// The item query contains a non-finite value (a NaN sitting further
    /// back in the history than the shorter, clean suffixes). The task
    /// stays in the grid layout but ranks nothing: no probes, no
    /// filtering, an empty neighbour list — exactly `try_search`'s
    /// per-item degradation.
    poisoned: bool,
}

/// Run the suffix kNN search for a whole fleet, batching every phase into a
/// single launch across sensors. `max_ends[s]` bounds sensor `s`'s
/// candidate ends (callers pass `len − h` as for the single-sensor search).
///
/// Updates each index's continuous-reuse state exactly as its own `search`
/// would.
///
/// # Panics
/// Panics if `indexes` and `max_ends` lengths differ, or if any sensor's
/// slot fails (out-of-range `max_end`, poisoned shortest query). Serving
/// paths use [`try_fleet_search`], which degrades the failing slot only.
pub fn fleet_search(
    device: &Device,
    indexes: &mut [&mut SmilerIndex],
    max_ends: &[usize],
) -> Vec<SearchOutput> {
    try_fleet_search(device, indexes, max_ends)
        .into_iter()
        .map(|slot| match slot {
            Ok(out) => out,
            Err(e) => panic!("fleet suffix kNN search failed: {e}"),
        })
        .collect()
}

/// Fallible fleet search: one `Result` slot per sensor, in input order.
///
/// A sensor whose query would fail [`SmilerIndex::try_search`] — an
/// out-of-range `max_end`, a non-finite shortest item query — gets a typed
/// [`SearchError`] in *its* slot and is excluded from the batched grids;
/// it never aborts or poisons the other sensors' launches. Healthy slots
/// are bit-identical to [`fleet_search`] over the healthy sub-fleet, and
/// only they have their continuous-reuse state updated (an erroring sensor
/// keeps its previous state, as `try_search` would).
///
/// # Panics
/// Panics only on caller contract violation: `indexes` and `max_ends`
/// lengths differing.
pub fn try_fleet_search(
    device: &Device,
    indexes: &mut [&mut SmilerIndex],
    max_ends: &[usize],
) -> Vec<Result<SearchOutput, SearchError>> {
    assert_eq!(indexes.len(), max_ends.len(), "one max_end per sensor");
    if indexes.is_empty() {
        return Vec::new();
    }

    // Pre-screen each slot the way `try_search` screens its own entry:
    // bad bookkeeping and a poisoned shortest suffix are that sensor's
    // typed error, not the fleet's.
    let mut slots: Vec<Option<Result<SearchOutput, SearchError>>> = Vec::new();
    slots.resize_with(indexes.len(), || None);
    let mut healthy: Vec<&mut SmilerIndex> = Vec::new();
    let mut healthy_pos: Vec<usize> = Vec::new();
    let mut healthy_ends: Vec<usize> = Vec::new();
    for (s, index) in indexes.iter_mut().enumerate() {
        let len = index.series().len();
        if max_ends[s] > len {
            slots[s] = Some(Err(SearchError::MaxEndBeyondHistory { max_end: max_ends[s], len }));
            continue;
        }
        if let Some(&d0) = index.params().lengths.first() {
            let shortest = &index.series()[len - d0..];
            if shortest.iter().any(|v| !v.is_finite()) {
                slots[s] = Some(Err(SearchError::NonFiniteQuery { length: d0 }));
                continue;
            }
        }
        healthy_pos.push(s);
        healthy_ends.push(max_ends[s]);
        healthy.push(index);
    }

    if !healthy.is_empty() {
        let outputs = fleet_search_healthy(device, &mut healthy, &healthy_ends);
        match outputs {
            Ok(outs) => {
                for (pos, out) in healthy_pos.iter().zip(outs) {
                    slots[*pos] = Some(Ok(out));
                }
            }
            // A batch-level launch failure (shared-memory overflow from an
            // oversized device configuration) lands on every batched slot;
            // pre-screened slots keep their own, more specific errors.
            Err(e) => {
                for pos in &healthy_pos {
                    slots[*pos] = Some(Err(e.clone()));
                }
            }
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.unwrap_or(Err(SearchError::Device("sensor slot was never filled"))))
        .collect()
}

/// The batched pipeline over a pre-screened fleet: every `max_end` is in
/// range and every shortest item query is finite.
fn fleet_search_healthy(
    device: &Device,
    indexes: &mut [&mut SmilerIndex],
    max_ends: &[usize],
) -> Result<Vec<SearchOutput>, SearchError> {
    // ---- Phase 1: group-level lower bounds, one grid over all sensors. ----
    let lb_sat0 = device.saturated_seconds();
    let lb_sim0 = device.elapsed_seconds();
    let total_sat0 = lb_sat0;
    let total_sim0 = lb_sim0;
    let bounds = fleet_group_bounds(device, indexes, max_ends);
    let lb_sat = device.saturated_seconds() - lb_sat0;
    let lb_sim = device.elapsed_seconds() - lb_sim0;

    // Flatten (sensor, item) tasks. Longer item queries can be poisoned
    // while the (pre-screened) shorter ones stay clean — the NaN sits
    // further back — and degrade to an empty neighbour list per item.
    let mut tasks: Vec<ItemTask> = Vec::new();
    for (s, index) in indexes.iter().enumerate() {
        let series = index.series();
        for (i, &d) in index.params().lengths.iter().enumerate() {
            let poisoned = series[series.len() - d..].iter().any(|v| !v.is_finite());
            if poisoned {
                smiler_obs::count("search.nonfinite_query", "", 1);
            }
            tasks.push(ItemTask { sensor: s, item: i, d, poisoned });
        }
    }

    // Per-task mode-resolved bound arrays.
    let lbw: Vec<Vec<f64>> = tasks
        .iter()
        .map(|t| bounds[t.sensor].mode_bounds(t.item, indexes[t.sensor].bound_mode()))
        .collect();

    // ---- Phase 2a: thresholds. Continuous-reuse probes and cold-start
    //      k-smallest-LB probes are gathered fleet-wide, verified in one
    //      launch, and turned into per-task τ. ----
    let k_of = |t: &ItemTask| indexes[t.sensor].params().k_max;

    // Cold-start tasks need their k smallest lower bounds selected first.
    let cold: Vec<usize> = tasks
        .iter()
        .enumerate()
        .filter(|(ti, t)| {
            !t.poisoned
                && indexes[t.sensor].prev_neighbor(t.item).is_none()
                && lbw[*ti].len() > k_of(t)
        })
        .map(|(ti, _)| ti)
        .collect();
    let cold_rows: Vec<Vec<f64>> = cold.iter().map(|&ti| lbw[ti].clone()).collect();
    let cold_ks: Vec<usize> = cold.iter().map(|&ti| k_of(&tasks[ti])).collect();
    let cold_probe_sets = if cold.is_empty() {
        Vec::new()
    } else {
        kselect::launch_multi_select(device, &cold_rows, &cold_ks).results
    };

    // Assemble one fleet-wide probe list: (task, candidate start).
    let mut probes: Vec<(usize, usize)> = Vec::new();
    for (ti, t) in tasks.iter().enumerate() {
        if t.poisoned {
            continue;
        }
        if let Some(prev) = indexes[t.sensor].prev_neighbor(t.item) {
            if prev + t.d <= indexes[t.sensor].series().len() {
                probes.push((ti, prev));
                continue;
            }
        }
        if let Some(pos) = cold.iter().position(|&c| c == ti) {
            match indexes[t.sensor].threshold() {
                // Exact: verify all k best-LB candidates; τ = max of their
                // DTWs bounds the k-th NN distance from above.
                ThresholdStrategy::ExactKBest => {
                    for &cand in &cold_probe_sets[pos] {
                        probes.push((ti, cand));
                    }
                }
                // Paper method 1: verify only the candidate with the k-th
                // smallest lower bound.
                ThresholdStrategy::PaperKthLb => {
                    if let Some(&kth) = cold_probe_sets[pos].last() {
                        probes.push((ti, kth));
                    }
                }
            }
        }
        // Tasks with ≤ k candidates get τ = ∞ below (no probes needed).
    }
    let probe_dists = fleet_verify(device, indexes, &tasks, &probes)?;

    // τ per task: max over its probes (exact for the ExactKBest strategy;
    // the single continuous probe matches the paper's reuse threshold).
    let mut tau = vec![f64::INFINITY; tasks.len()];
    let mut verified: Vec<Vec<(usize, f64)>> = vec![Vec::new(); tasks.len()];
    for (&(ti, cand), &dist) in probes.iter().zip(&probe_dists) {
        verified[ti].push((cand, dist));
        if tau[ti] == f64::INFINITY {
            tau[ti] = dist;
        } else {
            tau[ti] = tau[ti].max(dist);
        }
    }
    for (ti, t) in tasks.iter().enumerate() {
        if lbw[ti].len() <= k_of(t) {
            tau[ti] = f64::INFINITY;
        }
    }

    // ---- Phase 2b: filter — one block per task (pure scans). A poisoned
    //      task keeps its block slot in the grid but scans nothing. ----
    let filter = device.launch(tasks.len(), |ctx| {
        let ti = ctx.block_id();
        if tasks[ti].poisoned {
            return Vec::new();
        }
        ctx.read_global(lbw[ti].len() as u64);
        ctx.flops(lbw[ti].len() as u64);
        let skip: Vec<usize> = verified[ti].iter().map(|&(c, _)| c).collect();
        (0..lbw[ti].len())
            .filter(|&t| lbw[ti][t] <= tau[ti] && !skip.contains(&t))
            .collect::<Vec<usize>>()
    });

    // ---- Phase 2c: verification — one grid over every survivor. ----
    let mut survivors: Vec<(usize, usize)> = Vec::new();
    for (ti, kept) in filter.results.iter().enumerate() {
        for &cand in kept {
            survivors.push((ti, cand));
        }
    }
    let verify_sat0 = device.saturated_seconds();
    let verify_sim0 = device.elapsed_seconds();
    let survivor_dists = fleet_verify(device, indexes, &tasks, &survivors)?;
    let verify_sat = device.saturated_seconds() - verify_sat0;
    let verify_sim = device.elapsed_seconds() - verify_sim0;
    for (&(ti, cand), &dist) in survivors.iter().zip(&survivor_dists) {
        verified[ti].push((cand, dist));
    }

    // ---- Phase 3: selection — one grid, one block per task. ----
    let rows: Vec<Vec<f64>> =
        verified.iter().map(|v| v.iter().map(|&(_, d)| d).collect()).collect();
    let ks: Vec<usize> = tasks.iter().map(k_of).collect();
    let picks = kselect::launch_multi_select(device, &rows, &ks).results;

    // ---- Assemble per-sensor outputs and update continuous state. ----
    // Phase costs are shared launches; attribute them evenly per sensor so
    // the stats stay comparable with the per-sensor search path.
    let n = indexes.len() as f64;
    let total_sat = device.saturated_seconds() - total_sat0;
    let total_sim = device.elapsed_seconds() - total_sim0;
    let mut stats_list: Vec<SearchStats> = indexes
        .iter()
        .map(|_| SearchStats {
            verify_sim_seconds: verify_sim / n,
            verify_saturated_seconds: verify_sat / n,
            lb_sim_seconds: lb_sim / n,
            lb_saturated_seconds: lb_sat / n,
            total_sim_seconds: total_sim / n,
            total_saturated_seconds: total_sat / n,
            ..SearchStats::default()
        })
        .collect();
    let mut sensor_neighbors: Vec<Vec<Vec<Neighbor>>> =
        indexes.iter().map(|_| Vec::new()).collect();
    for ((ti, task), pick) in tasks.iter().enumerate().zip(&picks) {
        let neighbors: Vec<Neighbor> = pick
            .iter()
            .map(|&i| Neighbor { start: verified[ti][i].0, distance: verified[ti][i].1 })
            .collect();
        sensor_neighbors[task.sensor].push(neighbors);
        stats_list[task.sensor].candidates.push(lbw[ti].len());
        stats_list[task.sensor].unfiltered.push(verified[ti].len());
    }
    let outputs: Vec<SearchOutput> = sensor_neighbors
        .into_iter()
        .zip(stats_list)
        .map(|(nb, stats)| SearchOutput { neighbors: Arc::new(nb), stats })
        .collect();
    // Sharing the `Arc` (instead of deep-cloning every neighbour list)
    // installs the continuous-reuse state for free.
    for (index, out) in indexes.iter_mut().zip(&outputs) {
        index.set_prev_neighbors(Arc::clone(&out.neighbors));
    }
    Ok(outputs)
}

/// Group-level bounds for all sensors in ONE launch: the grid is
/// `ω` CSG-class blocks per sensor.
fn fleet_group_bounds(
    device: &Device,
    indexes: &[&mut SmilerIndex],
    max_ends: &[usize],
) -> Vec<GroupBounds> {
    // Per-sensor block ranges.
    let mut blocks_of: Vec<(usize, usize)> = Vec::with_capacity(indexes.len()); // (sensor, b)
    for (s, index) in indexes.iter().enumerate() {
        let omega = index.params().omega;
        let classes = omega.min(index.window_index().sw_count());
        for b in 0..classes {
            blocks_of.push((s, b));
        }
    }
    let report = device.launch(blocks_of.len(), |ctx| {
        let (s, b) = blocks_of[ctx.block_id()];
        let index = &indexes[s];
        group::class_pass(ctx, index.window_index(), &index.params().lengths, max_ends[s], b)
    });

    // Scatter per sensor.
    let mut out: Vec<GroupBounds> = indexes
        .iter()
        .zip(max_ends)
        .map(|(index, &max_end)| {
            let lengths = &index.params().lengths;
            let mut eq = Vec::with_capacity(lengths.len());
            let mut ec = Vec::with_capacity(lengths.len());
            for &d in lengths {
                let count = if max_end >= d { max_end - d + 1 } else { 0 };
                eq.push(vec![0.0; count]);
                ec.push(vec![0.0; count]);
            }
            GroupBounds { lengths: lengths.clone(), eq, ec }
        })
        .collect();
    for ((s, _), rows) in blocks_of.iter().zip(report.results) {
        for (i, t, s_eq, s_ec) in rows {
            out[*s].eq[i][t] = s_eq;
            out[*s].ec[i][t] = s_ec;
        }
    }
    out
}

/// Verify `(task, candidate)` pairs across the fleet in one launch,
/// chunked 256 per block. Returns distances in input order, or the typed
/// shared-memory error if a block's compressed matrices exceed the budget
/// (instead of panicking mid-batch).
fn fleet_verify(
    device: &Device,
    indexes: &[&mut SmilerIndex],
    tasks: &[ItemTask],
    pairs: &[(usize, usize)],
) -> Result<Vec<f64>, SearchError> {
    const THREADS: usize = 256;
    if pairs.is_empty() {
        return Ok(Vec::new());
    }
    let blocks = pairs.len().div_ceil(THREADS);
    let report = device.launch(blocks, |ctx| -> Result<Vec<f64>, smiler_gpu::SharedMemOverflow> {
        let lo = ctx.block_id() * THREADS;
        let hi = (lo + THREADS).min(pairs.len());
        let mut scratch = smiler_dtw::DtwScratch::new();
        let mut out = Vec::with_capacity(hi - lo);
        for &(ti, cand) in &pairs[lo..hi] {
            let t = &tasks[ti];
            let index = &indexes[t.sensor];
            let rho = index.params().rho;
            let series = index.series();
            let query = &series[series.len() - t.d..];
            ctx.read_global(2 * t.d as u64);
            ctx.flops(smiler_dtw::dtw_ops_estimate(t.d, rho));
            ctx.alloc_shared(2 * (2 * rho + 2) * 4)?;
            out.push(smiler_dtw::dtw_compressed_with(
                query,
                &series[cand..cand + t.d],
                rho,
                &mut scratch,
            ));
        }
        ctx.sync();
        Ok(out)
    });
    let mut all = Vec::with_capacity(pairs.len());
    for block in report.results {
        all.extend(block?);
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::IndexParams;

    fn make_series(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (i as f64 * 0.17).sin() + (state % 100) as f64 / 60.0
            })
            .collect()
    }

    fn params() -> IndexParams {
        IndexParams { rho: 3, omega: 4, lengths: vec![8, 12], k_max: 4 }
    }

    fn build_fleet(n: usize, device: &Device) -> (Vec<SmilerIndex>, Vec<usize>) {
        let indexes: Vec<SmilerIndex> = (0..n)
            .map(|s| SmilerIndex::build(device, make_series(260 + 10 * s, s as u64), params()))
            .collect();
        let max_ends: Vec<usize> = indexes.iter().map(|i| i.series().len() - 5).collect();
        (indexes, max_ends)
    }

    #[test]
    fn fleet_matches_per_sensor_search() {
        let device = Device::default_gpu();
        let (mut fleet, max_ends) = build_fleet(4, &device);
        let (mut solo, _) = build_fleet(4, &device);

        let mut refs: Vec<&mut SmilerIndex> = fleet.iter_mut().collect();
        let fleet_out = fleet_search(&device, &mut refs, &max_ends);
        for (s, index) in solo.iter_mut().enumerate() {
            let expect = index.search(&device, max_ends[s]);
            let got = &fleet_out[s];
            assert_eq!(got.neighbors.len(), expect.neighbors.len());
            for (gn, en) in got.neighbors.iter().zip(expect.neighbors.iter()) {
                assert_eq!(gn.len(), en.len(), "sensor {s}");
                for (g, e) in gn.iter().zip(en) {
                    assert!((g.distance - e.distance).abs() < 1e-9, "sensor {s}: {g:?} vs {e:?}");
                }
            }
        }
    }

    #[test]
    fn fleet_continuous_steps_match() {
        let device = Device::default_gpu();
        let (mut fleet, _) = build_fleet(3, &device);
        let (mut solo, _) = build_fleet(3, &device);
        for step in 0..4 {
            let v = (step as f64 * 0.3).sin();
            for index in fleet.iter_mut().chain(solo.iter_mut()) {
                index.advance(&device, v);
            }
            let max_ends: Vec<usize> = fleet.iter().map(|i| i.series().len() - 5).collect();
            let mut refs: Vec<&mut SmilerIndex> = fleet.iter_mut().collect();
            let fleet_out = fleet_search(&device, &mut refs, &max_ends);
            for (s, index) in solo.iter_mut().enumerate() {
                let expect = index.search(&device, max_ends[s]);
                for (gn, en) in fleet_out[s].neighbors.iter().zip(expect.neighbors.iter()) {
                    for (g, e) in gn.iter().zip(en) {
                        assert!((g.distance - e.distance).abs() < 1e-9, "step {step} sensor {s}");
                    }
                }
            }
        }
    }

    #[test]
    fn fleet_uses_far_fewer_launches() {
        let dev_fleet = Device::default_gpu();
        let dev_solo = Device::default_gpu();
        let (mut fleet, max_ends) = build_fleet(6, &dev_fleet);
        let (mut solo, _) = build_fleet(6, &dev_solo);
        dev_fleet.reset_clock();
        dev_solo.reset_clock();
        let mut refs: Vec<&mut SmilerIndex> = fleet.iter_mut().collect();
        fleet_search(&dev_fleet, &mut refs, &max_ends);
        for (s, index) in solo.iter_mut().enumerate() {
            index.search(&dev_solo, max_ends[s]);
        }
        assert!(
            dev_fleet.kernel_launches() * 2 < dev_solo.kernel_launches(),
            "fleet launches {} vs solo {}",
            dev_fleet.kernel_launches(),
            dev_solo.kernel_launches()
        );
    }

    #[test]
    fn empty_fleet_is_fine() {
        let device = Device::default_gpu();
        let mut refs: Vec<&mut SmilerIndex> = Vec::new();
        assert!(fleet_search(&device, &mut refs, &[]).is_empty());
        assert!(try_fleet_search(&device, &mut refs, &[]).is_empty());
    }

    #[test]
    fn bad_max_end_degrades_only_its_slot() {
        let device = Device::default_gpu();
        let (mut fleet, mut max_ends) = build_fleet(4, &device);
        let (mut solo, solo_ends) = build_fleet(4, &device);
        max_ends[1] = fleet[1].series().len() + 7; // out-of-range bookkeeping

        let mut refs: Vec<&mut SmilerIndex> = fleet.iter_mut().collect();
        let slots = try_fleet_search(&device, &mut refs, &max_ends);
        assert!(matches!(slots[1], Err(SearchError::MaxEndBeyondHistory { .. })));
        for (s, index) in solo.iter_mut().enumerate() {
            if s == 1 {
                continue;
            }
            let expect = index.search(&device, solo_ends[s]);
            let got = slots[s].as_ref().expect("healthy slot");
            for (gn, en) in got.neighbors.iter().zip(expect.neighbors.iter()) {
                for (g, e) in gn.iter().zip(en) {
                    assert!((g.distance - e.distance).abs() < 1e-9, "sensor {s}");
                }
            }
        }
    }

    #[test]
    fn nan_suffix_degrades_only_its_slot() {
        let device = Device::default_gpu();
        let (mut fleet, max_ends) = build_fleet(3, &device);
        let (mut solo, _) = build_fleet(3, &device);
        // Poison sensor 2's newest observation: every item query sees it.
        fleet[2].advance(&device, f64::NAN);
        solo[2].advance(&device, f64::NAN);

        let mut refs: Vec<&mut SmilerIndex> = fleet.iter_mut().collect();
        let slots = try_fleet_search(&device, &mut refs, &max_ends);
        assert!(matches!(slots[2], Err(SearchError::NonFiniteQuery { .. })));
        for (s, index) in solo.iter_mut().enumerate().take(2) {
            let expect = index.search(&device, max_ends[s]);
            let got = slots[s].as_ref().expect("healthy slot");
            for (gn, en) in got.neighbors.iter().zip(expect.neighbors.iter()) {
                for (g, e) in gn.iter().zip(en) {
                    assert!((g.distance - e.distance).abs() < 1e-9, "sensor {s}");
                }
            }
        }
    }

    #[test]
    fn nan_in_longer_query_only_empties_that_item() {
        let device = Device::default_gpu();
        let (mut fleet, _) = build_fleet(2, &device);
        // Splice a NaN between the shortest (8) and longest (12) suffix of
        // sensor 0: item 0 stays clean, item 1 is poisoned.
        let len = fleet[0].series().len();
        let poison_at = len - 10;
        let mut solo_series = fleet[0].series().to_vec();
        solo_series[poison_at] = f64::NAN;
        fleet[0] = SmilerIndex::build(&device, solo_series, params());
        let max_ends: Vec<usize> = fleet.iter().map(|i| i.series().len() - 13).collect();

        let mut refs: Vec<&mut SmilerIndex> = fleet.iter_mut().collect();
        let slots = try_fleet_search(&device, &mut refs, &max_ends);
        let out = slots[0].as_ref().expect("poisoned long item degrades, not errors");
        assert!(!out.neighbors[0].is_empty(), "clean shortest item still ranks");
        assert!(out.neighbors[1].is_empty(), "poisoned longer item ranks nothing");
        assert!(slots[1].is_ok());
    }

    #[test]
    fn try_fleet_matches_solo_try_search_slots() {
        let device = Device::default_gpu();
        let (mut fleet, max_ends) = build_fleet(3, &device);
        let (mut solo, _) = build_fleet(3, &device);
        let mut refs: Vec<&mut SmilerIndex> = fleet.iter_mut().collect();
        let slots = try_fleet_search(&device, &mut refs, &max_ends);
        for (s, index) in solo.iter_mut().enumerate() {
            let expect = index.try_search(&device, max_ends[s]).expect("healthy");
            let got = slots[s].as_ref().expect("healthy slot");
            assert_eq!(got.neighbors.len(), expect.neighbors.len());
            for (gn, en) in got.neighbors.iter().zip(expect.neighbors.iter()) {
                assert_eq!(gn.len(), en.len(), "sensor {s}");
            }
        }
    }
}
