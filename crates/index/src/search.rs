//! The SMiLer index: suffix kNN search with filtering, verification and
//! selection (paper §4.3.3), plus continuous maintenance.
//!
//! A [`SmilerIndex`] owns one sensor's normalised history, its envelope and
//! the window-level index. [`SmilerIndex::search`] answers the Suffix kNN
//! Search for every item-query length at once; [`SmilerIndex::advance`]
//! absorbs one new observation, rotating the window level (Remark 1) and
//! carrying the previous answer forward as the next filter threshold
//! (the continuous-reuse threshold of §4.3.3).

use crate::group;
use crate::window::WindowIndex;
use smiler_gpu::kselect;
use smiler_gpu::Device;
use smiler_timeseries::{Envelope, EnvelopeScratch};
use std::sync::Arc;

/// Errors raised by the suffix kNN search instead of panicking — the
/// request path must degrade, not crash, when malformed data reaches it
/// (one sensor's NaN must never take a fleet down).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// The item query (the history suffix itself) contains a non-finite
    /// value, so no candidate can be ranked: every DTW distance and lower
    /// bound against it is NaN. Callers should fall back to a predictor
    /// that needs no neighbours (aggregation over past labels, last-value
    /// hold).
    NonFiniteQuery {
        /// Length of the poisoned item query.
        length: usize,
    },
    /// `max_end` exceeds the history length (caller bookkeeping bug,
    /// reported instead of panicking in the serving path).
    MaxEndBeyondHistory {
        /// The requested candidate-end bound.
        max_end: usize,
        /// The history length.
        len: usize,
    },
    /// A kernel's working set exceeded the device's shared-memory budget
    /// (configuration too large for the device).
    SharedMemOverflow {
        /// Bytes the kernel requested.
        requested: usize,
        /// The per-block shared-memory capacity.
        capacity: usize,
    },
    /// A device launch returned an unexpected result shape.
    Device(&'static str),
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::NonFiniteQuery { length } => {
                write!(f, "item query of length {length} contains a non-finite value")
            }
            SearchError::MaxEndBeyondHistory { max_end, len } => {
                write!(f, "max_end {max_end} exceeds the history length {len}")
            }
            SearchError::SharedMemOverflow { requested, capacity } => {
                write!(f, "kernel requested {requested} shared bytes of {capacity} available")
            }
            SearchError::Device(what) => write!(f, "device launch failed: {what}"),
        }
    }
}

impl std::error::Error for SearchError {}

impl From<smiler_gpu::SharedMemOverflow> for SearchError {
    fn from(e: smiler_gpu::SharedMemOverflow) -> Self {
        SearchError::SharedMemOverflow { requested: e.requested, capacity: e.capacity }
    }
}

/// The single result of a one-block launch, as a typed error instead of a
/// panicking `expect` in the request path.
fn single_block<T>(results: Vec<T>) -> Result<T, SearchError> {
    results.into_iter().next().ok_or(SearchError::Device("one-block launch returned no result"))
}

/// Parameters of the suffix kNN index (paper Table 2 defaults).
#[derive(Debug, Clone)]
pub struct IndexParams {
    /// Sakoe-Chiba warping width ρ.
    pub rho: usize,
    /// Window length ω.
    pub omega: usize,
    /// Item-query lengths — the Ensemble Length Vector, strictly ascending;
    /// the largest is the master-query length `D`.
    pub lengths: Vec<usize>,
    /// Neighbours to return per item query — the largest entry of the
    /// Ensemble kNN Vector (smaller k's take prefixes, §4.1).
    pub k_max: usize,
}

impl Default for IndexParams {
    fn default() -> Self {
        IndexParams { rho: 8, omega: 16, lengths: vec![32, 64, 96], k_max: 32 }
    }
}

impl IndexParams {
    /// Master-query length `D` (the largest item query). Zero only for an
    /// empty ELV, which [`SmilerIndex::build`] rejects up front.
    pub fn d_master(&self) -> usize {
        self.lengths.last().copied().unwrap_or_default()
    }

    fn validate(&self) {
        assert!(self.omega > 0, "ω must be positive");
        assert!(!self.lengths.is_empty(), "ELV must not be empty");
        assert!(self.lengths.windows(2).all(|w| w[0] < w[1]), "ELV must be strictly ascending");
        assert!(self.lengths[0] >= self.omega, "shortest item query must cover one window");
        assert!(self.k_max > 0, "k must be positive");
    }
}

/// Which lower bound drives the filter — the Table 3 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundMode {
    /// Filter with `ΣLBEQ` only.
    Eq,
    /// Filter with `ΣLBEC` only.
    Ec,
    /// Filter with the enhanced bound `max(ΣLBEQ, ΣLBEC)` (the paper's
    /// `LBen`, default).
    En,
}

/// How the filter threshold τ is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ThresholdStrategy {
    /// Paper method 1: verify the candidate with the k-th smallest lower
    /// bound; τ is its true DTW. Cheap but can very rarely prune a true
    /// neighbour when lower-bound order disagrees with DTW order.
    PaperKthLb,
    /// Verify the k candidates with the smallest lower bounds; τ is the
    /// *largest* of their DTWs — an upper bound on the k-th NN distance, so
    /// the filter is exact. Costs k−1 extra verifications.
    ExactKBest,
}

/// How candidates that survive the group-level filter are DTW-verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyMode {
    /// Verify every surviving candidate with a full banded DTW (the batched
    /// compressed-matrix kernel). Simple, and the oracle the cascade is
    /// tested against.
    Batch,
    /// Cascaded filter (default): candidates walk, in ascending order of
    /// their group-level bound, through an O(1) first/last-point bound, then
    /// the full `LB_Keogh` envelope bound, then an early-abandoning DTW —
    /// each stage pruning against the *running* k-th-best verified distance.
    /// Exact: a true k-nearest neighbour can never be pruned, because its
    /// lower bounds and its DTW never exceed the running threshold.
    Cascade,
}

/// One retrieved neighbour segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Start position `t` of the segment in the sensor history.
    pub start: usize,
    /// Banded DTW distance to the item query.
    pub distance: f64,
}

/// Instrumentation of one search, feeding Table 3 / Fig 7 / Fig 8.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct SearchStats {
    /// Candidate population per item query.
    pub candidates: Vec<usize>,
    /// Candidates that survived filtering (and were DTW-verified) per item
    /// query — the "number" column of Table 3.
    pub unfiltered: Vec<usize>,
    /// Simulated device seconds (makespan) spent verifying candidates —
    /// the "time" column of Table 3.
    pub verify_sim_seconds: f64,
    /// Device-saturated seconds spent verifying (the many-sensor regime;
    /// see `smiler_gpu::KernelStats::saturated_seconds`).
    pub verify_saturated_seconds: f64,
    /// Simulated device seconds spent computing group-level lower bounds —
    /// the Fig 8 measurement.
    pub lb_sim_seconds: f64,
    /// Device-saturated seconds of the group-level lower-bound pass.
    pub lb_saturated_seconds: f64,
    /// Total simulated seconds of the search (bounds + filter + verify +
    /// select).
    pub total_sim_seconds: f64,
    /// Total device-saturated seconds of the search.
    pub total_saturated_seconds: f64,
}

/// Result of one suffix kNN search.
#[derive(Debug, Clone)]
pub struct SearchOutput {
    /// Per item query (ELV order): up to `k_max` neighbours sorted by
    /// ascending DTW distance. Shared (`Arc`) with the index's
    /// continuous-reuse state, so carrying an answer forward never copies
    /// the neighbour lists.
    pub neighbors: Arc<Vec<Vec<Neighbor>>>,
    /// Instrumentation.
    pub stats: SearchStats,
}

/// Reusable workspaces for the per-step search loop: the item query copy,
/// its envelope (plus deque scratch), and the mode-resolved filter bounds.
/// Owned by the index so the steady-state continuous search allocates
/// nothing per step once the buffers have grown.
#[derive(Debug, Default)]
struct SearchScratch {
    query: Vec<f64>,
    query_env: Envelope,
    env: EnvelopeScratch,
    lbw: Vec<f64>,
}

/// Per-stage outcome counts of one cascaded verification pass, reported to
/// the observability layer as `verify.cascade` counters.
#[derive(Debug, Clone, Copy, Default)]
struct CascadeCounts {
    kim_pruned: u64,
    keogh_pruned: u64,
    dtw_abandoned: u64,
    dtw_full: u64,
}

/// The per-sensor SMiLer index.
#[derive(Debug)]
pub struct SmilerIndex {
    params: IndexParams,
    bound_mode: BoundMode,
    threshold: ThresholdStrategy,
    verify_mode: VerifyMode,
    series: Vec<f64>,
    series_env: Envelope,
    windex: WindowIndex,
    /// Previous step's answer; start positions feed the continuous-reuse
    /// threshold (§4.3.3 method 2).
    prev_neighbors: Option<Arc<Vec<Vec<Neighbor>>>>,
    scratch: SearchScratch,
}

impl SmilerIndex {
    /// Build the index over a sensor's normalised history.
    ///
    /// # Panics
    /// Panics if the history is shorter than the master query or parameters
    /// are inconsistent.
    pub fn build(device: &Device, series: Vec<f64>, params: IndexParams) -> Self {
        params.validate();
        let d = params.d_master();
        assert!(series.len() >= d, "history shorter than the master query");
        let series_env = Envelope::compute(&series, params.rho);
        let query = &series[series.len() - d..];
        let query_env = Envelope::compute(query, params.rho);
        let windex = WindowIndex::build(
            device,
            &series,
            &series_env,
            query,
            &query_env,
            params.omega,
            params.rho,
        );
        SmilerIndex {
            params,
            bound_mode: BoundMode::En,
            threshold: ThresholdStrategy::ExactKBest,
            verify_mode: VerifyMode::Cascade,
            series,
            series_env,
            windex,
            prev_neighbors: None,
            scratch: SearchScratch::default(),
        }
    }

    /// Use a different filter bound (Table 3 ablation).
    pub fn with_bound_mode(mut self, mode: BoundMode) -> Self {
        self.bound_mode = mode;
        self
    }

    /// Use a different threshold strategy.
    pub fn with_threshold(mut self, strategy: ThresholdStrategy) -> Self {
        self.threshold = strategy;
        self
    }

    /// Use a different verification strategy.
    pub fn with_verify_mode(mut self, mode: VerifyMode) -> Self {
        self.verify_mode = mode;
        self
    }

    /// The index parameters.
    pub fn params(&self) -> &IndexParams {
        &self.params
    }

    /// The active filter bound.
    pub fn bound_mode(&self) -> BoundMode {
        self.bound_mode
    }

    /// The active threshold strategy.
    pub fn threshold(&self) -> ThresholdStrategy {
        self.threshold
    }

    /// The active verification strategy.
    pub fn verify_mode(&self) -> VerifyMode {
        self.verify_mode
    }

    /// Borrow the window-level index (used by the fleet-batched search).
    pub(crate) fn window_index(&self) -> &WindowIndex {
        &self.windex
    }

    /// Start of the previous step's k-th nearest neighbour for item query
    /// `i`, if a previous answer exists (continuous-reuse threshold).
    pub(crate) fn prev_neighbor(&self, i: usize) -> Option<usize> {
        self.prev_neighbors
            .as_ref()
            .and_then(|prev| prev.get(i))
            .and_then(|v| v.last())
            .map(|nb| nb.start)
    }

    /// Install the step's answer as the next continuous-reuse state (used
    /// by the fleet-batched search, mirroring what `search` does).
    pub(crate) fn set_prev_neighbors(&mut self, neighbors: Arc<Vec<Vec<Neighbor>>>) {
        self.prev_neighbors = Some(neighbors);
    }

    /// The sensor history (normalised).
    pub fn series(&self) -> &[f64] {
        &self.series
    }

    /// Device-memory footprint: history + envelope + posting lists — the
    /// quantity the Fig 12c capacity experiment divides 6 GB by.
    pub fn device_bytes(&self) -> usize {
        let f = std::mem::size_of::<f64>();
        self.series.len() * f        // history
            + self.series_env.len() * 2 * f // envelope
            + self.windex.device_bytes()
    }

    /// Absorb one new observation: append to history and rotate the window
    /// level (Remark 1).
    pub fn advance(&mut self, device: &Device, value: f64) {
        let _span = smiler_obs::span("index.advance");
        smiler_obs::count("index.advance", "", 1);
        self.series.push(value);
        self.series_env.extend_to(&self.series);
        let d = self.params.d_master();
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.query.clear();
        scratch.query.extend_from_slice(&self.series[self.series.len() - d..]);
        scratch.query_env.compute_into(&scratch.query, self.params.rho, &mut scratch.env);
        self.windex.advance(
            device,
            &self.series,
            &self.series_env,
            &scratch.query,
            &scratch.query_env,
        );
        self.scratch = scratch;
    }

    /// The current item query of length `d` (suffix of the history).
    fn item_query(&self, d: usize) -> &[f64] {
        &self.series[self.series.len() - d..]
    }

    /// Suffix kNN search over candidates whose end does not exceed
    /// `max_end` (callers pass `len − h` so every neighbour has its
    /// h-step-ahead label).
    ///
    /// # Panics
    /// Panics on any [`SearchError`] — the infallible convenience wrapper
    /// for tests, benches and offline tools. Serving paths use
    /// [`SmilerIndex::try_search`] instead.
    pub fn search(&mut self, device: &Device, max_end: usize) -> SearchOutput {
        match self.try_search(device, max_end) {
            Ok(out) => out,
            Err(e) => panic!("suffix kNN search failed: {e}"),
        }
    }

    /// Fallible suffix kNN search: returns a typed [`SearchError`] instead
    /// of panicking when malformed input (a non-finite query value, an
    /// out-of-range `max_end`) or an oversized kernel reaches the request
    /// path. Candidates whose lower bound or DTW distance is non-finite —
    /// a NaN spliced into the *history* rather than the query — are
    /// filtered out exactly like `kselect` drops non-finite values, so one
    /// poisoned segment degrades recall by at most itself.
    pub fn try_search(
        &mut self,
        device: &Device,
        max_end: usize,
    ) -> Result<SearchOutput, SearchError> {
        if max_end > self.series.len() {
            return Err(SearchError::MaxEndBeyondHistory { max_end, len: self.series.len() });
        }
        let _search_span = smiler_obs::span("search");
        let start_clock = device.elapsed_seconds();
        let start_saturated = device.saturated_seconds();

        // Phase 1: group-level lower bounds (one pass over posting lists).
        let lb_clock = device.elapsed_seconds();
        let lb_sat = device.saturated_seconds();
        let bounds = {
            let _lb_span = smiler_obs::span("lb");
            group::compute_group_bounds(device, &self.windex, &self.params.lengths, max_end)
        };
        let lb_sim_seconds = device.elapsed_seconds() - lb_clock;
        let lb_saturated_seconds = device.saturated_seconds() - lb_sat;

        let mut stats = SearchStats { lb_sim_seconds, lb_saturated_seconds, ..Default::default() };
        let mut scratch = std::mem::take(&mut self.scratch);
        let outcome = self.search_items(device, &bounds, &mut scratch, &mut stats);
        self.scratch = scratch;
        let neighbors = outcome?;

        stats.total_sim_seconds = device.elapsed_seconds() - start_clock;
        stats.total_saturated_seconds = device.saturated_seconds() - start_saturated;
        let neighbors = Arc::new(neighbors);
        self.prev_neighbors = Some(Arc::clone(&neighbors));
        Ok(SearchOutput { neighbors, stats })
    }

    /// The per-item-query filter → verify → select loop of one search, with
    /// the scratch workspaces borrowed out of `self` so
    /// [`SmilerIndex::try_search`] restores them exactly once whether the
    /// loop succeeds or fails.
    fn search_items(
        &self,
        device: &Device,
        bounds: &group::GroupBounds,
        scratch: &mut SearchScratch,
        stats: &mut SearchStats,
    ) -> Result<Vec<Vec<Neighbor>>, SearchError> {
        let rho = self.params.rho;
        let k = self.params.k_max;
        let mut neighbors: Vec<Vec<Neighbor>> = Vec::with_capacity(self.params.lengths.len());

        for (i, &d) in self.params.lengths.iter().enumerate() {
            scratch.query.clear();
            scratch.query.extend_from_slice(self.item_query(d));
            bounds.mode_bounds_into(i, self.bound_mode, &mut scratch.lbw);
            let query = &scratch.query;
            let lbw = &scratch.lbw;

            // A non-finite value inside the query suffix poisons every
            // lower bound and every DTW distance at once. Item queries are
            // nested suffixes (ELV ascending), so a poisoned *shortest*
            // query means no item query can rank anything — a typed error.
            // A longer query can be poisoned while shorter ones stay clean
            // (the NaN sits further back); it alone degrades to an empty
            // neighbour list.
            if query.iter().any(|v| !v.is_finite()) {
                if i == 0 {
                    return Err(SearchError::NonFiniteQuery { length: d });
                }
                smiler_obs::count("search.nonfinite_query", "", 1);
                stats.candidates.push(lbw.len());
                stats.unfiltered.push(0);
                neighbors.push(Vec::new());
                continue;
            }
            stats.candidates.push(lbw.len());
            if lbw.is_empty() {
                neighbors.push(Vec::new());
                continue;
            }

            // Phase 2a: threshold. Already-verified candidates are cached so
            // they are not re-verified in phase 2c.
            let mut verified: Vec<(usize, f64)> = Vec::new();
            let to_verify = {
                let _filter_span = smiler_obs::span("filter");
                let tau = self.pick_threshold(device, i, d, query, lbw, k, &mut verified)?;

                // Phase 2b: filter by τ. A pure scan — kept as its own launch
                // so filtering and verification never mix in one kernel
                // (§4.4). Non-finite bounds fail the `<= τ` comparison, so
                // candidates poisoned by a NaN in the history are dropped
                // here, mirroring `kselect`'s non-finite filtering.
                let filter = device.launch(1, |ctx| {
                    ctx.read_global(lbw.len() as u64);
                    ctx.flops(lbw.len() as u64);
                    let skip: Vec<usize> = verified.iter().map(|&(t, _)| t).collect();
                    (0..lbw.len())
                        .filter(|&t| lbw[t] <= tau && !skip.contains(&t))
                        .collect::<Vec<usize>>()
                });
                single_block(filter.results)?
            };

            // Phase 2c: verification. `survived` counts the candidates the
            // group-level filter let through (probes included) — the
            // "number" column of Table 3 — in both verify modes; the
            // cascade's further pruning is reported separately.
            let survived = verified.len() + to_verify.len();
            let verify_clock = device.elapsed_seconds();
            let verify_sat = device.saturated_seconds();
            {
                let _verify_span = smiler_obs::span("verify");
                match self.verify_mode {
                    VerifyMode::Batch => {
                        let distances =
                            verify_candidates(device, &self.series, query, rho, &to_verify)?;
                        verified.extend(to_verify.iter().copied().zip(distances));
                    }
                    VerifyMode::Cascade => {
                        scratch.query_env.compute_into(&scratch.query, rho, &mut scratch.env);
                        // Tight bounds first: candidates are visited in
                        // ascending lower-bound order so the running k-th
                        // best distance drops as fast as possible. The filter
                        // only passes finite bounds, for which `total_cmp`
                        // agrees with the partial order — and it cannot panic
                        // should a NaN ever slip through.
                        let mut order = to_verify;
                        order.sort_unstable_by(|&a, &b| lbw[a].total_cmp(&lbw[b]));
                        let (found, counts) = cascade_verify(
                            device,
                            &self.series,
                            query,
                            &scratch.query_env,
                            rho,
                            &order,
                            &verified,
                            k,
                        )?;
                        verified.extend(found);
                        if smiler_obs::enabled() {
                            smiler_obs::count("verify.cascade", "kim_pruned", counts.kim_pruned);
                            smiler_obs::count(
                                "verify.cascade",
                                "keogh_pruned",
                                counts.keogh_pruned,
                            );
                            smiler_obs::count(
                                "verify.cascade",
                                "dtw_abandoned",
                                counts.dtw_abandoned,
                            );
                            smiler_obs::count("verify.cascade", "dtw_full", counts.dtw_full);
                        }
                    }
                }
            }
            stats.verify_sim_seconds += device.elapsed_seconds() - verify_clock;
            stats.verify_saturated_seconds += device.saturated_seconds() - verify_sat;
            stats.unfiltered.push(survived);
            if smiler_obs::enabled() {
                let label = format!("d={d}");
                let cand = lbw.len();
                smiler_obs::count("search.candidates", &label, cand as u64);
                smiler_obs::count("search.verified", &label, survived as u64);
                if cand > 0 {
                    let pruned = cand.saturating_sub(survived) as f64;
                    smiler_obs::observe("search.pruning_ratio", &label, pruned / cand as f64);
                }
            }

            // Phase 3: k-selection (one block per query, §4.3.3).
            let dists: Vec<f64> = verified.iter().map(|&(_, dist)| dist).collect();
            let picked = {
                let _select_span = smiler_obs::span("select");
                let sel = device.launch(1, |ctx| kselect::select_k_smallest(ctx, &dists, k));
                single_block(sel.results)?
            };
            neighbors.push(
                picked
                    .into_iter()
                    .map(|idx| Neighbor { start: verified[idx].0, distance: verified[idx].1 })
                    .collect(),
            );
        }

        Ok(neighbors)
    }

    /// Threshold τ for item query `i`. Verified probes are appended to
    /// `verified`.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's phase inputs
    fn pick_threshold(
        &self,
        device: &Device,
        i: usize,
        d: usize,
        query: &[f64],
        lbw: &[f64],
        k: usize,
        verified: &mut Vec<(usize, f64)>,
    ) -> Result<f64, SearchError> {
        let rho = self.params.rho;

        // Continuous reuse (§4.3.3 method 2): the previous step's k-th NN
        // segment is probably still close; its DTW to the *current* query is
        // a tight τ. A non-finite reuse distance — the segment now overlaps
        // a poisoned stretch of history — falls through to cold-start
        // probing instead of wiping the whole candidate set.
        if let Some(prev) = &self.prev_neighbors {
            if let Some(nb) = prev.get(i).and_then(|v| v.last()) {
                let t = nb.start;
                if t + d <= self.series.len() {
                    let dist = verify_candidates(device, &self.series, query, rho, &[t])?;
                    if dist[0].is_finite() {
                        verified.push((t, dist[0]));
                        return Ok(dist[0]);
                    }
                }
            }
        }

        // Initial step: probe by lower-bound rank.
        if lbw.len() <= k {
            return Ok(f64::INFINITY);
        }
        let probes = device.launch(1, |ctx| match self.threshold {
            ThresholdStrategy::PaperKthLb => {
                // `kselect` drops non-finite bounds, so fewer than k may
                // remain; the largest surviving bound is still a usable rank
                // probe, and no probes at all means nothing is rankable.
                let sel = kselect::select_k_smallest(ctx, lbw, k);
                sel.last().map(|&t| vec![t]).unwrap_or_default()
            }
            ThresholdStrategy::ExactKBest => kselect::select_k_smallest(ctx, lbw, k),
        });
        let probes = single_block(probes.results)?;
        let dists = verify_candidates(device, &self.series, query, rho, &probes)?;
        // `f64::max` ignores NaN probe distances; a fully poisoned probe set
        // leaves τ at −∞, which filters every candidate — nothing finite is
        // rankable against segments that only match poisoned history.
        let tau = dists.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        verified.extend(probes.into_iter().zip(dists));
        Ok(tau)
    }
}

/// DTW verification kernel: one block verifies up to 256 candidates with the
/// compressed warping matrix (Appendix E). Shared-memory accounting mirrors
/// the CUDA kernel: the query plus one `2×(2ρ+2)` single-precision matrix
/// per thread.
pub(crate) fn verify_candidates(
    device: &Device,
    series: &[f64],
    query: &[f64],
    rho: usize,
    starts: &[usize],
) -> Result<Vec<f64>, SearchError> {
    const THREADS: usize = 256;
    if starts.is_empty() {
        return Ok(Vec::new());
    }
    let d = query.len();
    let blocks = starts.len().div_ceil(THREADS);
    let report = device.launch(blocks, |ctx| -> Result<Vec<f64>, smiler_gpu::SharedMemOverflow> {
        let lo = ctx.block_id() * THREADS;
        let hi = (lo + THREADS).min(starts.len());
        let lanes = hi - lo;
        // Query in shared (single precision on the real device) plus one
        // compressed matrix per thread.
        let matrix_bytes = 2 * (2 * rho + 2) * 4;
        ctx.alloc_shared(d * 4 + lanes * matrix_bytes)?;
        ctx.read_global(d as u64); // stage the query once per block
        let ops = smiler_dtw::dtw_ops_estimate(d, rho);
        let mut scratch = smiler_dtw::DtwScratch::with_rho(rho);
        let mut out = Vec::with_capacity(lanes);
        for &t in &starts[lo..hi] {
            ctx.read_global(d as u64);
            ctx.flops(ops);
            ctx.access_shared(ops / 2);
            out.push(smiler_dtw::dtw_compressed_with(query, &series[t..t + d], rho, &mut scratch));
        }
        ctx.sync();
        Ok(out)
    });
    let mut all = Vec::with_capacity(starts.len());
    for block in report.results {
        all.extend(block?);
    }
    Ok(all)
}

/// Cascaded verification (one block): each candidate, visited in ascending
/// group-bound order, passes through an O(1) first/last-point bound, the
/// full `LB_Keogh` envelope bound, and finally an early-abandoning DTW —
/// every stage pruning against the *running* k-th-best verified distance τ.
///
/// Exactness: τ is the k-th smallest among distances verified so far, which
/// is always ≥ the k-th smallest over the whole candidate set; a true
/// k-nearest neighbour therefore satisfies `lb ≤ dtw ≤ τ` at whatever point
/// it is visited, survives every stage (the early-abandon keeps `dtw == τ`
/// inclusively), and receives its exact distance.
///
/// Only the `EQ` direction of `LB_EN` (the candidate walked against the
/// *query's* envelope, which is staged in shared memory) is used here. The
/// `EC` direction would fetch the candidate's 2d envelope words from global
/// memory — on a throughput-bound device that traffic rivals the DTW it
/// tries to avoid, and the filter already spent the EC information through
/// `ΣLBEC` in the group-level bound. The candidate itself is the same read
/// the DTW needs, staged into shared memory by stage 2, so a candidate that
/// reaches stage 3 costs no further global reads.
///
/// `seeds` are the already-verified threshold probes; their distances seed
/// the running top-k. Returns the `(start, distance)` pairs that completed
/// verification plus per-stage counts.
#[allow(clippy::too_many_arguments)] // mirrors the cascade's stage inputs
fn cascade_verify(
    device: &Device,
    series: &[f64],
    query: &[f64],
    query_env: &Envelope,
    rho: usize,
    starts: &[usize],
    seeds: &[(usize, f64)],
    k: usize,
) -> Result<(Vec<(usize, f64)>, CascadeCounts), SearchError> {
    if starts.is_empty() {
        return Ok((Vec::new(), CascadeCounts::default()));
    }
    let d = query.len();
    type CascadeBlock = Result<(Vec<(usize, f64)>, CascadeCounts), smiler_gpu::SharedMemOverflow>;
    let report = device.launch(1, |ctx| -> CascadeBlock {
        // Query, its envelope, the staged candidate and one compressed
        // matrix live in shared memory. The cascade is sequential by
        // design: each verdict tightens the threshold for every later
        // candidate.
        let matrix_bytes = 2 * (2 * rho + 2) * 4;
        ctx.alloc_shared(4 * d * 4 + matrix_bytes)?;
        ctx.read_global(3 * d as u64); // stage query + envelope once
        let mut scratch = smiler_dtw::DtwScratch::with_rho(rho);
        // Non-finite seed distances (threshold probes that hit poisoned
        // history) cannot bound anything — drop them so τ stays a real
        // k-th-best and `partition_point`'s sorted invariant holds.
        let mut best: Vec<f64> =
            seeds.iter().map(|&(_, dist)| dist).filter(|dist| dist.is_finite()).collect();
        best.sort_unstable_by(f64::total_cmp);
        best.truncate(k);
        let mut counts = CascadeCounts::default();
        let mut out: Vec<(usize, f64)> = Vec::new();
        for &t in starts {
            let tau = if best.len() >= k { best[k - 1] } else { f64::INFINITY };
            let cand = &series[t..t + d];
            // Stage 1: O(1) first/last-point bound.
            ctx.read_global(2);
            ctx.flops(4);
            if smiler_dtw::lb_kim_fl(query, cand) > tau {
                counts.kim_pruned += 1;
                continue;
            }
            // Stage 2: envelope bound — the candidate against the query's
            // envelope. Fetches (and stages) the candidate, the only
            // per-candidate global traffic past this point.
            ctx.read_global(d as u64);
            ctx.flops(3 * d as u64);
            let lb = smiler_dtw::lb_keogh(cand, &query_env.upper, &query_env.lower);
            if lb > tau {
                counts.keogh_pruned += 1;
                continue;
            }
            // Stage 3: early-abandoning DTW against τ, on the staged
            // candidate.
            let (dist, cells) =
                smiler_dtw::dtw_early_abandon_counted_with(query, cand, rho, tau, &mut scratch);
            ctx.flops(cells * 6);
            ctx.access_shared(cells * 3);
            match dist {
                Some(dist) => {
                    counts.dtw_full += 1;
                    out.push((t, dist));
                    // A NaN distance (poisoned candidate) is reported but
                    // never tightens τ — `kselect` drops it downstream.
                    if dist.is_finite() {
                        let pos = best.partition_point(|&b| b <= dist);
                        if pos < k {
                            best.insert(pos, dist);
                            best.truncate(k);
                        }
                    }
                }
                None => counts.dtw_abandoned += 1,
            }
        }
        ctx.sync();
        Ok((out, counts))
    });
    Ok(single_block(report.results)??)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_series(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                // Periodic base + noise: realistic enough for recall tests.
                (i as f64 * 0.13).sin() * 2.0 + (state % 100) as f64 / 100.0
            })
            .collect()
    }

    fn small_params() -> IndexParams {
        IndexParams { rho: 3, omega: 4, lengths: vec![8, 12, 16], k_max: 5 }
    }

    /// Brute-force reference kNN.
    fn brute_force(
        series: &[f64],
        d: usize,
        rho: usize,
        k: usize,
        max_end: usize,
    ) -> Vec<Neighbor> {
        let query = &series[series.len() - d..];
        let mut all: Vec<Neighbor> = (0..=max_end.saturating_sub(d))
            .map(|t| Neighbor {
                start: t,
                distance: smiler_dtw::dtw_banded(query, &series[t..t + d], rho),
            })
            .collect();
        all.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.start.cmp(&b.start)));
        all.truncate(k);
        all
    }

    #[test]
    fn exact_strategy_matches_brute_force() {
        let device = Device::default_gpu();
        let series = make_series(300, 1);
        let params = small_params();
        let mut index = SmilerIndex::build(&device, series.clone(), params.clone());
        let max_end = series.len() - 5;
        let out = index.search(&device, max_end);
        for (i, &d) in params.lengths.iter().enumerate() {
            let expect = brute_force(&series, d, params.rho, params.k_max, max_end);
            let got = &out.neighbors[i];
            assert_eq!(got.len(), expect.len(), "item {i}");
            for (g, e) in got.iter().zip(&expect) {
                assert!(
                    (g.distance - e.distance).abs() < 1e-9,
                    "item {i}: got {:?} expected {:?}",
                    g,
                    e
                );
            }
        }
    }

    #[test]
    fn paper_threshold_has_high_recall() {
        let device = Device::default_gpu();
        let series = make_series(400, 2);
        let params = small_params();
        let mut index = SmilerIndex::build(&device, series.clone(), params.clone())
            .with_threshold(ThresholdStrategy::PaperKthLb);
        let max_end = series.len() - 4;
        let out = index.search(&device, max_end);
        for (i, &d) in params.lengths.iter().enumerate() {
            let expect = brute_force(&series, d, params.rho, params.k_max, max_end);
            let expect_dists: Vec<f64> = expect.iter().map(|n| n.distance).collect();
            let hit = out.neighbors[i]
                .iter()
                .filter(|n| expect_dists.iter().any(|&e| (e - n.distance).abs() < 1e-9))
                .count();
            assert!(
                hit * 10 >= expect.len() * 8,
                "item {i}: recall {hit}/{} too low",
                expect.len()
            );
        }
    }

    #[test]
    fn continuous_search_tracks_brute_force() {
        let device = Device::default_gpu();
        let mut series = make_series(260, 3);
        let params = small_params();
        let mut index = SmilerIndex::build(&device, series.clone(), params.clone());
        let max_end = series.len() - 4;
        index.search(&device, max_end);

        let future = make_series(10, 77);
        for &v in &future {
            series.push(v);
            index.advance(&device, v);
            let max_end = series.len() - 4;
            let out = index.search(&device, max_end);
            // Continuous-reuse thresholds are approximate; demand ≥ 80%
            // recall of the true kNN distances at every step.
            for (i, &d) in params.lengths.iter().enumerate() {
                let expect = brute_force(&series, d, params.rho, params.k_max, max_end);
                let hit = out.neighbors[i]
                    .iter()
                    .filter(|n| expect.iter().any(|e| (e.distance - n.distance).abs() < 1e-9))
                    .count();
                assert!(
                    hit * 10 >= expect.len() * 8,
                    "step recall {hit}/{} item {i}",
                    expect.len()
                );
            }
        }
    }

    #[test]
    fn filtering_reduces_verification() {
        let device = Device::default_gpu();
        let series = make_series(600, 4);
        let params = IndexParams { rho: 3, omega: 4, lengths: vec![16], k_max: 5 };
        let mut index = SmilerIndex::build(&device, series, params);
        let out = index.search(&device, 590);
        assert!(
            out.stats.unfiltered[0] < out.stats.candidates[0] / 2,
            "filter too weak: {} of {}",
            out.stats.unfiltered[0],
            out.stats.candidates[0]
        );
    }

    #[test]
    fn en_filters_at_least_as_well_as_each_direction() {
        let device = Device::default_gpu();
        let series = make_series(500, 5);
        let params = IndexParams { rho: 3, omega: 4, lengths: vec![16], k_max: 5 };
        let mut counts = Vec::new();
        for mode in [BoundMode::Eq, BoundMode::Ec, BoundMode::En] {
            let mut index =
                SmilerIndex::build(&device, series.clone(), params.clone()).with_bound_mode(mode);
            let out = index.search(&device, 490);
            counts.push(out.stats.unfiltered[0]);
        }
        // LBen dominates both directions, so it never verifies more
        // candidates (up to the k threshold probes).
        assert!(counts[2] <= counts[0] + params.k_max);
        assert!(counts[2] <= counts[1] + params.k_max);
    }

    #[test]
    fn cascade_matches_batch_verification() {
        let device = Device::default_gpu();
        for strategy in [ThresholdStrategy::ExactKBest, ThresholdStrategy::PaperKthLb] {
            let mut series = make_series(320, 9);
            let params = small_params();
            let mut batch = SmilerIndex::build(&device, series.clone(), params.clone())
                .with_threshold(strategy)
                .with_verify_mode(VerifyMode::Batch);
            let mut cascade = SmilerIndex::build(&device, series.clone(), params.clone())
                .with_threshold(strategy);
            assert_eq!(cascade.verify_mode(), VerifyMode::Cascade);

            let compare = |b: &SearchOutput, c: &SearchOutput, step: usize| {
                assert_eq!(b.stats.candidates, c.stats.candidates, "step {step}");
                assert_eq!(b.stats.unfiltered, c.stats.unfiltered, "step {step}");
                for (i, (bn, cn)) in b.neighbors.iter().zip(c.neighbors.iter()).enumerate() {
                    assert_eq!(bn.len(), cn.len(), "step {step} item {i}");
                    for (x, y) in bn.iter().zip(cn) {
                        assert_eq!(x.start, y.start, "step {step} item {i}");
                        assert!(
                            (x.distance - y.distance).abs() < 1e-9,
                            "step {step} item {i}: {x:?} vs {y:?}"
                        );
                    }
                }
            };
            let max_end = series.len() - 4;
            compare(&batch.search(&device, max_end), &cascade.search(&device, max_end), 0);
            // Continuous steps keep the two modes' reuse states in lockstep.
            for (step, &v) in make_series(8, 21).iter().enumerate() {
                series.push(v);
                batch.advance(&device, v);
                cascade.advance(&device, v);
                let max_end = series.len() - 4;
                compare(
                    &batch.search(&device, max_end),
                    &cascade.search(&device, max_end),
                    step + 1,
                );
            }
        }
    }

    #[test]
    fn cascade_verifies_cheaper_than_batch() {
        let device = Device::default_gpu();
        let series = make_series(600, 4);
        let params = IndexParams { rho: 3, omega: 4, lengths: vec![16], k_max: 5 };
        let mut batch = SmilerIndex::build(&device, series.clone(), params.clone())
            .with_verify_mode(VerifyMode::Batch);
        let mut cascade = SmilerIndex::build(&device, series, params);
        let batch_out = batch.search(&device, 590);
        let cascade_out = cascade.search(&device, 590);
        assert!(
            cascade_out.stats.verify_sim_seconds < batch_out.stats.verify_sim_seconds,
            "cascade {} s not cheaper than batch {} s",
            cascade_out.stats.verify_sim_seconds,
            batch_out.stats.verify_sim_seconds
        );
    }

    #[test]
    fn neighbors_exclude_late_candidates() {
        let device = Device::default_gpu();
        let series = make_series(300, 6);
        let params = small_params();
        let mut index = SmilerIndex::build(&device, series.clone(), params.clone());
        let h = 7;
        let max_end = series.len() - h;
        let out = index.search(&device, max_end);
        for (i, &d) in params.lengths.iter().enumerate() {
            for nb in &out.neighbors[i] {
                assert!(nb.start + d <= max_end, "item {i} neighbour past max_end");
            }
        }
    }

    #[test]
    fn nan_in_history_degrades_instead_of_panicking() {
        let device = Device::default_gpu();
        let mut series = make_series(300, 11);
        // Poison a stretch well before the query suffix.
        series[40] = f64::NAN;
        series[41] = f64::NAN;
        let params = small_params();
        let max_end = series.len() - 5;
        let mut index = SmilerIndex::build(&device, series.clone(), params.clone());
        let out = index.search(&device, max_end);
        // Clean candidates are still ranked exactly; poisoned ones (any
        // segment overlapping the NaNs) are dropped, never returned.
        for (i, &d) in params.lengths.iter().enumerate() {
            assert!(!out.neighbors[i].is_empty(), "item {i} lost all neighbours");
            for nb in &out.neighbors[i] {
                assert!(nb.distance.is_finite(), "item {i} returned a NaN distance");
                assert!(
                    nb.start >= 42 || nb.start + d <= 40,
                    "item {i} returned a poisoned segment at {}",
                    nb.start
                );
            }
        }
        // Continuous steps keep absorbing values without panicking even
        // though the reuse state may reference poisoned segments.
        for &v in &make_series(5, 13) {
            index.advance(&device, v);
            let out = index.search(&device, index.series().len() - 5);
            assert_eq!(out.neighbors.len(), params.lengths.len());
        }
    }

    #[test]
    fn nan_in_query_suffix_is_a_typed_error() {
        let device = Device::default_gpu();
        let series = make_series(300, 12);
        let params = small_params();
        let mut index = SmilerIndex::build(&device, series.clone(), params.clone());
        // Poison the shortest item query (the last 8 values).
        index.advance(&device, f64::NAN);
        let err = index.try_search(&device, index.series().len() - 5);
        match err {
            Err(SearchError::NonFiniteQuery { length }) => {
                assert_eq!(length, params.lengths[0]);
            }
            other => panic!("expected NonFiniteQuery, got {other:?}"),
        }
    }

    #[test]
    fn max_end_beyond_history_is_a_typed_error() {
        let device = Device::default_gpu();
        let series = make_series(120, 14);
        let mut index = SmilerIndex::build(&device, series, small_params());
        let err = index.try_search(&device, 121);
        assert!(matches!(err, Err(SearchError::MaxEndBeyondHistory { max_end: 121, len: 120 })));
    }

    #[test]
    fn device_bytes_grows_with_history() {
        let device = Device::default_gpu();
        let a = SmilerIndex::build(&device, make_series(200, 7), small_params());
        let b = SmilerIndex::build(&device, make_series(400, 7), small_params());
        assert!(b.device_bytes() > a.device_bytes());
    }
}
