//! Catenated Sliding Window Group (CSG) alignment arithmetic.
//!
//! Conventions (paper §4.3, Fig. 5):
//!
//! * The master query `MQ` has length `D`; *sliding windows* of length `ω`
//!   exist at every offset and are indexed **from the right**: `SW_b` covers
//!   query positions `[D−b−ω, D−b−1]`, i.e. `b` points lie strictly to its
//!   right. There are `D−ω+1` sliding windows.
//! * The history `C` is cut into *disjoint windows*: `DW_r` covers series
//!   positions `[rω, (r+1)ω−1]`.
//! * `CSG_b = {SW_b, SW_{b+ω}, SW_{b+2ω}, …}` for `b ∈ [0, ω)`; the CSG of
//!   an item query of length `d` is the prefix with `m = ⌊(d−b)/ω⌋`
//!   windows.
//! * Aligning `CSG_{i,b}` right-to-left against `{DW_r, DW_{r−1}, …}`
//!   denotes the candidate segment starting at
//!   `t = (r−m+1)·ω − (d−b) mod ω` (Lemma 4.1); every candidate has
//!   exactly one such alignment (Theorem 4.2) given by
//!   `e = t+d, b = e mod ω, r = e/ω − 1`.

/// One CSG↔disjoint-window alignment, denoting a unique candidate segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alignment {
    /// CSG class: identifier `b` of the group's first (rightmost) sliding
    /// window; equals the number of query points right of `SW_b`.
    pub b: usize,
    /// Identifier of the rightmost aligned disjoint window.
    pub r: usize,
    /// Number of sliding windows in the item query's CSG
    /// (`m = ⌊(d−b)/ω⌋`).
    pub m: usize,
}

/// Number of sliding windows of a master query of length `d_master`.
///
/// # Panics
/// Panics if `omega == 0` or the query is shorter than one window.
pub fn sliding_window_count(d_master: usize, omega: usize) -> usize {
    assert!(omega > 0, "window length must be positive");
    assert!(d_master >= omega, "master query shorter than one window");
    d_master - omega + 1
}

/// Query start position of sliding window `SW_b` in a master query of
/// length `d_master` (windows are indexed from the right).
pub fn sliding_window_start(d_master: usize, b: usize, omega: usize) -> usize {
    d_master - b - omega
}

/// Number of complete disjoint windows of a series of length `n`.
pub fn disjoint_window_count(n: usize, omega: usize) -> usize {
    n / omega
}

/// Size of the CSG of an item query of length `d` in class `b`
/// (`m = ⌊(d−b)/ω⌋`, zero when the query is too short for class `b`).
pub fn csg_len(d: usize, b: usize, omega: usize) -> usize {
    if d <= b {
        0
    } else {
        (d - b) / omega
    }
}

/// Lemma 4.1: the start `t` of the candidate segment denoted by aligning the
/// CSG of an item query of length `d` (class `b`, `m = csg_len(d, b, ω)`)
/// with rightmost disjoint window `DW_r`. `None` when the alignment falls
/// off the front of the series (no such candidate).
pub fn candidate_start(d: usize, b: usize, r: usize, omega: usize) -> Option<usize> {
    let m = csg_len(d, b, omega);
    if m == 0 || m > r + 1 {
        return None;
    }
    let right = (r + 1 - m) * omega;
    let overhang = (d - b) % omega;
    right.checked_sub(overhang)
}

/// Theorem 4.2 (inverse direction): the unique alignment denoting candidate
/// `C_{t,d}`. `None` when the segment's CSG is empty (`d − b < ω`) —
/// such candidates carry no windowed bound.
pub fn alignment_of(t: usize, d: usize, omega: usize) -> Option<Alignment> {
    let e = t + d; // one past the segment's last position
    if e < omega {
        return None;
    }
    let b = e % omega;
    let r = e / omega - 1;
    let m = csg_len(d, b, omega);
    if m == 0 || m > r + 1 {
        return None;
    }
    Some(Alignment { b, r, m })
}

/// Segment end `e = t + d` shared by all item queries aligned at `(b, r)` —
/// the suffix property that lets one CSG scan serve every item query
/// (Example 4.2).
pub fn alignment_end(b: usize, r: usize, omega: usize) -> usize {
    (r + 1) * omega + b
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_4_1() {
        // MQ of length 9, ω = 3: CSG_0 = {SW0, SW3, SW6}, CSG_1 = {SW1, SW4},
        // CSG_2 = {SW2, SW5}; sliding windows SW0..SW6.
        assert_eq!(sliding_window_count(9, 3), 7);
        assert_eq!(csg_len(9, 0, 3), 3);
        assert_eq!(csg_len(9, 1, 3), 2);
        assert_eq!(csg_len(9, 2, 3), 2);
        // Item query IQ0 of length 6: CSG_{0,0} = {SW0, SW3} etc.
        assert_eq!(csg_len(6, 0, 3), 2);
        assert_eq!(csg_len(6, 1, 3), 1);
        assert_eq!(csg_len(6, 2, 3), 1);
    }

    #[test]
    fn paper_example_4_2_alignment() {
        // Fig 4/5: IQ0 (d=6) aligned with {DW3, DW2} → segment C_{6,6};
        // IQ1 (d=9) aligned with {DW3, DW2, DW1} → C_{3,9}.
        assert_eq!(candidate_start(6, 0, 3, 3), Some(6));
        assert_eq!(candidate_start(9, 0, 3, 3), Some(3));
        // Inverse direction.
        assert_eq!(alignment_of(6, 6, 3), Some(Alignment { b: 0, r: 3, m: 2 }));
        assert_eq!(alignment_of(3, 9, 3), Some(Alignment { b: 0, r: 3, m: 3 }));
        // Both share end e = 12.
        assert_eq!(alignment_end(0, 3, 3), 12);
    }

    #[test]
    fn sliding_window_positions() {
        // D = 9, ω = 3: SW0 covers [6,8], SW6 covers [0,2].
        assert_eq!(sliding_window_start(9, 0, 3), 6);
        assert_eq!(sliding_window_start(9, 6, 3), 0);
    }

    #[test]
    fn too_short_item_query_has_no_alignment() {
        // d − b < ω → empty CSG.
        assert_eq!(csg_len(5, 3, 3), 0);
        assert_eq!(alignment_of(10, 2, 3), None);
        assert_eq!(candidate_start(5, 3, 0, 3), None);
    }

    #[test]
    fn alignment_off_front_of_series() {
        // d = 9, b = 0, ω = 3 needs m = 3 windows; r = 1 has only 2.
        assert_eq!(candidate_start(9, 0, 1, 3), None);
        // t would be negative: segment of length 7 ending at e = 6 (t < 0).
        assert_eq!(candidate_start(7, 0, 1, 3), None);
    }

    proptest! {
        /// Theorem 4.2: forward (Lemma 4.1) and inverse maps are mutually
        /// inverse bijections wherever both are defined.
        #[test]
        fn alignment_bijection(
            t in 0usize..500,
            d in 1usize..200,
            omega in 1usize..32,
        ) {
            if let Some(a) = alignment_of(t, d, omega) {
                prop_assert_eq!(csg_len(d, a.b, omega), a.m);
                prop_assert_eq!(candidate_start(d, a.b, a.r, omega), Some(t));
                prop_assert_eq!(alignment_end(a.b, a.r, omega), t + d);
            }
        }

        /// Forward then inverse round-trips.
        #[test]
        fn forward_then_inverse(
            d in 1usize..200,
            b in 0usize..32,
            r in 0usize..64,
            omega in 1usize..32,
        ) {
            prop_assume!(b < omega);
            if let Some(t) = candidate_start(d, b, r, omega) {
                let m = csg_len(d, b, omega);
                prop_assert_eq!(alignment_of(t, d, omega), Some(Alignment { b, r, m }));
            }
        }

        /// Distinct candidates of the same item query map to distinct
        /// alignments (injectivity).
        #[test]
        fn distinct_candidates_distinct_alignments(
            t1 in 0usize..300,
            t2 in 0usize..300,
            d in 1usize..100,
            omega in 1usize..16,
        ) {
            prop_assume!(t1 != t2);
            let a1 = alignment_of(t1, d, omega);
            let a2 = alignment_of(t2, d, omega);
            if let (Some(a1), Some(a2)) = (a1, a2) {
                prop_assert_ne!((a1.b, a1.r), (a2.b, a2.r));
            }
        }

        /// Every sufficiently long candidate fully inside the disjoint-window
        /// region has an alignment — the coverage guarantee behind
        /// "we can get the lower bounds between IQ and every candidate".
        #[test]
        fn coverage_of_long_candidates(
            t in 0usize..300,
            extra in 0usize..100,
            omega in 1usize..16,
        ) {
            // d ≥ 2ω − 1 guarantees m ≥ 1 for every class b ≤ ω−1.
            let d = 2 * omega - 1 + extra;
            let a = alignment_of(t, d, omega);
            prop_assert!(a.is_some());
        }
    }
}
