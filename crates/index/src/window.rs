//! Window-level index: posting lists of `LBEQ`/`LBEC` between every sliding
//! window of the master query and every disjoint window of the history.
//!
//! Construction launches one GPU block per sliding window (paper §4.3.1).
//! During continuous prediction the index is *rotated*, not rebuilt
//! (Remark 1, Fig. 6): the new step's master query shares all but one
//! window with the previous one, so the oldest posting list is dropped, a
//! fresh list is computed for the newest window, and `LBEQ` is refreshed
//! for the `ρ` lists whose query envelope gained the new point. Appending
//! history is also incremental: a new disjoint window extends every posting
//! list by one entry, and `LBEC` entries near the series tail are refreshed
//! when the series envelope shifts.

use crate::csg;
use smiler_gpu::Device;
use smiler_timeseries::Envelope;
use std::collections::VecDeque;

/// Posting list of one sliding window: lower-bound contributions against
/// every disjoint window of the history.
#[derive(Debug, Clone, PartialEq)]
pub struct PostingList {
    /// `LBEQ(SW, DW_r)` — distance of the history points in `DW_r` to the
    /// master query's envelope over the window.
    pub lbeq: Vec<f64>,
    /// `LBEC(SW, DW_r)` — distance of the query points in `SW` to the
    /// history envelope over `DW_r`.
    pub lbec: Vec<f64>,
}

/// The window-level index of one sensor.
#[derive(Debug, Clone)]
pub struct WindowIndex {
    omega: usize,
    rho: usize,
    /// Length `D` of the master query.
    d_master: usize,
    /// Number of complete disjoint windows currently indexed.
    dw_count: usize,
    /// Posting lists; `lists[b]` belongs to sliding window `SW_b`
    /// (front = `SW_0`, the newest). A `VecDeque` realises the ring-buffer
    /// rotation of Fig. 6.
    lists: VecDeque<PostingList>,
}

/// One sliding window's contribution computed against all disjoint windows.
fn build_posting_list(
    series: &[f64],
    series_env: &Envelope,
    query: &[f64],
    query_env: &Envelope,
    b: usize,
    omega: usize,
    dw_count: usize,
) -> PostingList {
    let d_master = query.len();
    let sw_start = csg::sliding_window_start(d_master, b, omega);
    let mut lbeq = Vec::with_capacity(dw_count);
    let mut lbec = Vec::with_capacity(dw_count);
    for r in 0..dw_count {
        let dw_start = r * omega;
        lbeq.push(smiler_dtw::lb_keogh(
            &series[dw_start..dw_start + omega],
            &query_env.upper[sw_start..sw_start + omega],
            &query_env.lower[sw_start..sw_start + omega],
        ));
        lbec.push(smiler_dtw::lb_keogh(
            &query[sw_start..sw_start + omega],
            &series_env.upper[dw_start..dw_start + omega],
            &series_env.lower[dw_start..dw_start + omega],
        ));
    }
    PostingList { lbeq, lbec }
}

/// Simulated cost of computing one posting-list entry pair: 2ω envelope
/// comparisons plus the window reads.
fn posting_entry_cost(ctx: &mut smiler_gpu::BlockCtx, omega: usize, entries: usize) {
    ctx.read_global((2 * omega * entries) as u64);
    ctx.flops((6 * omega * entries) as u64);
    ctx.write_global(2 * entries as u64);
}

impl WindowIndex {
    /// Build the index from scratch: one block per sliding window.
    ///
    /// `series` is the full normalised history; `query` the current master
    /// query (its last `D` points); both envelopes use warping width `ρ`.
    ///
    /// # Panics
    /// Panics if the query is shorter than one window or envelopes are
    /// inconsistent with their series.
    pub fn build(
        device: &Device,
        series: &[f64],
        series_env: &Envelope,
        query: &[f64],
        query_env: &Envelope,
        omega: usize,
        rho: usize,
    ) -> Self {
        assert_eq!(series.len(), series_env.len(), "series envelope mismatch");
        assert_eq!(query.len(), query_env.len(), "query envelope mismatch");
        let d_master = query.len();
        let sw_count = csg::sliding_window_count(d_master, omega);
        let dw_count = csg::disjoint_window_count(series.len(), omega);

        let report = device.launch(sw_count, |ctx| {
            let b = ctx.block_id();
            posting_entry_cost(ctx, omega, dw_count);
            build_posting_list(series, series_env, query, query_env, b, omega, dw_count)
        });
        WindowIndex { omega, rho, d_master, dw_count, lists: report.results.into() }
    }

    /// Window length ω.
    pub fn omega(&self) -> usize {
        self.omega
    }

    /// Master-query length `D`.
    pub fn d_master(&self) -> usize {
        self.d_master
    }

    /// Number of complete disjoint windows indexed.
    pub fn dw_count(&self) -> usize {
        self.dw_count
    }

    /// Number of sliding windows (posting lists).
    pub fn sw_count(&self) -> usize {
        self.lists.len()
    }

    /// The posting list of sliding window `SW_b`.
    pub fn posting(&self, b: usize) -> &PostingList {
        &self.lists[b]
    }

    /// Device memory the index occupies (for the Fig 12c capacity model):
    /// two f64 posting entries per (sliding window × disjoint window).
    pub fn device_bytes(&self) -> usize {
        self.lists.len() * self.dw_count * 2 * std::mem::size_of::<f64>()
    }

    /// Advance one continuous-prediction step (Remark 1, Fig. 6).
    ///
    /// `series`/`series_env` must already include the newly observed point
    /// and `query`/`query_env` must be the new master query (shifted by
    /// one). The rotation: drop the oldest posting list, compute the new
    /// `SW_0`, refresh `LBEQ` of the ρ envelope-affected lists, and — when
    /// a new disjoint window completed — append its column and refresh
    /// `LBEC` near the series tail.
    pub fn advance(
        &mut self,
        device: &Device,
        series: &[f64],
        series_env: &Envelope,
        query: &[f64],
        query_env: &Envelope,
    ) {
        assert_eq!(query.len(), self.d_master, "master query length must stay fixed");
        assert_eq!(series.len(), series_env.len(), "series envelope mismatch");
        let omega = self.omega;
        let rho = self.rho;
        let old_dw = self.dw_count;
        let new_dw = csg::disjoint_window_count(series.len(), omega);

        // 1. Rotate (Fig. 6): the previous step's SW_b becomes this step's
        //    SW_{b+1} — its window covers the same absolute observations, so
        //    its posting list stays valid. The oldest list is evicted and
        //    its memory recycled for the fresh SW_0, which is computed in a
        //    one-block launch.
        let mut recycled = self.lists.pop_back().expect("index has at least one list");
        let fresh = device
            .launch(1, |ctx| {
                posting_entry_cost(ctx, omega, new_dw);
                build_posting_list(series, series_env, query, query_env, 0, omega, new_dw)
            })
            .results
            .pop()
            .expect("one block launched");
        recycled.lbeq.clear();
        recycled.lbec.clear();
        recycled.lbeq.extend_from_slice(&fresh.lbeq);
        recycled.lbec.extend_from_slice(&fresh.lbec);
        self.lists.push_front(recycled);
        let sw_count = self.lists.len();

        // 2. History growth: when a new disjoint window completed, append
        //    its column (both bounds) to every pre-existing list.
        if new_dw > old_dw {
            let remaining: Vec<usize> = (1..sw_count).collect();
            let d_master = self.d_master;
            let report = device.launch(remaining.len(), |ctx| {
                let b = remaining[ctx.block_id()];
                posting_entry_cost(ctx, omega, new_dw - old_dw);
                let sw_start = csg::sliding_window_start(d_master, b, omega);
                (old_dw..new_dw)
                    .map(|r| {
                        let dw_start = r * omega;
                        let eq = smiler_dtw::lb_keogh(
                            &series[dw_start..dw_start + omega],
                            &query_env.upper[sw_start..sw_start + omega],
                            &query_env.lower[sw_start..sw_start + omega],
                        );
                        let ec = smiler_dtw::lb_keogh(
                            &query[sw_start..sw_start + omega],
                            &series_env.upper[dw_start..dw_start + omega],
                            &series_env.lower[dw_start..dw_start + omega],
                        );
                        (eq, ec)
                    })
                    .collect::<Vec<(f64, f64)>>()
            });
            for (&b, cols) in remaining.iter().zip(report.results) {
                for (eq, ec) in cols {
                    self.lists[b].lbeq.push(eq);
                    self.lists[b].lbec.push(ec);
                }
            }
        }

        // 3. Query-envelope refresh (Remark 1: "re-calculate LBEQ for these
        //    affected sliding windows"). Appending the newest point changes
        //    the query envelope at the last ρ query positions — lists
        //    b ≤ ρ. Dropping the *oldest* point moves the clamped left
        //    boundary, changing the envelope of the first ρ positions too —
        //    lists b ≥ sw_count − ρ — a case the paper glosses over but a
        //    from-scratch rebuild exposes. Only LBEQ depends on the query
        //    envelope; LBEC rows stay valid.
        let refresh: Vec<usize> =
            (1..sw_count).filter(|&b| b <= rho || b + rho >= sw_count).collect();
        if !refresh.is_empty() {
            let d_master = self.d_master;
            let report = device.launch(refresh.len(), |ctx| {
                let b = refresh[ctx.block_id()];
                ctx.read_global((omega * new_dw) as u64);
                ctx.flops((3 * omega * new_dw) as u64);
                ctx.write_global(new_dw as u64);
                let sw_start = csg::sliding_window_start(d_master, b, omega);
                (0..new_dw)
                    .map(|r| {
                        let dw_start = r * omega;
                        smiler_dtw::lb_keogh(
                            &series[dw_start..dw_start + omega],
                            &query_env.upper[sw_start..sw_start + omega],
                            &query_env.lower[sw_start..sw_start + omega],
                        )
                    })
                    .collect::<Vec<f64>>()
            });
            for (&b, row) in refresh.iter().zip(report.results) {
                self.lists[b].lbeq = row;
            }
        }

        // 4. Series-envelope drift: the appended observation changes the
        //    series envelope at the last ρ positions, which invalidates the
        //    LBEC entries of the disjoint windows containing them. Refresh
        //    those columns for every pre-existing list.
        let tail_from = series.len().saturating_sub(1 + rho) / omega;
        if tail_from < new_dw {
            let cols: Vec<usize> = (tail_from..new_dw).collect();
            let targets: Vec<usize> = (1..sw_count).collect();
            let d_master = self.d_master;
            let report = device.launch(targets.len(), |ctx| {
                let b = targets[ctx.block_id()];
                posting_entry_cost(ctx, omega, cols.len());
                let sw_start = csg::sliding_window_start(d_master, b, omega);
                cols.iter()
                    .map(|&r| {
                        let dw_start = r * omega;
                        smiler_dtw::lb_keogh(
                            &query[sw_start..sw_start + omega],
                            &series_env.upper[dw_start..dw_start + omega],
                            &series_env.lower[dw_start..dw_start + omega],
                        )
                    })
                    .collect::<Vec<f64>>()
            });
            for (&b, vals) in targets.iter().zip(report.results) {
                for (&r, v) in cols.iter().zip(vals) {
                    self.lists[b].lbec[r] = v;
                }
            }
        }

        self.dw_count = new_dw;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smiler_gpu::Device;

    const OMEGA: usize = 4;
    const RHO: usize = 2;
    const D: usize = 12;

    fn make_series(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 100.0 - 5.0
            })
            .collect()
    }

    fn build_index(series: &[f64], device: &Device) -> (WindowIndex, Envelope, Envelope) {
        let series_env = Envelope::compute(series, RHO);
        let query = series[series.len() - D..].to_vec();
        let query_env = Envelope::compute(&query, RHO);
        let idx = WindowIndex::build(device, series, &series_env, &query, &query_env, OMEGA, RHO);
        (idx, series_env, query_env)
    }

    #[test]
    fn build_shapes() {
        let device = Device::default_gpu();
        let series = make_series(40, 1);
        let (idx, _, _) = build_index(&series, &device);
        assert_eq!(idx.sw_count(), D - OMEGA + 1);
        assert_eq!(idx.dw_count(), 10);
        assert_eq!(idx.posting(0).lbeq.len(), 10);
        assert!(idx.device_bytes() > 0);
    }

    #[test]
    fn posting_entries_match_direct_lb_keogh() {
        let device = Device::default_gpu();
        let series = make_series(32, 2);
        let (idx, series_env, query_env) = build_index(&series, &device);
        let query = &series[series.len() - D..];
        // Check SW_1 vs DW_2 by hand.
        let b = 1;
        let r = 2;
        let sw_start = csg::sliding_window_start(D, b, OMEGA);
        let dw_start = r * OMEGA;
        let expect_eq = smiler_dtw::lb_keogh(
            &series[dw_start..dw_start + OMEGA],
            &query_env.upper[sw_start..sw_start + OMEGA],
            &query_env.lower[sw_start..sw_start + OMEGA],
        );
        let expect_ec = smiler_dtw::lb_keogh(
            &query[sw_start..sw_start + OMEGA],
            &series_env.upper[dw_start..dw_start + OMEGA],
            &series_env.lower[dw_start..dw_start + OMEGA],
        );
        assert_eq!(idx.posting(b).lbeq[r], expect_eq);
        assert_eq!(idx.posting(b).lbec[r], expect_ec);
    }

    #[test]
    fn advance_equals_rebuild() {
        let device = Device::default_gpu();
        let mut series = make_series(40, 3);
        let (mut idx, _, _) = build_index(&series, &device);

        // Drive 9 continuous steps — crossing a disjoint-window boundary —
        // and compare against a from-scratch rebuild each time.
        let future = make_series(9, 99);
        for (step, &v) in future.iter().enumerate() {
            series.push(v);
            let series_env = Envelope::compute(&series, RHO);
            let query = series[series.len() - D..].to_vec();
            let query_env = Envelope::compute(&query, RHO);
            idx.advance(&device, &series, &series_env, &query, &query_env);

            let rebuilt =
                WindowIndex::build(&device, &series, &series_env, &query, &query_env, OMEGA, RHO);
            assert_eq!(idx.dw_count(), rebuilt.dw_count(), "step {step}");
            for b in 0..idx.sw_count() {
                for r in 0..idx.dw_count() {
                    let (a, e) = (idx.posting(b).lbeq[r], rebuilt.posting(b).lbeq[r]);
                    assert!((a - e).abs() < 1e-9, "step {step} LBEQ b={b} r={r}: {a} vs {e}");
                    let (a, e) = (idx.posting(b).lbec[r], rebuilt.posting(b).lbec[r]);
                    assert!((a - e).abs() < 1e-9, "step {step} LBEC b={b} r={r}: {a} vs {e}");
                }
            }
        }
    }

    #[test]
    fn advance_is_cheaper_than_rebuild() {
        // Paper-scale proportions: with D ≫ ω the rotation touches only
        // 1 + 2ρ of the D − ω + 1 posting lists.
        const BIG_D: usize = 96;
        const BIG_OMEGA: usize = 16;
        const BIG_RHO: usize = 8;
        let dev_adv = Device::default_gpu().with_host_threads(1);
        let dev_build = Device::default_gpu().with_host_threads(1);
        let mut series = make_series(4000, 5);
        let series_env = Envelope::compute(&series, BIG_RHO);
        let query = series[series.len() - BIG_D..].to_vec();
        let query_env = Envelope::compute(&query, BIG_RHO);
        let mut idx = WindowIndex::build(
            &dev_adv,
            &series,
            &series_env,
            &query,
            &query_env,
            BIG_OMEGA,
            BIG_RHO,
        );
        dev_adv.reset_clock();

        series.push(0.5);
        let series_env = Envelope::compute(&series, BIG_RHO);
        let query = series[series.len() - BIG_D..].to_vec();
        let query_env = Envelope::compute(&query, BIG_RHO);
        idx.advance(&dev_adv, &series, &series_env, &query, &query_env);
        let adv_cost = dev_adv.elapsed_seconds();

        WindowIndex::build(
            &dev_build,
            &series,
            &series_env,
            &query,
            &query_env,
            BIG_OMEGA,
            BIG_RHO,
        );
        let build_cost = dev_build.elapsed_seconds();
        assert!(
            adv_cost < build_cost,
            "advance ({adv_cost}) should be cheaper than rebuild ({build_cost})"
        );
    }
}
