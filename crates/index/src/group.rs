//! Group-level index: shift-summing window posting lists into per-candidate
//! lower bounds for every item query (paper §4.3.2, Algorithm 1).
//!
//! One GPU block processes one CSG class `b ∈ [0, ω)`. For each rightmost
//! disjoint window `DW_r` the block walks the group's sliding windows
//! `SW_b, SW_{b+ω}, …` right-to-left, keeping running sums of `LBEQ` and
//! `LBEC` contributions. After `m` terms the sums are exactly the windowed
//! bounds of the item query whose CSG has `m` windows (Theorem 4.3), for
//! the candidate segment ending at `e = (r+1)ω + b` — so *one pass* yields
//! the bounds of **every** item query against **every** candidate
//! (Remark 2: the suffix-sharing reuse).

use crate::csg;
use crate::search::BoundMode;
use crate::window::WindowIndex;
use smiler_gpu::Device;

/// Windowed lower bounds for all item queries: `eq[i][t]` / `ec[i][t]` hold
/// the summed `LBEQ` / `LBEC` contributions between item query `i` and the
/// candidate starting at `t`. Candidates without a full alignment keep 0.0
/// (a vacuous but valid lower bound).
#[derive(Debug, Clone)]
pub struct GroupBounds {
    /// Item-query lengths this structure was computed for (ascending).
    pub lengths: Vec<usize>,
    /// Summed `LBEQ` per item query per candidate start.
    pub eq: Vec<Vec<f64>>,
    /// Summed `LBEC` per item query per candidate start.
    pub ec: Vec<Vec<f64>>,
}

impl GroupBounds {
    /// `LBw = max(ΣLBEQ, ΣLBEC)` (Theorem 4.3) for item query `i`,
    /// candidate start `t`.
    pub fn lbw(&self, i: usize, t: usize) -> f64 {
        self.eq[i][t].max(self.ec[i][t])
    }

    /// The per-candidate filter bounds of item query `i` under the chosen
    /// [`BoundMode`] (Table 3 ablation): `Eq`/`Ec` alone or the enhanced
    /// `max` of both.
    pub fn mode_bounds(&self, i: usize, mode: BoundMode) -> Vec<f64> {
        let mut out = Vec::new();
        self.mode_bounds_into(i, mode, &mut out);
        out
    }

    /// [`GroupBounds::mode_bounds`] into a caller-owned buffer, so the
    /// continuous search loop resolves its filter bounds without
    /// allocating.
    pub fn mode_bounds_into(&self, i: usize, mode: BoundMode, out: &mut Vec<f64>) {
        out.clear();
        match mode {
            BoundMode::Eq => out.extend_from_slice(&self.eq[i]),
            BoundMode::Ec => out.extend_from_slice(&self.ec[i]),
            BoundMode::En => {
                out.extend(self.eq[i].iter().zip(&self.ec[i]).map(|(&a, &b)| a.max(b)));
            }
        }
    }

    /// Number of candidates of item query `i`.
    pub fn candidates(&self, i: usize) -> usize {
        self.eq[i].len()
    }
}

/// Compute group-level bounds for item queries of the given `lengths`
/// (ascending suffix lengths of the master query) over candidates whose end
/// `t + d` does not exceed `max_end`.
///
/// # Panics
/// Panics if `lengths` is empty, unsorted, or exceeds the master query.
pub fn compute_group_bounds(
    device: &Device,
    windex: &WindowIndex,
    lengths: &[usize],
    max_end: usize,
) -> GroupBounds {
    assert!(!lengths.is_empty(), "at least one item query");
    assert!(lengths.windows(2).all(|w| w[0] < w[1]), "lengths must be strictly ascending");
    let d_master = windex.d_master();
    assert!(*lengths.last().expect("non-empty") <= d_master, "item query longer than master query");
    let omega = windex.omega();
    let sw_count = windex.sw_count();

    // One block per CSG class. Each block emits (item, t, eq, ec) tuples;
    // the bijection of Theorem 4.2 guarantees blocks write disjoint
    // candidates, so the host-side scatter below has no collisions.
    let report = device.launch(omega.min(sw_count), |ctx| {
        let b = ctx.block_id();
        class_pass(ctx, windex, lengths, max_end, b)
    });

    // Scatter into dense per-item arrays.
    let mut eq: Vec<Vec<f64>> = Vec::with_capacity(lengths.len());
    let mut ec: Vec<Vec<f64>> = Vec::with_capacity(lengths.len());
    for &d in lengths {
        let count = if max_end >= d { max_end - d + 1 } else { 0 };
        eq.push(vec![0.0; count]);
        ec.push(vec![0.0; count]);
    }
    for block in report.results {
        for (i, t, s_eq, s_ec) in block {
            eq[i][t] = s_eq;
            ec[i][t] = s_ec;
        }
    }
    GroupBounds { lengths: lengths.to_vec(), eq, ec }
}

/// The Algorithm-1 pass of ONE CSG class `b`: walk every rightmost disjoint
/// window, shift-sum the class's posting lists, and emit
/// `(item, candidate start, ΣLBEQ, ΣLBEC)` whenever a sum completes an item
/// query's CSG. Shared by the per-sensor launch above and the fleet-batched
/// launch (`crate::fleet`), which runs one such block per (sensor, class).
pub(crate) fn class_pass(
    ctx: &mut smiler_gpu::BlockCtx,
    windex: &WindowIndex,
    lengths: &[usize],
    max_end: usize,
    b: usize,
) -> Vec<(usize, usize, f64, f64)> {
    let omega = windex.omega();
    let dw_count = windex.dw_count();
    let sw_count = windex.sw_count();
    // Map CSG size m → item queries completed at that size.
    let ms: Vec<usize> = lengths.iter().map(|&d| csg::csg_len(d, b, omega)).collect();
    let m_max = ms.iter().copied().max().unwrap_or(0);
    let mut out: Vec<(usize, usize, f64, f64)> = Vec::new();
    if m_max == 0 {
        return out;
    }
    for r in 0..dw_count {
        let e = csg::alignment_end(b, r, omega);
        let mut sum_eq = 0.0;
        let mut sum_ec = 0.0;
        let steps = m_max.min(r + 1);
        for j in 0..steps {
            let sw = b + j * omega;
            if sw >= sw_count {
                break;
            }
            let list = windex.posting(sw);
            sum_eq += list.lbeq[r - j];
            sum_ec += list.lbec[r - j];
            ctx.read_global(2);
            ctx.flops(2);
            let m = j + 1;
            for (i, (&mi, &d)) in ms.iter().zip(lengths).enumerate() {
                if mi == m && e <= max_end {
                    if let Some(t) = e.checked_sub(d) {
                        out.push((i, t, sum_eq, sum_ec));
                        ctx.write_global(2);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::WindowIndex;
    use smiler_gpu::Device;
    use smiler_timeseries::Envelope;

    const OMEGA: usize = 4;
    const RHO: usize = 2;
    const D: usize = 13; // deliberately not a multiple of ω

    fn make_series(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 997) as f64 / 100.0 - 5.0
            })
            .collect()
    }

    fn setup(n: usize, seed: u64) -> (Vec<f64>, WindowIndex, Device) {
        let device = Device::default_gpu();
        let series = make_series(n, seed);
        let series_env = Envelope::compute(&series, RHO);
        let query = series[series.len() - D..].to_vec();
        let query_env = Envelope::compute(&query, RHO);
        let windex =
            WindowIndex::build(&device, &series, &series_env, &query, &query_env, OMEGA, RHO);
        (series, windex, device)
    }

    #[test]
    fn bounds_never_exceed_dtw() {
        let (series, windex, device) = setup(60, 1);
        let lengths = [8usize, 11, 13];
        let max_end = series.len() - 2;
        let gb = compute_group_bounds(&device, &windex, &lengths, max_end);
        for (i, &d) in lengths.iter().enumerate() {
            let query = &series[series.len() - d..];
            for t in 0..gb.candidates(i) {
                let cand = &series[t..t + d];
                let dtw = smiler_dtw::dtw_banded(query, cand, RHO);
                let lbw = gb.lbw(i, t);
                assert!(
                    lbw <= dtw + 1e-9,
                    "LBw {lbw} > DTW {dtw} for item {i} (d={d}) candidate t={t}"
                );
            }
        }
    }

    #[test]
    fn sums_match_manual_window_sums() {
        let (series, windex, device) = setup(48, 2);
        let lengths = [9usize, 13];
        let gb = compute_group_bounds(&device, &windex, &lengths, series.len());
        // Pick a candidate with a known alignment and recompute the sums by
        // hand from the posting lists.
        for (i, &d) in lengths.iter().enumerate() {
            for t in 0..gb.candidates(i) {
                if let Some(a) = csg::alignment_of(t, d, OMEGA) {
                    if a.r >= windex.dw_count() {
                        continue;
                    }
                    let mut eq = 0.0;
                    let mut ec = 0.0;
                    for j in 0..a.m {
                        let list = windex.posting(a.b + j * OMEGA);
                        eq += list.lbeq[a.r - j];
                        ec += list.lbec[a.r - j];
                    }
                    assert!((gb.eq[i][t] - eq).abs() < 1e-12, "eq mismatch i={i} t={t}");
                    assert!((gb.ec[i][t] - ec).abs() < 1e-12, "ec mismatch i={i} t={t}");
                }
            }
        }
    }

    #[test]
    fn max_end_excludes_late_candidates() {
        let (series, windex, device) = setup(40, 3);
        let lengths = [9usize];
        let max_end = series.len() - 6;
        let gb = compute_group_bounds(&device, &windex, &lengths, max_end);
        assert_eq!(gb.candidates(0), max_end - 9 + 1);
    }

    #[test]
    fn every_coverable_candidate_gets_a_bound() {
        // With d ≥ 2ω−1 every candidate inside the DW region must receive a
        // positive-information bound (non-zero with overwhelming likelihood
        // on random data, but we check alignment-coverage, not value).
        let (series, windex, device) = setup(64, 4);
        let d = 2 * OMEGA - 1 + 2; // 9
        let gb = compute_group_bounds(&device, &windex, &[d], series.len());
        let dw_span = windex.dw_count() * OMEGA;
        for t in 0..gb.candidates(0) {
            let e = t + d;
            if e >= OMEGA && e < dw_span + OMEGA {
                let a = csg::alignment_of(t, d, OMEGA);
                if let Some(a) = a {
                    if a.r < windex.dw_count() {
                        // The scatter must have written this entry: a zero
                        // bound here would mean a missed alignment. Random
                        // data makes an exactly-zero true bound implausible,
                        // but to stay deterministic check alignment arithmetic
                        // instead: start computed from the alignment maps
                        // back to t.
                        assert_eq!(csg::candidate_start(d, a.b, a.r, OMEGA), Some(t));
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_lengths() {
        let (_, windex, device) = setup(40, 5);
        compute_group_bounds(&device, &windex, &[13, 9], 40);
    }
}
