//! The SMiLer index: a two-level inverted-like index on the (simulated) GPU
//! for the **Continuous Suffix kNN Search** problem (paper §4).
//!
//! A prediction request for one sensor spawns a *master query* `MQ` (the
//! longest recent segment) and a family of *item queries* — suffixes of
//! `MQ` with the lengths in the Ensemble Length Vector. The index answers
//! kNN under banded DTW for every item query at once:
//!
//! * **Window level** ([`window`]): `MQ` is cut into sliding windows, the
//!   history `C` into disjoint windows; a posting list per sliding window
//!   stores `LBEQ`/`LBEC` against every disjoint window. Continuous
//!   prediction reuses this level — one step rotates one posting list and
//!   refreshes the `ρ` envelope-affected lists (Remark 1).
//! * **Group level** ([`group`]): sliding windows of the same phase form
//!   Catenated Sliding Window Groups; shift-summing a CSG's posting lists
//!   yields the windowed lower bound `LBw` between *every* item query and
//!   *every* candidate segment in one pass (Algorithm 1, Theorem 4.3) —
//!   the suffix-sharing reuse of Remark 2.
//! * **Search** ([`search`]): filtering by threshold, verification with the
//!   compressed-warping-matrix DTW kernel, and k-selection — the paper's
//!   three-phase pipeline (§4.3.3), kept in separate kernel launches to
//!   avoid SIMD divergence (§4.4).
//!
//! [`scan`] implements the Figure 7/8 baselines: FastGPUScan, GPUScan,
//! FastCPUScan and SMiLer-Dir.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod csg;
pub mod fleet;
pub mod group;
pub mod scan;
pub mod search;
pub mod window;

pub use fleet::{fleet_search, try_fleet_search};
pub use search::{
    BoundMode, IndexParams, Neighbor, SearchError, SearchOutput, SearchStats, SmilerIndex,
    ThresholdStrategy, VerifyMode,
};
