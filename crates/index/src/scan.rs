//! Scan baselines for the suffix kNN search (paper §6.2.1, Fig 7/8):
//!
//! * **FastGPUScan** — banded DTW between every item query and every
//!   candidate on the GPU, then GPU k-selection;
//! * **GPUScan** (Sart et al. 2010) — like FastGPUScan but without the
//!   Sakoe-Chiba constraint (full warping matrix);
//! * **FastCPUScan** — the UCR-style CPU pipeline: cascading `LB_Kim` →
//!   `LB_Keogh` pruning plus early-abandoning DTW with a running k-th-best
//!   threshold;
//! * **SMiLer-Dir** — SMiLer's filter/verify/select pipeline but with
//!   `LBen` computed *directly* per candidate (no window-level reuse); the
//!   Fig 8 comparison isolating the two-level index's contribution.

use crate::search::{verify_candidates, Neighbor, SearchError};
use smiler_gpu::kselect;
use smiler_gpu::Device;
use smiler_timeseries::Envelope;

/// Result of one baseline suffix search: per item query (same order as
/// `lengths`), the k nearest segments sorted by ascending distance.
pub type ScanNeighbors = Vec<Vec<Neighbor>>;

fn item_queries<'s>(series: &'s [f64], lengths: &[usize]) -> Vec<&'s [f64]> {
    lengths.iter().map(|&d| &series[series.len() - d..]).collect()
}

fn candidate_count(d: usize, max_end: usize) -> usize {
    if max_end >= d {
        max_end - d + 1
    } else {
        0
    }
}

/// Select the k nearest from a dense distance array on the device. A
/// one-block grid always yields one result; an empty report (impossible by
/// the launch contract) degrades to no neighbours rather than panicking.
fn select_neighbors(device: &Device, distances: &[f64], k: usize) -> Vec<Neighbor> {
    let report = device.launch(1, |ctx| kselect::select_k_smallest(ctx, distances, k));
    let picks = report.results.into_iter().next().unwrap_or_default();
    picks.into_iter().map(|t| Neighbor { start: t, distance: distances[t] }).collect()
}

/// Banded-DTW distances of every candidate, chunked 256 per block.
fn scan_distances(
    device: &Device,
    series: &[f64],
    query: &[f64],
    rho: usize,
    max_end: usize,
) -> Vec<f64> {
    const THREADS: usize = 256;
    let d = query.len();
    let count = candidate_count(d, max_end);
    let blocks = count.div_ceil(THREADS);
    let report = device.launch(blocks, |ctx| {
        let lo = ctx.block_id() * THREADS;
        let hi = (lo + THREADS).min(count);
        ctx.read_global(d as u64); // stage query
        let ops = smiler_dtw::dtw_ops_estimate(d, rho);
        let mut out = Vec::with_capacity(hi - lo);
        for t in lo..hi {
            ctx.read_global(d as u64);
            ctx.flops(ops);
            out.push(smiler_dtw::dtw_compressed(query, &series[t..t + d], rho));
        }
        out
    });
    report.results.into_iter().flatten().collect()
}

/// FastGPUScan: banded DTW on every candidate + GPU k-selection.
pub fn fast_gpu_scan(
    device: &Device,
    series: &[f64],
    lengths: &[usize],
    k: usize,
    rho: usize,
    max_end: usize,
) -> ScanNeighbors {
    item_queries(series, lengths)
        .into_iter()
        .map(|query| {
            let distances = scan_distances(device, series, query, rho, max_end);
            select_neighbors(device, &distances, k)
        })
        .collect()
}

/// GPUScan (Sart et al.): full DTW — the band spans the whole matrix, which
/// is simply banded DTW with `ρ = d`.
pub fn gpu_scan(
    device: &Device,
    series: &[f64],
    lengths: &[usize],
    k: usize,
    max_end: usize,
) -> ScanNeighbors {
    item_queries(series, lengths)
        .into_iter()
        .map(|query| {
            let distances = scan_distances(device, series, query, query.len(), max_end);
            select_neighbors(device, &distances, k)
        })
        .collect()
}

/// FastCPUScan: the UCR-suite cascade on the CPU device. One block per item
/// query — the scan is inherently sequential because the k-th-best
/// threshold tightens as candidates are processed.
pub fn fast_cpu_scan(
    cpu: &Device,
    series: &[f64],
    lengths: &[usize],
    k: usize,
    rho: usize,
    max_end: usize,
) -> ScanNeighbors {
    let queries = item_queries(series, lengths);
    let report = cpu.launch(queries.len(), |ctx| {
        let query = queries[ctx.block_id()];
        let d = query.len();
        let count = candidate_count(d, max_end);
        let query_env = Envelope::compute(query, rho);
        ctx.flops(2 * d as u64); // envelope build

        // Max-heap of the best k so far (distance, start).
        let mut heap: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
        let mut tau = f64::INFINITY;
        for t in 0..count {
            let cand = &series[t..t + d];
            // Stage 1: LB_Kim (O(1)).
            ctx.read_global(2);
            ctx.flops(6);
            if smiler_dtw::lb_kim_fl(query, cand) > tau {
                continue;
            }
            // Stage 2: LB_Keogh with the query envelope.
            ctx.read_global(d as u64);
            ctx.flops(3 * d as u64);
            if smiler_dtw::lb_keogh(cand, &query_env.upper, &query_env.lower) > tau {
                continue;
            }
            // Stage 3: early-abandoning DTW.
            let (dist, cells) = smiler_dtw::dtw_early_abandon_counted(query, cand, rho, tau);
            ctx.flops(6 * cells);
            // A NaN distance (poisoned history segment) slips past the
            // lower-bound stages — NaN fails every `> tau` comparison —
            // so it must be dropped here, mirroring `search.rs`'s
            // finite-filtered candidacy, or it would both corrupt the
            // heap order and poison τ.
            if let Some(dist) = dist.filter(|d| d.is_finite()) {
                heap.push((dist, t));
                heap.sort_by(|a, b| b.0.total_cmp(&a.0));
                if heap.len() > k {
                    heap.remove(0);
                }
                if heap.len() == k {
                    tau = heap[0].0;
                }
            }
        }
        heap.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        heap.into_iter().map(|(dist, t)| Neighbor { start: t, distance: dist }).collect::<Vec<_>>()
    });
    report.results
}

/// SMiLer-Dir (Fig 8): compute `LBen` directly per candidate — no window
/// level, no reuse across suffix queries — then the same filter / verify /
/// select pipeline as the index. Returns the neighbours and the simulated
/// **device-saturated** seconds spent on the direct lower-bound
/// computation alone (the quantity Fig 8 compares against the two-level
/// index's group pass), or the typed error if the verification kernel
/// cannot fit the device's shared memory.
pub fn smiler_dir(
    device: &Device,
    series: &[f64],
    lengths: &[usize],
    k: usize,
    rho: usize,
    max_end: usize,
) -> Result<(ScanNeighbors, f64), SearchError> {
    const THREADS: usize = 256;
    let series_env = Envelope::compute(series, rho);
    let mut lb_seconds = 0.0;
    let mut out: ScanNeighbors = Vec::with_capacity(lengths.len());
    for query in item_queries(series, lengths) {
        let d = query.len();
        let query_env = Envelope::compute(query, rho);
        let count = candidate_count(d, max_end);
        // Direct LBen for every candidate (the expensive part Fig 8
        // measures).
        let t0 = device.saturated_seconds();
        let blocks = count.div_ceil(THREADS);
        let report = device.launch(blocks, |ctx| {
            let lo = ctx.block_id() * THREADS;
            let hi = (lo + THREADS).min(count);
            let mut out = Vec::with_capacity(hi - lo);
            for t in lo..hi {
                let cand = &series[t..t + d];
                ctx.read_global(2 * d as u64);
                ctx.flops(6 * d as u64);
                let lbeq = smiler_dtw::lb_keogh(cand, &query_env.upper, &query_env.lower);
                let lbec = smiler_dtw::lb_keogh(
                    query,
                    &series_env.upper[t..t + d],
                    &series_env.lower[t..t + d],
                );
                out.push(lbeq.max(lbec));
            }
            out
        });
        let lbs: Vec<f64> = report.results.into_iter().flatten().collect();
        lb_seconds += device.saturated_seconds() - t0;

        // Threshold: verify the k smallest lower bounds; τ = max DTW.
        if lbs.len() <= k {
            let all: Vec<usize> = (0..lbs.len()).collect();
            let dists = verify_candidates(device, series, query, rho, &all)?;
            out.push(select_from(device, &all, &dists, k));
            continue;
        }
        let probes = device
            .launch(1, |ctx| kselect::select_k_smallest(ctx, &lbs, k))
            .results
            .into_iter()
            .next()
            .unwrap_or_default();
        let probe_dists = verify_candidates(device, series, query, rho, &probes)?;
        // `f64::max` ignores NaN probe distances (poisoned history); a
        // fully poisoned probe set leaves τ at −∞, filtering everything.
        let tau = probe_dists.iter().copied().fold(f64::NEG_INFINITY, f64::max);

        let survivors: Vec<usize> =
            (0..lbs.len()).filter(|&t| lbs[t] <= tau && !probes.contains(&t)).collect();
        let dists = verify_candidates(device, series, query, rho, &survivors)?;
        let mut verified: Vec<(usize, f64)> = probes.into_iter().zip(probe_dists).collect();
        verified.extend(survivors.into_iter().zip(dists));
        let (starts, vals): (Vec<usize>, Vec<f64>) = verified.into_iter().unzip();
        out.push(select_from(device, &starts, &vals, k));
    }
    Ok((out, lb_seconds))
}

fn select_from(device: &Device, starts: &[usize], dists: &[f64], k: usize) -> Vec<Neighbor> {
    let report = device.launch(1, |ctx| kselect::select_k_smallest(ctx, dists, k));
    let picks = report.results.into_iter().next().unwrap_or_default();
    picks.into_iter().map(|i| Neighbor { start: starts[i], distance: dists[i] }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smiler_gpu::CpuSpec;

    fn make_series(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (i as f64 * 0.21).sin() + (state % 100) as f64 / 50.0
            })
            .collect()
    }

    fn brute(series: &[f64], d: usize, rho: usize, k: usize, max_end: usize) -> Vec<Neighbor> {
        let query = &series[series.len() - d..];
        let mut all: Vec<Neighbor> = (0..=max_end - d)
            .map(|t| Neighbor {
                start: t,
                distance: smiler_dtw::dtw_banded(query, &series[t..t + d], rho),
            })
            .filter(|n| n.distance.is_finite())
            .collect();
        all.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.start.cmp(&b.start)));
        all.truncate(k);
        all
    }

    const LENGTHS: [usize; 2] = [10, 14];
    const RHO: usize = 3;
    const K: usize = 4;

    fn assert_matches_brute(got: &ScanNeighbors, series: &[f64], max_end: usize) {
        for (i, &d) in LENGTHS.iter().enumerate() {
            let expect = brute(series, d, RHO, K, max_end);
            assert_eq!(got[i].len(), expect.len());
            for (g, e) in got[i].iter().zip(&expect) {
                assert!((g.distance - e.distance).abs() < 1e-9, "item {i}: {g:?} vs {e:?}");
            }
        }
    }

    #[test]
    fn fast_gpu_scan_is_exact() {
        let device = Device::default_gpu();
        let series = make_series(300, 1);
        let max_end = series.len() - 3;
        let got = fast_gpu_scan(&device, &series, &LENGTHS, K, RHO, max_end);
        assert_matches_brute(&got, &series, max_end);
    }

    #[test]
    fn fast_cpu_scan_is_exact() {
        let cpu = Device::cpu(CpuSpec::default());
        let series = make_series(300, 2);
        let max_end = series.len() - 3;
        let got = fast_cpu_scan(&cpu, &series, &LENGTHS, K, RHO, max_end);
        assert_matches_brute(&got, &series, max_end);
    }

    #[test]
    fn smiler_dir_is_exact() {
        let device = Device::default_gpu();
        let series = make_series(300, 3);
        let max_end = series.len() - 3;
        let (got, lb_seconds) =
            smiler_dir(&device, &series, &LENGTHS, K, RHO, max_end).expect("fits shared memory");
        assert_matches_brute(&got, &series, max_end);
        assert!(lb_seconds > 0.0);
    }

    #[test]
    fn nan_history_degrades_scans_without_panicking() {
        // A NaN spliced into the candidate region — the very fallback data
        // the robust path scans — must degrade the poisoned candidates,
        // not panic the baselines (the PR 3 sweep's remaining gap).
        let mut series = make_series(300, 6);
        series[40] = f64::NAN;
        series[41] = f64::NAN;
        let max_end = series.len() - 3;

        let cpu = Device::cpu(CpuSpec::default());
        let cpu_got = fast_cpu_scan(&cpu, &series, &LENGTHS, K, RHO, max_end);
        assert_matches_brute(&cpu_got, &series, max_end);

        let device = Device::default_gpu();
        let gpu_got = fast_gpu_scan(&device, &series, &LENGTHS, K, RHO, max_end);
        assert_matches_brute(&gpu_got, &series, max_end);

        let (dir_got, _) =
            smiler_dir(&device, &series, &LENGTHS, K, RHO, max_end).expect("fits shared memory");
        for (item, neighbors) in dir_got.iter().enumerate() {
            for n in neighbors {
                assert!(n.distance.is_finite(), "item {item}: {n:?}");
            }
        }
    }

    #[test]
    fn all_nan_history_yields_no_neighbours() {
        let mut series = make_series(120, 7);
        let n = series.len();
        for v in &mut series[..n - 20] {
            *v = f64::NAN;
        }
        let max_end = n - 20;
        let cpu = Device::cpu(CpuSpec::default());
        let got = fast_cpu_scan(&cpu, &series, &LENGTHS, K, RHO, max_end);
        for neighbors in &got {
            assert!(neighbors.is_empty());
        }
    }

    #[test]
    fn gpu_scan_unbanded_distances_not_larger() {
        // Without the band the warping is freer: distances can only shrink.
        let device = Device::default_gpu();
        let series = make_series(200, 4);
        let max_end = series.len() - 3;
        let banded = fast_gpu_scan(&device, &series, &LENGTHS, K, RHO, max_end);
        let full = gpu_scan(&device, &series, &LENGTHS, K, max_end);
        for i in 0..LENGTHS.len() {
            assert!(full[i][0].distance <= banded[i][0].distance + 1e-9);
        }
    }

    #[test]
    fn cpu_scan_abandons_work() {
        // The cascade must do measurably less simulated work than a naive
        // full scan on the same CPU model.
        let cpu_fast = Device::cpu(CpuSpec::default()).with_host_threads(1);
        let cpu_full = Device::cpu(CpuSpec::default()).with_host_threads(1);
        let series = make_series(600, 5);
        let max_end = series.len() - 3;
        fast_cpu_scan(&cpu_fast, &series, &LENGTHS, K, RHO, max_end);
        // Naive CPU scan: reuse the GPU scan kernel on the CPU device.
        fast_gpu_scan(&cpu_full, &series, &LENGTHS, K, RHO, max_end);
        assert!(
            cpu_fast.elapsed_seconds() < cpu_full.elapsed_seconds(),
            "cascade {} vs naive {}",
            cpu_fast.elapsed_seconds(),
            cpu_full.elapsed_seconds()
        );
    }
}
