//! Versioned, CRC-sealed checkpoint files with atomic replacement.
//!
//! A checkpoint captures the caller's entire durable state as one opaque
//! payload at a WAL sequence number; recovery loads the newest valid one
//! and replays the WAL from there. The container format:
//!
//! ```text
//! ckpt-0000000000000042.ck
//! ┌───────────────────────────────────────────────────────────┐
//! │ magic "SMLRCKPT" (8) │ version u32 │ seq u64 │            │
//! │ payload_len u64 │ crc32(seq‖payload) u32 │ payload ...    │
//! └───────────────────────────────────────────────────────────┘
//! ```
//!
//! Writes go to a `.tmp` sibling, fsync, then rename over the final name —
//! a crash mid-write leaves either the old checkpoint or a `.tmp` corpse,
//! never a half-written `.ck`. A checkpoint that fails validation on load
//! (bad magic, alien version, short payload, CRC mismatch) is renamed to
//! `.quarantined` and the next-newest one is tried instead: one bad file
//! degrades recovery to an older cut plus a longer WAL replay, it does not
//! abort it.

use crate::codec::{self, ByteReader};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Format version written into every checkpoint header.
pub const CHECKPOINT_VERSION: u32 = 1;

const CHECKPOINT_MAGIC: &[u8; 8] = b"SMLRCKPT";
const HEADER_BYTES: usize = 8 + 4 + 8 + 8 + 4;

/// A checkpoint successfully read back from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedCheckpoint {
    /// WAL sequence number the payload covers (replay resumes after it).
    pub seq: u64,
    /// The caller's opaque serialized state.
    pub payload: Vec<u8>,
}

fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("ckpt-{seq:016}.ck"))
}

/// CRC over the seq field *and* the payload, so a bit flip anywhere in the
/// header's mutable region is caught, not just in the payload.
fn seal(seq: u64, payload: &[u8]) -> u32 {
    let mut sealed = Vec::with_capacity(8 + payload.len());
    codec::put_u64(&mut sealed, seq);
    sealed.extend_from_slice(payload);
    codec::crc32(&sealed)
}

/// Write `payload` as the checkpoint covering WAL sequence `seq`,
/// atomically (tmp + fsync + rename + dir fsync).
pub fn write(dir: &Path, seq: u64, payload: &[u8]) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let final_path = checkpoint_path(dir, seq);
    let tmp_path = final_path.with_extension("ck.tmp");
    let mut header = Vec::with_capacity(HEADER_BYTES);
    header.extend_from_slice(CHECKPOINT_MAGIC);
    codec::put_u32(&mut header, CHECKPOINT_VERSION);
    codec::put_u64(&mut header, seq);
    codec::put_u64(&mut header, payload.len() as u64);
    codec::put_u32(&mut header, seal(seq, payload));
    {
        let mut f = OpenOptions::new().create(true).truncate(true).write(true).open(&tmp_path)?;
        f.write_all(&header)?;
        f.write_all(payload)?;
        f.sync_data()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    // Make the rename itself durable: fsync the directory entry.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_data();
    }
    smiler_obs::count("store.checkpoint.written", "", 1);
    smiler_obs::count("store.checkpoint.bytes", "", payload.len() as u64);
    Ok(())
}

fn parse(bytes: &[u8]) -> Option<LoadedCheckpoint> {
    if bytes.len() < HEADER_BYTES || &bytes[..8] != CHECKPOINT_MAGIC {
        return None;
    }
    let mut r = ByteReader::new(&bytes[8..HEADER_BYTES]);
    let version = r.u32().ok()?;
    let seq = r.u64().ok()?;
    let payload_len = r.u64().ok()? as usize;
    let crc = r.u32().ok()?;
    if version != CHECKPOINT_VERSION {
        return None;
    }
    let payload = bytes.get(HEADER_BYTES..HEADER_BYTES + payload_len)?;
    if seal(seq, payload) != crc {
        return None;
    }
    Some(LoadedCheckpoint { seq, payload: payload.to_vec() })
}

/// Sequence numbers of the `.ck` files present in `dir`, ascending.
pub fn list(dir: &Path) -> std::io::Result<Vec<u64>> {
    let mut seqs: Vec<u64> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let seq = name.strip_prefix("ckpt-")?.strip_suffix(".ck")?;
                seq.parse().ok()
            })
            .collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    seqs.sort_unstable();
    Ok(seqs)
}

/// Load the newest checkpoint that validates, quarantining any that do
/// not. Returns the checkpoint (if any survives) and how many files were
/// quarantined along the way.
pub fn load_latest(dir: &Path) -> std::io::Result<(Option<LoadedCheckpoint>, usize)> {
    let mut quarantined = 0usize;
    for seq in list(dir)?.into_iter().rev() {
        let path = checkpoint_path(dir, seq);
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        match parse(&bytes) {
            Some(loaded) => {
                smiler_obs::count("store.checkpoint.loaded", "", 1);
                return Ok((Some(loaded), quarantined));
            }
            None => {
                let mut target = path.as_os_str().to_owned();
                target.push(".quarantined");
                fs::rename(&path, PathBuf::from(target))?;
                smiler_obs::count("store.checkpoint.quarantined", "", 1);
                quarantined += 1;
            }
        }
    }
    Ok((None, quarantined))
}

/// Remove all but the newest `keep` checkpoints. Returns the smallest
/// retained sequence number, if any checkpoint remains.
pub fn prune(dir: &Path, keep: usize) -> std::io::Result<Option<u64>> {
    let seqs = list(dir)?;
    let cut = seqs.len().saturating_sub(keep.max(1));
    for &seq in &seqs[..cut] {
        let _ = fs::remove_file(checkpoint_path(dir, seq));
    }
    Ok(seqs.get(cut).copied())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("smiler_ckpt_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_then_load_latest_roundtrips() {
        let dir = tmpdir("roundtrip");
        write(&dir, 10, b"older state").unwrap();
        write(&dir, 25, b"newer state").unwrap();
        let (loaded, quarantined) = load_latest(&dir).unwrap();
        let loaded = loaded.unwrap();
        assert_eq!(loaded.seq, 25);
        assert_eq!(loaded.payload, b"newer state");
        assert_eq!(quarantined, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_loads_nothing() {
        let dir = tmpdir("empty");
        let (loaded, quarantined) = load_latest(&dir).unwrap();
        assert!(loaded.is_none());
        assert_eq!(quarantined, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = tmpdir("fallback");
        write(&dir, 10, b"good old").unwrap();
        write(&dir, 30, b"doomed").unwrap();
        // Flip one payload byte in the newest checkpoint.
        let path = checkpoint_path(&dir, 30);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        let (loaded, quarantined) = load_latest(&dir).unwrap();
        let loaded = loaded.unwrap();
        assert_eq!(loaded.seq, 10, "must fall back to the previous checkpoint");
        assert_eq!(loaded.payload, b"good old");
        assert_eq!(quarantined, 1);
        // The corrupt file was renamed aside, not deleted.
        assert!(!checkpoint_path(&dir, 30).exists());
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert!(names.iter().any(|n| n.ends_with(".quarantined")), "{names:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let dir = tmpdir("flips");
        write(&dir, 7, b"state bytes that matter").unwrap();
        let path = checkpoint_path(&dir, 7);
        let pristine = fs::read(&path).unwrap();
        for i in 0..pristine.len() {
            let mut bytes = pristine.clone();
            bytes[i] ^= 0x40;
            fs::write(&path, &bytes).unwrap();
            // The CRC covers seq + payload; magic/version/len have their
            // own checks — every single-byte flip must be rejected.
            assert!(parse(&bytes).is_none(), "byte {i} flip went undetected");
        }
        fs::write(&path, &pristine).unwrap();
        let (loaded, _) = load_latest(&dir).unwrap();
        assert_eq!(loaded.unwrap().payload, b"state bytes that matter");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_newest_n() {
        let dir = tmpdir("prune");
        for seq in [5u64, 10, 15, 20] {
            write(&dir, seq, b"x").unwrap();
        }
        let oldest = prune(&dir, 2).unwrap();
        assert_eq!(oldest, Some(15));
        assert_eq!(list(&dir).unwrap(), vec![15, 20]);
        let _ = fs::remove_dir_all(&dir);
    }
}
