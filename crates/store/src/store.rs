//! The store facade: one directory holding a WAL and its checkpoints.
//!
//! ```text
//! <data-dir>/
//! ├── wal/    wal-00000001.seg …          (append-only, segment-rotated)
//! └── ckpt/   ckpt-0000000000000042.ck …  (last N kept, atomic replace)
//! ```
//!
//! [`Store::open`] performs recovery: newest valid checkpoint (corrupt
//! ones quarantined), then the WAL records *after* that checkpoint's
//! sequence number as the replay tail. [`Store::checkpoint`] writes a new
//! cut, prunes old checkpoints, and prunes WAL segments wholly covered by
//! the oldest retained checkpoint — steady state disk usage is bounded.

use crate::checkpoint;
use crate::codec::CodecError;
use crate::wal::{Wal, WalRecord};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// When appends become power-loss durable (every append is already
/// process-kill durable: bytes reach the OS before `append` returns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPolicy {
    /// `fsync` after every append. Safest, slowest.
    Always,
    /// `fsync` once per N appends (group commit).
    EveryN(u64),
    /// `fsync` when at least this many milliseconds passed since the last.
    IntervalMs(u64),
}

impl Default for FlushPolicy {
    fn default() -> Self {
        FlushPolicy::EveryN(32)
    }
}

impl std::fmt::Display for FlushPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlushPolicy::Always => write!(f, "always"),
            FlushPolicy::EveryN(n) => write!(f, "every-{n}"),
            FlushPolicy::IntervalMs(ms) => write!(f, "interval-{ms}"),
        }
    }
}

impl std::str::FromStr for FlushPolicy {
    type Err = String;

    /// Accepts `always`, `every-<n>` or `interval-<ms>`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "always" {
            return Ok(FlushPolicy::Always);
        }
        if let Some(n) = s.strip_prefix("every-") {
            return match n.parse::<u64>() {
                Ok(n) if n > 0 => Ok(FlushPolicy::EveryN(n)),
                _ => Err(format!("bad group-commit size in '{s}'")),
            };
        }
        if let Some(ms) = s.strip_prefix("interval-") {
            let ms = ms.strip_suffix("ms").unwrap_or(ms);
            return match ms.parse::<u64>() {
                Ok(ms) if ms > 0 => Ok(FlushPolicy::IntervalMs(ms)),
                _ => Err(format!("bad interval in '{s}'")),
            };
        }
        Err(format!("unknown flush policy '{s}' (use always | every-<n> | interval-<ms>)"))
    }
}

/// Tunables for a [`Store`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Group-commit fsync policy for the WAL.
    pub flush: FlushPolicy,
    /// Rotate WAL segments at roughly this size.
    pub segment_bytes: u64,
    /// How many checkpoints to retain (older ones and the WAL segments
    /// they cover are pruned).
    pub keep_checkpoints: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { flush: FlushPolicy::default(), segment_bytes: 8 << 20, keep_checkpoints: 2 }
    }
}

/// Failures from the durability layer.
#[derive(Debug)]
pub enum StoreError {
    /// The operating system said no.
    Io(std::io::Error),
    /// A durable buffer failed structural decoding.
    Codec(CodecError),
    /// The recovered state is unusable for the requested operation.
    Recovery(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Codec(e) => write!(f, "store codec error: {e}"),
            StoreError::Recovery(msg) => write!(f, "store recovery error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

/// Everything [`Store::open`] recovered and repaired.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// Sequence number of the checkpoint recovery started from, if any.
    pub checkpoint_seq: Option<u64>,
    /// The checkpoint's opaque payload, if any.
    pub checkpoint_payload: Option<Vec<u8>>,
    /// WAL records newer than the checkpoint, in append order.
    pub replay: Vec<WalRecord>,
    /// Checkpoint files renamed aside for failing validation.
    pub quarantined_checkpoints: usize,
    /// WAL segments renamed aside for mid-log corruption.
    pub quarantined_segments: usize,
    /// Bytes cut off the WAL's torn tail.
    pub truncated_bytes: u64,
    /// Wall-clock seconds spent opening and repairing.
    pub open_seconds: f64,
}

impl Recovery {
    /// Whether recovery started from scratch (no checkpoint, no WAL tail).
    pub fn is_cold(&self) -> bool {
        self.checkpoint_seq.is_none() && self.replay.is_empty()
    }
}

/// A durable store rooted at one data directory.
pub struct Store {
    dir: PathBuf,
    wal: Wal,
    config: StoreConfig,
}

impl Store {
    fn wal_dir(dir: &Path) -> PathBuf {
        dir.join("wal")
    }

    fn ckpt_dir(dir: &Path) -> PathBuf {
        dir.join("ckpt")
    }

    /// Open (creating if absent) the store at `dir` and run recovery.
    pub fn open(dir: &Path, config: StoreConfig) -> Result<(Store, Recovery), StoreError> {
        let started = Instant::now();
        let _span = smiler_obs::span("store.open");
        std::fs::create_dir_all(dir)?;
        let (loaded, quarantined_checkpoints) = checkpoint::load_latest(&Self::ckpt_dir(dir))?;
        let (wal, records, report) = Wal::open(&Self::wal_dir(dir), &config)?;
        let checkpoint_seq = loaded.as_ref().map(|c| c.seq);
        let floor = checkpoint_seq.unwrap_or(0);
        let replay: Vec<WalRecord> = records.into_iter().filter(|r| r.seq() > floor).collect();
        if smiler_obs::enabled() {
            smiler_obs::count("store.replayed_records", "", replay.len() as u64);
            smiler_obs::observe("store.recover_seconds", "", started.elapsed().as_secs_f64());
        }
        let recovery = Recovery {
            checkpoint_seq,
            checkpoint_payload: loaded.map(|c| c.payload),
            replay,
            quarantined_checkpoints,
            quarantined_segments: report.quarantined_segments,
            truncated_bytes: report.truncated_bytes,
            open_seconds: started.elapsed().as_secs_f64(),
        };
        Ok((Store { dir: dir.to_path_buf(), wal, config }, recovery))
    }

    /// The data directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number of the most recent durable record (0 = none yet).
    pub fn last_seq(&self) -> u64 {
        self.wal.last_seq()
    }

    /// Log one observation for one sensor. Returns its sequence number.
    pub fn append_observe(&mut self, sensor: u32, value: f64) -> Result<u64, StoreError> {
        Ok(self.wal.append(|seq| WalRecord::Observe { seq, sensor, value })?)
    }

    /// Log one fleet round (predict `horizon`, then one value per sensor;
    /// horizon 0 = observe-only). Returns its sequence number.
    pub fn append_round(&mut self, horizon: u32, values: &[f64]) -> Result<u64, StoreError> {
        Ok(self.wal.append(|seq| WalRecord::Round { seq, horizon, values: values.to_vec() })?)
    }

    /// Force the WAL to the platter regardless of flush policy.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        Ok(self.wal.sync()?)
    }

    /// Re-read the newest valid checkpoint from disk (invalid ones are
    /// quarantined exactly as during [`Store::open`]). The per-sensor
    /// recovery rung uses this while the store stays open.
    pub fn latest_checkpoint(&self) -> Result<Option<(u64, Vec<u8>)>, StoreError> {
        let (loaded, _) = checkpoint::load_latest(&Self::ckpt_dir(&self.dir))?;
        Ok(loaded.map(|c| (c.seq, c.payload)))
    }

    /// Re-read every replayable WAL record with sequence number greater
    /// than `after_seq`, without disturbing the append handle.
    pub fn read_tail(&self, after_seq: u64) -> Result<Vec<WalRecord>, StoreError> {
        let records = crate::wal::read_records(&Self::wal_dir(&self.dir))?;
        Ok(records.into_iter().filter(|r| r.seq() > after_seq).collect())
    }

    /// Write `payload` as a checkpoint covering everything logged so far,
    /// then prune checkpoints beyond the retention count and WAL segments
    /// the oldest retained checkpoint makes redundant. Returns the
    /// sequence number the checkpoint covers.
    pub fn checkpoint(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        let _span = smiler_obs::span("store.checkpoint");
        let started = Instant::now();
        // Order matters: the WAL must be durable through `seq` before the
        // checkpoint claiming to cover `seq` exists.
        self.wal.sync()?;
        let seq = self.wal.last_seq();
        let ckpt_dir = Self::ckpt_dir(&self.dir);
        checkpoint::write(&ckpt_dir, seq, payload)?;
        if let Some(oldest_kept) = checkpoint::prune(&ckpt_dir, self.config.keep_checkpoints)? {
            self.wal.prune_below(oldest_kept)?;
        }
        if smiler_obs::enabled() {
            smiler_obs::observe("store.checkpoint_seconds", "", started.elapsed().as_secs_f64());
        }
        Ok(seq)
    }
}

/// A store behind a mutex, shareable across shard workers.
pub type SharedStore = Arc<parking_lot::Mutex<Store>>;

/// Wrap a store for sharing across threads.
pub fn shared(store: Store) -> SharedStore {
    Arc::new(parking_lot::Mutex::new(store))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("smiler_store_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn config() -> StoreConfig {
        StoreConfig { flush: FlushPolicy::Always, ..StoreConfig::default() }
    }

    #[test]
    fn flush_policy_parses() {
        assert_eq!("always".parse::<FlushPolicy>().unwrap(), FlushPolicy::Always);
        assert_eq!("every-16".parse::<FlushPolicy>().unwrap(), FlushPolicy::EveryN(16));
        assert_eq!("interval-50".parse::<FlushPolicy>().unwrap(), FlushPolicy::IntervalMs(50));
        assert_eq!("interval-50ms".parse::<FlushPolicy>().unwrap(), FlushPolicy::IntervalMs(50));
        assert!("every-0".parse::<FlushPolicy>().is_err());
        assert!("sometimes".parse::<FlushPolicy>().is_err());
        assert_eq!(FlushPolicy::EveryN(8).to_string(), "every-8");
    }

    #[test]
    fn cold_open_then_append_then_recover() {
        let dir = tmpdir("cold");
        {
            let (mut store, recovery) = Store::open(&dir, config()).unwrap();
            assert!(recovery.is_cold());
            store.append_observe(3, 1.25).unwrap();
            store.append_round(2, &[0.5, f64::NAN, -0.0]).unwrap();
        }
        let (store, recovery) = Store::open(&dir, config()).unwrap();
        assert_eq!(recovery.checkpoint_seq, None);
        assert_eq!(recovery.replay.len(), 2);
        assert_eq!(store.last_seq(), 2);
        match &recovery.replay[1] {
            WalRecord::Round { horizon, values, .. } => {
                assert_eq!(*horizon, 2);
                assert!(values[1].is_nan());
                assert_eq!(values[2].to_bits(), (-0.0f64).to_bits());
            }
            other => panic!("unexpected {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_bounds_replay_tail() {
        let dir = tmpdir("tail");
        {
            let (mut store, _) = Store::open(&dir, config()).unwrap();
            for i in 0..10 {
                store.append_observe(0, i as f64).unwrap();
            }
            let seq = store.checkpoint(b"fleet state at 10").unwrap();
            assert_eq!(seq, 10);
            for i in 10..13 {
                store.append_observe(0, i as f64).unwrap();
            }
        }
        let (_, recovery) = Store::open(&dir, config()).unwrap();
        assert_eq!(recovery.checkpoint_seq, Some(10));
        assert_eq!(recovery.checkpoint_payload.as_deref(), Some(&b"fleet state at 10"[..]));
        let seqs: Vec<u64> = recovery.replay.iter().map(|r| r.seq()).collect();
        assert_eq!(seqs, vec![11, 12, 13], "only the tail after the checkpoint replays");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_falls_back_and_replays_longer_tail() {
        let dir = tmpdir("fallback");
        {
            let (mut store, _) = Store::open(&dir, config()).unwrap();
            for i in 0..6 {
                store.append_observe(0, i as f64).unwrap();
            }
            store.checkpoint(b"at 6").unwrap();
            for i in 6..9 {
                store.append_observe(0, i as f64).unwrap();
            }
            store.checkpoint(b"at 9").unwrap();
            store.append_observe(0, 9.0).unwrap();
        }
        // Corrupt the newest checkpoint file.
        let ck = Store::ckpt_dir(&dir).join(format!("ckpt-{:016}.ck", 9));
        let mut bytes = fs::read(&ck).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        fs::write(&ck, &bytes).unwrap();

        let (_, recovery) = Store::open(&dir, config()).unwrap();
        assert_eq!(recovery.quarantined_checkpoints, 1);
        assert_eq!(recovery.checkpoint_seq, Some(6), "fell back to the previous checkpoint");
        assert_eq!(recovery.checkpoint_payload.as_deref(), Some(&b"at 6"[..]));
        let seqs: Vec<u64> = recovery.replay.iter().map(|r| r.seq()).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10], "the longer tail covers the lost checkpoint");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_retention_prunes_files() {
        let dir = tmpdir("retention");
        let cfg =
            StoreConfig { flush: FlushPolicy::Always, segment_bytes: 256, keep_checkpoints: 2 };
        let (mut store, _) = Store::open(&dir, cfg).unwrap();
        for round in 0..5 {
            for i in 0..20 {
                store.append_observe(0, (round * 20 + i) as f64).unwrap();
            }
            store.checkpoint(format!("round {round}").as_bytes()).unwrap();
        }
        let checkpoints = checkpoint::list(&Store::ckpt_dir(&dir)).unwrap();
        assert_eq!(checkpoints.len(), 2, "retention keeps the newest two");
        // WAL segments wholly below the oldest kept checkpoint are gone.
        let wal_files = fs::read_dir(Store::wal_dir(&dir)).unwrap().count();
        assert!(wal_files < 10, "expected pruned WAL, found {wal_files} files");
        // And recovery still works from what remains.
        drop(store);
        let (_, recovery) = Store::open(&dir, config()).unwrap();
        assert_eq!(recovery.checkpoint_seq, Some(100));
        assert_eq!(recovery.checkpoint_payload.as_deref(), Some(&b"round 4"[..]));
        assert!(recovery.replay.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
