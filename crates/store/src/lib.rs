//! smiler-store — the durability layer under a SMiLer fleet.
//!
//! SMiLer's semi-lazy design keeps the full sensor history and the
//! two-level inverted index resident and warm; a process crash therefore
//! loses everything: history, tuned λ weights, warm-started GP
//! hyperparameters, and the cold-rebuild cost of the index itself. This
//! crate owns the on-disk state that survives:
//!
//! * a **segmented append-only WAL** of sensor observations — CRC-checked,
//!   length-prefixed records, torn-tail truncation on open, corrupt
//!   segments quarantined (renamed aside) rather than aborting recovery;
//! * **checkpoints** — opaque, caller-serialised durable state (history
//!   rings, posting-list-deterministic index inputs, λ matrices, GP
//!   hyperparameters) in a versioned binary container with a header magic,
//!   format version and payload CRC, written atomically (tmp + rename);
//! * **group-commit fsync batching** — every append reaches the OS page
//!   cache immediately (process-kill durable); the [`FlushPolicy`] decides
//!   how often `fsync` makes it power-loss durable;
//! * **recovery** = latest valid checkpoint + WAL tail replay. A corrupt
//!   checkpoint falls back to the previous one (the WAL keeps enough tail
//!   to replay from there); a corrupt WAL segment ends the replayable
//!   prefix instead of poisoning it.
//!
//! The crate is deliberately policy-free about *what* the durable state
//! is: checkpoint payloads are opaque bytes. `smiler-core`'s `durable`
//! module provides the fleet-level encoding and the bitwise-restart
//! guarantee on top.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod store;
pub mod wal;

pub use checkpoint::CHECKPOINT_VERSION;
pub use codec::{crc32, ByteReader, CodecError};
pub use store::{shared, FlushPolicy, Recovery, SharedStore, Store, StoreConfig, StoreError};
pub use wal::{WalRecord, WAL_VERSION};
