//! Binary encoding primitives shared by the WAL and checkpoint formats.
//!
//! Everything on disk is little-endian and length-prefixed. Floating-point
//! values travel as raw IEEE-754 bits (`f64::to_bits`), never as text: the
//! durability contract is *bitwise* state reconstruction, including NaN
//! payloads and signed zeros that a textual round-trip would lose.

/// Errors raised while decoding binary records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value it promised.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// A tag byte had no defined meaning.
    BadTag {
        /// The offending byte.
        tag: u8,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected end of buffer: needed {needed} bytes, had {remaining}")
            }
            CodecError::BadTag { tag } => write!(f, "unknown tag byte {tag:#04x}"),
        }
    }
}

impl std::error::Error for CodecError {}

// --------------------------------------------------------------- writing

/// Append a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Append a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its raw IEEE-754 bits.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Append a `u64`-length-prefixed byte slice.
pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

/// Append a `u64`-length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// Append a `u64`-length-prefixed vector of raw `f64` bits.
pub fn put_f64_slice(buf: &mut Vec<u8>, values: &[f64]) {
    put_u64(buf, values.len() as u64);
    for &v in values {
        put_f64(buf, v);
    }
}

// --------------------------------------------------------------- reading

/// A cursor over an encoded buffer.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether the reader consumed everything.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof { needed: n, remaining: self.remaining() });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read an `f64` from its raw bits.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u64()? as usize;
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string (lossy on invalid UTF-8 — the
    /// CRC already vouched for the bytes, so mojibake means an encoder
    /// bug, not corruption worth failing recovery over).
    pub fn str(&mut self) -> Result<String, CodecError> {
        Ok(String::from_utf8_lossy(self.bytes()?).into_owned())
    }

    /// Read a length-prefixed vector of `f64` bit patterns.
    pub fn f64_vec(&mut self) -> Result<Vec<f64>, CodecError> {
        let len = self.u64()? as usize;
        // Guard against a corrupt length claiming more than the buffer
        // holds before allocating.
        let needed = len.saturating_mul(8);
        if self.remaining() < needed {
            return Err(CodecError::UnexpectedEof { needed, remaining: self.remaining() });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f64()?);
        }
        Ok(out)
    }
}

// ----------------------------------------------------------------- crc32

/// CRC-32 (IEEE 802.3 polynomial, the zlib/`crc32` convention) over a byte
/// slice. Table-free bitwise form: the record sizes here are small enough
/// that a 1 KiB lookup table buys nothing worth its cache footprint.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn round_trip_all_primitives() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 3);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::NAN);
        put_str(&mut buf, "λ-weights");
        put_f64_slice(&mut buf, &[1.5, f64::INFINITY, -2.25]);

        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        // Bitwise: signed zero and NaN survive exactly.
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.str().unwrap(), "λ-weights");
        let v = r.f64_vec().unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v[0], 1.5);
        assert_eq!(v[1], f64::INFINITY);
        assert_eq!(v[2], -2.25);
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_buffer_is_a_typed_error() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 42);
        let mut r = ByteReader::new(&buf[..5]);
        assert!(matches!(r.u64(), Err(CodecError::UnexpectedEof { .. })));
    }

    #[test]
    fn corrupt_length_prefix_does_not_overallocate() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX); // absurd element count
        let mut r = ByteReader::new(&buf);
        assert!(matches!(r.f64_vec(), Err(CodecError::UnexpectedEof { .. })));
    }
}
