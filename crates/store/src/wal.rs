//! Segmented append-only write-ahead log of sensor observations.
//!
//! On-disk layout (everything little-endian):
//!
//! ```text
//! wal-00000001.seg
//! ┌──────────────────────────────────────────────┐
//! │ magic "SMLRWAL\0" (8) │ version u32 │ base_seq u64 │   segment header
//! ├──────────────────────────────────────────────┤
//! │ len u32 │ crc32(payload) u32 │ payload (len bytes) │  record 0
//! │ len u32 │ crc32(payload) u32 │ payload             │  record 1
//! │ ...                                           │
//! └──────────────────────────────────────────────┘
//! payload = kind u8 · seq u64 · body
//!   kind 1 (Observe): sensor u32 · value f64-bits
//!   kind 2 (Round):   horizon u32 · n u32 · n × f64-bits
//! ```
//!
//! Appends reach the OS immediately (`write_all`), so a *process* kill
//! loses nothing; `fsync` cadence — what a *power* loss can take — is the
//! [`FlushPolicy`]'s call (group commit). On open, the final segment's
//! torn tail (a record cut mid-write) is truncated back to the last whole
//! record; corruption anywhere earlier quarantines that segment and every
//! later one (sequence continuity is gone), keeping the valid prefix.

use crate::codec::{self, ByteReader};
use crate::store::{FlushPolicy, StoreConfig};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Format version written into every segment header.
pub const WAL_VERSION: u32 = 1;

const SEGMENT_MAGIC: &[u8; 8] = b"SMLRWAL\0";
const SEGMENT_HEADER_BYTES: u64 = 8 + 4 + 8;
/// Upper bound on one record's payload; a length prefix beyond this is
/// corruption, not a huge record.
const MAX_RECORD_BYTES: u32 = 16 << 20;

/// One durable WAL record, as replayed during recovery.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A single sensor absorbed one value (stream/serving ingestion).
    Observe {
        /// Global sequence number.
        seq: u64,
        /// Fleet-global sensor id.
        sensor: u32,
        /// The normalised observation.
        value: f64,
    },
    /// One fleet step: predict `horizon` for every sensor (0 = no
    /// prediction), then absorb one value per sensor in fleet order.
    Round {
        /// Global sequence number.
        seq: u64,
        /// The horizon predicted before the observations (0 = none).
        horizon: u32,
        /// One observation per resident sensor.
        values: Vec<f64>,
    },
}

impl WalRecord {
    /// The record's global sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            WalRecord::Observe { seq, .. } | WalRecord::Round { seq, .. } => *seq,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(32);
        match self {
            WalRecord::Observe { seq, sensor, value } => {
                codec::put_u8(&mut payload, 1);
                codec::put_u64(&mut payload, *seq);
                codec::put_u32(&mut payload, *sensor);
                codec::put_f64(&mut payload, *value);
            }
            WalRecord::Round { seq, horizon, values } => {
                codec::put_u8(&mut payload, 2);
                codec::put_u64(&mut payload, *seq);
                codec::put_u32(&mut payload, *horizon);
                codec::put_u32(&mut payload, values.len() as u32);
                for &v in values {
                    codec::put_f64(&mut payload, v);
                }
            }
        }
        payload
    }

    fn decode(payload: &[u8]) -> Result<WalRecord, codec::CodecError> {
        let mut r = ByteReader::new(payload);
        let kind = r.u8()?;
        let seq = r.u64()?;
        match kind {
            1 => {
                let sensor = r.u32()?;
                let value = r.f64()?;
                Ok(WalRecord::Observe { seq, sensor, value })
            }
            2 => {
                let horizon = r.u32()?;
                let n = r.u32()? as usize;
                let mut values = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    values.push(r.f64()?);
                }
                Ok(WalRecord::Round { seq, horizon, values })
            }
            tag => Err(codec::CodecError::BadTag { tag }),
        }
    }
}

/// What [`Wal::open`] found and repaired.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalOpenReport {
    /// Segments scanned (including quarantined ones).
    pub segments: usize,
    /// Segments renamed aside because of mid-log corruption.
    pub quarantined_segments: usize,
    /// Bytes cut off the final segment's torn tail.
    pub truncated_bytes: u64,
}

/// Metadata of one sealed (no longer written) segment.
#[derive(Debug, Clone, Copy)]
struct SegmentMeta {
    index: u64,
    /// First sequence number the segment holds (records are contiguous).
    base_seq: u64,
}

/// The append side of the log plus the sealed-segment ledger.
pub struct Wal {
    dir: PathBuf,
    file: File,
    current_index: u64,
    current_bytes: u64,
    next_seq: u64,
    sealed: Vec<SegmentMeta>,
    segment_bytes: u64,
    policy: FlushPolicy,
    appends_since_sync: u64,
    last_sync: Instant,
    syncs: u64,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:08}.seg"))
}

fn write_segment_header(file: &mut File, base_seq: u64) -> std::io::Result<()> {
    let mut header = Vec::with_capacity(SEGMENT_HEADER_BYTES as usize);
    header.extend_from_slice(SEGMENT_MAGIC);
    codec::put_u32(&mut header, WAL_VERSION);
    codec::put_u64(&mut header, base_seq);
    file.write_all(&header)
}

/// Outcome of scanning one segment file.
struct SegmentScan {
    records: Vec<WalRecord>,
    /// Byte offset just past the last valid record.
    valid_bytes: u64,
    /// Total bytes in the file.
    file_bytes: u64,
    /// Whether the valid prefix ends before the file does.
    dirty: bool,
    base_seq: u64,
}

fn scan_segment(path: &Path) -> std::io::Result<Option<SegmentScan>> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let file_bytes = bytes.len() as u64;
    if bytes.len() < SEGMENT_HEADER_BYTES as usize || &bytes[..8] != SEGMENT_MAGIC {
        return Ok(None); // unreadable header: the whole segment is suspect
    }
    let mut header = ByteReader::new(&bytes[8..SEGMENT_HEADER_BYTES as usize]);
    let version = header.u32().unwrap_or(0);
    let base_seq = header.u64().unwrap_or(0);
    if version != WAL_VERSION {
        return Ok(None);
    }
    let mut records = Vec::new();
    let mut pos = SEGMENT_HEADER_BYTES as usize;
    let mut expected_seq = base_seq;
    loop {
        if pos == bytes.len() {
            break; // clean end
        }
        if bytes.len() - pos < 8 {
            break; // torn length/crc prefix
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        let crc =
            u32::from_le_bytes([bytes[pos + 4], bytes[pos + 5], bytes[pos + 6], bytes[pos + 7]]);
        if len > MAX_RECORD_BYTES || bytes.len() - pos - 8 < len as usize {
            break; // absurd length or payload cut short
        }
        let payload = &bytes[pos + 8..pos + 8 + len as usize];
        if codec::crc32(payload) != crc {
            break;
        }
        let record = match WalRecord::decode(payload) {
            Ok(r) => r,
            Err(_) => break,
        };
        if record.seq() != expected_seq {
            break; // sequence discontinuity: do not replay past it
        }
        expected_seq += 1;
        pos += 8 + len as usize;
        records.push(record);
    }
    let valid_bytes = pos as u64;
    Ok(Some(SegmentScan {
        records,
        valid_bytes,
        file_bytes,
        dirty: valid_bytes < file_bytes,
        base_seq,
    }))
}

/// Read-only scan of the log's replayable prefix: every valid record in
/// sequence order, with **no repair** (no truncation, no quarantine, the
/// append handle undisturbed). The store's per-sensor recovery rung uses
/// this to re-read the tail while the log stays open for appending.
pub fn read_records(dir: &Path) -> std::io::Result<Vec<WalRecord>> {
    let mut indices: Vec<u64> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let idx = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
                idx.parse().ok()
            })
            .collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    indices.sort_unstable();
    let mut records: Vec<WalRecord> = Vec::new();
    let mut next_seq = 1u64;
    for &index in &indices {
        let scan = match scan_segment(&segment_path(dir, index))? {
            Some(scan) => scan,
            None => break, // unreadable header ends the replayable prefix
        };
        if !(scan.base_seq == next_seq || records.is_empty()) {
            break; // sequence gap between segments
        }
        next_seq = scan.records.last().map(|r| r.seq() + 1).unwrap_or(scan.base_seq.max(next_seq));
        let dirty = scan.dirty;
        records.extend(scan.records);
        if dirty {
            break; // nothing after a damaged region replays consistently
        }
    }
    Ok(records)
}

fn quarantine(path: &Path) -> std::io::Result<()> {
    let mut target = path.as_os_str().to_owned();
    target.push(".quarantined");
    smiler_obs::count("store.wal.segment_quarantined", "", 1);
    fs::rename(path, PathBuf::from(target))
}

impl Wal {
    /// Open (or create) the log in `dir`, repairing the tail: returns the
    /// log positioned for appending, every replayable record in sequence
    /// order, and a report of what was repaired.
    pub fn open(
        dir: &Path,
        config: &StoreConfig,
    ) -> std::io::Result<(Wal, Vec<WalRecord>, WalOpenReport)> {
        fs::create_dir_all(dir)?;
        let mut indices: Vec<u64> = fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let idx = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
                idx.parse().ok()
            })
            .collect();
        indices.sort_unstable();

        let mut report = WalOpenReport { segments: indices.len(), ..Default::default() };
        let mut records: Vec<WalRecord> = Vec::new();
        let mut sealed: Vec<SegmentMeta> = Vec::new();
        let mut next_seq = 1u64;
        // The segment that stays open for appending, if the scan ends
        // cleanly on it: (index, valid_bytes).
        let mut tail: Option<(u64, u64)> = None;
        let mut max_index = 0u64;

        for (i, &index) in indices.iter().enumerate() {
            max_index = max_index.max(index);
            let is_final = i + 1 == indices.len();
            let path = segment_path(dir, index);
            let scan = scan_segment(&path)?;
            let abort = match scan {
                None => {
                    // Unreadable header: nothing in this segment (or after
                    // it) can be replayed.
                    quarantine(&path)?;
                    report.quarantined_segments += 1;
                    true
                }
                Some(scan) => {
                    // A sequence gap between segments also ends the
                    // replayable prefix.
                    let contiguous = scan.base_seq == next_seq || records.is_empty();
                    if !contiguous {
                        quarantine(&path)?;
                        report.quarantined_segments += 1;
                        true
                    } else {
                        if records.is_empty() && !scan.records.is_empty() {
                            next_seq = scan.records[0].seq();
                        }
                        next_seq = scan
                            .records
                            .last()
                            .map(|r| r.seq() + 1)
                            .unwrap_or(scan.base_seq.max(next_seq));
                        records.extend(scan.records);
                        if scan.dirty && !is_final {
                            // Corruption mid-log: the valid prefix of this
                            // segment replays, but nothing after it may.
                            quarantine(&path)?;
                            report.quarantined_segments += 1;
                            true
                        } else {
                            if scan.dirty {
                                // Torn tail of the final segment: cut it.
                                report.truncated_bytes += scan.file_bytes - scan.valid_bytes;
                                let f = OpenOptions::new().write(true).open(&path)?;
                                f.set_len(scan.valid_bytes)?;
                                f.sync_data()?;
                            }
                            if is_final {
                                tail = Some((index, scan.valid_bytes));
                            } else {
                                sealed.push(SegmentMeta { index, base_seq: scan.base_seq });
                            }
                            false
                        }
                    }
                }
            };
            if abort {
                // Quarantine every later segment: with a hole in the
                // sequence they can never be replayed consistently.
                for &later in &indices[i + 1..] {
                    max_index = max_index.max(later);
                    quarantine(&segment_path(dir, later))?;
                    report.quarantined_segments += 1;
                }
                break;
            }
        }

        if report.truncated_bytes > 0 {
            smiler_obs::count("store.wal.truncated_bytes", "", report.truncated_bytes);
        }

        let (file, current_index, current_bytes) = match tail {
            Some((index, valid_bytes)) => {
                let mut f =
                    OpenOptions::new().write(true).read(true).open(segment_path(dir, index))?;
                f.seek(SeekFrom::Start(valid_bytes))?;
                (f, index, valid_bytes)
            }
            None => {
                // No usable tail: start a fresh segment after everything
                // seen (quarantined names keep their index).
                let index = max_index + 1;
                let mut f = OpenOptions::new()
                    .create_new(true)
                    .write(true)
                    .read(true)
                    .open(segment_path(dir, index))?;
                write_segment_header(&mut f, next_seq)?;
                f.sync_data()?;
                (f, index, SEGMENT_HEADER_BYTES)
            }
        };

        let wal = Wal {
            dir: dir.to_path_buf(),
            file,
            current_index,
            current_bytes,
            next_seq,
            sealed,
            segment_bytes: config.segment_bytes.max(SEGMENT_HEADER_BYTES + 64),
            policy: config.flush,
            appends_since_sync: 0,
            last_sync: Instant::now(),
            syncs: 0,
        };
        Ok((wal, records, report))
    }

    /// Sequence number of the most recently appended record (0 = none).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Append one record (the `seq` it carries is assigned here). The
    /// bytes reach the OS before this returns; whether they reach the
    /// platter is the flush policy's decision.
    pub fn append(&mut self, make: impl FnOnce(u64) -> WalRecord) -> std::io::Result<u64> {
        let started = Instant::now();
        let seq = self.next_seq;
        let record = make(seq);
        debug_assert_eq!(record.seq(), seq, "append must use the assigned seq");
        let payload = record.encode();
        let mut framed = Vec::with_capacity(payload.len() + 8);
        codec::put_u32(&mut framed, payload.len() as u32);
        codec::put_u32(&mut framed, codec::crc32(&payload));
        framed.extend_from_slice(&payload);
        self.file.write_all(&framed)?;
        self.next_seq += 1;
        self.current_bytes += framed.len() as u64;
        self.appends_since_sync += 1;
        if smiler_obs::enabled() {
            smiler_obs::count("store.append", "", 1);
            smiler_obs::count("store.append_bytes", "", framed.len() as u64);
            smiler_obs::observe("store.append_seconds", "", started.elapsed().as_secs_f64());
        }
        self.maybe_sync()?;
        if self.current_bytes >= self.segment_bytes {
            self.rotate()?;
        }
        Ok(seq)
    }

    /// Group-commit decision: fsync when the policy says so.
    fn maybe_sync(&mut self) -> std::io::Result<()> {
        let due = match self.policy {
            FlushPolicy::Always => true,
            FlushPolicy::EveryN(n) => self.appends_since_sync >= n.max(1),
            FlushPolicy::IntervalMs(ms) => self.last_sync.elapsed().as_millis() as u64 >= ms.max(1),
        };
        if due {
            self.sync()?;
        }
        Ok(())
    }

    /// Force an fsync of the current segment (power-loss durability up to
    /// the last appended record).
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.appends_since_sync == 0 {
            return Ok(());
        }
        let started = Instant::now();
        self.file.sync_data()?;
        self.appends_since_sync = 0;
        self.last_sync = Instant::now();
        self.syncs += 1;
        if smiler_obs::enabled() {
            smiler_obs::count("store.fsync", "", 1);
            smiler_obs::observe("store.fsync_seconds", "", started.elapsed().as_secs_f64());
        }
        Ok(())
    }

    /// Fsyncs this WAL has issued since it was opened. Unlike the global
    /// `store.fsync` counter, this is per-instance — usable from tests
    /// that run concurrently with other stores in the same process.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Seal the current segment and start the next one.
    fn rotate(&mut self) -> std::io::Result<()> {
        self.sync()?;
        self.sealed.push(SegmentMeta {
            index: self.current_index,
            base_seq: 0, // unknown precisely; conservative (never pruned early)
        });
        // Recompute the sealed segment's base conservatively as "first seq
        // it *could* contain": pruning uses the next segment's base, so
        // only `next_seq` matters here.
        if let Some(last) = self.sealed.last_mut() {
            last.base_seq = u64::MAX; // placeholder; fixed below
        }
        let index = self.current_index + 1;
        let mut f = OpenOptions::new()
            .create_new(true)
            .write(true)
            .read(true)
            .open(segment_path(&self.dir, index))?;
        write_segment_header(&mut f, self.next_seq)?;
        f.sync_data()?;
        // Fix the placeholder now that the successor's base is known: a
        // sealed segment holds seqs strictly below the next base.
        if let Some(last) = self.sealed.last_mut() {
            last.base_seq = self.next_seq;
        }
        self.file = f;
        self.current_index = index;
        self.current_bytes = SEGMENT_HEADER_BYTES;
        smiler_obs::count("store.wal.rotations", "", 1);
        Ok(())
    }

    /// Delete sealed segments whose every record is older than `keep_from`
    /// (exclusive): they are fully covered by a retained checkpoint.
    /// Returns how many were removed.
    pub fn prune_below(&mut self, keep_from: u64) -> std::io::Result<usize> {
        // sealed[i] covers seqs in [own base, sealed[i].base_seq) where the
        // stored base_seq is the *successor's* base (see `rotate`); a
        // segment is disposable when that upper bound is ≤ keep_from.
        let mut removed = 0usize;
        let dir = self.dir.clone();
        self.sealed.retain(|meta| {
            if meta.base_seq <= keep_from + 1 {
                if fs::remove_file(segment_path(&dir, meta.index)).is_ok() {
                    removed += 1;
                }
                false
            } else {
                true
            }
        });
        if removed > 0 {
            smiler_obs::count("store.wal.segments_pruned", "", removed as u64);
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("smiler_wal_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn config() -> StoreConfig {
        StoreConfig { flush: FlushPolicy::Always, ..StoreConfig::default() }
    }

    #[test]
    fn append_and_reopen_replays_in_order() {
        let dir = tmpdir("roundtrip");
        {
            let (mut wal, records, report) = Wal::open(&dir, &config()).unwrap();
            assert!(records.is_empty());
            assert_eq!(report.quarantined_segments, 0);
            for i in 0..10u32 {
                wal.append(|seq| WalRecord::Observe { seq, sensor: i % 3, value: i as f64 * 0.5 })
                    .unwrap();
            }
            wal.append(|seq| WalRecord::Round { seq, horizon: 2, values: vec![1.0, f64::NAN] })
                .unwrap();
        }
        let (wal, records, report) = Wal::open(&dir, &config()).unwrap();
        assert_eq!(records.len(), 11);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(wal.last_seq(), 11);
        for (i, r) in records.iter().take(10).enumerate() {
            match r {
                WalRecord::Observe { seq, sensor, value } => {
                    assert_eq!(*seq, i as u64 + 1);
                    assert_eq!(*sensor, (i % 3) as u32);
                    assert_eq!(*value, i as f64 * 0.5);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        match &records[10] {
            WalRecord::Round { horizon, values, .. } => {
                assert_eq!(*horizon, 2);
                assert_eq!(values[0], 1.0);
                assert!(values[1].is_nan(), "NaN must survive the log bitwise");
            }
            other => panic!("unexpected {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_rotate_and_replay_across_files() {
        let dir = tmpdir("rotate");
        let cfg = StoreConfig {
            segment_bytes: 256, // tiny: force many rotations
            flush: FlushPolicy::Always,
            ..StoreConfig::default()
        };
        {
            let (mut wal, _, _) = Wal::open(&dir, &cfg).unwrap();
            for i in 0..50 {
                wal.append(|seq| WalRecord::Observe { seq, sensor: 0, value: i as f64 }).unwrap();
            }
        }
        let segs = fs::read_dir(&dir).unwrap().count();
        assert!(segs > 2, "expected several segments, got {segs}");
        let (_, records, report) = Wal::open(&dir, &cfg).unwrap();
        assert_eq!(records.len(), 50);
        assert_eq!(report.quarantined_segments, 0);
        let seqs: Vec<u64> = records.iter().map(|r| r.seq()).collect();
        assert_eq!(seqs, (1..=50).collect::<Vec<_>>());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_truncates_to_last_whole_record() {
        let dir = tmpdir("torn");
        {
            let (mut wal, _, _) = Wal::open(&dir, &config()).unwrap();
            for i in 0..5 {
                wal.append(|seq| WalRecord::Observe { seq, sensor: 0, value: i as f64 }).unwrap();
            }
        }
        let path = segment_path(&dir, 1);
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 7).unwrap(); // cut into the last record
        drop(f);
        let (mut wal, records, report) = Wal::open(&dir, &config()).unwrap();
        assert_eq!(records.len(), 4);
        assert!(report.truncated_bytes > 0);
        assert_eq!(wal.last_seq(), 4);
        // And the log keeps accepting appends at the repaired position.
        let seq = wal.append(|seq| WalRecord::Observe { seq, sensor: 0, value: 9.0 }).unwrap();
        assert_eq!(seq, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_middle_segment_is_quarantined_not_fatal() {
        let dir = tmpdir("quarantine");
        let cfg = StoreConfig {
            segment_bytes: 256,
            flush: FlushPolicy::Always,
            ..StoreConfig::default()
        };
        {
            let (mut wal, _, _) = Wal::open(&dir, &cfg).unwrap();
            for i in 0..50 {
                wal.append(|seq| WalRecord::Observe { seq, sensor: 0, value: i as f64 }).unwrap();
            }
        }
        // Flip a byte in the middle of segment 2's records.
        let path = segment_path(&dir, 2);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let (mut wal, records, report) = Wal::open(&dir, &cfg).unwrap();
        assert!(report.quarantined_segments >= 1, "{report:?}");
        // The prefix before the corruption replays; nothing after does.
        assert!(!records.is_empty());
        let seqs: Vec<u64> = records.iter().map(|r| r.seq()).collect();
        assert_eq!(seqs, (1..=records.len() as u64).collect::<Vec<_>>(), "contiguous prefix");
        assert!(records.len() < 50);
        // Quarantined files remain on disk for forensics.
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert!(names.iter().any(|n| n.ends_with(".quarantined")), "{names:?}");
        // Appending continues after the damage.
        wal.append(|seq| WalRecord::Observe { seq, sensor: 0, value: 1.0 }).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_n_policy_batches_fsyncs() {
        // Counted per WAL instance, not via the process-global obs
        // counters: sibling tests appending to their own stores run
        // concurrently and would pollute the global numbers.
        let dir = tmpdir("groupcommit");
        let cfg = StoreConfig { flush: FlushPolicy::EveryN(8), ..StoreConfig::default() };
        {
            let (mut wal, _, _) = Wal::open(&dir, &cfg).unwrap();
            for i in 0..64 {
                wal.append(|seq| WalRecord::Observe { seq, sensor: 0, value: i as f64 }).unwrap();
            }
            assert_eq!(wal.syncs(), 8, "64 appends at every-8 = 8 group commits");
        }
        // All records still durable (they reached the OS on every append).
        let (_, records, _) = Wal::open(&dir, &cfg).unwrap();
        assert_eq!(records.len(), 64);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_removes_fully_checkpointed_segments() {
        let dir = tmpdir("prune");
        let cfg = StoreConfig {
            segment_bytes: 256,
            flush: FlushPolicy::Always,
            ..StoreConfig::default()
        };
        let (mut wal, _, _) = Wal::open(&dir, &cfg).unwrap();
        for i in 0..60 {
            wal.append(|seq| WalRecord::Observe { seq, sensor: 0, value: i as f64 }).unwrap();
        }
        let before = fs::read_dir(&dir).unwrap().count();
        let removed = wal.prune_below(40).unwrap();
        assert!(removed > 0, "expected prunable segments out of {before}");
        // Every record after seq 40 must still replay.
        drop(wal);
        let (_, records, _) = Wal::open(&dir, &cfg).unwrap();
        assert!(records.iter().any(|r| r.seq() == 41), "seq 41 must survive pruning");
        assert_eq!(records.last().unwrap().seq(), 60);
        let _ = fs::remove_dir_all(&dir);
    }
}
