//! Banded DTW distance: reference, compressed-buffer and early-abandoning
//! implementations.

/// Per-cell cost: squared difference, as in the UCR suite.
#[inline]
fn cell(a: f64, b: f64) -> f64 {
    let d = a - b;
    d * d
}

fn check_inputs(q: &[f64], c: &[f64]) -> usize {
    assert_eq!(q.len(), c.len(), "banded DTW requires equal-length sequences");
    assert!(!q.is_empty(), "banded DTW of empty sequences is undefined");
    q.len()
}

/// Reusable warping buffer for the compressed-matrix DTW variants.
///
/// One scratch per verification lane: the `_with` functions reset and grow
/// it as needed, so a caller that loops over candidates of the same band
/// width performs **zero heap allocations** after the first call — the
/// workspace contract of the hot verification path.
#[derive(Debug, Clone, Default)]
pub struct DtwScratch {
    buf: Vec<[f64; 2]>,
}

impl DtwScratch {
    /// An empty scratch; grows on first use.
    pub fn new() -> Self {
        DtwScratch { buf: Vec::new() }
    }

    /// A scratch pre-sized for warping width `rho` (no allocation on use).
    pub fn with_rho(rho: usize) -> Self {
        DtwScratch { buf: vec![[f64::INFINITY; 2]; 2 * rho + 2] }
    }

    /// Reset (and grow if needed) to `m` all-infinity cells.
    fn reset(&mut self, m: usize) -> &mut [[f64; 2]] {
        if self.buf.len() < m {
            self.buf.resize(m, [f64::INFINITY; 2]);
        }
        let buf = &mut self.buf[..m];
        for cell in buf.iter_mut() {
            *cell = [f64::INFINITY; 2];
        }
        buf
    }
}

/// Reference banded DTW: the full `(d+1)×(d+1)` warping matrix with the
/// Sakoe-Chiba constraint `|i−j| ≤ ρ` (paper Eqns 21–24).
///
/// Kept as the oracle the compressed and early-abandoning variants are
/// property-tested against; production paths use [`dtw_compressed`].
///
/// # Panics
/// Panics if the sequences differ in length or are empty.
pub fn dtw_banded(q: &[f64], c: &[f64], rho: usize) -> f64 {
    smiler_obs::count("dtw.evals", "banded", 1);
    let d = check_inputs(q, c);
    let inf = f64::INFINITY;
    // gamma[i][j] with 1-based sequence indices; gamma[0][0] = 0 border.
    let mut gamma = vec![vec![inf; d + 1]; d + 1];
    gamma[0][0] = 0.0;
    for i in 1..=d {
        let lo = i.saturating_sub(rho).max(1);
        let hi = (i + rho).min(d);
        for j in lo..=hi {
            let best = gamma[i - 1][j].min(gamma[i][j - 1]).min(gamma[i - 1][j - 1]);
            gamma[i][j] = cell(q[i - 1], c[j - 1]) + best;
        }
    }
    gamma[d][d]
}

/// Banded DTW with the paper's compressed warping matrix (Appendix E,
/// Algorithm 2): a rolling buffer of `2×(2ρ+2)` cells, sized to live in GPU
/// shared memory. The band guarantees columns `j−1` and `j` together touch
/// exactly `2ρ+2` distinct diagonal offsets, so the modulus addressing
/// `(i mod (2ρ+2), j mod 2)` never collides.
///
/// # Panics
/// Panics if the sequences differ in length or are empty.
pub fn dtw_compressed(q: &[f64], c: &[f64], rho: usize) -> f64 {
    dtw_compressed_with(q, c, rho, &mut DtwScratch::new())
}

/// [`dtw_compressed`] writing into a caller-owned [`DtwScratch`] —
/// allocation-free after the scratch has grown to the band width.
///
/// # Panics
/// Panics if the sequences differ in length or are empty.
pub fn dtw_compressed_with(q: &[f64], c: &[f64], rho: usize, scratch: &mut DtwScratch) -> f64 {
    smiler_obs::count("dtw.evals", "compressed", 1);
    let d = check_inputs(q, c);
    let m = 2 * rho + 2;
    let inf = f64::INFINITY;
    // buf[slot][parity], slot = i mod m, parity = j mod 2.
    let buf = scratch.reset(m);
    // Border column j = 0: gamma(0,0) = 0, gamma(i,0) = inf (already inf).
    buf[0][0] = 0.0;
    // gamma(0, j) = inf for j >= 1 is installed when each column begins.
    let idx = |i: isize| -> usize { i.rem_euclid(m as isize) as usize };

    for j in 1..=d {
        let parity = j % 2;
        let prev = 1 - parity;
        // Invalidate the two cells leaving the band (Algorithm 2 lines 7–8):
        // gamma(j-ρ-1, j) and gamma(j+ρ, j-1) must read as infinity below.
        buf[idx(j as isize - rho as isize - 1)][parity] = inf;
        buf[idx(j as isize + rho as isize)][prev] = inf;
        // gamma(0, j) = inf border, only read while i = 1 is inside the band.
        if j <= rho + 1 {
            buf[0][parity] = inf;
        }
        let lo = j.saturating_sub(rho).max(1);
        let hi = (j + rho).min(d);
        for i in lo..=hi {
            let s = idx(i as isize);
            let s1 = idx(i as isize - 1);
            let best = buf[s1][parity].min(buf[s][prev]).min(buf[s1][prev]);
            buf[s][parity] = cell(q[i - 1], c[j - 1]) + best;
        }
    }
    buf[idx(d as isize)][d % 2]
}

/// Early-abandoning banded DTW for the CPU scan baseline: computes columns
/// left to right and abandons as soon as the minimum of the current column
/// exceeds `threshold`, returning `None` (the candidate cannot be a kNN).
///
/// # Panics
/// Panics if the sequences differ in length or are empty.
pub fn dtw_early_abandon(q: &[f64], c: &[f64], rho: usize, threshold: f64) -> Option<f64> {
    dtw_early_abandon_counted(q, c, rho, threshold).0
}

/// [`dtw_early_abandon`] that also reports how many warping-matrix cells
/// were actually evaluated — the work measure the CPU-scan baseline feeds
/// its cost model (abandoning early is exactly what makes FastCPUScan
/// faster than a full scan).
pub fn dtw_early_abandon_counted(
    q: &[f64],
    c: &[f64],
    rho: usize,
    threshold: f64,
) -> (Option<f64>, u64) {
    dtw_early_abandon_counted_with(q, c, rho, threshold, &mut DtwScratch::new())
}

/// [`dtw_early_abandon`] writing into a caller-owned [`DtwScratch`] —
/// allocation-free after the scratch has grown to the band width.
///
/// # Panics
/// Panics if the sequences differ in length or are empty.
pub fn dtw_early_abandon_with(
    q: &[f64],
    c: &[f64],
    rho: usize,
    threshold: f64,
    scratch: &mut DtwScratch,
) -> Option<f64> {
    dtw_early_abandon_counted_with(q, c, rho, threshold, scratch).0
}

/// [`dtw_early_abandon_counted`] writing into a caller-owned
/// [`DtwScratch`] — allocation-free after the scratch has grown to the
/// band width.
pub fn dtw_early_abandon_counted_with(
    q: &[f64],
    c: &[f64],
    rho: usize,
    threshold: f64,
    scratch: &mut DtwScratch,
) -> (Option<f64>, u64) {
    let d = check_inputs(q, c);
    let mut cells: u64 = 0;
    let m = 2 * rho + 2;
    let inf = f64::INFINITY;
    let buf = scratch.reset(m);
    buf[0][0] = 0.0;
    let idx = |i: isize| -> usize { i.rem_euclid(m as isize) as usize };

    for j in 1..=d {
        let parity = j % 2;
        let prev = 1 - parity;
        buf[idx(j as isize - rho as isize - 1)][parity] = inf;
        buf[idx(j as isize + rho as isize)][prev] = inf;
        if j <= rho + 1 {
            buf[0][parity] = inf;
        }
        let lo = j.saturating_sub(rho).max(1);
        let hi = (j + rho).min(d);
        let mut col_min = inf;
        for i in lo..=hi {
            let s = idx(i as isize);
            let s1 = idx(i as isize - 1);
            let best = buf[s1][parity].min(buf[s][prev]).min(buf[s1][prev]);
            let v = cell(q[i - 1], c[j - 1]) + best;
            buf[s][parity] = v;
            col_min = col_min.min(v);
            cells += 1;
        }
        // DTW cost is non-decreasing along any path, so once every cell of a
        // column exceeds the threshold the final distance must too.
        if col_min > threshold {
            return (None, cells);
        }
    }
    let result = buf[idx(d as isize)][d % 2];
    ((result <= threshold).then_some(result), cells)
}

/// Analytic operation count of one banded DTW evaluation, used by the GPU /
/// CPU cost models: cells in the band × (1 cell cost + 3-way min + add).
pub fn dtw_ops_estimate(d: usize, rho: usize) -> u64 {
    let band_width = (2 * rho + 1).min(d) as u64;
    d as u64 * band_width * 6
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_sequences_have_zero_distance() {
        let q = [0.5, 1.0, -2.0, 3.0];
        assert_eq!(dtw_banded(&q, &q, 2), 0.0);
        assert_eq!(dtw_compressed(&q, &q, 2), 0.0);
    }

    #[test]
    fn rho_zero_is_euclidean() {
        let q = [1.0, 2.0, 3.0];
        let c = [2.0, 2.0, 5.0];
        let expect = 1.0 + 0.0 + 4.0;
        assert_eq!(dtw_banded(&q, &c, 0), expect);
        assert_eq!(dtw_compressed(&q, &c, 0), expect);
    }

    #[test]
    fn warping_helps_shifted_series() {
        // A one-step shifted copy should match almost perfectly with ρ ≥ 1.
        let q: Vec<f64> = (0..20).map(|i| (i as f64 * 0.5).sin()).collect();
        let c: Vec<f64> = (0..20).map(|i| ((i + 1) as f64 * 0.5).sin()).collect();
        let rigid = dtw_banded(&q, &c, 0);
        let warped = dtw_banded(&q, &c, 2);
        assert!(warped < rigid * 0.5, "warped {warped} rigid {rigid}");
    }

    #[test]
    fn known_small_example() {
        // Hand-checked 3-point example, ρ = 1:
        // q = [0, 1, 2], c = [0, 2, 2].
        // Optimal path: (1,1)=0, then (2,2)=1, then (3,2)->(3,3) or diag:
        // gamma(2,2)=1, gamma(3,3)=min(g(2,3),g(3,2),g(2,2)) + 0 = 1.
        let q = [0.0, 1.0, 2.0];
        let c = [0.0, 2.0, 2.0];
        assert_eq!(dtw_banded(&q, &c, 1), 1.0);
        assert_eq!(dtw_compressed(&q, &c, 1), 1.0);
    }

    #[test]
    fn wider_band_never_increases_distance() {
        let q: Vec<f64> = (0..30).map(|i| ((i * 7) % 13) as f64).collect();
        let c: Vec<f64> = (0..30).map(|i| ((i * 5) % 11) as f64).collect();
        let mut prev = f64::INFINITY;
        for rho in 0..8 {
            let d = dtw_banded(&q, &c, rho);
            assert!(d <= prev + 1e-12, "rho {rho}: {d} > {prev}");
            prev = d;
        }
    }

    #[test]
    fn early_abandon_none_when_over_threshold() {
        let q = [0.0; 16];
        let c = [10.0; 16];
        assert_eq!(dtw_early_abandon(&q, &c, 4, 1.0), None);
    }

    #[test]
    fn early_abandon_exact_when_under_threshold() {
        let q: Vec<f64> = (0..16).map(|i| (i as f64 * 0.3).cos()).collect();
        let c: Vec<f64> = (0..16).map(|i| (i as f64 * 0.31).cos()).collect();
        let exact = dtw_banded(&q, &c, 4);
        assert_eq!(dtw_early_abandon(&q, &c, 4, exact + 1.0), Some(exact));
        // Threshold exactly at the distance is inclusive.
        assert_eq!(dtw_early_abandon(&q, &c, 4, exact), Some(exact));
    }

    #[test]
    fn ops_estimate_scales_with_band() {
        assert!(dtw_ops_estimate(64, 8) > dtw_ops_estimate(64, 2));
        assert!(dtw_ops_estimate(128, 8) > dtw_ops_estimate(64, 8));
        // Band clipped to sequence length.
        assert_eq!(dtw_ops_estimate(4, 100), 4 * 4 * 6);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn unequal_lengths_panic() {
        dtw_banded(&[1.0], &[1.0, 2.0], 1);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sequences_panic() {
        dtw_banded(&[], &[], 1);
    }

    proptest! {
        #[test]
        fn compressed_matches_reference(
            (q, c) in (2usize..40).prop_flat_map(|n| (
                prop::collection::vec(-10.0f64..10.0, n),
                prop::collection::vec(-10.0f64..10.0, n),
            )),
            rho in 0usize..10,
        ) {
            let full = dtw_banded(&q, &c, rho);
            let compressed = dtw_compressed(&q, &c, rho);
            prop_assert!((full - compressed).abs() < 1e-9,
                "full {} vs compressed {}", full, compressed);
        }

        #[test]
        fn early_abandon_agrees_with_reference(
            (q, c) in (2usize..32).prop_flat_map(|n| (
                prop::collection::vec(-5.0f64..5.0, n),
                prop::collection::vec(-5.0f64..5.0, n),
            )),
            rho in 0usize..6,
            threshold in 0.0f64..500.0,
        ) {
            let full = dtw_banded(&q, &c, rho);
            match dtw_early_abandon(&q, &c, rho, threshold) {
                Some(d) => {
                    prop_assert!((d - full).abs() < 1e-9);
                    prop_assert!(full <= threshold + 1e-9);
                }
                None => prop_assert!(full > threshold - 1e-9),
            }
        }

        #[test]
        fn reused_scratch_matches_fresh(
            pairs in prop::collection::vec(
                (2usize..40).prop_flat_map(|n| (
                    prop::collection::vec(-10.0f64..10.0, n),
                    prop::collection::vec(-10.0f64..10.0, n),
                    0usize..10,
                )),
                1..6,
            ),
            threshold in 0.0f64..500.0,
        ) {
            // One scratch reused across calls of varying length/band must
            // behave exactly like a fresh allocation per call.
            let mut scratch = DtwScratch::new();
            for (q, c, rho) in &pairs {
                let fresh = dtw_compressed(q, c, *rho);
                let reused = dtw_compressed_with(q, c, *rho, &mut scratch);
                prop_assert!((fresh - reused).abs() < 1e-12,
                    "fresh {} vs reused {}", fresh, reused);
                let (fresh_ea, fresh_cells) =
                    dtw_early_abandon_counted(q, c, *rho, threshold);
                let (reused_ea, reused_cells) =
                    dtw_early_abandon_counted_with(q, c, *rho, threshold, &mut scratch);
                prop_assert_eq!(fresh_ea, reused_ea);
                prop_assert_eq!(fresh_cells, reused_cells);
            }
        }

        #[test]
        fn symmetry(
            (q, c) in (2usize..24).prop_flat_map(|n| (
                prop::collection::vec(-5.0f64..5.0, n),
                prop::collection::vec(-5.0f64..5.0, n),
            )),
            rho in 0usize..6,
        ) {
            // Squared-cost DTW with a symmetric band is symmetric.
            prop_assert!((dtw_banded(&q, &c, rho) - dtw_banded(&c, &q, rho)).abs() < 1e-9);
        }
    }
}
