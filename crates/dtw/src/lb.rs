//! Lower bounds of banded DTW: `LB_Kim`, `LB_Keogh` and the paper's
//! enhanced bound `LBen`.
//!
//! `LB_Keogh(E(X), Y)` accumulates, for each position `i`, the squared
//! distance from `y_i` to the envelope `[L_i, U_i]` of `X` (paper Eqn 26).
//! The paper names the two envelope directions `LBEQ(Q,C) =
//! LB_Keogh(E(Q), C)` (query envelope, walk the candidate) and `LBEC(Q,C) =
//! LB_Keogh(E(C), Q)` (candidate envelope, walk the query); both
//! lower-bound the same DTW, so their maximum `LBen` does too
//! (Theorem 4.1). On a CPU computing both doubles the filter cost, which is
//! why prior CPU pipelines pick one; the GPU's parallel slack makes both
//! free — the paper's §4.4 point, reproduced in Table 3.

use smiler_timeseries::Envelope;

/// `LB_Keogh`: squared distance from `walk` to the envelope `[lower, upper]`.
///
/// `upper`/`lower` are the envelope of the *other* sequence, restricted to
/// the compared region; all three slices must have equal length.
///
/// # Panics
/// Panics if slice lengths differ.
pub fn lb_keogh(walk: &[f64], upper: &[f64], lower: &[f64]) -> f64 {
    assert_eq!(walk.len(), upper.len(), "LB_Keogh length mismatch");
    assert_eq!(walk.len(), lower.len(), "LB_Keogh length mismatch");
    let mut acc = 0.0;
    for i in 0..walk.len() {
        let v = walk[i];
        if v > upper[i] {
            let d = v - upper[i];
            acc += d * d;
        } else if v < lower[i] {
            let d = v - lower[i];
            acc += d * d;
        }
    }
    acc
}

/// `LB_Keogh` against a whole [`Envelope`], convenience wrapper.
///
/// # Panics
/// Panics if `walk.len() != env.len()`.
pub fn lb_keogh_env(walk: &[f64], env: &Envelope) -> f64 {
    lb_keogh(walk, &env.upper, &env.lower)
}

/// The paper's enhanced lower bound `LBen = max(LBEQ, LBEC)` (§4.2).
///
/// `query_env` is the envelope of `query`; `cand_env` the envelope of
/// `candidate`. All slices cover the same `d` positions.
pub fn lb_en(
    query: &[f64],
    candidate: &[f64],
    query_env: (&[f64], &[f64]),
    cand_env: (&[f64], &[f64]),
) -> f64 {
    let lbeq = lb_keogh(candidate, query_env.0, query_env.1);
    let lbec = lb_keogh(query, cand_env.0, cand_env.1);
    lbeq.max(lbec)
}

/// `LB_Kim` (first/last variant): the squared differences of the first and
/// last points lower-bound banded DTW because those points must match each
/// other at the path's endpoints. O(1); the first stage of the CPU
/// cascade.
///
/// # Panics
/// Panics if either sequence is empty or lengths differ.
pub fn lb_kim_fl(q: &[f64], c: &[f64]) -> f64 {
    assert_eq!(q.len(), c.len(), "LB_Kim length mismatch");
    assert!(!q.is_empty(), "LB_Kim of empty sequences");
    let first = q[0] - c[0];
    let last = q[q.len() - 1] - c[c.len() - 1];
    first * first + last * last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::dtw_banded;
    use proptest::prelude::*;
    use smiler_timeseries::Envelope;

    fn lbeq(q: &[f64], c: &[f64], rho: usize) -> f64 {
        let env = Envelope::compute(q, rho);
        lb_keogh_env(c, &env)
    }

    fn lbec(q: &[f64], c: &[f64], rho: usize) -> f64 {
        let env = Envelope::compute(c, rho);
        lb_keogh_env(q, &env)
    }

    #[test]
    fn zero_for_identical() {
        let q = [1.0, 2.0, 3.0];
        assert_eq!(lbeq(&q, &q, 1), 0.0);
        assert_eq!(lbec(&q, &q, 1), 0.0);
        assert_eq!(lb_kim_fl(&q, &q), 0.0);
    }

    #[test]
    fn inside_envelope_contributes_nothing() {
        let walk = [0.5, 0.5];
        assert_eq!(lb_keogh(&walk, &[1.0, 1.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn outside_envelope_squared_distance() {
        // 2 above upper and 1 below lower → 4 + 1.
        let walk = [3.0, -1.0];
        assert_eq!(lb_keogh(&walk, &[1.0, 1.0], &[0.0, 0.0]), 5.0);
    }

    #[test]
    fn lb_en_is_max_of_directions() {
        let q = [0.0, 1.0, 4.0, 2.0];
        let c = [1.0, 3.0, 0.0, 0.5];
        let rho = 1;
        let qe = Envelope::compute(&q, rho);
        let ce = Envelope::compute(&c, rho);
        let en = lb_en(&q, &c, (&qe.upper, &qe.lower), (&ce.upper, &ce.lower));
        assert_eq!(en, lbeq(&q, &c, rho).max(lbec(&q, &c, rho)));
    }

    #[test]
    fn kim_bound_is_tight_on_endpoint_mismatch() {
        let q = [5.0, 0.0, 0.0, 7.0];
        let c = [1.0, 0.0, 0.0, 2.0];
        assert_eq!(lb_kim_fl(&q, &c), 16.0 + 25.0);
        assert!(lb_kim_fl(&q, &c) <= dtw_banded(&q, &c, 1));
    }

    proptest! {
        #[test]
        fn lower_bounds_never_exceed_dtw(
            (q, c) in (2usize..40).prop_flat_map(|n| (
                prop::collection::vec(-10.0f64..10.0, n),
                prop::collection::vec(-10.0f64..10.0, n),
            )),
            rho in 0usize..8,
        ) {
            let d = dtw_banded(&q, &c, rho);
            let eq = lbeq(&q, &c, rho);
            let ec = lbec(&q, &c, rho);
            prop_assert!(eq <= d + 1e-9, "LBEQ {} > DTW {}", eq, d);
            prop_assert!(ec <= d + 1e-9, "LBEC {} > DTW {}", ec, d);
            prop_assert!(lb_kim_fl(&q, &c) <= d + 1e-9);
        }

        #[test]
        fn lb_en_dominates_components(
            (q, c) in (2usize..30).prop_flat_map(|n| (
                prop::collection::vec(-5.0f64..5.0, n),
                prop::collection::vec(-5.0f64..5.0, n),
            )),
            rho in 0usize..6,
        ) {
            let qe = Envelope::compute(&q, rho);
            let ce = Envelope::compute(&c, rho);
            let en = lb_en(&q, &c, (&qe.upper, &qe.lower), (&ce.upper, &ce.lower));
            prop_assert!(en >= lbeq(&q, &c, rho));
            prop_assert!(en >= lbec(&q, &c, rho));
            prop_assert!(en <= dtw_banded(&q, &c, rho) + 1e-9);
        }

        #[test]
        fn tighter_band_gives_larger_bound(
            (q, c) in (2usize..30).prop_flat_map(|n| (
                prop::collection::vec(-5.0f64..5.0, n),
                prop::collection::vec(-5.0f64..5.0, n),
            )),
            rho in 0usize..6,
        ) {
            // Envelopes of a narrower band are tighter → LB is larger.
            prop_assert!(lbeq(&q, &c, rho) >= lbeq(&q, &c, rho + 1) - 1e-12);
        }
    }
}
