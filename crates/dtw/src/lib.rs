//! Dynamic Time Warping under a Sakoe-Chiba band, plus its lower bounds.
//!
//! The paper uses banded DTW as the similarity measure of the suffix kNN
//! search (§4, Appendix B.1) and verification runs on the GPU with a
//! *compressed warping matrix* of size `2×(2ρ+2)` that fits shared memory
//! (Appendix E, Algorithm 2). Filtering uses `LB_Keogh` (Keogh 2002) in
//! both envelope directions and the paper's enhanced bound
//! `LBen = max(LBEQ, LBEC)` (§4.2, Theorem 4.1).
//!
//! Conventions (match the UCR suite and the paper's figures):
//! * per-cell cost is the **squared difference**, and distances are the
//!   accumulated sums (no final square root) — lower bounds compare in the
//!   same squared space;
//! * both sequences have equal length `d` and the warping path stays within
//!   `ρ` cells of the diagonal.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod distance;
pub mod lb;

pub use distance::{
    dtw_banded, dtw_compressed, dtw_compressed_with, dtw_early_abandon, dtw_early_abandon_counted,
    dtw_early_abandon_counted_with, dtw_early_abandon_with, dtw_ops_estimate, DtwScratch,
};
pub use lb::{lb_en, lb_keogh, lb_kim_fl};
