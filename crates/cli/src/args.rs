//! Minimal `--flag value` argument parsing.
//!
//! The approved dependency set has no argument-parsing crate, and the CLI
//! needs only subcommands plus `--key value` / `--switch` flags — two dozen
//! lines of splitting, kept dependency-free on purpose.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument), if any.
    pub command: Option<String>,
    flags: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// Errors raised while parsing or querying arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` appeared without the value it requires.
    MissingValue(String),
    /// A required flag was absent.
    Required(String),
    /// A flag's value failed to parse.
    Invalid {
        /// Flag name.
        flag: String,
        /// Offending value.
        value: String,
    },
    /// A positional argument appeared where none is accepted.
    UnexpectedPositional(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "--{flag} requires a value"),
            ArgError::Required(flag) => write!(f, "--{flag} is required"),
            ArgError::Invalid { flag, value } => {
                write!(f, "--{flag}: cannot parse {value:?}")
            }
            ArgError::UnexpectedPositional(arg) => write!(f, "unexpected argument {arg:?}"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Switch flags (no value). Everything else starting with `--` takes one.
const SWITCHES: &[&str] = &["interval", "help", "quiet"];

impl Args {
    /// Parse raw arguments (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut it = raw.into_iter();
        while let Some(token) = it.next() {
            if let Some(name) = token.strip_prefix("--") {
                if SWITCHES.contains(&name) {
                    args.switches.push(name.to_string());
                } else {
                    let value =
                        it.next().ok_or_else(|| ArgError::MissingValue(name.to_string()))?;
                    args.flags.insert(name.to_string(), value);
                }
            } else if args.command.is_none() {
                args.command = Some(token);
            } else {
                return Err(ArgError::UnexpectedPositional(token));
            }
        }
        Ok(args)
    }

    /// Optional string flag.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// Required string flag.
    pub fn require(&self, flag: &str) -> Result<&str, ArgError> {
        self.get(flag).ok_or_else(|| ArgError::Required(flag.to_string()))
    }

    /// Optional parsed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError::Invalid { flag: flag.to_string(), value: v.to_string() }),
        }
    }

    /// Comma-separated list flag with a default.
    pub fn get_list(&self, flag: &str, default: &[usize]) -> Result<Vec<usize>, ArgError> {
        match self.get(flag) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|p| {
                    p.trim().parse::<usize>().map_err(|_| ArgError::Invalid {
                        flag: flag.to_string(),
                        value: p.to_string(),
                    })
                })
                .collect(),
        }
    }

    /// Whether a boolean switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn command_and_flags() {
        let a = parse(&["forecast", "--input", "x.csv", "--horizon", "6"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("forecast"));
        assert_eq!(a.get("input"), Some("x.csv"));
        assert_eq!(a.get_or::<usize>("horizon", 1).unwrap(), 6);
        assert_eq!(a.get_or::<usize>("steps", 3).unwrap(), 3);
    }

    #[test]
    fn switches_take_no_value() {
        let a = parse(&["forecast", "--interval", "--input", "x.csv"]).unwrap();
        assert!(a.switch("interval"));
        assert_eq!(a.get("input"), Some("x.csv"));
        assert!(!a.switch("quiet"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(matches!(
            parse(&["forecast", "--input"]),
            Err(ArgError::MissingValue(f)) if f == "input"
        ));
    }

    #[test]
    fn require_reports_flag_name() {
        let a = parse(&["forecast"]).unwrap();
        assert_eq!(a.require("input"), Err(ArgError::Required("input".into())));
    }

    #[test]
    fn list_parsing() {
        let a = parse(&["evaluate", "--horizons", "1, 5,10"]).unwrap();
        assert_eq!(a.get_list("horizons", &[1]).unwrap(), vec![1, 5, 10]);
        assert_eq!(a.get_list("other", &[2, 4]).unwrap(), vec![2, 4]);
        let bad = parse(&["evaluate", "--horizons", "1,x"]).unwrap();
        assert!(bad.get_list("horizons", &[1]).is_err());
    }

    #[test]
    fn extra_positional_rejected() {
        assert!(matches!(parse(&["forecast", "extra"]), Err(ArgError::UnexpectedPositional(_))));
    }

    #[test]
    fn invalid_numeric_flag() {
        let a = parse(&["forecast", "--horizon", "six"]).unwrap();
        assert!(matches!(a.get_or::<usize>("horizon", 1), Err(ArgError::Invalid { .. })));
    }
}
