//! `smiler` — command-line front end for the SMiLer system.
//!
//! ```text
//! smiler forecast --input sensor.csv --horizons 1,6 --interval
//! smiler evaluate --input sensor.csv --models smiler-gp,lazyknn
//! smiler generate --dataset road --days 14 > road.csv
//! smiler info
//! ```

mod args;
mod commands;

fn main() {
    let parsed = match args::Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    match commands::run(&parsed) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
