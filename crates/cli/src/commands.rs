//! CLI command implementations. Each command returns its report as a
//! `String` so the logic is unit-testable; `main` only prints.

use crate::args::{ArgError, Args};
use smiler_baselines::holtwinters::HoltWinters;
use smiler_baselines::lazyknn::{LazyKnn, LazyKnnConfig};
use smiler_baselines::linear::{self, LinearConfig};
use smiler_baselines::SeriesPredictor;
use smiler_core::eval::{evaluate, EvalConfig};
use smiler_core::sensor::{SmilerConfig, SmilerForecaster};
use smiler_core::serve::{run_load, LoadGen, ServeConfig, SmilerServer};
use smiler_core::{DurableError, DurableSystem, PredictorKind, RequestPolicy, SensorPredictor};
use smiler_gpu::Device;
use smiler_store::{FlushPolicy, StoreConfig};
use smiler_timeseries::io;
use smiler_timeseries::normalize::ZNorm;
use smiler_timeseries::synthetic::{DatasetKind, SyntheticSpec};
use std::fmt::Write as _;
use std::sync::Arc;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// Argument problem.
    Args(ArgError),
    /// Series I/O problem.
    Io(io::IoError),
    /// Anything else worth explaining.
    Other(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<io::IoError> for CliError {
    fn from(e: io::IoError) -> Self {
        CliError::Io(e)
    }
}

impl From<DurableError> for CliError {
    fn from(e: DurableError) -> Self {
        CliError::Other(e.to_string())
    }
}

/// Usage text.
pub const USAGE: &str = "\
smiler — semi-lazy time series prediction for sensors (SIGMOD'15 reproduction)

USAGE:
  smiler forecast --input <file> [--column <name>] [--horizons 1,6]
                  [--predictor gp|ar] [--warmup 16] [--interval]
                  [--deadline-ms <ms>]
  smiler evaluate --input <file> [--column <name>] [--steps 50]
                  [--horizons 1,5,10] [--models smiler-gp,smiler-ar,lazyknn,...]
  smiler generate --dataset road|mall|net [--days 14] [--seed 7]
  smiler serve --shards <N> [--qps <rate>] [--sensors 8] [--clients 4]
               [--requests 64] [--horizon 1] [--deadline-ms <ms>]
               [--max-batch 16] [--queue 64] [--predictor gp|ar]
               [--dataset road|mall|net] [--days 2] [--seed 7]
               [--data-dir <dir>] [--flush always|every-<n>|interval-<ms>]
               [--trace-requests-out <path>] [--trace-sample <n>]
               [--status-every <s>] [--slo-ms <ms>]
  smiler checkpoint --data-dir <dir> [--flush <policy>]
  smiler restore --data-dir <dir> [--flush <policy>]
  smiler info

Series files are one-value-per-line or CSV (use --column for a named CSV
column). Forecasts are printed in the input's units.

LOAD SERVING (serve):
  Partitions a synthetic sensor fleet across --shards worker threads and
  drives it with closed-loop clients (optionally paced to an aggregate
  --qps). Concurrently queued forecasts on a shard are micro-batched into
  one fleet search — one simulated GPU launch per phase serves many
  sensors. A full shard queue sheds requests with a typed Overloaded
  error; --max-batch 1 disables batching for comparison.

SERVING (forecast):
  --deadline-ms <ms>     per-request latency budget; requests degrade down
                         the ladder (full ensemble → cached hyperparameters
                         → aggregation → last-value hold) instead of blowing
                         the budget. Each forecast line reports the rung
                         that served it.

PERSISTENCE:
  serve --data-dir <dir> makes the fleet durable: every observation is
  WAL-logged before the index advances, and shutdown checkpoints the
  drained fleet. Restarting with the same --data-dir restores from the
  newest valid checkpoint plus WAL-tail replay — bitwise-identical to a
  fleet that never stopped. `smiler checkpoint` folds the WAL tail into a
  fresh checkpoint (bounding restart time); `smiler restore` runs recovery
  and reports what it found (use --metrics-out for the store.* series).
  --flush picks the group-commit fsync cadence (default every-32).

OBSERVABILITY (any command):
  --metrics-out <path>   write end-of-run metrics as JSON lines (includes
                         the health.* serving counters: degradation rungs,
                         deadline misses, GP failures)
  --trace-out <path>     write the event/span trace as JSON lines
  --quiet                suppress the human-readable summary table

REQUEST TRACING & STATUS (serve):
  --trace-requests-out <path>  write one JSON line per finished request
                         (trace id, shard, batch id, rung, degradation
                         reason, queue/total latency, event timeline).
                         Tail-sampled: slow, degraded, shed, or faulted
                         requests are always kept.
  --trace-sample <n>     keep 1-in-<n> fast healthy full-ensemble traces
                         (default 1 = keep all; the tail is always kept)
  --status-every <s>     print a live fleet status line to stderr every
                         <s> seconds (tail latency, rung mix, SLO burn)
  --slo-ms <ms>          end-to-end latency SLO target for error-budget
                         accounting in the status line (default 50)
";

/// Dispatch a parsed command line.
pub fn run(args: &Args) -> Result<String, CliError> {
    if args.switch("help") {
        return Ok(USAGE.to_string());
    }
    let metrics_out = args.get("metrics-out").map(std::path::PathBuf::from);
    let trace_out = args.get("trace-out").map(std::path::PathBuf::from);
    let observing = metrics_out.is_some() || trace_out.is_some();
    if observing {
        smiler_obs::reset();
        smiler_obs::set_enabled(true);
    }
    let mut output = match args.command.as_deref() {
        Some("forecast") => forecast(args),
        Some("evaluate") => evaluate_cmd(args),
        Some("generate") => generate(args),
        Some("serve") => serve(args),
        Some("checkpoint") => checkpoint_cmd(args),
        Some("restore") => restore_cmd(args),
        Some("info") => Ok(info()),
        Some(other) => Err(CliError::Other(format!("unknown command {other:?}\n\n{USAGE}"))),
        None => Ok(USAGE.to_string()),
    }?;
    if observing {
        if let Some(path) = &metrics_out {
            smiler_obs::write_metrics_jsonl(path).map_err(|e| {
                CliError::Other(format!("cannot write metrics to {}: {e}", path.display()))
            })?;
        }
        if let Some(path) = &trace_out {
            smiler_obs::write_trace_jsonl(path).map_err(|e| {
                CliError::Other(format!("cannot write trace to {}: {e}", path.display()))
            })?;
        }
        if !args.switch("quiet") {
            let table = smiler_obs::summary_table();
            if !table.is_empty() {
                output.push_str("\n-- observability summary --\n");
                output.push_str(&table);
            }
        }
    }
    Ok(output)
}

fn load_series(args: &Args) -> Result<Vec<f64>, CliError> {
    let path = args.require("input")?;
    Ok(io::read_series_file(path, args.get("column"))?)
}

/// `smiler forecast`: multi-horizon forecasts off the end of a series.
fn forecast(args: &Args) -> Result<String, CliError> {
    let raw = load_series(args)?;
    let horizons = args.get_list("horizons", &[1, 6])?;
    let h_max = *horizons.iter().max().expect("non-empty horizons");
    let predictor_kind = match args.get("predictor").unwrap_or("gp") {
        "gp" => PredictorKind::GaussianProcess,
        "ar" => PredictorKind::Aggregation,
        other => return Err(CliError::Other(format!("unknown predictor {other:?} (gp|ar)"))),
    };

    let config = SmilerConfig { h_max, ..Default::default() };
    let d_master = *config.ensemble.elv.iter().max().expect("non-empty ELV");
    let needed = d_master + h_max + 1;
    if raw.len() < needed {
        return Err(CliError::Other(format!(
            "need at least {needed} observations for the default configuration, got {}",
            raw.len()
        )));
    }

    // Normalise in, de-normalise out: users think in sensor units.
    let znorm = ZNorm::fit(&raw);
    let normalised = znorm.apply_all(&raw);
    let device = Arc::new(Device::default_gpu());

    // Warm-up replay: hold back the last `warmup` observations, then feed
    // them through predict/observe so the ensemble weights (and, for GP,
    // the hyperparameters) adapt to the series before the real forecast —
    // the same continuous loop the paper's system runs. Clamped so the
    // held-back prefix still supports the configuration.
    let warmup = args.get_or("warmup", 16usize)?.min(normalised.len() - needed);
    let split = normalised.len() - warmup;
    let mut predictor =
        SensorPredictor::new(device, 0, normalised[..split].to_vec(), config, predictor_kind);
    for &v in &normalised[split..] {
        let _ = predictor.predict(1);
        predictor.observe(v);
    }

    let deadline_ms: Option<u64> = match args.get("deadline-ms") {
        Some(s) => {
            Some(s.parse().map_err(|_| CliError::Other(format!("invalid --deadline-ms {s:?}")))?)
        }
        None => None,
    };
    let policy = match deadline_ms {
        Some(ms) => RequestPolicy::with_deadline(std::time::Duration::from_millis(ms)),
        None => RequestPolicy::default(),
    };

    let mut out = String::new();
    let _ = writeln!(out, "forecasts from t = {} ({} observations read):", raw.len(), raw.len());
    let want_interval = args.switch("interval");
    let mut missed = 0usize;
    for &h in &horizons {
        let pred = predictor
            .try_predict_with(h, &policy)
            .map_err(|e| CliError::Other(format!("prediction failed: {e}")))?;
        let mean = znorm.invert(pred.mean);
        let sd = znorm.invert_variance(pred.variance).max(0.0).sqrt();
        if want_interval {
            let _ = write!(
                out,
                "t+{h:<4} {mean:12.4}   95% [{:.4}, {:.4}]",
                mean - 1.96 * sd,
                mean + 1.96 * sd
            );
        } else {
            let _ = write!(out, "t+{h:<4} {mean:12.4}");
        }
        if deadline_ms.is_some() {
            let _ = write!(out, "   served={}", pred.level.as_str());
            if pred.deadline_missed {
                missed += 1;
                let _ = write!(out, " (deadline missed)");
            }
        }
        out.push('\n');
    }
    if let Some(ms) = deadline_ms {
        let _ = writeln!(
            out,
            "serving health: deadline {ms} ms, {missed}/{} deadline misses",
            horizons.len()
        );
    }
    Ok(out)
}

/// Model factory for `smiler evaluate`.
fn make_model(
    name: &str,
    device: &Arc<Device>,
    horizons: &[usize],
    period: usize,
) -> Result<Box<dyn SeriesPredictor>, CliError> {
    let h_max = *horizons.iter().max().expect("non-empty");
    let lin = LinearConfig { window: 32, horizons: horizons.to_vec(), ..Default::default() };
    Ok(match name {
        "smiler-gp" => Box::new(SmilerForecaster::gp(
            Arc::clone(device),
            SmilerConfig { h_max, ..Default::default() },
        )),
        "smiler-ar" => Box::new(SmilerForecaster::ar(
            Arc::clone(device),
            SmilerConfig { h_max, ..Default::default() },
        )),
        "lazyknn" => Box::new(LazyKnn::new(LazyKnnConfig::default())),
        "holtwinters" => Box::new(HoltWinters::full(period)),
        "onlinesvr" => Box::new(linear::online_svr(lin)),
        "onlinerr" => Box::new(linear::online_rr(lin)),
        other => {
            return Err(CliError::Other(format!(
            "unknown model {other:?} (smiler-gp|smiler-ar|lazyknn|holtwinters|onlinesvr|onlinerr)"
        )))
        }
    })
}

/// `smiler evaluate`: continuous-prediction comparison on a user series.
fn evaluate_cmd(args: &Args) -> Result<String, CliError> {
    let raw = load_series(args)?;
    let horizons = args.get_list("horizons", &[1, 5, 10])?;
    let steps: usize = args.get_or("steps", 50)?;
    let period: usize = args.get_or("period", 144)?;
    let model_list = args
        .get("models")
        .unwrap_or("smiler-gp,smiler-ar,lazyknn")
        .split(',')
        .map(|s| s.trim().to_lowercase())
        .collect::<Vec<_>>();

    let h_max = *horizons.iter().max().expect("non-empty");
    if raw.len() <= steps + h_max + 1 {
        return Err(CliError::Other(format!(
            "series of {} too short for {steps} steps at horizon {h_max}",
            raw.len()
        )));
    }
    let (normalised, _) = smiler_timeseries::normalize::z_normalize(&raw);

    let config = EvalConfig { horizons: horizons.clone(), steps };
    let device = Arc::new(Device::default_gpu());
    let mut out = String::new();
    let _ = writeln!(out, "{:<12} {:>10} {:>10}   per-horizon MAE", "model", "MAE", "MNLPD");
    for name in &model_list {
        let mut model = make_model(name, &device, &horizons, period)?;
        let r = evaluate(model.as_mut(), &normalised, &config);
        let avg_mae: f64 = r.mae.values().sum::<f64>() / r.mae.len() as f64;
        let avg_nlpd: f64 = r.mnlpd.values().sum::<f64>() / r.mnlpd.len() as f64;
        let detail: Vec<String> = r.mae.iter().map(|(h, m)| format!("h{h}:{m:.3}")).collect();
        let _ =
            writeln!(out, "{:<12} {avg_mae:>10.4} {avg_nlpd:>10.4}   {}", r.name, detail.join(" "));
    }
    Ok(out)
}

/// `smiler generate`: emit a synthetic sensor series to stdout.
fn generate(args: &Args) -> Result<String, CliError> {
    let kind = match args.require("dataset")? {
        "road" => DatasetKind::Road,
        "mall" => DatasetKind::Mall,
        "net" => DatasetKind::Net,
        other => return Err(CliError::Other(format!("unknown dataset {other:?} (road|mall|net)"))),
    };
    let days: usize = args.get_or("days", 14)?;
    let seed: u64 = args.get_or("seed", 7)?;
    let dataset = SyntheticSpec { kind, sensors: 1, days, seed }.generate();
    let mut out = String::with_capacity(dataset.sensors[0].len() * 8);
    let _ = writeln!(out, "# {} synthetic sensor, {days} days, seed {seed}", dataset.name);
    for v in dataset.sensors[0].values() {
        let _ = writeln!(out, "{v}");
    }
    Ok(out)
}

/// `smiler serve`: sharded load-serving over a synthetic fleet.
fn serve(args: &Args) -> Result<String, CliError> {
    let shards: usize = args.get_or("shards", 2)?;
    let sensors: usize = args.get_or("sensors", 8)?;
    let clients: usize = args.get_or("clients", 4)?;
    let requests: usize = args.get_or("requests", 64)?;
    let horizon: usize = args.get_or("horizon", 1)?;
    let max_batch: usize = args.get_or("max-batch", 16)?;
    let queue: usize = args.get_or("queue", 64)?;
    let days: usize = args.get_or("days", 2)?;
    let seed: u64 = args.get_or("seed", 7)?;
    let qps: Option<f64> = match args.get("qps") {
        Some(s) => Some(s.parse().map_err(|_| CliError::Other(format!("invalid --qps {s:?}")))?),
        None => None,
    };
    let deadline = match args.get("deadline-ms") {
        Some(s) => Some(std::time::Duration::from_millis(
            s.parse().map_err(|_| CliError::Other(format!("invalid --deadline-ms {s:?}")))?,
        )),
        None => None,
    };
    let slo_ms: u64 = args.get_or("slo-ms", 50)?;
    let trace_requests_out = args.get("trace-requests-out").map(std::path::PathBuf::from);
    let trace_sample: u64 = args.get_or("trace-sample", 1)?;
    let status_every = match args.get("status-every") {
        Some(s) => {
            let seconds: f64 =
                s.parse().map_err(|_| CliError::Other(format!("invalid --status-every {s:?}")))?;
            (seconds > 0.0).then(|| std::time::Duration::from_secs_f64(seconds))
        }
        None => None,
    };
    let predictor_kind = match args.get("predictor").unwrap_or("ar") {
        "gp" => PredictorKind::GaussianProcess,
        "ar" => PredictorKind::Aggregation,
        other => return Err(CliError::Other(format!("unknown predictor {other:?} (gp|ar)"))),
    };
    let kind = match args.get("dataset").unwrap_or("road") {
        "road" => DatasetKind::Road,
        "mall" => DatasetKind::Mall,
        "net" => DatasetKind::Net,
        other => return Err(CliError::Other(format!("unknown dataset {other:?} (road|mall|net)"))),
    };

    let config = SmilerConfig { h_max: horizon.max(1), ..Default::default() };
    let device = Arc::new(Device::default_gpu());
    let mut durability_note = String::new();
    let (fleet, store) = match args.get("data-dir").map(std::path::PathBuf::from) {
        Some(dir) => {
            let store_config = store_config_from_args(args)?;
            // Warm restart if the directory holds fleet state; cold-start a
            // synthetic fleet into it otherwise. Serving checkpoints on
            // drain, so the in-run checkpoint cadence stays 0.
            match DurableSystem::open(Arc::clone(&device), &dir, store_config.clone(), 0) {
                Ok((durable, report)) => {
                    let _ = writeln!(
                        durability_note,
                        "restored {} sensors from {} (checkpoint seq {}, replayed {} rounds + \
                         {} observes in {:.3}s)",
                        report.sensors,
                        dir.display(),
                        report.checkpoint_seq,
                        report.replayed_rounds,
                        report.replayed_observes,
                        report.open_seconds + report.rebuild_seconds + report.replay_seconds,
                    );
                    let (system, store) = durable.into_parts();
                    (system.into_sensors(), Some(store))
                }
                Err(DurableError::NoState) => {
                    let dataset = SyntheticSpec { kind, sensors, days, seed }.generate();
                    let histories: Vec<Vec<f64>> = dataset
                        .sensors
                        .iter()
                        .map(|s| smiler_timeseries::normalize::z_normalize(s.values()).0)
                        .collect();
                    let (durable, _) = DurableSystem::create(
                        Arc::clone(&device),
                        histories,
                        config.clone(),
                        predictor_kind,
                        &dir,
                        store_config,
                        0,
                    )?;
                    let _ = writeln!(durability_note, "created durable state at {}", dir.display());
                    let (system, store) = durable.into_parts();
                    (system.into_sensors(), Some(store))
                }
                Err(e) => return Err(e.into()),
            }
        }
        None => {
            let dataset = SyntheticSpec { kind, sensors, days, seed }.generate();
            let fleet: Vec<SensorPredictor> = dataset
                .sensors
                .iter()
                .enumerate()
                .map(|(id, s)| {
                    let (normalised, _) = smiler_timeseries::normalize::z_normalize(s.values());
                    SensorPredictor::new(
                        Arc::clone(&device),
                        id,
                        normalised,
                        config.clone(),
                        predictor_kind,
                    )
                })
                .collect();
            (fleet, None)
        }
    };
    let sensors = fleet.len();

    let serve_config = ServeConfig {
        shards,
        queue_capacity: queue,
        max_batch,
        slo_target: std::time::Duration::from_millis(slo_ms),
        ..ServeConfig::default()
    };
    // Request tracing rides the whole serving run: install the sink before
    // the server starts so admission sees it active from the first request.
    if let Some(path) = &trace_requests_out {
        let trace_config = smiler_obs::trace::TraceConfig {
            sample_every: trace_sample.max(1),
            ..Default::default()
        };
        smiler_obs::trace::install_file_sink(path, trace_config).map_err(|e| {
            CliError::Other(format!("cannot open trace sink {}: {e}", path.display()))
        })?;
    }
    device.reset_clock();
    let server = match store {
        Some(store) => SmilerServer::start_with_store(
            Arc::clone(&device),
            fleet,
            serve_config,
            smiler_store::shared(store),
        ),
        None => SmilerServer::start(Arc::clone(&device), fleet, serve_config),
    };
    let handle = server.handle();
    // Live status ticker: a line to stderr every --status-every seconds
    // while the load runs (stderr so it never mixes into the report).
    let ticker_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let ticker = status_every.map(|period| {
        let handle = handle.clone();
        let stop = Arc::clone(&ticker_stop);
        std::thread::spawn(move || {
            let mut last = std::time::Instant::now();
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(25).min(period));
                if last.elapsed() >= period {
                    eprintln!("{}", handle.status_report().render_line());
                    last = std::time::Instant::now();
                }
            }
        })
    });
    let gen = LoadGen { clients, requests_per_client: requests, horizon, qps, deadline };
    let report = run_load(&handle, &gen);
    let status = handle.status_report();
    ticker_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    if let Some(ticker) = ticker {
        let _ = ticker.join();
    }
    let stats = server.shutdown();
    let trace_stats = trace_requests_out.as_ref().map(|path| {
        smiler_obs::trace::flush_sink();
        let stats = smiler_obs::trace::sink_stats().unwrap_or_default();
        // Drop the sink: commands run in-process (tests, library use), so
        // tracing must not leak past this serve run.
        smiler_obs::trace::clear_sink();
        (path.clone(), stats)
    });

    let mut out = String::new();
    out.push_str(&durability_note);
    let _ = writeln!(
        out,
        "served {} sensors across {shards} shards (queue {queue}, max batch {max_batch})",
        sensors
    );
    let _ = writeln!(
        out,
        "requests: {} issued, {} ok, {} shed, {} errors",
        report.requests, report.ok, report.shed, report.errors
    );
    let _ = writeln!(
        out,
        "throughput: {:.1} req/s over {:.2} s",
        report.throughput_rps, report.elapsed_seconds
    );
    let _ = writeln!(
        out,
        "latency ms: p50 {:.2}  p95 {:.2}  p99 {:.2}  max {:.2}",
        report.latency_p50_ms, report.latency_p95_ms, report.latency_p99_ms, report.latency_max_ms
    );
    let _ = writeln!(
        out,
        "micro-batching: {} batches, mean size {:.2}, {} timeouts",
        stats.batches,
        stats.mean_batch_size(),
        stats.timeouts
    );
    let _ = writeln!(
        out,
        "device: {} kernel launches, {} blocks",
        device.kernel_launches(),
        device.blocks_launched()
    );
    if let Some((path, t)) = trace_stats {
        let _ = writeln!(
            out,
            "request traces: {} emitted, {} sampled out, {} write errors -> {}",
            t.emitted,
            t.sampled_out,
            t.write_errors,
            path.display()
        );
    }
    let _ = writeln!(out, "status: {}", status.render_line());
    Ok(out)
}

fn store_config_from_args(args: &Args) -> Result<StoreConfig, CliError> {
    let flush = match args.get("flush") {
        Some(s) => s.parse::<FlushPolicy>().map_err(CliError::Other)?,
        None => FlushPolicy::default(),
    };
    Ok(StoreConfig { flush, ..StoreConfig::default() })
}

fn restore_report_lines(out: &mut String, report: &smiler_core::RestoreReport) {
    let _ = writeln!(
        out,
        "restored {} sensors from checkpoint seq {}",
        report.sensors, report.checkpoint_seq
    );
    let _ = writeln!(
        out,
        "replayed {} fleet rounds + {} observations from the WAL tail",
        report.replayed_rounds, report.replayed_observes
    );
    let _ = writeln!(
        out,
        "repairs: {} checkpoint(s) quarantined, {} WAL segment(s) quarantined, \
         {} torn byte(s) truncated",
        report.quarantined_checkpoints, report.quarantined_segments, report.truncated_bytes
    );
    let _ = writeln!(
        out,
        "timings: open {:.3}s, index rebuild {:.3}s, replay {:.3}s",
        report.open_seconds, report.rebuild_seconds, report.replay_seconds
    );
}

/// `smiler checkpoint`: fold the WAL tail into a fresh checkpoint so the
/// next restart replays (almost) nothing, then prune covered WAL segments.
fn checkpoint_cmd(args: &Args) -> Result<String, CliError> {
    let dir = std::path::PathBuf::from(args.require("data-dir")?);
    let device = Arc::new(Device::default_gpu());
    let (mut durable, report) =
        DurableSystem::open(device, &dir, store_config_from_args(args)?, 0)?;
    let mut out = String::new();
    restore_report_lines(&mut out, &report);
    let seq = durable.checkpoint()?;
    let _ = writeln!(out, "checkpointed {} at seq {seq}", dir.display());
    Ok(out)
}

/// `smiler restore`: run the recovery ladder and report what it found —
/// a dry-run restart that doubles as an integrity check.
fn restore_cmd(args: &Args) -> Result<String, CliError> {
    let dir = std::path::PathBuf::from(args.require("data-dir")?);
    let device = Arc::new(Device::default_gpu());
    let (durable, report) = DurableSystem::open(device, &dir, store_config_from_args(args)?, 0)?;
    let mut out = String::new();
    restore_report_lines(&mut out, &report);
    let quarantined = durable.system().quarantined();
    if quarantined.is_empty() {
        let _ = writeln!(out, "fleet healthy: {} sensors ready", report.sensors);
    } else {
        let _ = writeln!(out, "quarantined sensors: {quarantined:?}");
    }
    Ok(out)
}

/// `smiler info`: defaults and provenance.
fn info() -> String {
    let c = SmilerConfig::default();
    format!(
        "SMiLer (Zhou & Tung, SIGMOD 2015) — semi-lazy GP prediction\n\
         defaults (paper Table 2):\n\
         \x20 warping width ρ     : {}\n\
         \x20 window length ω     : {}\n\
         \x20 EKV (neighbours)    : {:?}\n\
         \x20 ELV (segment len)   : {:?}\n\
         \x20 max horizon         : {}\n\
         device: simulated GTX TITAN (14 SMX, 6 GB) — no GPU required\n",
        c.rho, c.omega, c.ensemble.ekv, c.ensemble.elv, c.h_max
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    fn write_temp_series(name: &str, n: usize) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        let values: Vec<f64> = (0..n)
            .map(|i| 500.0 + 120.0 * (i as f64 * std::f64::consts::TAU / 48.0).sin())
            .collect();
        io::write_series(std::fs::File::create(&path).unwrap(), &values).unwrap();
        path
    }

    #[test]
    fn no_command_prints_usage() {
        assert!(run(&args(&[])).unwrap().contains("USAGE"));
        assert!(run(&args(&["--help"])).unwrap().contains("USAGE"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run(&args(&["frobnicate"])).is_err());
    }

    #[test]
    fn info_mentions_paper_defaults() {
        let s = run(&args(&["info"])).unwrap();
        assert!(s.contains("ρ"));
        assert!(s.contains("[32, 64, 96]"));
    }

    #[test]
    fn generate_emits_values() {
        let s = run(&args(&["generate", "--dataset", "road", "--days", "4"])).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("# ROAD"));
        assert_eq!(lines.len() - 1, 4 * 144);
        assert!(lines[1].parse::<f64>().is_ok());
    }

    #[test]
    fn forecast_end_to_end() {
        let path = write_temp_series("smiler_cli_forecast.csv", 400);
        let s = run(&args(&[
            "forecast",
            "--input",
            path.to_str().unwrap(),
            "--horizons",
            "1,6",
            "--predictor",
            "ar",
            "--interval",
        ]))
        .unwrap();
        assert!(s.contains("t+1"), "{s}");
        assert!(s.contains("t+6"));
        assert!(s.contains("95%"));
        // Forecast must be in raw units (hundreds, not z-scores).
        let value: f64 = s
            .lines()
            .find(|l| l.starts_with("t+1"))
            .and_then(|l| l.split_whitespace().nth(1))
            .unwrap()
            .parse()
            .unwrap();
        assert!(value > 300.0 && value < 700.0, "raw-unit forecast, got {value}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn forecast_with_observability_writes_jsonl() {
        let path = write_temp_series("smiler_cli_obs.csv", 400);
        let metrics = std::env::temp_dir().join("smiler_cli_obs_metrics.jsonl");
        let trace = std::env::temp_dir().join("smiler_cli_obs_trace.jsonl");
        let s = run(&args(&[
            "forecast",
            "--input",
            path.to_str().unwrap(),
            "--predictor",
            "gp",
            "--horizons",
            "1",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(s.contains("observability summary"), "{s}");
        let m = std::fs::read_to_string(&metrics).unwrap();
        for needle in [
            "search/filter",
            "search/verify",
            "search/select",
            "gp.train",
            "ensemble.update",
            "search.pruning_ratio",
            "health.predictions",
        ] {
            assert!(m.contains(needle), "metrics file missing {needle}:\n{m}");
        }
        let t = std::fs::read_to_string(&trace).unwrap();
        assert!(t.lines().count() > 0);
        assert!(t.lines().all(|l| l.starts_with('{') && l.ends_with('}')), "{t}");
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(metrics);
        let _ = std::fs::remove_file(trace);
    }

    #[test]
    fn forecast_with_deadline_reports_serving_rung() {
        let path = write_temp_series("smiler_cli_deadline.csv", 400);
        // A generous budget: the full pipeline fits comfortably.
        let s = run(&args(&[
            "forecast",
            "--input",
            path.to_str().unwrap(),
            "--predictor",
            "ar",
            "--horizons",
            "1",
            "--deadline-ms",
            "10000",
        ]))
        .unwrap();
        assert!(s.contains("served=full_ensemble"), "{s}");
        assert!(s.contains("serving health: deadline 10000 ms"), "{s}");
        // A zero budget: every request degrades to the last-value hold —
        // and still produces a finite raw-unit forecast.
        let s = run(&args(&[
            "forecast",
            "--input",
            path.to_str().unwrap(),
            "--predictor",
            "ar",
            "--horizons",
            "1",
            "--deadline-ms",
            "0",
        ]))
        .unwrap();
        assert!(s.contains("served=last_value"), "{s}");
        let value: f64 = s
            .lines()
            .find(|l| l.starts_with("t+1"))
            .and_then(|l| l.split_whitespace().nth(1))
            .unwrap()
            .parse()
            .unwrap();
        assert!(value.is_finite());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bad_deadline_is_reported() {
        let path = write_temp_series("smiler_cli_baddl.csv", 400);
        let err =
            run(&args(&["forecast", "--input", path.to_str().unwrap(), "--deadline-ms", "soon"]))
                .unwrap_err();
        assert!(err.to_string().contains("invalid --deadline-ms"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn forecast_rejects_short_series() {
        let path = write_temp_series("smiler_cli_short.csv", 20);
        let err = run(&args(&["forecast", "--input", path.to_str().unwrap()])).unwrap_err();
        assert!(err.to_string().contains("need at least"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn serve_reports_throughput_and_batching() {
        let s = run(&args(&[
            "serve",
            "--shards",
            "2",
            "--sensors",
            "4",
            "--clients",
            "2",
            "--requests",
            "6",
            "--days",
            "1",
        ]))
        .unwrap();
        assert!(s.contains("2 shards"), "{s}");
        assert!(s.contains("12 issued"), "{s}");
        assert!(s.contains("throughput"), "{s}");
        assert!(s.contains("micro-batching"), "{s}");
        assert!(s.contains("kernel launches"), "{s}");
    }

    #[test]
    fn serve_with_request_tracing_writes_terminal_traces() {
        let path =
            std::env::temp_dir().join(format!("smiler_cli_traces_{}.jsonl", std::process::id()));
        let s = run(&args(&[
            "serve",
            "--shards",
            "2",
            "--sensors",
            "4",
            "--clients",
            "2",
            "--requests",
            "8",
            "--days",
            "1",
            "--status-every",
            "0.05",
            "--trace-requests-out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(s.contains("request traces:"), "{s}");
        assert!(s.contains("status: smiler up"), "{s}");
        assert!(s.contains("slo"), "{s}");
        let contents = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = contents.lines().collect();
        // Other tests in this binary share the process-global sink, so the
        // file may carry their requests too; every admitted request of THIS
        // run must be there and every line must be schema-valid.
        assert!(lines.len() >= 16, "expected ≥16 terminal traces, got {}", lines.len());
        for line in &lines {
            smiler_obs::trace::validate_trace_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        }
        assert!(lines.iter().any(|l| l.contains("\"outcome\":\"served\"")), "{contents}");
    }

    #[test]
    fn restore_requires_existing_state() {
        let dir = std::env::temp_dir().join(format!("smiler_cli_nostate_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let err = run(&args(&["restore", "--data-dir", dir.to_str().unwrap()])).unwrap_err();
        assert!(err.to_string().contains("no recoverable fleet state"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_data_dir_cold_start_then_restore_then_checkpoint() {
        let dir = std::env::temp_dir().join(format!("smiler_cli_durable_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let serve_args = [
            "serve",
            "--shards",
            "1",
            "--sensors",
            "2",
            "--clients",
            "1",
            "--requests",
            "4",
            "--days",
            "1",
            "--data-dir",
            dir.to_str().unwrap(),
        ];

        // First run creates the durable directory and checkpoints on drain.
        let s = run(&args(&serve_args)).unwrap();
        assert!(s.contains("created durable state"), "{s}");

        // A restart from the same directory restores instead of recreating.
        let s = run(&args(&serve_args)).unwrap();
        assert!(s.contains("restored 2 sensors"), "{s}");

        // Offline recovery report, then WAL compaction.
        let s = run(&args(&["restore", "--data-dir", dir.to_str().unwrap()])).unwrap();
        assert!(s.contains("restored 2 sensors"), "{s}");
        assert!(s.contains("fleet healthy"), "{s}");
        let s = run(&args(&["checkpoint", "--data-dir", dir.to_str().unwrap()])).unwrap();
        assert!(s.contains("checkpointed"), "{s}");

        // Bad flush policies are argument errors, not panics.
        let err =
            run(&args(&["restore", "--data-dir", dir.to_str().unwrap(), "--flush", "sometimes"]))
                .unwrap_err();
        assert!(err.to_string().contains("flush policy"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evaluate_compares_models() {
        let path = write_temp_series("smiler_cli_eval.csv", 500);
        let s = run(&args(&[
            "evaluate",
            "--input",
            path.to_str().unwrap(),
            "--steps",
            "10",
            "--horizons",
            "1,3",
            "--models",
            "smiler-ar,lazyknn",
            "--period",
            "48",
        ]))
        .unwrap();
        assert!(s.contains("SMiLer-AR"), "{s}");
        assert!(s.contains("LazyKNN"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn unknown_model_is_reported() {
        let path = write_temp_series("smiler_cli_badmodel.csv", 500);
        let err =
            run(&args(&["evaluate", "--input", path.to_str().unwrap(), "--models", "nonsense"]))
                .unwrap_err();
        assert!(err.to_string().contains("unknown model"));
        let _ = std::fs::remove_file(path);
    }
}
