//! Exports: JSON-lines files for machines, a summary table for humans.
//!
//! Two documents cover the two consumption patterns:
//! - **metrics** (`write_metrics_jsonl`): one row per counter / gauge /
//!   histogram / span aggregate — the end-of-run statistical picture.
//! - **trace** (`write_trace_jsonl`): the event log in emission order,
//!   followed by the span aggregates so a trace file alone carries the
//!   phase breakdown.
//!
//! Every row is a single-line JSON object with a `"type"` discriminator:
//! `counter`, `gauge`, `histogram`, `span`, `event`, or `truncation` —
//! and three stamps assigned at export time (see [`crate::stamp`]): a
//! process-wide `seq` ordering records across files, plus `t_wall_ms` /
//! `t_mono_s` timestamps for joining export windows.

use serde::{Content, Serialize};

use crate::event::{events_dropped, events_snapshot};
use crate::registry::metrics_snapshot;
use crate::span::span_snapshot;
use crate::stamp;

fn row(kind: &str, fields: Vec<(&str, Content)>) -> String {
    let mut entries = vec![
        ("type".to_string(), Content::Str(kind.to_string())),
        ("seq".to_string(), Content::U64(stamp::next_export_seq())),
        ("t_wall_ms".to_string(), Content::U64(stamp::wall_clock_ms())),
        ("t_mono_s".to_string(), Content::F64(stamp::mono_seconds())),
    ];
    entries.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    serde_json::to_string(&ContentDoc(Content::Map(entries)))
        .expect("row serialisation is infallible")
}

/// Wrapper so a pre-built [`Content`] tree can go through `serde_json`.
pub(crate) struct ContentDoc(pub(crate) Content);

impl Serialize for ContentDoc {
    fn to_content(&self) -> Content {
        self.0.clone()
    }
}

fn str_field(name: &str, value: &str) -> (&'static str, Content) {
    // Matches the fixed field names used below; `name` is only consulted
    // for selection to keep call sites terse.
    let key: &'static str = match name {
        "name" => "name",
        "label" => "label",
        "path" => "path",
        _ => unreachable!("unknown string field"),
    };
    (key, Content::Str(value.to_string()))
}

/// All metric and span rows, one JSON object per line.
pub fn metrics_jsonl_string() -> String {
    let snap = metrics_snapshot();
    let mut lines = Vec::new();
    for c in &snap.counters {
        lines.push(row(
            "counter",
            vec![
                str_field("name", &c.name),
                str_field("label", &c.label),
                ("value", Content::U64(c.value)),
            ],
        ));
    }
    for g in &snap.gauges {
        lines.push(row(
            "gauge",
            vec![
                str_field("name", &g.name),
                str_field("label", &g.label),
                ("value", Content::F64(g.value)),
            ],
        ));
    }
    for h in &snap.histograms {
        lines.push(row(
            "histogram",
            vec![
                str_field("name", &h.name),
                str_field("label", &h.label),
                ("count", Content::U64(h.count)),
                ("sum", Content::F64(h.sum)),
                ("min", Content::F64(h.min)),
                ("max", Content::F64(h.max)),
                ("p50", Content::F64(h.p50)),
                ("p95", Content::F64(h.p95)),
                ("p99", Content::F64(h.p99)),
            ],
        ));
    }
    lines.extend(span_lines());
    lines.join("\n") + "\n"
}

fn span_lines() -> Vec<String> {
    span_snapshot()
        .iter()
        .map(|s| {
            row(
                "span",
                vec![
                    str_field("path", &s.path),
                    ("count", Content::U64(s.count)),
                    ("total_seconds", Content::F64(s.total_seconds)),
                    ("mean_seconds", Content::F64(s.mean_seconds())),
                    ("aborted", Content::U64(s.aborted)),
                ],
            )
        })
        .collect()
}

/// The event log plus span aggregates, one JSON object per line.
pub fn trace_jsonl_string() -> String {
    let mut lines = Vec::new();
    let dropped = events_dropped();
    if dropped > 0 {
        lines.push(row("truncation", vec![("dropped_events", Content::U64(dropped))]));
    }
    for e in events_snapshot() {
        // The payload is already JSON; splice it in verbatim rather than
        // re-parsing it into a tree. `seq` is the export-time stamp like
        // every other row; the emission-order ring sequence (whose gaps
        // indicate evicted events) rides along as `event_seq`.
        let kind = serde_json::to_string(&e.kind).expect("string serialises");
        let label = serde_json::to_string(&e.label).expect("string serialises");
        lines.push(format!(
            "{{\"type\":\"event\",\"seq\":{},\"t_wall_ms\":{},\"t_mono_s\":{:?},\"event_seq\":{},\"t_seconds\":{:?},\"kind\":{},\"label\":{},\"payload\":{}}}",
            stamp::next_export_seq(),
            stamp::wall_clock_ms(),
            stamp::mono_seconds(),
            e.seq,
            e.t_seconds,
            kind,
            label,
            e.payload_json
        ));
    }
    lines.extend(span_lines());
    lines.join("\n") + "\n"
}

/// Write the metrics document to `path`.
pub fn write_metrics_jsonl(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, metrics_jsonl_string())
}

/// Write the trace document to `path`.
pub fn write_trace_jsonl(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, trace_jsonl_string())
}

fn fmt_seconds(s: f64) -> String {
    if !s.is_finite() {
        "-".to_string()
    } else if s < 1e-6 {
        format!("{:.1}ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

/// A human-readable end-of-run summary of spans, counters, gauges, and
/// histogram percentiles. Empty sections are omitted; returns an empty
/// string when nothing was recorded.
pub fn summary_table() -> String {
    let snap = metrics_snapshot();
    let spans = span_snapshot();
    let mut out = String::new();

    if !spans.is_empty() {
        out.push_str("spans:\n");
        out.push_str(&format!("  {:<40} {:>8} {:>12} {:>12}\n", "path", "count", "total", "mean"));
        for s in &spans {
            out.push_str(&format!(
                "  {:<40} {:>8} {:>12} {:>12}\n",
                s.path,
                s.count,
                fmt_seconds(s.total_seconds),
                fmt_seconds(s.mean_seconds()),
            ));
        }
    }
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        for c in &snap.counters {
            out.push_str(&format!("  {:<40} {:>12}\n", metric_key(&c.name, &c.label), c.value));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges:\n");
        for g in &snap.gauges {
            out.push_str(&format!("  {:<40} {:>12.4}\n", metric_key(&g.name, &g.label), g.value));
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("histograms:\n");
        out.push_str(&format!(
            "  {:<40} {:>8} {:>10} {:>10} {:>10}\n",
            "name", "count", "p50", "p95", "p99"
        ));
        for h in &snap.histograms {
            out.push_str(&format!(
                "  {:<40} {:>8} {:>10.4} {:>10.4} {:>10.4}\n",
                metric_key(&h.name, &h.label),
                h.count,
                h.p50,
                h.p95,
                h.p99,
            ));
        }
    }
    out
}

fn metric_key(name: &str, label: &str) -> String {
    if label.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{label}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::lock_global;
    use crate::{count, event, gauge_set, observe, span};

    fn parse_lines(doc: &str) -> Vec<serde::Content> {
        doc.lines()
            .map(|line| {
                serde_json::from_str::<ParsedDoc>(line)
                    .unwrap_or_else(|e| panic!("invalid JSONL line `{line}`: {e}"))
                    .0
            })
            .collect()
    }

    struct ParsedDoc(serde::Content);

    impl serde::Deserialize for ParsedDoc {
        fn from_content(c: &serde::Content) -> Result<Self, serde::DeError> {
            Ok(ParsedDoc(c.clone()))
        }
    }

    fn field<'a>(c: &'a serde::Content, name: &str) -> &'a serde::Content {
        serde::content_field(c.as_map().expect("row is an object"), name)
    }

    #[test]
    fn metrics_jsonl_round_trips() {
        let _g = lock_global();
        count("search.candidates", "d=64", 10);
        gauge_set("predictors.active", "", 5.0);
        observe("search.pruning_ratio", "d=64", 0.8);
        {
            let _s = span("search");
            let _v = span("verify");
        }
        let doc = metrics_jsonl_string();
        let rows = parse_lines(&doc);
        let types: Vec<&str> = rows.iter().map(|r| field(r, "type").as_str().unwrap()).collect();
        assert_eq!(types, vec!["counter", "gauge", "histogram", "span", "span"]);
        assert_eq!(field(&rows[0], "value").as_u64(), Some(10));
        assert_eq!(field(&rows[3], "path").as_str(), Some("search"));
        assert_eq!(field(&rows[4], "path").as_str(), Some("search/verify"));
    }

    #[test]
    fn trace_jsonl_embeds_payloads() {
        let _g = lock_global();
        #[derive(serde::Serialize)]
        struct P {
            x: usize,
        }
        event("gpu.launch", "kernel=filter", &P { x: 7 });
        {
            let _s = span("step");
        }
        let doc = trace_jsonl_string();
        let rows = parse_lines(&doc);
        assert_eq!(field(&rows[0], "type").as_str(), Some("event"));
        assert_eq!(field(&rows[0], "kind").as_str(), Some("gpu.launch"));
        let payload = field(&rows[0], "payload");
        assert_eq!(field(payload, "x").as_u64(), Some(7));
        assert_eq!(field(&rows[1], "type").as_str(), Some("span"));
    }

    #[test]
    fn export_rows_carry_ordering_stamps() {
        let _g = lock_global();
        count("c", "", 1);
        event("e", "", &1u64);
        {
            let _s = span("s");
        }
        let metrics = metrics_jsonl_string();
        let traces = trace_jsonl_string();
        let mut last_seq = None;
        for line in metrics.lines().chain(traces.lines()) {
            let row = &parse_lines(line)[0];
            let seq = field(row, "seq").as_u64().expect("every export row has a u64 seq");
            assert!(field(row, "t_wall_ms").as_u64().is_some(), "missing t_wall_ms: {line}");
            assert!(field(row, "t_mono_s").as_f64().is_some(), "missing t_mono_s: {line}");
            if let Some(prev) = last_seq {
                assert!(seq > prev, "export seq must be monotone across files");
            }
            last_seq = Some(seq);
        }
        // The event row keeps its emission-order ring sequence alongside.
        let event_line = traces.lines().find(|l| l.contains("\"type\":\"event\"")).unwrap();
        let row = &parse_lines(event_line)[0];
        assert_eq!(field(row, "event_seq").as_u64(), Some(0));
    }

    #[test]
    fn summary_table_mentions_everything() {
        let _g = lock_global();
        count("c", "", 1);
        gauge_set("g", "", 2.0);
        observe("h", "lbl", 3.0);
        {
            let _s = span("phase");
        }
        let table = summary_table();
        for needle in ["spans:", "phase", "counters:", "c", "gauges:", "g", "h{lbl}"] {
            assert!(table.contains(needle), "summary missing {needle}: {table}");
        }
    }

    #[test]
    fn empty_state_gives_empty_summary() {
        let _g = lock_global();
        assert_eq!(summary_table(), "");
    }
}
