//! Unified observability for the SMiLer pipeline: a thread-safe metrics
//! registry (counters, gauges, log-scale histograms), hierarchical wall-time
//! spans, and a bounded event log with JSON-lines export.
//!
//! # Design
//!
//! Everything hangs off process-global state guarded by a single
//! [`enabled`] switch (an atomic flag). Every recording entry point —
//! [`count`], [`gauge_set`], [`observe`], [`span`], [`event`] — checks the
//! switch first and returns without allocating or locking when
//! observability is off, so instrumentation can stay in hot loops
//! permanently. The disabled cost is one relaxed atomic load.
//!
//! Metrics are addressed by a `&'static str` name plus a dynamic label
//! (e.g. `observe("search.pruning_ratio", "d=64", 0.83)`). Callers that
//! build labels with `format!` should gate the construction on
//! [`enabled`] so the disabled path stays allocation-free.
//!
//! Spans nest per thread: the hierarchical path of a span is the `/`-joined
//! chain of the spans open on the current thread when it started
//! (`"search/verify"`, `"step/gp.predict"`). Segments themselves may
//! contain dots (`"gp.train"`); `/` is reserved as the hierarchy
//! separator. Aggregated span timings satisfy the invariant that a
//! parent's total wall time is at least the sum of its children's.
//!
//! # Example
//!
//! ```ignore
//! smiler_obs::set_enabled(true);
//! {
//!     let _outer = smiler_obs::span("search");
//!     let _inner = smiler_obs::span("verify"); // path "search/verify"
//!     smiler_obs::count("search.candidates", "d=64", 128);
//! }
//! println!("{}", smiler_obs::summary_table());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

mod event;
mod export;
mod registry;
mod span;
pub mod stamp;
pub mod trace;
pub mod window;

pub use event::{event, events_dropped, events_snapshot, EventRecord};
pub use export::{
    metrics_jsonl_string, summary_table, trace_jsonl_string, write_metrics_jsonl, write_trace_jsonl,
};
pub use registry::{
    count, gauge_set, metrics_snapshot, observe, CounterRow, GaugeRow, HistogramRow,
    MetricsSnapshot,
};
pub use span::{span, span_snapshot, SpanGuard, SpanRow};
pub use window::{SloReport, SloTracker, TailQuantiles, WindowedHistogram};

/// The global observability switch. Off by default.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn observability on or off. Recording calls made while the switch is
/// off are dropped without allocating.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether observability is currently on.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clear all recorded metrics, spans, and events, and drop any installed
/// trace sink (the enabled flag is left untouched; the export sequence
/// counter deliberately survives, see [`stamp`]). Spans still open on
/// other threads record into the cleared state when they close.
pub fn reset() {
    registry::reset();
    span::reset();
    event::reset();
    trace::reset();
}

/// Open a hierarchical span: `let _guard = span!("search.verify");`.
///
/// Sugar for [`span`]; the guard records wall time from creation to drop
/// under the current thread's span path.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialise access to the process-global state across unit tests.
    pub(crate) fn lock_global() -> parking_lot::MutexGuard<'static, ()> {
        static GUARD: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
        let g = GUARD.lock();
        reset();
        set_enabled(true);
        g
    }

    #[test]
    fn disabled_calls_record_nothing() {
        let _g = lock_global();
        set_enabled(false);
        count("c", "", 3);
        gauge_set("g", "", 1.0);
        observe("h", "", 0.5);
        event("e", "", &1u64);
        let _s = span("s");
        drop(_s);
        set_enabled(true);
        let m = metrics_snapshot();
        assert!(m.counters.is_empty() && m.gauges.is_empty() && m.histograms.is_empty());
        assert!(span_snapshot().is_empty());
        assert!(events_snapshot().is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let _g = lock_global();
        count("c", "", 1);
        event("e", "", &true);
        {
            let _s = span("s");
        }
        reset();
        let m = metrics_snapshot();
        assert!(m.counters.is_empty());
        assert!(span_snapshot().is_empty());
        assert!(events_snapshot().is_empty());
    }
}
