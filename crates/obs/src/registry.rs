//! The metrics registry: counters, gauges, and log-scale histograms keyed
//! by static metric name plus dynamic label.
//!
//! Storage is a two-level map (`name -> label -> Arc<metric>`): reads take
//! the registry lock only long enough to clone the `Arc`, and the lookup
//! path performs no allocation once a `(name, label)` pair exists. All
//! recording on the metric itself is lock-free atomics.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::enabled;

/// Histogram bucketing: log₁₀ scale, [`BUCKETS_PER_DECADE`] buckets per
/// decade spanning 1e-12 .. 1e4. That resolves nanosecond timings and
/// ratio metrics alike to ~33% relative error, which is plenty for
/// p50/p95/p99 of quantities that vary over orders of magnitude.
const BUCKETS_PER_DECADE: f64 = 8.0;
/// log₁₀ of the smallest representable bucket boundary.
const MIN_DECADE: f64 = -12.0;
/// Total bucket count (16 decades × 8). Shared with the windowed
/// histograms in [`crate::window`].
pub(crate) const NUM_BUCKETS: usize = 128;

/// Bucket index of `value` on the shared log scale.
pub(crate) fn bucket_of(value: f64) -> usize {
    Histogram::bucket_of(value)
}

/// Geometric midpoint of bucket `idx` on the shared log scale.
pub(crate) fn bucket_value(idx: usize) -> f64 {
    Histogram::bucket_value(idx)
}

#[derive(Default)]
struct Counter {
    value: AtomicU64,
}

/// A gauge stores the latest value as `f64` bits.
#[derive(Default)]
struct Gauge {
    bits: AtomicU64,
}

struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values as `f64` bits, updated by CAS.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    fn bucket_of(value: f64) -> usize {
        if value <= 0.0 || !value.is_finite() {
            return 0;
        }
        let idx = (value.log10() - MIN_DECADE) * BUCKETS_PER_DECADE;
        idx.clamp(0.0, (NUM_BUCKETS - 1) as f64) as usize
    }

    /// Geometric midpoint of a bucket, for percentile reconstruction.
    fn bucket_value(idx: usize) -> f64 {
        10f64.powf((idx as f64 + 0.5) / BUCKETS_PER_DECADE + MIN_DECADE)
    }

    fn record(&self, value: f64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        update_f64(&self.sum_bits, |s| s + value);
        update_f64(&self.min_bits, |m| m.min(value));
        update_f64(&self.max_bits, |m| m.max(value));
    }

    /// Approximate percentile from bucket counts; 0.0 (not NaN) on an
    /// empty histogram so downstream JSON and arithmetic stay finite.
    fn percentile(&self, counts: &[u64], total: u64, p: f64) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let rank = (p * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(i);
            }
        }
        Self::bucket_value(NUM_BUCKETS - 1)
    }
}

/// CAS-update an `AtomicU64` holding `f64` bits.
fn update_f64(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(current)).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(v) => current = v,
        }
    }
}

type MetricMap<T> = Mutex<Option<HashMap<&'static str, HashMap<String, Arc<T>>>>>;

static COUNTERS: MetricMap<Counter> = Mutex::new(None);
static GAUGES: MetricMap<Gauge> = Mutex::new(None);
static HISTOGRAMS: MetricMap<Histogram> = Mutex::new(None);

fn get_or_insert<T>(map: &MetricMap<T>, name: &'static str, label: &str, new: fn() -> T) -> Arc<T> {
    let mut guard = map.lock();
    let by_label = guard.get_or_insert_with(HashMap::new).entry(name).or_default();
    match by_label.get(label) {
        Some(found) => Arc::clone(found),
        None => {
            let created = Arc::new(new());
            by_label.insert(label.to_string(), Arc::clone(&created));
            created
        }
    }
}

/// Add `delta` to the counter `name{label}`. No-op while disabled.
pub fn count(name: &'static str, label: &str, delta: u64) {
    if !enabled() {
        return;
    }
    get_or_insert(&COUNTERS, name, label, Counter::default)
        .value
        .fetch_add(delta, Ordering::Relaxed);
}

/// Set the gauge `name{label}` to `value`. No-op while disabled.
pub fn gauge_set(name: &'static str, label: &str, value: f64) {
    if !enabled() {
        return;
    }
    get_or_insert(&GAUGES, name, label, Gauge::default)
        .bits
        .store(value.to_bits(), Ordering::Relaxed);
}

/// Record `value` into the histogram `name{label}`. No-op while disabled.
pub fn observe(name: &'static str, label: &str, value: f64) {
    if !enabled() {
        return;
    }
    get_or_insert(&HISTOGRAMS, name, label, Histogram::new).record(value);
}

/// Snapshot of one counter.
#[derive(Debug, Clone, serde::Serialize)]
pub struct CounterRow {
    /// Metric name.
    pub name: String,
    /// Metric label (empty when unlabelled).
    pub label: String,
    /// Accumulated value.
    pub value: u64,
}

/// Snapshot of one gauge.
#[derive(Debug, Clone, serde::Serialize)]
pub struct GaugeRow {
    /// Metric name.
    pub name: String,
    /// Metric label (empty when unlabelled).
    pub label: String,
    /// Last stored value.
    pub value: f64,
}

/// Snapshot of one histogram, with approximate percentiles.
#[derive(Debug, Clone, serde::Serialize)]
pub struct HistogramRow {
    /// Metric name.
    pub name: String,
    /// Metric label (empty when unlabelled).
    pub label: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (log-bucket approximation).
    pub p50: f64,
    /// 95th percentile (log-bucket approximation).
    pub p95: f64,
    /// 99th percentile (log-bucket approximation).
    pub p99: f64,
}

/// A full snapshot of the metrics registry, sorted by name then label.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// All counters.
    pub counters: Vec<CounterRow>,
    /// All gauges.
    pub gauges: Vec<GaugeRow>,
    /// All histograms.
    pub histograms: Vec<HistogramRow>,
}

/// Snapshot every metric currently in the registry.
pub fn metrics_snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    for (name, by_label) in COUNTERS.lock().iter().flatten() {
        for (label, c) in by_label {
            snap.counters.push(CounterRow {
                name: name.to_string(),
                label: label.clone(),
                value: c.value.load(Ordering::Relaxed),
            });
        }
    }
    for (name, by_label) in GAUGES.lock().iter().flatten() {
        for (label, g) in by_label {
            snap.gauges.push(GaugeRow {
                name: name.to_string(),
                label: label.clone(),
                value: f64::from_bits(g.bits.load(Ordering::Relaxed)),
            });
        }
    }
    for (name, by_label) in HISTOGRAMS.lock().iter().flatten() {
        for (label, h) in by_label {
            let counts: Vec<u64> = h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
            let total = h.count.load(Ordering::Relaxed);
            snap.histograms.push(HistogramRow {
                name: name.to_string(),
                label: label.clone(),
                count: total,
                sum: f64::from_bits(h.sum_bits.load(Ordering::Relaxed)),
                min: f64::from_bits(h.min_bits.load(Ordering::Relaxed)),
                max: f64::from_bits(h.max_bits.load(Ordering::Relaxed)),
                p50: h.percentile(&counts, total, 0.50),
                p95: h.percentile(&counts, total, 0.95),
                p99: h.percentile(&counts, total, 0.99),
            });
        }
    }
    snap.counters.sort_by(|a, b| (&a.name, &a.label).cmp(&(&b.name, &b.label)));
    snap.gauges.sort_by(|a, b| (&a.name, &a.label).cmp(&(&b.name, &b.label)));
    snap.histograms.sort_by(|a, b| (&a.name, &a.label).cmp(&(&b.name, &b.label)));
    snap
}

pub(crate) fn reset() {
    COUNTERS.lock().take();
    GAUGES.lock().take();
    HISTOGRAMS.lock().take();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::lock_global;

    #[test]
    fn counters_accumulate_per_label() {
        let _g = lock_global();
        count("hits", "a", 2);
        count("hits", "a", 3);
        count("hits", "b", 1);
        let snap = metrics_snapshot();
        assert_eq!(snap.counters.len(), 2);
        assert_eq!(snap.counters[0].value, 5);
        assert_eq!(snap.counters[1].value, 1);
    }

    #[test]
    fn gauges_keep_last_value() {
        let _g = lock_global();
        gauge_set("level", "", 1.0);
        gauge_set("level", "", -2.5);
        let snap = metrics_snapshot();
        assert_eq!(snap.gauges[0].value, -2.5);
    }

    #[test]
    fn histogram_percentiles_are_log_accurate() {
        let _g = lock_global();
        for i in 1..=1000u64 {
            observe("lat", "", i as f64 / 1000.0); // uniform on (0, 1]
        }
        let snap = metrics_snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.count, 1000);
        assert!((h.sum - 500.5).abs() < 1e-6);
        assert_eq!(h.min, 0.001);
        assert_eq!(h.max, 1.0);
        // Log-bucket resolution is ~±33%; accept that band around truth.
        assert!((0.3..0.8).contains(&h.p50), "p50 {}", h.p50);
        assert!((0.7..1.4).contains(&h.p95), "p95 {}", h.p95);
        assert!(h.p50 <= h.p95 && h.p95 <= h.p99 * (1.0 + 1e-12));
    }

    #[test]
    fn histogram_handles_zero_and_negative() {
        let _g = lock_global();
        observe("odd", "", 0.0);
        observe("odd", "", -5.0);
        observe("odd", "", f64::NAN);
        let snap = metrics_snapshot();
        assert_eq!(snap.histograms[0].count, 3);
    }
}
