//! Request-level tracing: an allocation-conscious per-request context
//! ([`RequestTrace`]) threaded through the serving path, plus a process
//! sink that writes one JSONL record per *finished* request with
//! tail-based sampling.
//!
//! # Design
//!
//! Tracing has its own process-global switch, independent of the metrics
//! switch: it is on exactly while a sink is installed ([`active`]). Every
//! entry point checks that switch first, so the disabled path costs one
//! relaxed atomic load and performs no allocation. A live trace is a flat
//! struct — a handful of integers plus one `Vec` of `(&'static str, u64)`
//! timeline events — rendered to JSON only at submission, and only for
//! traces the sampler keeps.
//!
//! Tracing never changes control flow or floating-point work on the
//! serving path: predictions are bitwise identical with tracing on or
//! off (covered by `tests/tracing.rs`).
//!
//! # Lifecycle
//!
//! The admission path calls [`RequestTrace::begin`] and attaches the
//! trace to the queued job; the shard worker marks timeline events as the
//! request moves through dequeue → batch coalescing → fleet search →
//! prediction, sets exactly one terminal outcome, and hands the trace to
//! [`submit`]. Code deep inside the predictor (the degradation ladder)
//! reaches the trace of the request it is serving through a thread-local
//! installed by the worker ([`set_current`] / [`take_current`]), which
//! survives `catch_unwind` so a panicking prediction still yields its
//! terminal record.
//!
//! # Sampling
//!
//! Sampling is tail-based: the decision is made at submission, when the
//! outcome is known. Requests that were slow, degraded below the full
//! ensemble, shed, faulted, aborted, or missed their deadline are always
//! kept; only fast, healthy, full-ensemble responses are thinned to
//! 1-in-N ([`TraceConfig::sample_every`]).

use crate::export::ContentDoc;
use crate::stamp;
use parking_lot::Mutex;
use serde::Content;
use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Schema version stamped into every trace record.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// Memory-sink retention bound; lines beyond it are dropped and counted
/// as write errors.
const MEMORY_SINK_CAPACITY: usize = 1_048_576;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_BATCH_ID: AtomicU64 = AtomicU64::new(1);

/// Whether a trace sink is installed. One relaxed atomic load; gate any
/// per-request trace work on this.
#[inline(always)]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Allocate a fresh micro-batch id (used by shard workers to link member
/// traces of one coalesced batch to its single fleet-search launch).
pub fn next_batch_id() -> u64 {
    NEXT_BATCH_ID.fetch_add(1, Ordering::Relaxed)
}

/// One timeline event: a static label plus microseconds since the trace
/// began.
#[derive(Debug, Clone, Copy)]
struct TraceEvent {
    label: &'static str,
    at_us: u64,
}

/// The per-request trace context. Created at admission, carried with the
/// queued job, finished with exactly one terminal outcome, then handed to
/// [`submit`].
#[derive(Debug)]
pub struct RequestTrace {
    id: u64,
    sensor: u64,
    horizon: u64,
    shard: u64,
    started: Instant,
    events: Vec<TraceEvent>,
    batch_id: Option<u64>,
    batch_size: u64,
    outcome: Option<&'static str>,
    rung: Option<&'static str>,
    reason: Option<&'static str>,
    deadline_missed: bool,
    aborted: bool,
}

impl RequestTrace {
    /// Begin tracing one request. The single allocation is the timeline
    /// `Vec`; callers gate on [`active`] so no trace exists while no sink
    /// is installed.
    pub fn begin(sensor: usize, horizon: usize, shard: usize) -> RequestTrace {
        let mut trace = RequestTrace {
            id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
            sensor: sensor as u64,
            horizon: horizon as u64,
            shard: shard as u64,
            started: Instant::now(),
            events: Vec::with_capacity(16),
            batch_id: None,
            batch_size: 0,
            outcome: None,
            rung: None,
            reason: None,
            deadline_missed: false,
            aborted: false,
        };
        trace.mark("submit");
        trace
    }

    /// This trace's process-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Append a timeline event at the current offset.
    pub fn mark(&mut self, label: &'static str) {
        let at_us = self.started.elapsed().as_micros() as u64;
        self.events.push(TraceEvent { label, at_us });
    }

    /// Link this trace to the micro-batch it was served in.
    pub fn set_batch(&mut self, batch_id: u64, batch_size: usize) {
        self.batch_id = Some(batch_id);
        self.batch_size = batch_size as u64;
    }

    /// Record why the request left the full-ensemble rung (first reason
    /// wins: the earliest degradation decision is the one that matters).
    pub fn set_reason(&mut self, reason: &'static str) {
        if self.reason.is_none() {
            self.reason = Some(reason);
        }
    }

    /// Flag that serving this request panicked (its span/work unwound).
    pub fn set_aborted(&mut self) {
        self.aborted = true;
    }

    /// Terminal: answered at `rung` (a `DegradationLevel::as_str` value).
    pub fn finish_served(&mut self, rung: &'static str, deadline_missed: bool) {
        self.outcome = Some("served");
        self.rung = Some(rung);
        self.deadline_missed = deadline_missed;
        self.mark("finish");
    }

    /// Terminal: rejected at admission (queue full).
    pub fn finish_shed(&mut self) {
        self.outcome = Some("shed");
        self.mark("finish");
    }

    /// Terminal: answered with a typed fault (`kind` says which).
    pub fn finish_fault(&mut self, kind: &'static str) {
        self.outcome = Some("fault");
        self.reason = Some(kind);
        self.mark("finish");
    }

    /// Terminal: failed outside the predict path (unknown sensor,
    /// shutdown race, ...).
    pub fn finish_error(&mut self, kind: &'static str) {
        self.outcome = Some("error");
        self.reason = Some(kind);
        self.mark("finish");
    }

    /// Microseconds spent before the worker dequeued the request (0 when
    /// it never reached a worker).
    fn queue_us(&self) -> u64 {
        self.events.iter().find(|e| e.label == "dequeue").map_or(0, |e| e.at_us)
    }

    fn render(&self, total_us: u64) -> String {
        let events = Content::Seq(
            self.events
                .iter()
                .map(|e| {
                    Content::Map(vec![
                        ("l".to_string(), Content::Str(e.label.to_string())),
                        ("us".to_string(), Content::U64(e.at_us)),
                    ])
                })
                .collect(),
        );
        let opt_u64 = |v: Option<u64>| v.map_or(Content::Null, Content::U64);
        let opt_str =
            |v: Option<&'static str>| v.map_or(Content::Null, |s| Content::Str(s.to_string()));
        let entries = vec![
            ("type".to_string(), Content::Str("request_trace".to_string())),
            ("schema".to_string(), Content::U64(TRACE_SCHEMA_VERSION)),
            ("seq".to_string(), Content::U64(stamp::next_export_seq())),
            ("t_wall_ms".to_string(), Content::U64(stamp::wall_clock_ms())),
            ("t_mono_s".to_string(), Content::F64(stamp::mono_seconds())),
            ("trace_id".to_string(), Content::U64(self.id)),
            ("sensor".to_string(), Content::U64(self.sensor)),
            ("horizon".to_string(), Content::U64(self.horizon)),
            ("shard".to_string(), Content::U64(self.shard)),
            ("batch_id".to_string(), opt_u64(self.batch_id)),
            ("batch_size".to_string(), Content::U64(self.batch_size)),
            ("outcome".to_string(), opt_str(Some(self.outcome.unwrap_or("abandoned")))),
            ("rung".to_string(), opt_str(self.rung)),
            ("reason".to_string(), opt_str(self.reason)),
            ("deadline_missed".to_string(), Content::Bool(self.deadline_missed)),
            ("aborted".to_string(), Content::Bool(self.aborted)),
            ("queue_us".to_string(), Content::U64(self.queue_us())),
            ("total_us".to_string(), Content::U64(total_us)),
            ("events".to_string(), events),
        ];
        serde_json::to_string(&ContentDoc(Content::Map(entries))).unwrap_or_default()
    }
}

thread_local! {
    /// The trace of the request the current thread is serving, installed
    /// by the shard worker around the prediction call so ladder decisions
    /// deep in the predictor can annotate it without plumbing.
    static CURRENT: RefCell<Option<RequestTrace>> = const { RefCell::new(None) };
}

/// Install `trace` as the current thread's active request trace.
pub fn set_current(trace: Option<RequestTrace>) {
    CURRENT.with(|c| *c.borrow_mut() = trace);
}

/// Remove and return the current thread's active request trace. Survives
/// `catch_unwind`: a panicking prediction leaves the trace installed, so
/// the worker can still finish and submit it.
pub fn take_current() -> Option<RequestTrace> {
    CURRENT.with(|c| c.borrow_mut().take())
}

/// Append a timeline event to the current thread's trace, if any. One
/// relaxed atomic load when tracing is off.
pub fn mark_current(label: &'static str) {
    if !active() {
        return;
    }
    CURRENT.with(|c| {
        if let Some(trace) = c.borrow_mut().as_mut() {
            trace.mark(label);
        }
    });
}

/// Record a degradation reason on the current thread's trace, if any.
pub fn reason_current(reason: &'static str) {
    if !active() {
        return;
    }
    CURRENT.with(|c| {
        if let Some(trace) = c.borrow_mut().as_mut() {
            trace.set_reason(reason);
        }
    });
}

/// Sampling and retention policy of a trace sink.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Keep 1-in-N fast, healthy, full-ensemble traces (1 keeps all).
    /// Slow, degraded, shed, faulted, or deadline-missing requests are
    /// always kept regardless.
    pub sample_every: u64,
    /// A request at least this slow (µs, admission → terminal) is always
    /// kept.
    pub slow_us: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { sample_every: 1, slow_us: 50_000 }
    }
}

/// Counters of an installed trace sink.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct TraceSinkStats {
    /// Records written.
    pub emitted: u64,
    /// Finished traces thinned out by the sampler.
    pub sampled_out: u64,
    /// Records lost to I/O errors or memory-sink overflow.
    pub write_errors: u64,
}

enum SinkOut {
    File(std::io::BufWriter<std::fs::File>),
    Memory(Vec<String>),
}

struct Sink {
    out: SinkOut,
    config: TraceConfig,
    stats: TraceSinkStats,
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

fn install(out: SinkOut, config: TraceConfig) {
    let mut cfg = config;
    cfg.sample_every = cfg.sample_every.max(1);
    *SINK.lock() = Some(Sink { out, config: cfg, stats: TraceSinkStats::default() });
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Install a JSONL file sink at `path` (truncates) and activate tracing.
pub fn install_file_sink(path: &std::path::Path, config: TraceConfig) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    install(SinkOut::File(std::io::BufWriter::new(file)), config);
    Ok(())
}

/// Install an in-memory sink (tests and benches) and activate tracing.
pub fn install_memory_sink(config: TraceConfig) {
    install(SinkOut::Memory(Vec::new()), config);
}

/// Drain the lines retained by an installed memory sink (empty for file
/// sinks or when no sink is installed).
pub fn take_memory_lines() -> Vec<String> {
    let mut guard = SINK.lock();
    match guard.as_mut() {
        Some(Sink { out: SinkOut::Memory(lines), .. }) => std::mem::take(lines),
        _ => Vec::new(),
    }
}

/// Flush a file sink's buffer to disk (no-op otherwise).
pub fn flush_sink() {
    let mut guard = SINK.lock();
    if let Some(Sink { out: SinkOut::File(writer), stats, .. }) = guard.as_mut() {
        if writer.flush().is_err() {
            stats.write_errors += 1;
        }
    }
}

/// Counters of the installed sink, or `None` when tracing is off.
pub fn sink_stats() -> Option<TraceSinkStats> {
    SINK.lock().as_ref().map(|s| s.stats)
}

/// Deactivate tracing and drop the sink (flushing file sinks first).
pub fn clear_sink() {
    ACTIVE.store(false, Ordering::Relaxed);
    flush_sink();
    *SINK.lock() = None;
}

pub(crate) fn reset() {
    clear_sink();
    NEXT_TRACE_ID.store(1, Ordering::Relaxed);
    NEXT_BATCH_ID.store(1, Ordering::Relaxed);
}

/// Hand a finished trace to the sink. The tail-based sampling decision
/// happens here, where the outcome is known; kept traces are rendered to
/// one JSON line. No-op when no sink is installed.
pub fn submit(trace: RequestTrace) {
    let mut guard = SINK.lock();
    let Some(sink) = guard.as_mut() else {
        return;
    };
    let total_us = trace.started.elapsed().as_micros() as u64;
    let healthy_fast = trace.outcome == Some("served")
        && trace.rung == Some("full_ensemble")
        && !trace.deadline_missed
        && !trace.aborted
        && total_us < sink.config.slow_us;
    if healthy_fast && sink.config.sample_every > 1 && trace.id % sink.config.sample_every != 0 {
        sink.stats.sampled_out += 1;
        return;
    }
    let line = trace.render(total_us);
    match &mut sink.out {
        SinkOut::File(writer) => {
            if writeln!(writer, "{line}").is_ok() {
                sink.stats.emitted += 1;
            } else {
                sink.stats.write_errors += 1;
            }
        }
        SinkOut::Memory(lines) => {
            if lines.len() < MEMORY_SINK_CAPACITY {
                lines.push(line);
                sink.stats.emitted += 1;
            } else {
                sink.stats.write_errors += 1;
            }
        }
    }
}

/// Validate one JSONL line against the request-trace schema. Used by the
/// test suite and CI's serve smoke; returns the first problem found.
pub fn validate_trace_line(line: &str) -> Result<(), String> {
    struct Parsed(Content);
    impl serde::Deserialize for Parsed {
        fn from_content(c: &Content) -> Result<Self, serde::DeError> {
            Ok(Parsed(c.clone()))
        }
    }
    let doc: Parsed = serde_json::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let map = doc.0.as_map().ok_or("record is not an object")?;
    let get = |name: &str| serde::content_field(map, name);
    let need_u64 = |name: &str| get(name).as_u64().ok_or(format!("`{name}` missing or not u64"));
    let need_bool = |name: &str| get(name).as_bool().ok_or(format!("`{name}` missing or not bool"));

    if get("type").as_str() != Some("request_trace") {
        return Err("`type` is not \"request_trace\"".to_string());
    }
    if need_u64("schema")? != TRACE_SCHEMA_VERSION {
        return Err(format!("unknown schema version (expected {TRACE_SCHEMA_VERSION})"));
    }
    for name in ["seq", "t_wall_ms", "trace_id", "sensor", "horizon", "shard", "batch_size"] {
        need_u64(name)?;
    }
    if get("t_mono_s").as_f64().is_none() {
        return Err("`t_mono_s` missing or not a number".to_string());
    }
    let queue_us = need_u64("queue_us")?;
    let total_us = need_u64("total_us")?;
    if queue_us > total_us {
        return Err(format!("queue_us {queue_us} exceeds total_us {total_us}"));
    }
    need_bool("deadline_missed")?;
    need_bool("aborted")?;

    let outcome = get("outcome").as_str().ok_or("`outcome` missing or not a string")?;
    if !["served", "shed", "fault", "error", "abandoned"].contains(&outcome) {
        return Err(format!("unknown outcome `{outcome}`"));
    }
    let rung = get("rung");
    match rung.as_str() {
        Some(r) if !["full_ensemble", "cached_hyper", "aggregation", "last_value"].contains(&r) => {
            return Err(format!("unknown rung `{r}`"));
        }
        None if outcome == "served" => return Err("served trace without a rung".to_string()),
        _ => {}
    }
    if outcome == "served" && get("batch_id").as_u64().is_none() {
        return Err("served trace without a batch_id".to_string());
    }

    let events = get("events").as_seq().ok_or("`events` missing or not an array")?;
    if events.is_empty() {
        return Err("empty event timeline".to_string());
    }
    let mut prev_us = 0u64;
    for (i, e) in events.iter().enumerate() {
        let emap = e.as_map().ok_or(format!("event {i} is not an object"))?;
        if serde::content_field(emap, "l").as_str().is_none() {
            return Err(format!("event {i} lacks a string label `l`"));
        }
        let us = serde::content_field(emap, "us")
            .as_u64()
            .ok_or(format!("event {i} lacks a u64 offset `us`"))?;
        if us < prev_us {
            return Err(format!("event offsets not monotone at index {i}"));
        }
        prev_us = us;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::lock_global;

    #[test]
    fn inactive_tracing_is_a_no_op() {
        let _g = lock_global();
        assert!(!active());
        mark_current("ignored");
        let mut t = RequestTrace::begin(0, 1, 0);
        t.finish_served("full_ensemble", false);
        submit(t);
        assert_eq!(sink_stats(), None);
        assert!(take_memory_lines().is_empty());
    }

    #[test]
    fn memory_sink_round_trips_a_valid_record() {
        let _g = lock_global();
        install_memory_sink(TraceConfig::default());
        let mut t = RequestTrace::begin(3, 2, 1);
        t.mark("dequeue");
        t.set_batch(7, 4);
        t.mark("predict.done");
        t.finish_served("cached_hyper", false);
        let id = t.id();
        submit(t);
        let lines = take_memory_lines();
        clear_sink();
        assert_eq!(lines.len(), 1);
        validate_trace_line(&lines[0]).unwrap();
        assert!(lines[0].contains(&format!("\"trace_id\":{id}")));
        assert!(lines[0].contains("\"batch_id\":7"));
        assert!(lines[0].contains("\"rung\":\"cached_hyper\""));
    }

    #[test]
    fn sampler_keeps_tail_and_thins_healthy_traffic() {
        let _g = lock_global();
        install_memory_sink(TraceConfig { sample_every: 1_000_000, slow_us: u64::MAX });
        // Healthy fast full-ensemble trace: sampled out (id won't divide).
        let mut healthy = RequestTrace::begin(0, 1, 0);
        healthy.set_batch(1, 1);
        healthy.finish_served("full_ensemble", false);
        submit(healthy);
        // Degraded trace: always kept.
        let mut degraded = RequestTrace::begin(1, 1, 0);
        degraded.set_batch(1, 1);
        degraded.finish_served("last_value", false);
        submit(degraded);
        // Shed trace: always kept.
        let mut shed = RequestTrace::begin(2, 1, 0);
        shed.finish_shed();
        submit(shed);
        let stats = sink_stats().unwrap();
        assert_eq!((stats.emitted, stats.sampled_out, stats.write_errors), (2, 1, 0));
        let lines = take_memory_lines();
        clear_sink();
        assert!(lines[0].contains("\"rung\":\"last_value\""));
        assert!(lines[1].contains("\"outcome\":\"shed\""));
        for line in &lines {
            validate_trace_line(line).unwrap();
        }
    }

    #[test]
    fn current_trace_survives_unwind() {
        let _g = lock_global();
        install_memory_sink(TraceConfig::default());
        let trace = RequestTrace::begin(0, 1, 0);
        set_current(Some(trace));
        let panicked = std::panic::catch_unwind(|| {
            mark_current("before_panic");
            panic!("injected");
        });
        assert!(panicked.is_err());
        let mut trace = take_current().expect("trace survives the unwind");
        trace.set_aborted();
        trace.finish_fault("panic");
        submit(trace);
        let lines = take_memory_lines();
        clear_sink();
        assert_eq!(lines.len(), 1);
        validate_trace_line(&lines[0]).unwrap();
        assert!(lines[0].contains("\"aborted\":true"));
        assert!(lines[0].contains("before_panic"));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_trace_line("not json").is_err());
        assert!(validate_trace_line("{\"type\":\"event\"}").is_err());
        let _g = lock_global();
        install_memory_sink(TraceConfig::default());
        let mut t = RequestTrace::begin(0, 1, 0);
        t.finish_served("full_ensemble", false);
        submit(t);
        let lines = take_memory_lines();
        clear_sink();
        // A served trace must carry its batch linkage.
        assert!(validate_trace_line(&lines[0]).unwrap_err().contains("batch_id"));
    }

    #[test]
    fn file_sink_writes_and_flushes() {
        let _g = lock_global();
        let path =
            std::env::temp_dir().join(format!("smiler_trace_test_{}.jsonl", std::process::id()));
        install_file_sink(&path, TraceConfig::default()).unwrap();
        let mut t = RequestTrace::begin(0, 1, 0);
        t.set_batch(1, 1);
        t.finish_served("aggregation", false);
        submit(t);
        clear_sink();
        let contents = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 1);
        validate_trace_line(lines[0]).unwrap();
    }
}
