//! Export stamping: a process-wide monotone sequence number plus paired
//! wall-clock / monotonic timestamps attached to every JSONL export record
//! (metrics rows, event lines, request traces).
//!
//! The sequence number orders records *across* files written by the same
//! process, and the twin timestamps let downstream tooling join windows:
//! `t_wall_ms` aligns records with external clocks, `t_mono_s` gives
//! drift-free intra-process deltas. The counter and the monotonic epoch
//! deliberately survive [`crate::reset`] so records written around a reset
//! still order globally.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

static SEQ: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Next export sequence number. Monotone across every export kind and
/// never reset, so two records with `a.seq < b.seq` were rendered in that
/// order regardless of which file they landed in.
pub fn next_export_seq() -> u64 {
    SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Milliseconds since the Unix epoch (0 if the system clock reads
/// pre-epoch, rather than failing the export).
pub fn wall_clock_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_millis() as u64)
}

/// Seconds since this process first stamped an export, measured on the
/// monotonic clock (immune to wall-clock steps).
pub fn mono_seconds() -> f64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_is_strictly_monotone() {
        let a = next_export_seq();
        let b = next_export_seq();
        assert!(b > a);
    }

    #[test]
    fn clocks_are_sane() {
        // Well past 2020-01-01 in ms; guards against unit mixups.
        assert!(wall_clock_ms() > 1_577_836_800_000);
        let t0 = mono_seconds();
        let t1 = mono_seconds();
        assert!(t1 >= t0 && t0 >= 0.0);
    }
}
