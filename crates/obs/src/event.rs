//! The bounded event log: discrete pipeline occurrences (sleep/wake
//! transitions, λ-weight snapshots, GPU launch reports, admission
//! rejections) with structured JSON payloads.
//!
//! Payloads are rendered to JSON at emission time so the log holds plain
//! strings and the caller's type does not need to outlive the call. The
//! buffer is a drop-oldest ring; the number of evicted events is reported
//! so exports can flag truncation.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::time::Instant;

use crate::enabled;

/// Capacity of the ring buffer.
const CAPACITY: usize = 65_536;

struct EventLog {
    events: VecDeque<EventRecord>,
    /// Monotone sequence number of the next event.
    next_seq: u64,
    /// Events evicted because the ring was full.
    dropped: u64,
    /// Time origin for `t_seconds` (set on first use and on reset).
    epoch: Option<Instant>,
}

static LOG: Mutex<Option<EventLog>> = Mutex::new(None);

/// One logged event.
#[derive(Debug, Clone, serde::Serialize)]
pub struct EventRecord {
    /// Monotone sequence number (gaps indicate evicted events).
    pub seq: u64,
    /// Seconds since the log's epoch (first event after start/reset).
    pub t_seconds: f64,
    /// Event kind (`"ensemble.sleep"`, `"gpu.launch"`, ...).
    pub kind: String,
    /// Instance label (sensor id, cell, ...; empty when unlabelled).
    pub label: String,
    /// The payload, pre-rendered as a JSON document.
    pub payload_json: String,
}

/// Emit an event of `kind` with a structured `payload`. The payload is
/// serialised immediately; while disabled the call returns without
/// touching it.
pub fn event(kind: &'static str, label: &str, payload: &impl serde::Serialize) {
    if !enabled() {
        return;
    }
    let payload_json = serde_json::to_string(payload).unwrap_or_else(|_| "null".to_string());
    let mut guard = LOG.lock();
    let log = guard.get_or_insert_with(|| EventLog {
        events: VecDeque::new(),
        next_seq: 0,
        dropped: 0,
        epoch: None,
    });
    let epoch = *log.epoch.get_or_insert_with(Instant::now);
    if log.events.len() == CAPACITY {
        log.events.pop_front();
        log.dropped += 1;
    }
    let seq = log.next_seq;
    log.next_seq += 1;
    log.events.push_back(EventRecord {
        seq,
        t_seconds: epoch.elapsed().as_secs_f64(),
        kind: kind.to_string(),
        label: label.to_string(),
        payload_json,
    });
}

/// Copy out the retained events, oldest first.
pub fn events_snapshot() -> Vec<EventRecord> {
    LOG.lock().as_ref().map(|log| log.events.iter().cloned().collect()).unwrap_or_default()
}

/// How many events were evicted from the ring so far.
pub fn events_dropped() -> u64 {
    LOG.lock().as_ref().map(|log| log.dropped).unwrap_or(0)
}

pub(crate) fn reset() {
    let mut guard = LOG.lock();
    if let Some(log) = guard.as_mut() {
        log.events.clear();
        log.next_seq = 0;
        log.dropped = 0;
        log.epoch = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::lock_global;

    #[derive(serde::Serialize)]
    struct Payload {
        cell: usize,
        lambda: f64,
    }

    #[test]
    fn events_record_kind_label_and_payload() {
        let _g = lock_global();
        event("ensemble.sleep", "sensor=3", &Payload { cell: 2, lambda: 0.0 });
        let events = events_snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].kind, "ensemble.sleep");
        assert_eq!(events[0].label, "sensor=3");
        assert_eq!(events[0].payload_json, "{\"cell\":2,\"lambda\":0.0}");
        assert!(events[0].t_seconds >= 0.0);
    }

    #[test]
    fn sequence_numbers_are_monotone() {
        let _g = lock_global();
        for i in 0..5u64 {
            event("tick", "", &i);
        }
        let seqs: Vec<u64> = events_snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(events_dropped(), 0);
    }
}
