//! Hierarchical wall-time spans.
//!
//! A [`SpanGuard`] measures from creation to drop. Guards created while
//! another guard is open on the same thread nest under it: the recorded
//! path is the `/`-joined chain of open span names, so `span("search")`
//! followed by `span("verify")` aggregates under `"search/verify"`.
//! Aggregation is global (path → call count + total seconds); per-call
//! timings also feed a latency histogram per root span via the registry.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;
use std::time::Instant;

use crate::enabled;

/// Aggregate of one span path.
#[derive(Debug, Clone, Copy, Default)]
struct SpanAgg {
    count: u64,
    total_seconds: f64,
    /// Spans that closed while their thread was unwinding from a panic.
    aborted: u64,
}

static SPANS: Mutex<Option<HashMap<String, SpanAgg>>> = Mutex::new(None);

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard measuring one span; see [`span`].
pub struct SpanGuard {
    /// `None` when observability was disabled at creation.
    active: Option<(String, Instant)>,
}

/// Open a span named `name`. The returned guard records wall time under
/// the current thread's hierarchical span path when dropped. Near-no-op
/// (no clock read, no allocation) while disabled.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    let path = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name);
        stack.join("/")
    });
    SpanGuard { active: Some((path, Instant::now())) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((path, start)) = self.active.take() else {
            return;
        };
        let seconds = start.elapsed().as_secs_f64();
        STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        // `Drop` also runs during unwinding (the quarantine path wraps
        // predictions in `catch_unwind`): record the measured duration
        // rather than losing the span, and flag the abort.
        let aborted = std::thread::panicking();
        let mut spans = SPANS.lock();
        let agg = spans.get_or_insert_with(HashMap::new).entry(path).or_default();
        agg.count += 1;
        agg.total_seconds += seconds;
        if aborted {
            agg.aborted += 1;
        }
    }
}

/// Aggregated timing of one span path.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SpanRow {
    /// Hierarchical `/`-joined path (`"search/verify"`).
    pub path: String,
    /// Number of completed spans at this path.
    pub count: u64,
    /// Total wall seconds across those spans.
    pub total_seconds: f64,
    /// How many of those spans closed during a panic unwind (included in
    /// `count` and `total_seconds`).
    pub aborted: u64,
}

impl SpanRow {
    /// Mean seconds per span.
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_seconds / self.count as f64
        }
    }
}

/// Snapshot all span aggregates, sorted by path.
pub fn span_snapshot() -> Vec<SpanRow> {
    let spans = SPANS.lock();
    let mut rows: Vec<SpanRow> = spans
        .as_ref()
        .map(|m| {
            m.iter()
                .map(|(path, agg)| SpanRow {
                    path: path.clone(),
                    count: agg.count,
                    total_seconds: agg.total_seconds,
                    aborted: agg.aborted,
                })
                .collect()
        })
        .unwrap_or_default();
    rows.sort_by(|a, b| a.path.cmp(&b.path));
    rows
}

pub(crate) fn reset() {
    if let Some(m) = SPANS.lock().as_mut() {
        m.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::lock_global;

    #[test]
    fn spans_nest_into_paths() {
        let _g = lock_global();
        {
            let _outer = span("outer");
            {
                let _child = span("gp.train");
            }
            {
                let _child = span("gp.train");
            }
        }
        let rows = span_snapshot();
        let paths: Vec<&str> = rows.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, vec!["outer", "outer/gp.train"]);
        assert_eq!(rows[0].count, 1);
        assert_eq!(rows[1].count, 2);
    }

    #[test]
    fn parent_time_covers_children() {
        let _g = lock_global();
        {
            let _outer = span("outer");
            for _ in 0..3 {
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let rows = span_snapshot();
        let outer = rows.iter().find(|r| r.path == "outer").unwrap();
        let inner = rows.iter().find(|r| r.path == "outer/inner").unwrap();
        assert!(outer.total_seconds >= inner.total_seconds - 1e-9);
        assert!(inner.total_seconds >= 0.006);
    }

    #[test]
    fn panicking_span_records_with_aborted_flag() {
        let _g = lock_global();
        let unwound = std::panic::catch_unwind(|| {
            let _s = span("doomed");
            std::thread::sleep(std::time::Duration::from_millis(2));
            panic!("injected");
        });
        assert!(unwound.is_err());
        {
            let _s = span("doomed"); // a second, clean pass
        }
        let rows = span_snapshot();
        let row = rows.iter().find(|r| r.path == "doomed").unwrap();
        assert_eq!(row.count, 2, "the unwound span must still be counted");
        assert_eq!(row.aborted, 1);
        assert!(row.total_seconds >= 0.002, "the unwound span keeps its duration");
    }

    #[test]
    fn sibling_threads_do_not_nest() {
        let _g = lock_global();
        let _outer = span("main");
        std::thread::scope(|s| {
            s.spawn(|| {
                let _t = span("worker");
            });
        });
        drop(_outer);
        let rows = span_snapshot();
        let paths: Vec<&str> = rows.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, vec!["main", "worker"]);
    }
}
