//! Windowed tail accounting: a ring of per-window histogram snapshots on
//! the registry's log-scale bucket scheme, and an SLO tracker with
//! error-budget burn counters.
//!
//! Unlike the process-global registry histograms (lifetime aggregates),
//! these types are plain values owned by their embedder — the serving
//! layer keeps one per rung behind its own lock — and answer "what were
//! the tails over the last ~minute", which is what an operator watching a
//! live fleet actually needs. Windows rotate lazily on record/read; a gap
//! longer than the retained span just clears the ring instead of spinning
//! through every missed rotation.

use crate::registry::{bucket_of, bucket_value, NUM_BUCKETS};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Tail quantiles over the retained windows. All-zero when no samples
/// were recorded (never NaN).
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize)]
pub struct TailQuantiles {
    /// Samples across the retained windows.
    pub count: u64,
    /// Median (log-bucket approximation).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

#[derive(Clone)]
struct Window {
    counts: Vec<u64>,
    total: u64,
}

impl Window {
    fn empty() -> Self {
        Window { counts: vec![0; NUM_BUCKETS], total: 0 }
    }

    fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }
}

/// A log-scale histogram that only remembers the last `keep` windows of
/// `window` duration each (plus the currently-open window).
pub struct WindowedHistogram {
    window: Duration,
    keep: usize,
    current: Window,
    opened: Instant,
    ring: VecDeque<Window>,
}

impl WindowedHistogram {
    /// A histogram retaining `keep` closed windows of `window` each. A
    /// zero `window` never rotates: the histogram degrades to a lifetime
    /// aggregate.
    pub fn new(window: Duration, keep: usize) -> Self {
        WindowedHistogram {
            window,
            keep: keep.max(1),
            current: Window::empty(),
            opened: Instant::now(),
            ring: VecDeque::new(),
        }
    }

    /// Record one sample into the currently-open window.
    pub fn record(&mut self, value: f64) {
        self.rotate(Instant::now());
        self.current.counts[bucket_of(value)] += 1;
        self.current.total += 1;
    }

    /// Quantiles over the retained windows plus the open one.
    pub fn quantiles(&mut self) -> TailQuantiles {
        self.rotate(Instant::now());
        let mut counts = vec![0u64; NUM_BUCKETS];
        let mut total = 0u64;
        for w in self.ring.iter().chain(std::iter::once(&self.current)) {
            for (acc, c) in counts.iter_mut().zip(&w.counts) {
                *acc += c;
            }
            total += w.total;
        }
        if total == 0 {
            return TailQuantiles::default();
        }
        let q = |p: f64| {
            let rank = (p * total as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_value(i);
                }
            }
            bucket_value(NUM_BUCKETS - 1)
        };
        TailQuantiles { count: total, p50: q(0.50), p95: q(0.95), p99: q(0.99), p999: q(0.999) }
    }

    /// Close windows that have fully elapsed. Bounded: an idle gap longer
    /// than the retained span clears everything in O(ring) instead of
    /// rotating once per missed window.
    fn rotate(&mut self, now: Instant) {
        if self.window.is_zero() {
            return;
        }
        let elapsed = now.saturating_duration_since(self.opened);
        if elapsed < self.window {
            return;
        }
        let steps = (elapsed.as_nanos() / self.window.as_nanos()) as usize;
        if steps > self.keep {
            self.ring.clear();
            self.current.clear();
            self.opened = now;
            return;
        }
        for _ in 0..steps {
            let closed = std::mem::replace(&mut self.current, Window::empty());
            self.ring.push_back(closed);
            while self.ring.len() > self.keep {
                self.ring.pop_front();
            }
            self.opened += self.window;
        }
    }
}

/// Point-in-time SLO accounting. All ratios are 0.0 on empty windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize)]
pub struct SloReport {
    /// Latency target in milliseconds.
    pub target_ms: f64,
    /// Allowed violation fraction (the error budget), e.g. 0.01.
    pub budget: f64,
    /// Requests across the retained windows.
    pub window_total: u64,
    /// Requests over target across the retained windows.
    pub window_violations: u64,
    /// Windowed violation fraction divided by the budget: 1.0 burns the
    /// budget exactly, above 1.0 burns it faster than allowed.
    pub burn_rate: f64,
    /// Lifetime request count.
    pub total: u64,
    /// Lifetime violations.
    pub violations: u64,
}

/// Tracks a latency SLO over a ring of windows, mirroring
/// [`WindowedHistogram`]'s rotation, plus lifetime counters.
pub struct SloTracker {
    target: Duration,
    budget: f64,
    window: Duration,
    keep: usize,
    opened: Instant,
    /// (total, violations) of the open window.
    current: (u64, u64),
    ring: VecDeque<(u64, u64)>,
    lifetime: (u64, u64),
}

impl SloTracker {
    /// A tracker for `target` latency with violation `budget`, retaining
    /// `keep` windows of `window` each.
    pub fn new(target: Duration, budget: f64, window: Duration, keep: usize) -> Self {
        SloTracker {
            target,
            budget,
            window,
            keep: keep.max(1),
            opened: Instant::now(),
            current: (0, 0),
            ring: VecDeque::new(),
            lifetime: (0, 0),
        }
    }

    /// Record one request latency; returns whether it violated the SLO.
    pub fn record(&mut self, latency: Duration) -> bool {
        self.rotate(Instant::now());
        let violated = latency > self.target;
        self.current.0 += 1;
        self.lifetime.0 += 1;
        if violated {
            self.current.1 += 1;
            self.lifetime.1 += 1;
        }
        violated
    }

    /// Current windowed + lifetime SLO accounting.
    pub fn report(&mut self) -> SloReport {
        self.rotate(Instant::now());
        let (mut total, mut violations) = self.current;
        for &(t, v) in &self.ring {
            total += t;
            violations += v;
        }
        let burn_rate = if total == 0 || self.budget <= 0.0 {
            0.0
        } else {
            (violations as f64 / total as f64) / self.budget
        };
        SloReport {
            target_ms: self.target.as_secs_f64() * 1e3,
            budget: self.budget,
            window_total: total,
            window_violations: violations,
            burn_rate,
            total: self.lifetime.0,
            violations: self.lifetime.1,
        }
    }

    fn rotate(&mut self, now: Instant) {
        if self.window.is_zero() {
            return;
        }
        let elapsed = now.saturating_duration_since(self.opened);
        if elapsed < self.window {
            return;
        }
        let steps = (elapsed.as_nanos() / self.window.as_nanos()) as usize;
        if steps > self.keep {
            self.ring.clear();
            self.current = (0, 0);
            self.opened = now;
            return;
        }
        for _ in 0..steps {
            self.ring.push_back(std::mem::take(&mut self.current));
            while self.ring.len() > self.keep {
                self.ring.pop_front();
            }
            self.opened += self.window;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros_not_nan() {
        let mut h = WindowedHistogram::new(Duration::from_secs(1), 4);
        let q = h.quantiles();
        assert_eq!(q, TailQuantiles::default());
        assert!(!q.p50.is_nan() && !q.p999.is_nan());
    }

    #[test]
    fn quantiles_are_ordered_and_log_accurate() {
        let mut h = WindowedHistogram::new(Duration::from_secs(60), 4);
        for i in 1..=1000u64 {
            h.record(i as f64 / 1000.0);
        }
        let q = h.quantiles();
        assert_eq!(q.count, 1000);
        assert!((0.3..0.8).contains(&q.p50), "p50 {}", q.p50);
        assert!(q.p50 <= q.p95 && q.p95 <= q.p99 && q.p99 <= q.p999 * (1.0 + 1e-12));
    }

    #[test]
    fn old_windows_age_out() {
        let mut h = WindowedHistogram::new(Duration::from_millis(5), 2);
        h.record(1.0);
        // Sleep past the retained span (5ms window × (2 kept + 1 open)).
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(h.quantiles().count, 0, "samples beyond the retained span must age out");
        h.record(2.0);
        assert_eq!(h.quantiles().count, 1);
    }

    #[test]
    fn zero_window_never_rotates() {
        let mut h = WindowedHistogram::new(Duration::ZERO, 2);
        h.record(1.0);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(h.quantiles().count, 1);
    }

    #[test]
    fn slo_burn_rate_counts_violations() {
        let mut s = SloTracker::new(Duration::from_millis(10), 0.5, Duration::from_secs(60), 4);
        assert!(!s.record(Duration::from_millis(1)));
        assert!(s.record(Duration::from_millis(20)));
        let r = s.report();
        assert_eq!((r.window_total, r.window_violations), (2, 1));
        assert_eq!((r.total, r.violations), (2, 1));
        // 50% violations against a 50% budget burns at exactly 1.0.
        assert!((r.burn_rate - 1.0).abs() < 1e-12);
        assert!((r.target_ms - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_slo_reports_zero_burn() {
        let mut s = SloTracker::new(Duration::ZERO, 0.01, Duration::from_secs(1), 4);
        let r = s.report();
        assert_eq!(r.burn_rate, 0.0);
        assert_eq!(r.window_total, 0);
    }
}
