//! Proof that disabled instrumentation is allocation-free: a counting
//! global allocator observes a burst of record calls made while the switch
//! is off. The library itself forbids unsafe code; the `GlobalAlloc` shim
//! lives out here in the test crate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn disabled_record_calls_do_not_allocate() {
    smiler_obs::set_enabled(false);
    const ITERS: u64 = 10_000;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..ITERS {
        smiler_obs::count("alloc.test.counter", "label", 1);
        smiler_obs::gauge_set("alloc.test.gauge", "label", i as f64);
        smiler_obs::observe("alloc.test.histogram", "label", i as f64);
        smiler_obs::event("alloc.test.event", "label", &i);
        let _guard = smiler_obs::span("alloc.test.span");
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    // This test is the only one in its binary, so nothing else should
    // allocate concurrently; a tiny slack absorbs libtest bookkeeping.
    assert!(delta <= 4, "disabled instrumentation allocated {delta} times over {ITERS} iterations");
}
