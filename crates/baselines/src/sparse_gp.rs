//! Sparse Gaussian Process baselines: PSGP and VLGP.
//!
//! * **PSGP** — the Projected Sparse GP (Csató & Opper 2002; the C++ tool of
//!   Barillec et al. 2011 the paper used): all information is projected
//!   onto `m` "active points". Implemented as the projected-process / DTC
//!   approximation trained by maximising the approximate marginal
//!   likelihood.
//! * **VLGP** — Titsias' variational sparse GP (AISTATS 2009; GPy in the
//!   paper): the same inducing-point machinery trained with the variational
//!   free energy (marginal likelihood minus the `tr(K − Q)/2σ²` slack
//!   penalty).
//!
//! Both share the predictive equations
//!
//! ```text
//! A   = K_mm + σ⁻² K_mn K_nm
//! μ*  = σ⁻² k_m(x)ᵀ A⁻¹ K_mn y
//! σ*² = k(x,x) − k_m(x)ᵀ K_mm⁻¹ k_m(x) + k_m(x)ᵀ A⁻¹ k_m(x) + σ²
//! ```
//!
//! Training costs O(n·m²) per objective evaluation, which is the very
//! scaling Figure 13 demonstrates: past `m ≈ 32` the accuracy gain is
//! marginal while the training time explodes.
//!
//! One deliberate simplification, documented here and in DESIGN.md:
//! hyperparameters are trained on the 1-step-ahead targets and shared
//! across horizons (the per-horizon posterior weights are still exact for
//! each horizon). Gradients are central finite differences — with three
//! hyperparameters this costs 6 objective evaluations per CG step, well
//! within the O(n·m²) budget that dominates anyway.

#![allow(clippy::needless_range_loop)] // index loops mirror the linear-algebra notation

use crate::{training_pairs, SeriesPredictor};
use smiler_gp::kernel::Hyperparams;
use smiler_linalg::optimize::{minimize_cg, CgOptions};
use smiler_linalg::{Cholesky, Matrix};

/// Training objective selecting PSGP vs VLGP behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparseObjective {
    /// DTC approximate marginal likelihood (PSGP).
    MarginalLikelihood,
    /// Variational free energy with the Titsias trace penalty (VLGP).
    VariationalFreeEnergy,
}

/// Configuration of a sparse-GP baseline.
#[derive(Debug, Clone)]
pub struct SparseGpConfig {
    /// Input window length `d`.
    pub window: usize,
    /// Horizons to fit posterior weights for.
    pub horizons: Vec<usize>,
    /// Number of active/inducing points `m`.
    pub active_points: usize,
    /// Training-pair stride (bounds `n`).
    pub stride: usize,
    /// CG iterations for hyperparameter training.
    pub train_iters: usize,
    /// PSGP or VLGP objective.
    pub objective: SparseObjective,
}

impl SparseGpConfig {
    /// The paper's PSGP defaults (32 active points, §6.3.1).
    pub fn psgp() -> Self {
        SparseGpConfig {
            window: 32,
            horizons: (1..=30).collect(),
            active_points: 32,
            stride: 1,
            train_iters: 10,
            objective: SparseObjective::MarginalLikelihood,
        }
    }

    /// The paper's VLGP defaults (32 inducing inputs).
    pub fn vlgp() -> Self {
        SparseGpConfig { objective: SparseObjective::VariationalFreeEnergy, ..Self::psgp() }
    }
}

/// Fitted state shared by predictions.
#[derive(Debug, Clone)]
struct Fitted {
    hyper: Hyperparams,
    inducing: Matrix,
    chol_kmm: Cholesky,
    chol_a: Cholesky,
    /// `σ⁻² A⁻¹ K_mn y` per horizon.
    weights: Vec<Vec<f64>>,
}

/// The sparse-GP forecaster (PSGP or VLGP depending on configuration).
#[derive(Debug, Clone)]
pub struct SparseGp {
    name: &'static str,
    config: SparseGpConfig,
    history: Vec<f64>,
    fitted: Option<Fitted>,
}

/// PSGP with the given configuration.
pub fn psgp(config: SparseGpConfig) -> SparseGp {
    SparseGp { name: "PSGP", config, history: Vec::new(), fitted: None }
}

/// VLGP with the given configuration.
pub fn vlgp(config: SparseGpConfig) -> SparseGp {
    SparseGp { name: "VLGP", config, history: Vec::new(), fitted: None }
}

/// Greedy max-min (farthest-point) selection of `m` row indices — a simple,
/// deterministic active-set choice that spreads inducing points over the
/// input manifold.
fn max_min_selection(xs: &[Vec<f64>], m: usize) -> Vec<usize> {
    let n = xs.len();
    if n == 0 {
        return Vec::new();
    }
    let m = m.min(n);
    let mut chosen = vec![0usize];
    let mut dist: Vec<f64> =
        xs.iter().map(|x| smiler_linalg::vector::squared_distance(x, &xs[0])).collect();
    while chosen.len() < m {
        let (next, &best) = dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty");
        if best <= 0.0 {
            // All remaining points duplicate chosen ones; pad round-robin.
            let fill = (0..n).find(|i| !chosen.contains(i));
            match fill {
                Some(i) => chosen.push(i),
                None => break,
            }
            continue;
        }
        chosen.push(next);
        for (i, di) in dist.iter_mut().enumerate() {
            let d = smiler_linalg::vector::squared_distance(&xs[i], &xs[next]);
            *di = di.min(d);
        }
    }
    chosen
}

/// Cross-covariance `K_nm` between data rows and inducing rows.
fn cross_cov(xs: &[Vec<f64>], inducing: &Matrix, hyper: &Hyperparams) -> Matrix {
    Matrix::from_fn(xs.len(), inducing.rows(), |i, j| hyper.cov(&xs[i], inducing.row(j), false))
}

fn inducing_gram(inducing: &Matrix, hyper: &Hyperparams) -> Matrix {
    let m = inducing.rows();
    let mut kmm = Matrix::from_fn(m, m, |i, j| hyper.cov(inducing.row(i), inducing.row(j), false));
    // Standard stabilising jitter on the inducing Gram.
    kmm.add_diagonal(1e-8 * hyper.prior_variance().max(1e-12));
    kmm
}

/// Negative objective (to minimise) at the given log-hyperparameters.
fn negative_objective(
    logs: &[f64],
    xs: &[Vec<f64>],
    y: &[f64],
    inducing: &Matrix,
    objective: SparseObjective,
) -> f64 {
    // Same hard box as smiler-gp's trainer: beyond |ln θ| = 6 the
    // parameters are clamped and the surface goes flat; reject outright.
    if logs.iter().any(|s| s.abs() > 6.0) {
        return f64::INFINITY;
    }
    let hyper = Hyperparams::from_log(logs);
    let n = xs.len();
    let m = inducing.rows();
    let noise = (hyper.theta2 * hyper.theta2).max(1e-10);
    let kmm = inducing_gram(inducing, &hyper);
    let Ok(chol_kmm) = Cholesky::decompose_with_jitter(&kmm, 1e-10, 1e-2) else {
        return f64::INFINITY;
    };
    let knm = cross_cov(xs, inducing, &hyper);
    // A = K_mm + σ⁻² K_mn K_nm.
    let mut a = knm.gram();
    a.scale(1.0 / noise);
    a.axpy(1.0, &kmm);
    let Ok(chol_a) = Cholesky::decompose_with_jitter(&a, 1e-10, 1e-2) else {
        return f64::INFINITY;
    };

    // log|Q + σ²I| = n·log σ² + log|A| − log|K_mm|.
    let logdet = n as f64 * noise.ln() + chol_a.log_determinant() - chol_kmm.log_determinant();
    // yᵀ(Q+σ²I)⁻¹y = σ⁻²‖y‖² − σ⁻⁴ yᵀK_nm A⁻¹ K_mn y   (Woodbury).
    let kmn_y = knm.matvec_t(y);
    let a_inv_kmn_y = chol_a.solve(&kmn_y);
    let yy: f64 = y.iter().map(|v| v * v).sum();
    let quad = yy / noise
        - kmn_y.iter().zip(&a_inv_kmn_y).map(|(a, b)| a * b).sum::<f64>() / (noise * noise);
    let mut nll = 0.5 * (logdet + quad + n as f64 * (2.0 * std::f64::consts::PI).ln());

    if objective == SparseObjective::VariationalFreeEnergy {
        // Titsias slack: tr(K_nn − Q_nn) / (2σ²) with
        // tr(Q_nn) = tr(K_mm⁻¹ K_mn K_nm) = Σ_i k_iᵀ K_mm⁻¹ k_i.
        let prior = hyper.theta0 * hyper.theta0;
        let mut tr_q = 0.0;
        for i in 0..n {
            tr_q += chol_kmm.quad_form(knm.row(i));
        }
        nll += (n as f64 * prior - tr_q).max(0.0) / (2.0 * noise);
        let _ = m;
    }
    nll
}

impl SparseGp {
    /// The trained hyperparameters, if fitted (diagnostics).
    pub fn debug_hyper(&self) -> Option<Hyperparams> {
        self.fitted.as_ref().map(|f| f.hyper)
    }
}

impl SeriesPredictor for SparseGp {
    fn name(&self) -> &'static str {
        self.name
    }

    fn is_online(&self) -> bool {
        false
    }

    fn train(&mut self, history: &[f64]) {
        self.history = history.to_vec();
        let cfg = &self.config;
        let (xs, y1) = training_pairs(history, cfg.window, 1, cfg.stride);
        if xs.len() < cfg.active_points.max(4) {
            self.fitted = None;
            return;
        }
        // Inducing set: greedy max-min over the training inputs.
        let chosen = max_min_selection(&xs, cfg.active_points);
        let inducing = Matrix::from_fn(chosen.len(), cfg.window, |i, j| xs[chosen[i]][j]);

        // Hyperparameter training on 1-step targets with finite-difference
        // CG (see module docs).
        let x_mat = Matrix::from_fn(xs.len().min(64), cfg.window, |i, j| xs[i][j]);
        let mut init = Hyperparams::heuristic(&x_mat, &y1[..xs.len().min(64)]);
        if cfg.objective == SparseObjective::VariationalFreeEnergy {
            // The Titsias slack `tr(K−Q)/(2σ²)` is enormous at the
            // heuristic's small initial noise (the inducing set explains
            // only part of tr(K) before training), which stampedes the
            // optimiser into the pure-noise optimum. Start the noise at
            // half the signal scale — GPy's practice — so the penalty is
            // commensurate with the data-fit term.
            init = Hyperparams::new(init.theta0, init.theta1, (init.theta0 * 0.5).max(1e-3));
        }
        let objective = cfg.objective;
        let mut f = |logs: &[f64]| {
            let v = negative_objective(logs, &xs, &y1, &inducing, objective);
            let mut grad = vec![0.0; 3];
            let eps = 1e-4;
            for p in 0..3 {
                let mut lp = logs.to_vec();
                lp[p] += eps;
                let vp = negative_objective(&lp, &xs, &y1, &inducing, objective);
                lp[p] -= 2.0 * eps;
                let vm = negative_objective(&lp, &xs, &y1, &inducing, objective);
                grad[p] = (vp - vm) / (2.0 * eps);
            }
            (v, grad)
        };
        let opts = CgOptions { max_iters: cfg.train_iters, ..Default::default() };
        let report = minimize_cg(&mut f, &init.to_log(), &opts);
        let hyper = Hyperparams::from_log(&report.x);

        // Posterior weights per horizon at the trained hyperparameters.
        let noise = (hyper.theta2 * hyper.theta2).max(1e-10);
        let kmm = inducing_gram(&inducing, &hyper);
        let Ok(chol_kmm) = Cholesky::decompose_with_jitter(&kmm, 1e-10, 1e-2) else {
            self.fitted = None;
            return;
        };
        let knm = cross_cov(&xs, &inducing, &hyper);
        let mut a = knm.gram();
        a.scale(1.0 / noise);
        a.axpy(1.0, &kmm);
        let Ok(chol_a) = Cholesky::decompose_with_jitter(&a, 1e-10, 1e-2) else {
            self.fitted = None;
            return;
        };
        let mut weights = Vec::with_capacity(cfg.horizons.len());
        for &h in &cfg.horizons {
            let (xh, yh) = training_pairs(history, cfg.window, h, cfg.stride);
            let knm_h = if h == 1 { knm.clone() } else { cross_cov(&xh, &inducing, &hyper) };
            let kmn_y = knm_h.matvec_t(&yh);
            let mut w = chol_a.solve(&kmn_y);
            for wi in &mut w {
                *wi /= noise;
            }
            weights.push(w);
        }
        self.fitted = Some(Fitted { hyper, inducing, chol_kmm, chol_a, weights });
    }

    fn observe(&mut self, value: f64) {
        // Offline model: history grows but the model stays fixed (the
        // paper's "concept drift" critique of eager learners).
        self.history.push(value);
    }

    fn predict(&mut self, h: usize) -> (f64, f64) {
        smiler_obs::count("baseline.predict", self.name(), 1);
        let Some(f) = &self.fitted else {
            return (self.history.last().copied().unwrap_or(0.0), 1.0);
        };
        let d = self.config.window;
        if self.history.len() < d {
            return (self.history.last().copied().unwrap_or(0.0), 1.0);
        }
        let hi = self
            .config
            .horizons
            .iter()
            .position(|&hh| hh == h)
            .unwrap_or_else(|| panic!("horizon {h} not configured for {}", self.name));
        let x0 = &self.history[self.history.len() - d..];
        let m = f.inducing.rows();
        let mut km = Vec::with_capacity(m);
        for j in 0..m {
            km.push(f.hyper.cov(x0, f.inducing.row(j), false));
        }
        let mean: f64 = km.iter().zip(&f.weights[hi]).map(|(k, w)| k * w).sum();
        let noise = (f.hyper.theta2 * f.hyper.theta2).max(1e-10);
        let prior = f.hyper.theta0 * f.hyper.theta0;
        let var = (prior - f.chol_kmm.quad_form(&km) + f.chol_a.quad_form(&km) + noise).max(noise);
        (mean, var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * std::f64::consts::TAU / 48.0).sin()).collect()
    }

    fn quick_config(objective: SparseObjective) -> SparseGpConfig {
        SparseGpConfig {
            window: 8,
            horizons: vec![1, 4],
            active_points: 12,
            stride: 2,
            train_iters: 4,
            objective,
        }
    }

    #[test]
    fn psgp_learns_seasonal_pattern() {
        let data = seasonal(480);
        let mut m = psgp(quick_config(SparseObjective::MarginalLikelihood));
        m.train(&data);
        let (mean, var) = m.predict(1);
        let truth = (480.0 * std::f64::consts::TAU / 48.0).sin();
        assert!((mean - truth).abs() < 0.3, "mean {mean} vs {truth}");
        assert!(var > 0.0 && var.is_finite());
    }

    #[test]
    fn vlgp_learns_seasonal_pattern() {
        let data = seasonal(480);
        let mut m = vlgp(quick_config(SparseObjective::VariationalFreeEnergy));
        m.train(&data);
        let (mean, _) = m.predict(1);
        let truth = (480.0 * std::f64::consts::TAU / 48.0).sin();
        assert!((mean - truth).abs() < 0.3, "mean {mean} vs {truth}");
    }

    #[test]
    fn more_active_points_fit_at_least_as_well() {
        // The Fig 13 premise: accuracy saturates with m, cost grows.
        let data = seasonal(480);
        let mae = |m_points: usize| {
            let mut cfg = quick_config(SparseObjective::MarginalLikelihood);
            cfg.active_points = m_points;
            let mut model = psgp(cfg);
            m_train_and_score(&mut model, &data)
        };
        let coarse = mae(3);
        let fine = mae(24);
        assert!(fine <= coarse * 1.5, "m=24 MAE {fine} vs m=3 MAE {coarse}");
    }

    fn m_train_and_score(model: &mut SparseGp, data: &[f64]) -> f64 {
        let split = data.len() - 40;
        model.train(&data[..split]);
        let mut errs = Vec::new();
        for t in split..data.len() - 1 {
            let (mean, _) = model.predict(1);
            errs.push((mean - data[t]).abs());
            model.observe(data[t]);
        }
        smiler_linalg::stats::mean(&errs)
    }

    #[test]
    fn max_min_selection_is_spread_out() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let chosen = max_min_selection(&xs, 3);
        assert_eq!(chosen.len(), 3);
        // First point, farthest point, then the midpoint region.
        assert!(chosen.contains(&0));
        assert!(chosen.contains(&19));
    }

    #[test]
    fn max_min_handles_duplicates() {
        let xs: Vec<Vec<f64>> = vec![vec![1.0]; 5];
        let chosen = max_min_selection(&xs, 3);
        assert_eq!(chosen.len(), 3);
        let mut sorted = chosen.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "duplicates must still give distinct indices");
    }

    #[test]
    fn too_little_data_falls_back() {
        let mut m = psgp(quick_config(SparseObjective::MarginalLikelihood));
        m.train(&seasonal(10));
        let (mean, var) = m.predict(1);
        assert!(mean.is_finite() && var == 1.0);
    }

    #[test]
    fn vfe_penalty_makes_objective_larger() {
        let data = seasonal(200);
        let (xs, y) = training_pairs(&data, 8, 1, 2);
        let chosen = max_min_selection(&xs, 8);
        let inducing = Matrix::from_fn(chosen.len(), 8, |i, j| xs[chosen[i]][j]);
        let logs = Hyperparams::new(1.0, 2.0, 0.2).to_log();
        let ml = negative_objective(&logs, &xs, &y, &inducing, SparseObjective::MarginalLikelihood);
        let vfe =
            negative_objective(&logs, &xs, &y, &inducing, SparseObjective::VariationalFreeEnergy);
        assert!(vfe >= ml, "VFE {vfe} must dominate ML {ml}");
    }
}
