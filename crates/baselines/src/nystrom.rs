//! NysSVR: low-rank RBF support vector regression via the Nyström method.
//!
//! The paper's NysSVR (§6.3.1) is scikit-learn's Nyström feature map in
//! front of a linear SVR, "reduced rank 128". The Nyström construction
//! (Williams & Seeger 2001): pick `r` landmark inputs, factor their kernel
//! matrix `K_rr = L Lᵀ`, and map every input to `z(x) = L⁻¹ k_r(x)` so that
//! `z(x)ᵀz(x') ≈ k(x, x')`. We solve the regression in feature space with
//! ridge (kernel ridge ≈ ε-SVR for squared-loss purposes — the standard
//! stand-in when reproducing SVR pipelines without a QP solver; documented
//! in DESIGN.md). The RBF length-scale is chosen by a small validation grid
//! mirroring the paper's cross-validated grid search.

#![allow(clippy::needless_range_loop)] // index loops mirror the linear-algebra notation

use crate::{training_pairs, SeriesPredictor};
use smiler_gp::kernel::Hyperparams;
use smiler_linalg::{Cholesky, Matrix};

/// Configuration of the Nyström SVR baseline.
#[derive(Debug, Clone)]
pub struct NysSvrConfig {
    /// Input window length `d`.
    pub window: usize,
    /// Horizons to fit.
    pub horizons: Vec<usize>,
    /// Reduced rank (number of landmarks; the paper uses 128).
    pub rank: usize,
    /// Training-pair stride.
    pub stride: usize,
    /// Ridge regularisation.
    pub ridge: f64,
}

impl Default for NysSvrConfig {
    fn default() -> Self {
        NysSvrConfig { window: 32, horizons: (1..=30).collect(), rank: 128, stride: 1, ridge: 1e-3 }
    }
}

#[derive(Debug, Clone)]
struct Fitted {
    hyper: Hyperparams,
    landmarks: Matrix,
    chol_landmarks: Cholesky,
    /// Ridge weights in Nyström feature space, per horizon.
    weights: Vec<Vec<f64>>,
    /// Residual variance per horizon (the SVR confidence proxy).
    resid_var: Vec<f64>,
}

/// The NysSVR forecaster.
#[derive(Debug, Clone)]
pub struct NysSvr {
    config: NysSvrConfig,
    history: Vec<f64>,
    fitted: Option<Fitted>,
}

/// Construct a NysSVR baseline.
pub fn nys_svr(config: NysSvrConfig) -> NysSvr {
    NysSvr { config, history: Vec::new(), fitted: None }
}

fn feature(chol: &Cholesky, hyper: &Hyperparams, landmarks: &Matrix, x: &[f64]) -> Vec<f64> {
    let r = landmarks.rows();
    let mut k = Vec::with_capacity(r);
    for j in 0..r {
        k.push(hyper.cov(x, landmarks.row(j), false));
    }
    chol.solve_lower(&k)
}

impl NysSvr {
    fn fit_with_hyper(
        &self,
        xs: &[Vec<f64>],
        hyper: Hyperparams,
        landmarks: Matrix,
    ) -> Option<Fitted> {
        let mut kmm = Matrix::from_fn(landmarks.rows(), landmarks.rows(), |i, j| {
            hyper.cov(landmarks.row(i), landmarks.row(j), false)
        });
        kmm.add_diagonal(1e-8 * hyper.prior_variance().max(1e-12));
        let chol = Cholesky::decompose_with_jitter(&kmm, 1e-10, 1e-2).ok()?;
        // Feature matrix Z (n×r).
        let z: Vec<Vec<f64>> = xs.iter().map(|x| feature(&chol, &hyper, &landmarks, x)).collect();
        let r = landmarks.rows();
        // Gram ZᵀZ + λI.
        let mut ztz = Matrix::zeros(r, r);
        for zi in &z {
            for a in 0..r {
                let za = zi[a];
                if za == 0.0 {
                    continue;
                }
                let row = ztz.row_mut(a);
                for (rb, zb) in row.iter_mut().zip(zi) {
                    *rb += za * zb;
                }
            }
        }
        ztz.add_diagonal(self.config.ridge * xs.len() as f64);
        let chol_ridge = Cholesky::decompose_with_jitter(&ztz, 1e-10, 1e-2).ok()?;

        let mut weights = Vec::with_capacity(self.config.horizons.len());
        let mut resid_var = Vec::with_capacity(self.config.horizons.len());
        for &h in &self.config.horizons {
            let (xh, yh) = training_pairs(&self.history, self.config.window, h, self.config.stride);
            let zh: Vec<Vec<f64>> = if h == self.config.horizons[0] && xh.len() == z.len() {
                z.clone()
            } else {
                xh.iter().map(|x| feature(&chol, &hyper, &landmarks, x)).collect()
            };
            let mut zty = vec![0.0; r];
            for (zi, &yi) in zh.iter().zip(&yh) {
                for (a, za) in zty.iter_mut().zip(zi) {
                    *a += za * yi;
                }
            }
            let w = chol_ridge.solve(&zty);
            let residuals: Vec<f64> = zh
                .iter()
                .zip(&yh)
                .map(|(zi, &yi)| zi.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() - yi)
                .collect();
            resid_var.push(smiler_linalg::stats::variance(&residuals).max(1e-6));
            weights.push(w);
        }
        Some(Fitted { hyper, landmarks, chol_landmarks: chol, weights, resid_var })
    }
}

impl SeriesPredictor for NysSvr {
    fn name(&self) -> &'static str {
        "NysSVR"
    }

    fn is_online(&self) -> bool {
        false
    }

    fn train(&mut self, history: &[f64]) {
        self.history = history.to_vec();
        let cfg = self.config.clone();
        let (xs, y1) = training_pairs(history, cfg.window, cfg.horizons[0], cfg.stride);
        if xs.len() < cfg.rank.min(16) {
            self.fitted = None;
            return;
        }
        // Landmarks: evenly strided training inputs (deterministic).
        let rank = cfg.rank.min(xs.len());
        let step = xs.len() / rank;
        let landmarks =
            Matrix::from_fn(rank, cfg.window, |i, j| xs[(i * step).min(xs.len() - 1)][j]);

        // Length-scale grid search on a held-out tail — the paper's
        // cross-validated grid search, reduced to the decisive parameter.
        let base = Hyperparams::heuristic(
            &Matrix::from_fn(xs.len().min(64), cfg.window, |i, j| xs[i][j]),
            &y1[..xs.len().min(64)],
        );
        let split = xs.len() * 4 / 5;
        let mut best: Option<(f64, Fitted)> = None;
        for scale in [0.5, 1.0, 2.0] {
            let hyper = Hyperparams::new(base.theta0, base.theta1 * scale, base.theta2);
            let Some(fit) = self.fit_with_hyper(&xs[..split], hyper, landmarks.clone()) else {
                continue;
            };
            // Validation MSE on the tail at the first horizon.
            let mse: f64 = xs[split..]
                .iter()
                .zip(&y1[split..])
                .map(|(x, &y)| {
                    let z = feature(&fit.chol_landmarks, &fit.hyper, &fit.landmarks, x);
                    let p: f64 = z.iter().zip(&fit.weights[0]).map(|(a, b)| a * b).sum();
                    (p - y) * (p - y)
                })
                .sum::<f64>()
                / (xs.len() - split).max(1) as f64;
            if best.as_ref().map_or(true, |(b, _)| mse < *b) {
                best = Some((mse, fit));
            }
        }
        // Refit the winner on all data.
        self.fitted = best.and_then(|(_, fit)| self.fit_with_hyper(&xs, fit.hyper, landmarks));
    }

    fn observe(&mut self, value: f64) {
        self.history.push(value);
    }

    fn predict(&mut self, h: usize) -> (f64, f64) {
        smiler_obs::count("baseline.predict", self.name(), 1);
        let Some(f) = &self.fitted else {
            return (self.history.last().copied().unwrap_or(0.0), 1.0);
        };
        let d = self.config.window;
        if self.history.len() < d {
            return (self.history.last().copied().unwrap_or(0.0), 1.0);
        }
        let hi = self
            .config
            .horizons
            .iter()
            .position(|&hh| hh == h)
            .unwrap_or_else(|| panic!("horizon {h} not configured for NysSVR"));
        let x0 = &self.history[self.history.len() - d..];
        let z = feature(&f.chol_landmarks, &f.hyper, &f.landmarks, x0);
        let mean: f64 = z.iter().zip(&f.weights[hi]).map(|(a, b)| a * b).sum();
        (mean, f.resid_var[hi])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * std::f64::consts::TAU / 32.0).sin()).collect()
    }

    fn quick() -> NysSvrConfig {
        NysSvrConfig { window: 8, horizons: vec![1, 4], rank: 16, stride: 2, ridge: 1e-3 }
    }

    #[test]
    fn fits_seasonal_series() {
        let data = seasonal(400);
        let mut m = nys_svr(quick());
        m.train(&data);
        let (mean, var) = m.predict(1);
        let truth = (400.0 * std::f64::consts::TAU / 32.0).sin();
        assert!((mean - truth).abs() < 0.25, "mean {mean} vs {truth}");
        assert!(var > 0.0);
    }

    #[test]
    fn per_horizon_models_differ() {
        let data = seasonal(400);
        let mut m = nys_svr(quick());
        m.train(&data);
        let p1 = m.predict(1).0;
        let p4 = m.predict(4).0;
        assert!((p1 - p4).abs() > 1e-6, "horizons should produce different forecasts");
    }

    #[test]
    fn residual_variance_is_small_on_clean_data() {
        let data = seasonal(400);
        let mut m = nys_svr(quick());
        m.train(&data);
        assert!(m.predict(1).1 < 0.1);
    }

    #[test]
    fn too_little_data_falls_back() {
        let mut m = nys_svr(quick());
        m.train(&seasonal(10));
        assert_eq!(m.predict(1).1, 1.0);
    }

    #[test]
    fn higher_rank_does_not_hurt() {
        let data = seasonal(500);
        let mae = |rank: usize| {
            let mut cfg = quick();
            cfg.rank = rank;
            let mut m = nys_svr(cfg);
            let split = data.len() - 50;
            m.train(&data[..split]);
            let mut errs = Vec::new();
            for t in split..data.len() - 1 {
                errs.push((m.predict(1).0 - data[t]).abs());
                m.observe(data[t]);
            }
            smiler_linalg::stats::mean(&errs)
        };
        let low = mae(4);
        let high = mae(32);
        assert!(high <= low * 1.5, "rank 32 MAE {high} vs rank 4 MAE {low}");
    }
}
