//! Competitor forecasting models for the SMiLer evaluation (paper §6.3.1).
//!
//! The paper compares SMiLer against two families:
//!
//! * **Offline (eager) learners** — trained once on history:
//!   [`sparse_gp::Psgp`] (projected sparse GP, Csató & Opper / Barillec et
//!   al.), [`sparse_gp::Vlgp`] (Titsias' variational sparse GP),
//!   [`nystrom::NysSvr`] (low-rank RBF SVR via the Nyström method),
//!   [`linear::SgdSvr`] and [`linear::SgdRr`] (linear ε-SVR / Huber robust
//!   regression with batch SGD).
//! * **Online learners** — built on the fly: [`lazyknn::LazyKnn`]
//!   (DTW-weighted kNN regression), [`holtwinters::HoltWinters`]
//!   (additive triple exponential smoothing, Full/Seg variants),
//!   [`linear::OnlineSvr`] and [`linear::OnlineRr`] (one-pass SGD).
//!
//! All implement [`SeriesPredictor`], the uniform interface the evaluation
//! harness drives: `train` on history, `observe` each arriving point,
//! `predict` a `(mean, variance)` for any horizon. Models without a native
//! predictive distribution report a residual-based variance, mirroring how
//! the paper obtained confidence values for SVR (libSVM's method) and kNN
//! (sample variance).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod holtwinters;
pub mod lazyknn;
pub mod linear;
pub mod nystrom;
pub mod sparse_gp;

/// Uniform interface over all competitor models.
pub trait SeriesPredictor: Send {
    /// Display name matching the paper's tables.
    fn name(&self) -> &'static str;

    /// Whether the model is in the paper's *online* group (Fig 10) rather
    /// than the *offline* group (Fig 9).
    fn is_online(&self) -> bool;

    /// Fit on historical data. Offline models do their (possibly expensive)
    /// training here; online models initialise state.
    fn train(&mut self, history: &[f64]);

    /// Absorb one newly observed value (called once per evaluation step,
    /// after predictions for the step were recorded).
    fn observe(&mut self, value: f64);

    /// Predictive mean and variance of the value `h` steps past the last
    /// observed point.
    fn predict(&mut self, h: usize) -> (f64, f64);
}

/// Build `(segment, h-ahead)` training pairs from a series: inputs are
/// `d`-length windows, targets the value `h` steps after each window ends.
/// `stride` subsamples windows to bound training cost.
pub(crate) fn training_pairs(
    history: &[f64],
    d: usize,
    h: usize,
    stride: usize,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    if history.len() < d + h {
        return (xs, ys);
    }
    let mut t = 0;
    while t + d - 1 + h < history.len() {
        xs.push(history[t..t + d].to_vec());
        ys.push(history[t + d - 1 + h]);
        t += stride.max(1);
    }
    (xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_pairs_align_inputs_and_targets() {
        let h: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let (xs, ys) = training_pairs(&h, 4, 2, 1);
        assert_eq!(xs.len(), ys.len());
        assert_eq!(xs[0], vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(ys[0], 5.0); // window ends at 3, +2 → index 5
        let last = xs.len() - 1;
        assert_eq!(*xs[last].last().unwrap() as usize + 2, ys[last] as usize);
    }

    #[test]
    fn training_pairs_respect_stride() {
        let h: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let (dense, _) = training_pairs(&h, 4, 1, 1);
        let (sparse, _) = training_pairs(&h, 4, 1, 5);
        assert!(sparse.len() * 4 <= dense.len());
        assert_eq!(sparse[1][0], 5.0);
    }

    #[test]
    fn training_pairs_short_history() {
        let (xs, ys) = training_pairs(&[1.0, 2.0], 4, 1, 1);
        assert!(xs.is_empty() && ys.is_empty());
    }
}
