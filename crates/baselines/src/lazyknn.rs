//! LazyKNN: DTW-weighted k-nearest-neighbour regression.
//!
//! The paper's pure lazy-learning baseline (§6.3.1): "the predicted value
//! is an average of the kNNs weighted by the inverse of DTW distance. We
//! used the variance of the kNNs as the predicted variance." This is the
//! method the semi-lazy GP is meant to beat on MNLPD — kNN variance is a
//! crude uncertainty measure compared to the GP posterior.
//!
//! §2.1 notes that "bootstrap can partially remedy this drawback but
//! requires high time cost"; [`LazyKnnConfig::bootstrap`] implements that
//! remedy (resampling the neighbour set with replacement and measuring the
//! spread of the resampled weighted means) so the claim can be tested.

use crate::SeriesPredictor;
use rand::Rng;

/// Configuration of the lazy kNN forecaster.
#[derive(Debug, Clone)]
pub struct LazyKnnConfig {
    /// Query/segment length `d`.
    pub window: usize,
    /// Number of neighbours `k`.
    pub k: usize,
    /// Sakoe-Chiba warping width for the DTW scan.
    pub rho: usize,
    /// Bootstrap resamples for the variance estimate; `None` uses the
    /// paper's plain kNN-label variance. Each resample redraws the
    /// neighbour set with replacement — the §2.1 "high time cost" remedy.
    pub bootstrap: Option<usize>,
}

impl Default for LazyKnnConfig {
    fn default() -> Self {
        LazyKnnConfig { window: 32, k: 16, rho: 4, bootstrap: None }
    }
}

/// DTW-weighted kNN regression over the sensor's own history.
#[derive(Debug, Clone)]
pub struct LazyKnn {
    config: LazyKnnConfig,
    history: Vec<f64>,
}

impl LazyKnn {
    /// Create with the given configuration.
    pub fn new(config: LazyKnnConfig) -> Self {
        assert!(config.k > 0 && config.window > 0, "k and window must be positive");
        LazyKnn { config, history: Vec::new() }
    }

    /// The k nearest `(start, distance)` pairs of the current query whose
    /// `h`-ahead label exists.
    fn knn(&self, h: usize) -> Vec<(usize, f64)> {
        let d = self.config.window;
        let n = self.history.len();
        if n < d + h + 1 {
            return Vec::new();
        }
        let query = &self.history[n - d..];
        // Candidates must leave room for the h-ahead label and must not be
        // the query itself.
        let last_start = n - d - h;
        let mut best: Vec<(usize, f64)> = Vec::with_capacity(self.config.k + 1);
        for t in 0..=last_start {
            let dist = smiler_dtw::dtw_banded(query, &self.history[t..t + d], self.config.rho);
            if best.len() < self.config.k {
                best.push((t, dist));
                best.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
            } else if dist < best[self.config.k - 1].1 {
                best[self.config.k - 1] = (t, dist);
                best.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
            }
        }
        best
    }
}

impl SeriesPredictor for LazyKnn {
    fn name(&self) -> &'static str {
        "LazyKNN"
    }

    fn is_online(&self) -> bool {
        true
    }

    fn train(&mut self, history: &[f64]) {
        self.history = history.to_vec();
    }

    fn observe(&mut self, value: f64) {
        self.history.push(value);
    }

    fn predict(&mut self, h: usize) -> (f64, f64) {
        smiler_obs::count("baseline.predict", self.name(), 1);
        let neighbors = self.knn(h);
        if neighbors.is_empty() {
            return (self.history.last().copied().unwrap_or(0.0), 1.0);
        }
        let d = self.config.window;
        let labels: Vec<f64> =
            neighbors.iter().map(|&(t, _)| self.history[t + d - 1 + h]).collect();
        // Inverse-distance weights, with a floor so exact matches do not
        // produce infinite weight.
        let weights: Vec<f64> = neighbors.iter().map(|&(_, dist)| 1.0 / (dist + 1e-9)).collect();
        let wsum: f64 = weights.iter().sum();
        let mean: f64 = labels.iter().zip(&weights).map(|(y, w)| y * w).sum::<f64>() / wsum;
        let var = match self.config.bootstrap {
            // Paper default: plain variance of the kNN labels.
            None => smiler_linalg::stats::variance(&labels).max(1e-9),
            Some(resamples) => bootstrap_variance(&labels, &weights, mean, resamples).max(1e-9),
        };
        (mean, var)
    }
}

/// Bootstrap the weighted-mean estimator: resample the neighbour set with
/// replacement `resamples` times and return the variance of the resampled
/// means around the full-sample mean. Deterministically seeded from the
/// label values so continuous prediction stays reproducible.
fn bootstrap_variance(labels: &[f64], weights: &[f64], mean: f64, resamples: usize) -> f64 {
    let k = labels.len();
    if k < 2 || resamples == 0 {
        return smiler_linalg::stats::variance(labels);
    }
    let seed = labels
        .iter()
        .fold(0x9E3779B97F4A7C15u64, |acc, &l| acc.wrapping_mul(31).wrapping_add(l.to_bits()));
    let mut rng = smiler_linalg::rng::seeded(seed);
    let mut acc = 0.0;
    for _ in 0..resamples {
        let mut wsum = 0.0;
        let mut msum = 0.0;
        for _ in 0..k {
            let pick = rng.gen_range(0..k);
            wsum += weights[pick];
            msum += weights[pick] * labels[pick];
        }
        let m = msum / wsum.max(1e-12);
        acc += (m - mean) * (m - mean);
    }
    acc / resamples as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * std::f64::consts::TAU / 24.0).sin()).collect()
    }

    fn cfg() -> LazyKnnConfig {
        LazyKnnConfig { window: 12, k: 4, rho: 2, bootstrap: None }
    }

    #[test]
    fn predicts_periodic_series_well() {
        let n = 24 * 12;
        let data = periodic(n);
        let mut m = LazyKnn::new(cfg());
        m.train(&data);
        for h in [1usize, 6, 12] {
            let (mean, _) = m.predict(h);
            let truth = ((n + h - 1) as f64 * std::f64::consts::TAU / 24.0).sin();
            assert!((mean - truth).abs() < 0.15, "h={h}: {mean} vs {truth}");
        }
    }

    #[test]
    fn exact_repetition_gives_tiny_variance() {
        // A perfectly periodic series: neighbours all agree.
        let data = periodic(24 * 10);
        let mut m = LazyKnn::new(cfg());
        m.train(&data);
        let (_, var) = m.predict(1);
        assert!(var < 0.01, "variance {var} should be tiny on periodic data");
    }

    #[test]
    fn disagreeing_neighbors_give_large_variance() {
        // An ambiguous pattern: the same 12-point motif is followed by +2 in
        // half its occurrences and −2 in the other half. Identical inputs,
        // disagreeing labels → the kNN variance must be large.
        let motif: Vec<f64> = (0..12).map(|i| (i as f64 * 0.5).sin()).collect();
        let mut data = Vec::new();
        for block in 0..12 {
            data.extend_from_slice(&motif);
            let follow = if block % 2 == 0 { 2.0 } else { -2.0 };
            data.extend(std::iter::repeat(follow).take(6));
        }
        // End the series right after a motif so the query *is* the motif.
        data.extend_from_slice(&motif);
        let mut m = LazyKnn::new(cfg());
        m.train(&data);
        let (_, var) = m.predict(3);
        assert!(var > 0.5, "variance {var} should reflect label disagreement");
    }

    #[test]
    fn bootstrap_variance_is_finite_and_deterministic() {
        let data = periodic(24 * 8);
        let mut cfg_b = cfg();
        cfg_b.bootstrap = Some(64);
        let mut a = LazyKnn::new(cfg_b.clone());
        a.train(&data);
        let mut b = LazyKnn::new(cfg_b);
        b.train(&data);
        let (ma, va) = a.predict(2);
        let (mb, vb) = b.predict(2);
        assert_eq!((ma, va), (mb, vb), "bootstrap must be deterministic");
        assert!(va.is_finite() && va > 0.0);
    }

    #[test]
    fn bootstrap_variance_smaller_than_label_variance_when_neighbors_agree() {
        // The bootstrap measures the spread of the *mean*, which shrinks
        // roughly as var/k — the §2.1 "partial remedy": tighter intervals
        // than raw label variance when neighbours agree.
        let data = periodic(24 * 10);
        let mut plain = LazyKnn::new(cfg());
        plain.train(&data);
        let mut cfg_b = cfg();
        cfg_b.bootstrap = Some(200);
        let mut boot = LazyKnn::new(cfg_b);
        boot.train(&data);
        let (_, v_plain) = plain.predict(6);
        let (_, v_boot) = boot.predict(6);
        assert!(v_boot <= v_plain * 1.5, "bootstrap {v_boot} vs plain {v_plain}");
    }

    #[test]
    fn observe_extends_candidate_pool() {
        let mut m = LazyKnn::new(cfg());
        m.train(&periodic(60));
        let before = m.knn(1).len();
        for v in periodic(60) {
            m.observe(v);
        }
        let after = m.knn(1).len();
        assert!(after >= before);
        assert_eq!(after, 4);
    }

    #[test]
    fn short_history_falls_back() {
        let mut m = LazyKnn::new(cfg());
        m.train(&[1.0, 2.0, 3.0]);
        assert_eq!(m.predict(5), (3.0, 1.0));
    }

    #[test]
    fn neighbors_leave_room_for_labels() {
        let data = periodic(100);
        let m = {
            let mut m = LazyKnn::new(cfg());
            m.train(&data);
            m
        };
        let h = 7;
        for (t, _) in m.knn(h) {
            assert!(t + m.config.window - 1 + h < data.len());
        }
    }
}
