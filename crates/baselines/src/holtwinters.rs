//! Holt-Winters additive triple exponential smoothing.
//!
//! The paper's statistical baseline (§6.3.1) "with two sub-methods:
//! FullHW and SegHW … We set the period as one day, and parameters were
//! determined by minimizing the squared error. For FullHW, we used all the
//! available data to construct the model for each prediction, and for
//! SegHW, we used the last 10 days data."
//!
//! Additive Holt-Winters state: level `ℓ`, trend `b`, seasonal `s[0..p)`:
//!
//! ```text
//! ℓ_t = α (y_t − s_{t−p}) + (1−α)(ℓ_{t−1} + b_{t−1})
//! b_t = β (ℓ_t − ℓ_{t−1}) + (1−β) b_{t−1}
//! s_t = γ (y_t − ℓ_t) + (1−γ) s_{t−p}
//! ŷ_{t+h} = ℓ_t + h·b_t + s_{t+h−p⌈h/p⌉}
//! ```
//!
//! Smoothing constants come from a coarse grid search minimising one-step
//! in-sample SSE (re-run at `train`), and the forecast variance uses the
//! standard additive-HW approximation
//! `σ²_h = σ²·(1 + (h−1)·α²)` on the one-step residual variance σ².

use crate::SeriesPredictor;

/// Which data window each refit uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwScope {
    /// FullHW: all available history.
    Full,
    /// SegHW: the last `days` days only.
    Segment {
        /// Number of trailing days used (the paper uses 10).
        days: usize,
    },
}

/// Additive Holt-Winters forecaster.
#[derive(Debug, Clone)]
pub struct HoltWinters {
    scope: HwScope,
    period: usize,
    alpha: f64,
    beta: f64,
    gamma: f64,
    history: Vec<f64>,
    /// Fitted state after the last smoothing pass.
    level: f64,
    trend: f64,
    seasonal: Vec<f64>,
    resid_var: f64,
    fitted: bool,
    /// Whether new observations arrived since the last refit. The smoothing
    /// pass runs lazily at the next `predict` — the paper constructs the
    /// model "for each prediction", and Table 4 charges that cost to
    /// prediction time.
    dirty: bool,
    /// Start index (in the full history) of the slice the state was
    /// fitted on. Seasonal indices are slice-relative, so forecasts must
    /// subtract this phase — crucial for SegHW, whose slice start moves.
    fitted_start: usize,
}

/// State produced by one smoothing pass.
struct HwState {
    level: f64,
    trend: f64,
    seasonal: Vec<f64>,
    sse: f64,
    count: usize,
}

fn smoothing_pass(
    data: &[f64],
    period: usize,
    alpha: f64,
    beta: f64,
    gamma: f64,
) -> Option<HwState> {
    if data.len() < 2 * period {
        return None;
    }
    // Initialise level/trend from the first two seasons, seasonal indices
    // from the first season's deviations.
    let first_mean: f64 = data[..period].iter().sum::<f64>() / period as f64;
    let second_mean: f64 = data[period..2 * period].iter().sum::<f64>() / period as f64;
    let mut level = first_mean;
    let mut trend = (second_mean - first_mean) / period as f64;
    let mut seasonal: Vec<f64> = (0..period).map(|i| data[i] - first_mean).collect();

    let mut sse = 0.0;
    let mut count = 0usize;
    for (t, &y) in data.iter().enumerate().skip(period) {
        let s_idx = t % period;
        let forecast = level + trend + seasonal[s_idx];
        let err = y - forecast;
        sse += err * err;
        count += 1;
        let new_level = alpha * (y - seasonal[s_idx]) + (1.0 - alpha) * (level + trend);
        trend = beta * (new_level - level) + (1.0 - beta) * trend;
        seasonal[s_idx] = gamma * (y - new_level) + (1.0 - gamma) * seasonal[s_idx];
        level = new_level;
    }
    Some(HwState { level, trend, seasonal, sse, count })
}

impl HoltWinters {
    /// Create a forecaster with the given refit scope and seasonal period
    /// (samples per day in the paper's setting).
    pub fn new(scope: HwScope, period: usize) -> Self {
        assert!(period > 0, "seasonal period must be positive");
        HoltWinters {
            scope,
            period,
            alpha: 0.3,
            beta: 0.05,
            gamma: 0.3,
            history: Vec::new(),
            level: 0.0,
            trend: 0.0,
            seasonal: vec![0.0; period],
            resid_var: 1.0,
            fitted: false,
            dirty: false,
            fitted_start: 0,
        }
    }

    /// FullHW with the paper's day period.
    pub fn full(period: usize) -> Self {
        HoltWinters::new(HwScope::Full, period)
    }

    /// SegHW over the last 10 days.
    pub fn segment(period: usize) -> Self {
        HoltWinters::new(HwScope::Segment { days: 10 }, period)
    }

    fn scoped_data(&self) -> &[f64] {
        match self.scope {
            HwScope::Full => &self.history,
            HwScope::Segment { days } => {
                let take = days * self.period;
                let from = self.history.len().saturating_sub(take);
                &self.history[from..]
            }
        }
    }

    /// Re-run the smoothing pass on the scoped data with current constants.
    fn refit(&mut self) {
        let data = self.scoped_data();
        let start = self.history.len() - data.len();
        if let Some(state) = smoothing_pass(data, self.period, self.alpha, self.beta, self.gamma) {
            self.level = state.level;
            self.trend = state.trend;
            self.seasonal = state.seasonal;
            self.resid_var = (state.sse / state.count.max(1) as f64).max(1e-9);
            self.fitted = true;
            self.fitted_start = start;
        }
        self.dirty = false;
    }

    /// Grid-search the smoothing constants on the scoped data (the paper's
    /// "parameters were determined by minimizing the squared error").
    fn grid_search(&mut self) {
        let data = self.scoped_data().to_vec();
        let grid = [0.05, 0.15, 0.3, 0.6];
        let trend_grid = [0.01, 0.05, 0.15];
        let mut best = (self.alpha, self.beta, self.gamma, f64::INFINITY);
        for &a in &grid {
            for &b in &trend_grid {
                for &g in &grid {
                    if let Some(state) = smoothing_pass(&data, self.period, a, b, g) {
                        if state.sse < best.3 {
                            best = (a, b, g, state.sse);
                        }
                    }
                }
            }
        }
        if best.3.is_finite() {
            (self.alpha, self.beta, self.gamma) = (best.0, best.1, best.2);
        }
    }
}

impl SeriesPredictor for HoltWinters {
    fn name(&self) -> &'static str {
        match self.scope {
            HwScope::Full => "FullHW",
            HwScope::Segment { .. } => "SegHW",
        }
    }

    fn is_online(&self) -> bool {
        true
    }

    fn train(&mut self, history: &[f64]) {
        self.history = history.to_vec();
        self.grid_search();
        self.refit();
    }

    fn observe(&mut self, value: f64) {
        self.history.push(value);
        self.dirty = true;
    }

    fn predict(&mut self, h: usize) -> (f64, f64) {
        smiler_obs::count("baseline.predict", self.name(), 1);
        // "used all the available data to construct the model for each
        // prediction" — the smoothing pass re-runs lazily per step, charged
        // to prediction time as in the paper's Table 4. The grid search is
        // not re-run.
        if self.dirty {
            self.refit();
        }
        if !self.fitted {
            let last = self.history.last().copied().unwrap_or(0.0);
            return (last, 1.0);
        }
        // Seasonal indices are relative to the fitted slice's start.
        let t = self.history.len() - self.fitted_start;
        let s_idx = (t + h - 1) % self.period;
        let mean = self.level + h as f64 * self.trend + self.seasonal[s_idx];
        let var = self.resid_var * (1.0 + (h as f64 - 1.0) * self.alpha * self.alpha);
        (mean, var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A clean seasonal series: sine of one-day period plus slow trend.
    fn seasonal_series(days: usize, period: usize) -> Vec<f64> {
        (0..days * period)
            .map(|i| {
                let phase = (i % period) as f64 / period as f64 * std::f64::consts::TAU;
                2.0 * phase.sin() + 0.001 * i as f64
            })
            .collect()
    }

    #[test]
    fn forecasts_seasonal_pattern() {
        let period = 24;
        let data = seasonal_series(20, period);
        let mut hw = HoltWinters::full(period);
        hw.train(&data);
        // Forecast one full period ahead and compare with the true pattern.
        for h in [1usize, 6, 12, 24] {
            let (mean, _) = hw.predict(h);
            let i = data.len() + h - 1;
            let truth = {
                let phase = (i % period) as f64 / period as f64 * std::f64::consts::TAU;
                2.0 * phase.sin() + 0.001 * i as f64
            };
            assert!((mean - truth).abs() < 0.25, "h={h}: {mean} vs {truth}");
        }
    }

    #[test]
    fn seg_uses_less_data_than_full() {
        let period = 24;
        let data = seasonal_series(30, period);
        let mut seg = HoltWinters::segment(period);
        seg.train(&data);
        assert_eq!(seg.scoped_data().len(), 10 * period);
        let mut full = HoltWinters::full(period);
        full.train(&data);
        assert_eq!(full.scoped_data().len(), data.len());
    }

    #[test]
    fn variance_grows_with_horizon() {
        let period = 24;
        let mut hw = HoltWinters::full(period);
        hw.train(&seasonal_series(15, period));
        let (_, v1) = hw.predict(1);
        let (_, v24) = hw.predict(24);
        assert!(v24 > v1);
    }

    #[test]
    fn observe_refits_state() {
        let period = 12;
        let mut hw = HoltWinters::full(period);
        hw.train(&seasonal_series(10, period));
        let before = hw.predict(1).0;
        // Shift the level sharply upward; the refit must track it.
        for _ in 0..3 * period {
            hw.observe(10.0);
        }
        let after = hw.predict(1).0;
        assert!((after - 10.0).abs() < (before - 10.0).abs());
    }

    #[test]
    fn too_short_history_falls_back_to_last_value() {
        let mut hw = HoltWinters::full(24);
        hw.train(&[5.0, 6.0, 7.0]);
        let (mean, var) = hw.predict(3);
        assert_eq!(mean, 7.0);
        assert_eq!(var, 1.0);
    }

    #[test]
    fn seg_forecast_matches_full_on_phase_shifted_slice() {
        // Regression: the seasonal index of a forecast must be relative to
        // the fitted slice, not the full history. Train SegHW on a history
        // whose length is NOT a multiple of the period; its forecast must
        // still track the seasonal pattern.
        let period = 24;
        // 30 days + 7 extra points so the 10-day slice starts mid-day.
        let data = seasonal_series(30, period);
        let data = &data[..30 * period - 7];
        let mut seg = HoltWinters::segment(period);
        seg.train(data);
        for h in [1usize, 12, 24] {
            let (mean, _) = seg.predict(h);
            let i = data.len() + h - 1;
            let truth = {
                let phase = (i % period) as f64 / period as f64 * std::f64::consts::TAU;
                2.0 * phase.sin() + 0.001 * i as f64
            };
            assert!((mean - truth).abs() < 0.3, "h={h}: {mean} vs {truth}");
        }
    }

    #[test]
    fn grid_search_beats_fixed_constants_on_sse() {
        let period = 24;
        let data = seasonal_series(20, period);
        let tuned_sse = {
            let mut hw = HoltWinters::full(period);
            hw.train(&data);
            smoothing_pass(&data, period, hw.alpha, hw.beta, hw.gamma).unwrap().sse
        };
        let default_sse = smoothing_pass(&data, period, 0.9, 0.9, 0.9).unwrap().sse;
        assert!(tuned_sse <= default_sse);
    }
}
