//! Linear forecasting models trained with stochastic gradient descent.
//!
//! Four of the paper's competitors share this machinery (§6.3.1):
//!
//! * **SgdSVR** — linear ε-insensitive support vector regression, batch SGD
//!   over several epochs (Zhang 2004);
//! * **SgdRR** — linear robust regression with the Huber loss (Rousseeuw &
//!   Leroy), batch SGD;
//! * **OnlineSVR / OnlineRR** — the same losses "trained in a one-pass
//!   online fashion" (Bottou 1999): a single SGD step per arriving point.
//!
//! Each horizon gets its own weight vector (the model maps the last `d`
//! observations to the value `h` ahead). The predictive variance is the
//! running residual variance per horizon — the libSVM-style confidence
//! estimate the paper attaches to SVR outputs.

use crate::{training_pairs, SeriesPredictor};
use smiler_linalg::stats;

/// Loss functions the SGD models support.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// ε-insensitive (support vector regression).
    EpsilonInsensitive,
    /// Huber (robust regression).
    Huber,
}

impl Loss {
    /// Derivative of the loss with respect to the prediction residual
    /// `r = prediction − target`.
    fn dloss(&self, r: f64) -> f64 {
        match self {
            Loss::EpsilonInsensitive => {
                const EPS: f64 = 0.05;
                if r > EPS {
                    1.0
                } else if r < -EPS {
                    -1.0
                } else {
                    0.0
                }
            }
            Loss::Huber => {
                const DELTA: f64 = 1.0;
                r.clamp(-DELTA, DELTA)
            }
        }
    }
}

/// Configuration shared by the SGD models.
#[derive(Debug, Clone)]
pub struct LinearConfig {
    /// Input window length `d`.
    pub window: usize,
    /// Horizons to support (1..=h_max typically).
    pub horizons: Vec<usize>,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// L2 regularisation strength.
    pub l2: f64,
    /// Batch epochs (offline variants only).
    pub epochs: usize,
    /// Training-pair stride (offline variants only; bounds cost).
    pub stride: usize,
}

impl Default for LinearConfig {
    fn default() -> Self {
        LinearConfig {
            window: 32,
            horizons: (1..=30).collect(),
            learning_rate: 0.01,
            l2: 1e-5,
            epochs: 5,
            stride: 1,
        }
    }
}

/// One per-horizon linear regressor: weights + bias + residual tracker.
#[derive(Debug, Clone)]
struct HorizonModel {
    weights: Vec<f64>,
    bias: f64,
    /// Running residual moments for the variance estimate.
    resid_sum: f64,
    resid_sq_sum: f64,
    resid_n: f64,
}

impl HorizonModel {
    fn new(d: usize) -> Self {
        HorizonModel {
            weights: vec![0.0; d],
            bias: 0.0,
            resid_sum: 0.0,
            resid_sq_sum: 0.0,
            resid_n: 0.0,
        }
    }

    fn predict(&self, x: &[f64]) -> f64 {
        self.bias + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }

    fn sgd_step(&mut self, x: &[f64], y: f64, lr: f64, l2: f64, loss: Loss) {
        let pred = self.predict(x);
        let r = pred - y;
        let g = loss.dloss(r);
        for (w, &xi) in self.weights.iter_mut().zip(x) {
            *w -= lr * (g * xi + l2 * *w);
        }
        self.bias -= lr * g;
        // Exponentially forget old residuals so the variance tracks drift.
        let decay = 0.999;
        self.resid_sum = self.resid_sum * decay + r;
        self.resid_sq_sum = self.resid_sq_sum * decay + r * r;
        self.resid_n = self.resid_n * decay + 1.0;
    }

    fn variance(&self) -> f64 {
        if self.resid_n < 2.0 {
            return 1.0;
        }
        let mean = self.resid_sum / self.resid_n;
        (self.resid_sq_sum / self.resid_n - mean * mean).max(1e-6)
    }
}

/// The shared linear-SGD forecaster.
#[derive(Debug, Clone)]
pub struct LinearSgd {
    name: &'static str,
    online: bool,
    loss: Loss,
    config: LinearConfig,
    models: Vec<HorizonModel>,
    history: Vec<f64>,
}

impl LinearSgd {
    fn new(name: &'static str, online: bool, loss: Loss, config: LinearConfig) -> Self {
        let models = config.horizons.iter().map(|_| HorizonModel::new(config.window)).collect();
        LinearSgd { name, online, loss, config, models, history: Vec::new() }
    }

    fn horizon_index(&self, h: usize) -> usize {
        self.config
            .horizons
            .iter()
            .position(|&hh| hh == h)
            .unwrap_or_else(|| panic!("horizon {h} not configured for {}", self.name))
    }

    fn current_window(&self) -> Option<&[f64]> {
        let d = self.config.window;
        if self.history.len() < d {
            return None;
        }
        Some(&self.history[self.history.len() - d..])
    }

    /// One online update: the newest point is the realised target of the
    /// window ending `h` points earlier, for every configured horizon.
    fn online_update(&mut self) {
        let d = self.config.window;
        let n = self.history.len();
        let (lr, l2, loss) = (self.config.learning_rate, self.config.l2, self.loss);
        for (i, &h) in self.config.horizons.clone().iter().enumerate() {
            if n < d + h {
                continue;
            }
            let y = self.history[n - 1];
            let start = n - h - d;
            let x = self.history[start..start + d].to_vec();
            self.models[i].sgd_step(&x, y, lr, l2, loss);
        }
    }
}

impl SeriesPredictor for LinearSgd {
    fn name(&self) -> &'static str {
        self.name
    }

    fn is_online(&self) -> bool {
        self.online
    }

    fn train(&mut self, history: &[f64]) {
        self.history = history.to_vec();
        let (lr, l2, loss) = (self.config.learning_rate, self.config.l2, self.loss);
        if self.online {
            // One-pass initialisation over history, mirroring the paper's
            // "used the following data to sequentially update the model".
            let horizons = self.config.horizons.clone();
            for (i, &h) in horizons.iter().enumerate() {
                let (xs, ys) = training_pairs(history, self.config.window, h, 1);
                for (x, y) in xs.iter().zip(&ys) {
                    self.models[i].sgd_step(x, *y, lr, l2, loss);
                }
            }
        } else {
            let horizons = self.config.horizons.clone();
            for (i, &h) in horizons.iter().enumerate() {
                let (xs, ys) = training_pairs(history, self.config.window, h, self.config.stride);
                for _ in 0..self.config.epochs {
                    for (x, y) in xs.iter().zip(&ys) {
                        self.models[i].sgd_step(x, *y, lr, l2, loss);
                    }
                }
            }
        }
    }

    fn observe(&mut self, value: f64) {
        self.history.push(value);
        if self.online {
            self.online_update();
        }
    }

    fn predict(&mut self, h: usize) -> (f64, f64) {
        smiler_obs::count("baseline.predict", self.name(), 1);
        let i = self.horizon_index(h);
        match self.current_window() {
            Some(x) => (self.models[i].predict(x), self.models[i].variance()),
            None => (0.0, 1.0),
        }
    }
}

/// SgdSVR: batch linear ε-SVR (offline group).
pub fn sgd_svr(config: LinearConfig) -> LinearSgd {
    LinearSgd::new("SgdSVR", false, Loss::EpsilonInsensitive, config)
}

/// SgdRR: batch linear robust regression (offline group).
pub fn sgd_rr(config: LinearConfig) -> LinearSgd {
    LinearSgd::new("SgdRR", false, Loss::Huber, config)
}

/// OnlineSVR: one-pass linear ε-SVR (online group).
pub fn online_svr(config: LinearConfig) -> LinearSgd {
    LinearSgd::new("OnlineSVR", true, Loss::EpsilonInsensitive, config)
}

/// OnlineRR: one-pass linear robust regression (online group).
pub fn online_rr(config: LinearConfig) -> LinearSgd {
    LinearSgd::new("OnlineRR", true, Loss::Huber, config)
}

/// Convenience: residual variance of a prediction set (used in tests).
pub fn residual_variance(pred: &[f64], truth: &[f64]) -> f64 {
    let r: Vec<f64> = pred.iter().zip(truth).map(|(p, t)| p - t).collect();
    stats::variance(&r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_series(n: usize) -> Vec<f64> {
        // Perfectly linear data: a linear model must nail it.
        (0..n).map(|i| 0.01 * i as f64).collect()
    }

    fn sine_series(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.2).sin()).collect()
    }

    fn small_config() -> LinearConfig {
        LinearConfig { window: 8, horizons: vec![1, 3], epochs: 30, ..Default::default() }
    }

    #[test]
    fn learns_linear_trend() {
        let mut m = sgd_svr(small_config());
        let data = linear_series(400);
        m.train(&data);
        let (pred, _) = m.predict(1);
        let expect = 0.01 * 400.0;
        assert!((pred - expect).abs() < 0.05, "pred {pred} vs {expect}");
    }

    #[test]
    fn huber_learns_despite_outliers() {
        let mut data = linear_series(400);
        // Inject gross outliers.
        for i in (50..400).step_by(50) {
            data[i] += 100.0;
        }
        let mut m = sgd_rr(small_config());
        m.train(&data);
        let (pred, _) = m.predict(1);
        assert!((pred - 4.0).abs() < 1.0, "robust pred {pred}");
    }

    #[test]
    fn online_variant_updates_with_observe() {
        let mut m = online_svr(small_config());
        m.train(&sine_series(50));
        let before = m.predict(1).0;
        // Feed a long stretch of constant data; predictions must drift
        // towards the constant.
        for _ in 0..600 {
            m.observe(2.0);
        }
        let after = m.predict(1).0;
        assert!((after - 2.0).abs() < (before - 2.0).abs());
    }

    #[test]
    fn offline_variant_ignores_observations_for_weights() {
        let mut m = sgd_svr(small_config());
        let data = linear_series(300);
        m.train(&data);
        let w_before = m.models[0].weights.clone();
        m.observe(1000.0);
        assert_eq!(m.models[0].weights, w_before, "offline weights must not change");
    }

    #[test]
    fn variance_reflects_fit_quality() {
        let cfg = small_config();
        let mut good = sgd_svr(cfg.clone());
        good.train(&linear_series(400));
        let mut bad = sgd_svr(cfg);
        // White-noise-like data a linear model cannot fit.
        let noisy: Vec<f64> = (0..400)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 } * ((i * 37 % 13) as f64))
            .collect();
        bad.train(&noisy);
        assert!(good.predict(1).1 < bad.predict(1).1);
    }

    #[test]
    #[should_panic(expected = "horizon 9 not configured")]
    fn unknown_horizon_panics() {
        let mut m = sgd_svr(small_config());
        m.train(&linear_series(100));
        m.predict(9);
    }

    #[test]
    fn short_history_predicts_prior() {
        let mut m = online_rr(small_config());
        m.train(&[1.0, 2.0]);
        assert_eq!(m.predict(1), (0.0, 1.0));
    }

    #[test]
    fn loss_derivatives() {
        assert_eq!(Loss::EpsilonInsensitive.dloss(0.01), 0.0);
        assert_eq!(Loss::EpsilonInsensitive.dloss(1.0), 1.0);
        assert_eq!(Loss::EpsilonInsensitive.dloss(-1.0), -1.0);
        assert_eq!(Loss::Huber.dloss(0.5), 0.5);
        assert_eq!(Loss::Huber.dloss(5.0), 1.0);
        assert_eq!(Loss::Huber.dloss(-5.0), -1.0);
    }
}
