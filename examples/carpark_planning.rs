//! Car-park availability forecasting (the paper's MALL workload).
//!
//! Predicts available lots 30 and 60 minutes ahead for a shopping-mall car
//! park, using the lightweight SMiLer-AR variant — the paper's
//! recommendation "if the predictive uncertainty is not a concern,
//! SMiLer-AR may still be a choice" (§6.4.1) — and shows the ensemble
//! auto-tuning shifting weight between (k, d) cells as the day progresses.
//!
//! Run with:
//! ```text
//! cargo run -p smiler-core --release --example carpark_planning
//! ```

use smiler_core::{PredictorKind, SensorPredictor, SmilerConfig};
use smiler_gpu::Device;
use smiler_timeseries::normalize::ZNorm;
use smiler_timeseries::synthetic::{DatasetKind, SyntheticSpec};
use std::sync::Arc;

const STEPS: usize = 48; // 8 hours of 10-minute steps

fn main() {
    let dataset =
        SyntheticSpec { kind: DatasetKind::Mall, sensors: 1, days: 35, seed: 3 }.generate();
    let series = dataset.sensors[0].values().to_vec();
    let split = series.len() - STEPS - 6;

    // The synthetic data is z-normalised; pretend the raw capacity is 800
    // lots so the printout reads in human units.
    let units = ZNorm { mean: 500.0, std_dev: 180.0 };

    let device = Arc::new(Device::default_gpu());
    let mut predictor = SensorPredictor::new(
        device,
        0,
        series[..split].to_vec(),
        SmilerConfig { h_max: 6, ..Default::default() },
        PredictorKind::Aggregation,
    );

    println!("time    lots now   +30min (p10..p90)    +60min (p10..p90)");
    let mut mae30 = 0.0;
    let mut count = 0usize;
    for step in 0..STEPS {
        let now_norm = series[split + step - 1];
        let (m30, v30) = predictor.predict(3);
        let (m60, v60) = predictor.predict(6);
        if step % 6 == 0 {
            let now = units.invert(now_norm);
            let (lo30, hi30) = interval(&units, m30, v30);
            let (lo60, hi60) = interval(&units, m60, v60);
            println!(
                "{:>5}   {now:8.0}   {:6.0} ({lo30:4.0}..{hi30:4.0})     {:6.0} ({lo60:4.0}..{hi60:4.0})",
                format!("{}h{:02}", step / 6, (step % 6) * 10),
                units.invert(m30),
                units.invert(m60),
            );
        }
        let truth30 = series[split + step + 2];
        mae30 += (m30 - truth30).abs();
        count += 1;
        predictor.observe(series[split + step]);
    }

    println!("\n30-minute MAE (normalised units): {:.3}", mae30 / count as f64);
    let weights = predictor.weights(3).expect("weights exist");
    println!("final ensemble weights over (k, d) cells:");
    let (ekv, elv) = (vec![8, 16, 32], vec![32, 64, 96]);
    for (i, &k) in ekv.iter().enumerate() {
        for (j, &d) in elv.iter().enumerate() {
            print!("  (k={k:>2}, d={d:>2}): {:.2}", weights[i * elv.len() + j]);
        }
        println!();
    }
}

fn interval(units: &ZNorm, mean: f64, var: f64) -> (f64, f64) {
    let sd = var.sqrt();
    (units.invert(mean - 1.28 * sd), units.invert(mean + 1.28 * sd))
}
