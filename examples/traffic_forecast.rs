//! Traffic forecasting across a sensor network (the paper's Example 1.1).
//!
//! Runs SMiLer-GP over several road-occupancy sensors at once on one
//! simulated GPU, producing rolling 10-minute-to-1-hour forecasts, and
//! compares the accuracy against a lazy kNN baseline — the "traffic jam
//! prediction" smart-city workload that motivates the paper.
//!
//! Run with:
//! ```text
//! cargo run -p smiler-core --release --example traffic_forecast
//! ```

use smiler_baselines::lazyknn::{LazyKnn, LazyKnnConfig};
use smiler_baselines::SeriesPredictor;
use smiler_core::{PredictorKind, SmilerConfig, SmilerSystem};
use smiler_gpu::Device;
use smiler_timeseries::synthetic::{DatasetKind, SyntheticSpec};
use std::sync::Arc;

const SENSORS: usize = 4;
const STEPS: usize = 36; // 6 hours of 10-minute steps
const HORIZON: usize = 6; // one hour ahead

fn main() {
    let dataset =
        SyntheticSpec { kind: DatasetKind::Road, sensors: SENSORS, days: 21, seed: 7 }.generate();
    // Hold out the evaluation window from every sensor.
    let histories: Vec<Vec<f64>> =
        dataset.sensors.iter().map(|s| s.values()[..s.len() - STEPS - HORIZON].to_vec()).collect();

    let device = Arc::new(Device::default_gpu());
    let (mut system, rejected) = SmilerSystem::new(
        Arc::clone(&device),
        histories.clone(),
        SmilerConfig { h_max: HORIZON, ..Default::default() },
        PredictorKind::GaussianProcess,
    );
    assert!(rejected.is_none(), "four sensors easily fit a 6 GB device");
    println!(
        "{} sensors resident, {:.1} MB of device memory",
        system.len(),
        system.resident_bytes() as f64 / 1048576.0
    );

    // The kNN baseline, one instance per sensor.
    let mut baselines: Vec<LazyKnn> = (0..SENSORS)
        .map(|i| {
            let mut m = LazyKnn::new(LazyKnnConfig { window: 32, k: 16, rho: 8, bootstrap: None });
            m.train(&histories[i]);
            m
        })
        .collect();

    let mut smiler_err = [0.0; SENSORS];
    let mut lazy_err = [0.0; SENSORS];
    for step in 0..STEPS {
        let preds = system.predict_all(HORIZON);
        let mut arrivals = Vec::with_capacity(SENSORS);
        for (i, sensor) in dataset.sensors.iter().enumerate() {
            let base = sensor.len() - STEPS - HORIZON + step;
            let truth = sensor.values()[base + HORIZON - 1];
            smiler_err[i] += (preds[i].0 - truth).abs();
            let (lp, _) = baselines[i].predict(HORIZON);
            lazy_err[i] += (lp - truth).abs();
            arrivals.push(sensor.values()[base]);
        }
        for (m, &v) in baselines.iter_mut().zip(&arrivals) {
            m.observe(v);
        }
        system.observe_all(&arrivals);
    }

    println!("\n1-hour-ahead MAE per sensor over {STEPS} steps:");
    println!("sensor   SMiLer-GP   LazyKNN");
    for i in 0..SENSORS {
        println!(
            "{i:>6}   {:9.3}   {:7.3}",
            smiler_err[i] / STEPS as f64,
            lazy_err[i] / STEPS as f64
        );
    }
    let s: f64 = smiler_err.iter().sum::<f64>() / (SENSORS * STEPS) as f64;
    let l: f64 = lazy_err.iter().sum::<f64>() / (SENSORS * STEPS) as f64;
    println!("\noverall: SMiLer-GP {s:.3} vs LazyKNN {l:.3}");
    println!("simulated GPU time for all search steps: {:.1} ms", device.elapsed_seconds() * 1e3);
}
