//! Quickstart: predict a sensor's future values with SMiLer.
//!
//! Builds a semi-lazy GP predictor over one synthetic traffic sensor,
//! makes a few multi-horizon predictions with uncertainty, feeds the
//! observed values back, and prints how the prediction tracks the truth.
//!
//! Run with:
//! ```text
//! cargo run -p smiler-core --release --example quickstart
//! ```

use smiler_core::{PredictorKind, SensorPredictor, SmilerConfig};
use smiler_gpu::Device;
use smiler_timeseries::synthetic::{DatasetKind, SyntheticSpec};
use std::sync::Arc;

fn main() {
    // 1. A sensor history. SMiLer expects z-normalised data; the synthetic
    //    generators normalise for you (as the paper normalised each sensor,
    //    §6.1.2).
    let dataset =
        SyntheticSpec { kind: DatasetKind::Road, sensors: 1, days: 21, seed: 42 }.generate();
    let series = dataset.sensors[0].values().to_vec();
    let (history, future) = series.split_at(series.len() - 36);

    // 2. A (simulated) GPU and the default paper configuration:
    //    ρ=8, ω=16, ELV={32,64,96}, EKV={8,16,32}, GP predictor.
    let device = Arc::new(Device::default_gpu());
    let config = SmilerConfig::default();
    let mut predictor = SensorPredictor::new(
        Arc::clone(&device),
        /* sensor id */ 0,
        history.to_vec(),
        config,
        PredictorKind::GaussianProcess,
    );

    // 3. Multi-horizon prediction with analytic uncertainty.
    println!("t+h   prediction   95% interval          truth");
    for h in [1usize, 5, 10, 30] {
        let (mean, var) = predictor.predict(h);
        let sd = var.sqrt();
        println!(
            "t+{h:<3}  {mean:9.3}   [{:7.3}, {:7.3}]   {:8.3}",
            mean - 1.96 * sd,
            mean + 1.96 * sd,
            future[h - 1]
        );
    }

    // 4. Continuous prediction: observe each arriving value; the ensemble
    //    weights adapt and the index updates incrementally (no retraining).
    let mut abs_err = 0.0;
    for &value in future {
        let (mean, _) = predictor.predict(1);
        abs_err += (mean - value).abs();
        predictor.observe(value);
    }
    println!(
        "\n1-step MAE over {} continuous steps: {:.3}",
        future.len(),
        abs_err / future.len() as f64
    );
    println!(
        "ensemble weights (h=1): {:?}",
        predictor
            .weights(1)
            .expect("weights exist after predictions")
            .iter()
            .map(|w| (w * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!("simulated GPU time spent: {:.3} ms", device.elapsed_seconds() * 1e3);
}
