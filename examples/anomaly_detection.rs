//! Abnormal-event detection from predictive uncertainty.
//!
//! The paper's introduction motivates SMiLer with "abnormal event
//! detection": because the semi-lazy GP yields an analytic predictive
//! distribution `N(u, σ²)`, an observation far outside the predicted
//! interval is a statistically grounded anomaly. This example injects
//! synthetic incidents into a traffic series and flags observations whose
//! standardised residual `|y − u| / σ` exceeds 2.5 — roughly a 1-in-80 event under the model.
//!
//! Run with:
//! ```text
//! cargo run -p smiler-core --release --example anomaly_detection
//! ```

use smiler_core::{PredictorKind, SensorPredictor, SmilerConfig};
use smiler_gpu::Device;
use smiler_timeseries::synthetic::{DatasetKind, SyntheticSpec};
use std::sync::Arc;

const STEPS: usize = 72;
const Z_THRESHOLD: f64 = 2.5;

fn main() {
    let dataset =
        SyntheticSpec { kind: DatasetKind::Mall, sensors: 1, days: 28, seed: 11 }.generate();
    let series = dataset.sensors[0].values().to_vec();
    let split = series.len() - STEPS;
    let mut future: Vec<f64> = series[split..].to_vec();

    // Inject three incidents the model has never seen: sudden occupancy
    // jumps (e.g. an event at the mall).
    let incidents = [15usize, 40, 60];
    for &at in &incidents {
        for (offset, value) in future.iter_mut().enumerate().skip(at).take(4) {
            *value -= 3.5 * (1.0 - (offset - at) as f64 * 0.2);
        }
    }

    let device = Arc::new(Device::default_gpu());
    let mut predictor = SensorPredictor::new(
        device,
        0,
        series[..split].to_vec(),
        SmilerConfig { h_max: 4, ..Default::default() },
        PredictorKind::GaussianProcess,
    );

    println!("step   truth   predicted    z-score   flag");
    let mut flagged = Vec::new();
    for (step, &value) in future.iter().enumerate() {
        let (mean, var) = predictor.predict(1);
        let z = (value - mean).abs() / var.sqrt().max(1e-6);
        let anomalous = z > Z_THRESHOLD;
        if anomalous {
            flagged.push(step);
            println!("{step:>4}  {value:6.2}   {mean:9.2}   {z:8.2}   ANOMALY");
        }
        predictor.observe(value);
    }

    let hits =
        incidents.iter().filter(|&&at| flagged.iter().any(|&f| f >= at && f < at + 4)).count();
    println!(
        "\ninjected incidents: {:?}\nflagged steps:      {flagged:?}\ndetected {hits}/{} incidents at z > {Z_THRESHOLD}",
        incidents,
        incidents.len()
    );
}
