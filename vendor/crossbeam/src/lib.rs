#![allow(clippy::all)]
//! Offline shim for the subset of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope` with `Scope::spawn`, implemented over
//! `std::thread::scope` (stable since 1.63), and `crossbeam::channel`'s
//! bounded MPMC queue over `std::sync::{Mutex, Condvar}`.

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle for spawning threads inside a [`scope`] call.
    ///
    /// `Copy` wrapper so closures can freely capture it by value, mirroring
    /// crossbeam's `&Scope` parameter.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result or panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread bound to the enclosing scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
        }
    }

    /// Run `f` with a scope in which borrowed-data threads may be spawned.
    ///
    /// Returns `Err` with the first panic payload if the closure or any
    /// un-joined spawned thread panicked, matching crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope { inner: s };
                f(&scope)
            })
        }))
    }
}

/// Bounded multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        capacity: usize,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The queue is at capacity; the message is handed back.
        Full(T),
        /// Every receiver has been dropped; the message is handed back.
        Disconnected(T),
    }

    /// Error returned by [`Sender::send`]: every receiver has been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`]: the channel is empty and every
    /// sender has been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is momentarily empty but senders remain.
        Empty,
        /// The queue is empty and every sender has been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The queue is empty and every sender has been dropped.
        Disconnected,
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// The sending half of a bounded channel. Clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a bounded channel. Clonable.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create a bounded MPMC channel holding at most `capacity` messages.
    /// A zero capacity is rounded up to one (this shim has no rendezvous
    /// mode).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let capacity = capacity.max(1);
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::with_capacity(capacity),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, Inner<T>> {
        // A poisoned channel mutex means a thread panicked *between* two
        // plain field updates below — none of which can leave the queue
        // torn — so the data is still coherent and we keep serving.
        match shared.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    impl<T> Sender<T> {
        /// Attempt to enqueue without blocking.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut inner = lock(&self.shared);
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if inner.queue.len() >= inner.capacity {
                return Err(TrySendError::Full(msg));
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Enqueue, blocking while the queue is full. Errors only when all
        /// receivers are gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = lock(&self.shared);
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                if inner.queue.len() < inner.capacity {
                    inner.queue.push_back(msg);
                    drop(inner);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                inner = match self.shared.not_full.wait(inner) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            lock(&self.shared).queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// The channel's fixed capacity.
        pub fn capacity(&self) -> usize {
            lock(&self.shared).capacity
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue, blocking while the queue is empty. Errors only when the
        /// queue is drained *and* all senders are gone: queued messages are
        /// always delivered before the disconnect is reported.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = lock(&self.shared);
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = match self.shared.not_empty.wait(inner) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Dequeue, blocking up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = lock(&self.shared);
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, timed_out) = match self.shared.not_empty.wait_timeout(inner, deadline - now)
                {
                    Ok((g, t)) => (g, t.timed_out()),
                    Err(poisoned) => {
                        let (g, t) = poisoned.into_inner();
                        (g, t.timed_out())
                    }
                };
                inner = g;
                if timed_out && inner.queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Attempt to dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = lock(&self.shared);
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            lock(&self.shared).queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// The channel's fixed capacity.
        pub fn capacity(&self) -> usize {
            lock(&self.shared).capacity
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = lock(&self.shared);
            inner.senders -= 1;
            let last = inner.senders == 0;
            drop(inner);
            if last {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = lock(&self.shared);
            inner.receivers -= 1;
            let last = inner.receivers == 0;
            drop(inner);
            if last {
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = vec![1u64, 2, 3, 4];
        let sum = super::thread::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(sum, 10);
    }

    #[test]
    fn panic_is_reported_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn bounded_fifo_order() {
        let (tx, rx) = channel::bounded(8);
        for i in 0..5 {
            tx.try_send(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
    }

    #[test]
    fn try_send_full_hands_message_back() {
        let (tx, rx) = channel::bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(channel::TrySendError::Full(3)));
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
    }

    #[test]
    fn queued_messages_delivered_before_disconnect() {
        let (tx, rx) = channel::bounded(4);
        tx.try_send("a").unwrap();
        tx.try_send("b").unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), "a");
        assert_eq!(rx.recv().unwrap(), "b");
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(7).is_err());
        assert_eq!(tx.try_send(7), Err(channel::TrySendError::Disconnected(7)));
    }

    #[test]
    fn blocking_send_wakes_on_recv() {
        let (tx, rx) = channel::bounded(1);
        tx.try_send(0u32).unwrap();
        std::thread::scope(|s| {
            let tx2 = tx.clone();
            s.spawn(move || tx2.send(1).unwrap());
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv().unwrap(), 0);
            assert_eq!(rx.recv().unwrap(), 1);
        });
    }

    #[test]
    fn mpmc_under_contention_delivers_everything() {
        let (tx, rx) = channel::bounded(4);
        const PER: usize = 200;
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 3;
        let got = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..PER {
                        tx.send(p * PER + i).unwrap();
                    }
                });
            }
            drop(tx);
            for _ in 0..CONSUMERS {
                let rx = rx.clone();
                let got = &got;
                s.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        got.lock().unwrap().push(v);
                    }
                });
            }
        });
        let mut all = got.into_inner().unwrap();
        all.sort_unstable();
        let expect: Vec<usize> = (0..PRODUCERS * PER).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = channel::bounded(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.try_send(9u8).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
    }
}
