#![allow(clippy::all)]
//! Offline shim for the subset of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope` with `Scope::spawn`, implemented over
//! `std::thread::scope` (stable since 1.63).

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle for spawning threads inside a [`scope`] call.
    ///
    /// `Copy` wrapper so closures can freely capture it by value, mirroring
    /// crossbeam's `&Scope` parameter.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result or panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread bound to the enclosing scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
        }
    }

    /// Run `f` with a scope in which borrowed-data threads may be spawned.
    ///
    /// Returns `Err` with the first panic payload if the closure or any
    /// un-joined spawned thread panicked, matching crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope { inner: s };
                f(&scope)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = vec![1u64, 2, 3, 4];
        let sum = super::thread::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(sum, 10);
    }

    #[test]
    fn panic_is_reported_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
